//! Beyond good/bad: the paper's §7 future work — predicting *more than
//! two* ordered performance classes (e.g. bad / fair / good /
//! excellent) with the same decentralized machinery.
//!
//! ```sh
//! cargo run --release --example multiclass
//! ```

use dmfsgd::core::config::SgdParams;
use dmfsgd::core::multiclass::{MulticlassLabels, MulticlassSystem, OrdinalClassifier};
use dmfsgd::core::Loss;
use dmfsgd::datasets::rtt::meridian_like;
use dmfsgd::datasets::Metric;

fn main() {
    let n = 200;
    let dataset = meridian_like(n, 17);

    for classes in [2usize, 3, 4, 5] {
        // Quantile class boundaries: equal-mass classes, quality-ordered
        // (class 1 = slowest paths, class C = fastest).
        let labels = MulticlassLabels::quantiles(&dataset, classes);
        let clf = OrdinalClassifier::equally_spaced(classes, Loss::Logistic);
        let params = SgdParams {
            eta: 0.1,
            lambda: 0.1,
            loss: Loss::Logistic,
        };
        let mut system = MulticlassSystem::new(n, 10, 10, clf, params, Metric::Rtt, classes as u64);
        system.run(n * 10 * 40, &labels);
        let (exact, within_one, mae) = system.evaluate(&labels);
        println!(
            "C={classes}: exact accuracy {:>5.1}%  (chance {:>4.1}%)   \
             within-one {:>5.1}%   mean |Δclass| {:.2}",
            exact * 100.0,
            100.0 / classes as f64,
            within_one * 100.0,
            mae
        );
    }
    println!(
        "\ntakeaway: the ordinal extension needs no protocol change — the\n\
         measurement is still one coarse probe, just quantized into more\n\
         than two bins; accuracy degrades gracefully with class count."
    );
}
