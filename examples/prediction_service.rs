//! The serving layer end-to-end: a 4-shard prediction service over a
//! loopback wire, driven by a pipelined client with mixed traffic —
//! RTT-class updates, scalar predictions, neighbor rankings — and
//! measured for throughput, tail latency and ranking quality.
//!
//! The sharded service answers **bit-identically** to a single
//! `Session` fed the same operations (the dmf-service conformance
//! suite pins this), so the AUC printed at the end is the AUC any
//! single-node deployment would report; sharding buys throughput,
//! never accuracy.
//!
//! ```sh
//! cargo run --release --example prediction_service
//! ```

use dmfsgd::eval::{roc::auc, ScoredLabel};
use dmfsgd::service::{
    loopback_pair, serve_loopback, PredictionService, Response, ServerConnection, ServiceClient,
};
use dmfsgd::{DmfsgdError, Session};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

const SHARDS: usize = 4;
const IN_FLIGHT: usize = 48; // below the server window: no rejections

fn main() -> Result<(), DmfsgdError> {
    let n = 120;
    let dataset = dmfsgd::datasets::rtt::meridian_like(n, 17);
    let tau = dataset.median();
    let classes = dataset.classify(tau);

    // A service is built like a session: same config, same seed —
    // each shard hosts a replica, authoritative on its id range.
    let config = *Session::builder().nodes(n).seed(17).build()?.config();
    let service = Arc::new(PredictionService::build(config, n, SHARDS)?);
    println!(
        "prediction service: {n} nodes in {SHARDS} shards (τ = {tau:.1} ms), \
         pipelined at {IN_FLIGHT} in flight\n"
    );

    // Server side: one pipelined connection on its own thread, talking
    // through an in-memory byte pipe (swap in a socket and nothing
    // else changes — the connection is transport-agnostic).
    let (server_end, client_end) = loopback_pair();
    let conn = ServerConnection::with_default_window(Arc::clone(&service));
    let server = thread::spawn(move || serve_loopback(conn, server_end));

    // Client side: train the whole population through the wire with
    // measured labels, interleaving reads so the stream stays mixed.
    let mut client = ServiceClient::new();
    let mut wire = Vec::new();
    let mut rx = Vec::new();
    let mut pending: VecDeque<Instant> = VecDeque::new();
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut completed = 0usize;

    // Every measured pair trains; every few ops a read rides along in
    // the same pipeline, observing mid-training state.
    let mut schedule = Vec::new();
    for round in 0..250usize {
        for i in 0..n {
            let j = (i + 1 + (round * 37) % (n - 1)) % n;
            if let Some(x) = classes.label(i, j) {
                schedule.push((true, i as u32, j as u32, x));
                match (round * n + i) % 5 {
                    4 => schedule.push((false, j as u32, i as u32, 0.0)),
                    3 => schedule.push((false, i as u32, u32::MAX, 0.0)),
                    _ => {}
                }
            }
        }
    }
    let started = Instant::now();
    let mut next = 0usize;
    while completed < schedule.len() {
        while next < schedule.len() && client.outstanding() < IN_FLIGHT {
            match schedule[next] {
                (true, i, j, x) => client.submit_update(i, j, x, &mut wire),
                (false, i, u32::MAX, _) => client.submit_rank(i, 8, &mut wire),
                (false, i, j, _) => client.submit_predict(i, j, &mut wire),
            };
            pending.push_back(Instant::now());
            next += 1;
        }
        if !wire.is_empty() {
            client_end.send(&wire);
            wire.clear();
        }
        rx.clear();
        if client_end.recv(&mut rx) == 0 {
            break;
        }
        client.ingest(&rx);
        while let Some(resp) = client.poll()? {
            resp.into_result()?; // no overloads below the window
            let t = pending.pop_front().expect("in-order responses");
            latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            completed += 1;
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p).round() as usize];
    println!(
        "{} requests in {elapsed:.2} s  →  {:.0} qps, p50 {:.1} µs, p99 {:.1} µs",
        completed,
        completed as f64 / elapsed,
        pct(0.50),
        pct(0.99),
    );

    // Score every known pair through the service and report AUC —
    // equal, not close, to the single-session number. Same windowed
    // submission: the admission window is a contract, not a hint.
    let pairs: Vec<(usize, usize, f64)> = classes
        .mask
        .iter_known()
        .filter_map(|(i, j)| classes.label(i, j).map(|x| (i, j, x)))
        .collect();
    let mut samples = Vec::new();
    let mut queried: VecDeque<bool> = VecDeque::new();
    let mut next_pair = 0usize;
    while samples.len() < pairs.len() {
        while next_pair < pairs.len() && client.outstanding() < IN_FLIGHT {
            let (i, j, x) = pairs[next_pair];
            client.submit_predict(i as u32, j as u32, &mut wire);
            queried.push_back(x > 0.0);
            next_pair += 1;
        }
        if !wire.is_empty() {
            client_end.send(&wire);
            wire.clear();
        }
        rx.clear();
        if client_end.recv(&mut rx) == 0 {
            break;
        }
        client.ingest(&rx);
        while let Some(resp) = client.poll()? {
            let positive = queried.pop_front().expect("one label per query");
            if let Response::Value { value, .. } = resp.into_result()? {
                samples.push(ScoredLabel {
                    positive,
                    score: value,
                });
            }
        }
    }
    client_end.close();
    server.join().expect("server thread")?;

    let auc = auc(&samples);
    println!(
        "ranking quality over {} known pairs: AUC = {auc:.3}",
        samples.len()
    );
    assert!(auc > 0.8, "the served coordinates should have learned");
    Ok(())
}
