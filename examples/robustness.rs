//! Robustness to erroneous measurements (the paper's §6.3): inject
//! each error type at 15% and watch how much of the accuracy survives.
//!
//! ```sh
//! cargo run --release --example robustness
//! ```

use dmfsgd::core::provider::ClassLabelProvider;
use dmfsgd::datasets::abw::hps3_like;
use dmfsgd::eval::{collect_scores, roc::auc};
use dmfsgd::simnet::errors::{
    calibrate_delta, calibrate_good_to_bad_fraction, inject, BandErrorKind, ErrorModel,
};
use dmfsgd::Session;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 180;
    let dataset = hps3_like(n, 11);
    let tau = dataset.median();
    let clean = dataset.classify(tau);
    let level = 0.15;

    let train = |class: &dmfsgd::datasets::ClassMatrix| {
        let mut provider = ClassLabelProvider::new(class.clone());
        let mut system = Session::builder()
            .nodes(n)
            .seed(5)
            .build()
            .expect("paper defaults are valid");
        let k = system.config().k;
        system
            .run(n * k * 25, &mut provider)
            .expect("provider covers the session");
        // Always evaluate against the *clean* labels: the question is
        // whether training survives measurement errors.
        auc(&collect_scores(&clean, &system.predicted_scores()))
    };

    println!("ABW dataset, τ = {tau:.1} Mbps, 15% erroneous labels\n");
    println!("{:>42} {:>7}", "training labels", "AUC");
    println!("{:>42} {:>7.3}", "clean", train(&clean));

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let scenarios: Vec<(&str, ErrorModel)> = vec![
        (
            "Type 1: flip near τ (flaky tools)",
            ErrorModel::FlipNearTau {
                delta: calibrate_delta(&dataset, tau, level, BandErrorKind::FlipNearTau),
            },
        ),
        (
            "Type 2: underestimation bias",
            ErrorModel::UnderestimationBias {
                delta: calibrate_delta(&dataset, tau, level, BandErrorKind::UnderestimationBias),
            },
        ),
        (
            "Type 3: random flips (malicious)",
            ErrorModel::FlipRandom { fraction: level },
        ),
        (
            "Type 4: good→bad (traffic bursts)",
            ErrorModel::GoodToBad {
                fraction_of_good: calibrate_good_to_bad_fraction(&clean, level),
            },
        ),
    ];
    for (name, model) in scenarios {
        let mut noisy = clean.clone();
        let changed = inject(&mut noisy, &dataset, model, &mut rng);
        let achieved = changed as f64 / clean.mask.count_known() as f64 * 100.0;
        println!(
            "{:>42} {:>7.3}   ({achieved:.1}% labels flipped)",
            name,
            train(&noisy)
        );
    }

    println!(
        "\ntakeaway (paper Fig. 6): errors near τ barely matter — they flip\n\
         labels the factorization treats as borderline anyway; random and\n\
         good→bad errors are the harmful kind."
    );
}
