//! The ABW workflow end-to-end (the paper's second metric): direct
//! class measurement by pathload-style UDP trains, the asymmetric
//! Algorithm 2, and the discrete-event simulation with message loss.
//!
//! ```sh
//! cargo run --release --example abw_classification
//! ```

use dmfsgd::core::provider::ProbedClassProvider;
use dmfsgd::core::runner::SimnetRunner;
use dmfsgd::core::DmfsgdConfig;
use dmfsgd::datasets::abw::hps3_like;
use dmfsgd::eval::{collect_scores, roc::auc};
use dmfsgd::simnet::NetConfig;
use dmfsgd::{DmfsgdError, Session};

fn main() -> Result<(), DmfsgdError> {
    let n = 150;
    let dataset = hps3_like(n, 21);
    let tau = dataset.median();
    let classes = dataset.classify(tau);
    println!(
        "ABW network: {n} nodes, probing at rate τ = {tau:.1} Mbps\n\
         (a probe is one UDP train: congestion observed ⇒ 'bad', else 'good')\n"
    );

    // --- 1. Oracle-driven training with on-the-fly pathload probes ---
    let mut provider = ProbedClassProvider::new(dataset.clone(), tau);
    let mut cfg = DmfsgdConfig::paper_defaults();
    cfg.seed = 4;
    let mut system = Session::builder().config(cfg).nodes(n).tau(tau).build()?;
    system.run(n * cfg.k * 25, &mut provider)?;
    let auc_direct = auc(&collect_scores(&classes, &system.predicted_scores()));
    println!("Algorithm 2 with live pathload probes:      AUC = {auc_direct:.3}");

    // --- 2. The same protocol through the event-driven simulator, ----
    //        now with 20% message loss injected.
    let mut runner = SimnetRunner::new(
        dataset,
        tau,
        cfg,
        NetConfig {
            loss_probability: 0.2,
            ..NetConfig::default()
        },
    )?
    .with_probe_interval(0.5)?;
    runner.run_for(250.0)?; // simulated seconds
    let stats = runner.stats();
    let auc_simnet = auc(&collect_scores(&classes, &runner.predicted_scores()));
    println!(
        "same, over simulated messages (20% loss):   AUC = {auc_simnet:.3}  \
         ({}/{} probes completed)",
        stats.measurements_completed, stats.probes_sent
    );

    assert!(auc_direct > 0.85);
    assert!(auc_simnet > 0.8);
    println!(
        "\nok: one-bit ABW measurements suffice, and losing a fifth of all\n\
         datagrams only slows convergence — no retransmission logic needed"
    );
    Ok(())
}
