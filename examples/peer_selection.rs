//! Peer selection (the paper's §6.4 application): pick a satisfactory
//! download peer from a candidate set using class-based prediction,
//! and compare with quantity-based prediction and random choice.
//!
//! ```sh
//! cargo run --release --example peer_selection
//! ```

use dmfsgd::core::provider::{ClassLabelProvider, QuantityProvider};
use dmfsgd::datasets::abw::hps3_like;
use dmfsgd::eval::peersel::{evaluate_peer_selection, SelectionStrategy};
use dmfsgd::linalg::Matrix;
use dmfsgd::simnet::NeighborSets;
use dmfsgd::{DmfsgdError, Session};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), DmfsgdError> {
    // A streaming application wants peers with enough available
    // bandwidth. ABW ground truth, HP-S3-like (median 43.1 Mbps).
    let n = 200;
    let dataset = hps3_like(n, 7);
    let tau = dataset.median(); // "good" = can sustain τ Mbps
    println!(
        "network: {n} nodes, τ = {tau:.1} Mbps ({:.0}% of paths good)",
        dataset.good_fraction(tau) * 100.0
    );

    let k = 10;
    let budget = n * k * 25;

    // Class-based prediction (cheap probes: one UDP train per pair).
    let classes = dataset.classify(tau);
    let mut class_provider = ClassLabelProvider::new(classes);
    let mut class_system = Session::builder().nodes(n).k(k).seed(1).tau(tau).build()?;
    class_system.run(budget, &mut class_provider)?;
    let class_scores = class_system.predicted_scores();

    // Quantity-based prediction (expensive probes: full ABW values).
    let mut quantity_provider = QuantityProvider::new(dataset.clone(), tau);
    let mut quantity_system = Session::builder()
        .nodes(n)
        .k(k)
        .seed(2)
        .quantity(tau)
        .build()?;
    quantity_system.run(budget, &mut quantity_provider)?;
    let predicted_quantities = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else {
            quantity_system.predict(i, j).expect("all slots alive")
        }
    });

    // Each node draws a peer set disjoint from its training neighbors.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let neighbors = NeighborSets::random(n, k, &mut rng);

    println!(
        "\n{:>6} {:>28} {:>10} {:>12}",
        "peers", "method", "stretch", "unsatisfied"
    );
    for m in [10, 20, 40] {
        let peer_sets = neighbors.disjoint_peer_sets(m, &mut rng);
        let runs: [(&str, SelectionStrategy); 3] = [
            ("Random", SelectionStrategy::Random),
            (
                "Classification (cheap)",
                SelectionStrategy::HighestScore(&class_scores),
            ),
            (
                "Regression (costly)",
                SelectionStrategy::BestPredictedQuantity(&predicted_quantities, dataset.metric),
            ),
        ];
        for (name, strategy) in runs {
            let out = evaluate_peer_selection(&dataset, tau, &peer_sets, strategy, &mut rng);
            println!(
                "{m:>6} {name:>28} {:>10.3} {:>11.1}%",
                out.avg_stretch,
                out.unsatisfied_fraction * 100.0
            );
        }
    }
    println!(
        "\ntakeaway (paper §6.4): classification already gives satisfactory peers\n\
         at a fraction of the measurement cost; regression buys optimality, not\n\
         satisfaction."
    );
    Ok(())
}
