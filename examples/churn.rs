//! Membership churn: the service keeps serving while 10% of the
//! population leaves and later rejoins mid-run.
//!
//! The paper frames DMFSGD as an always-on service — "nodes join,
//! probe, learn" — and this example exercises exactly that with the
//! `Session` membership API: train, retire 20 of 200 nodes (their
//! neighbors repair themselves in place), keep training the survivors,
//! re-admit 20 fresh nodes into the same slots, and watch AUC recover
//! as the newcomers bootstrap their coordinates from scratch.
//!
//! ```sh
//! cargo run --release --example churn
//! ```

use dmfsgd::core::provider::ClassLabelProvider;
use dmfsgd::datasets::rtt::meridian_like;
use dmfsgd::eval::{collect_scores, roc::auc};
use dmfsgd::{DmfsgdError, Session};

fn main() -> Result<(), DmfsgdError> {
    let n = 200;
    let churned = n / 10; // 10% of the population
    let dataset = meridian_like(n, 23);
    let tau = dataset.median();
    let classes = dataset.classify(tau);
    let mut provider = ClassLabelProvider::new(classes.clone());

    let mut session = Session::builder()
        .nodes(n)
        .k(10)
        .seed(23)
        .tau(tau)
        .build()?;
    let auc_now = |s: &Session| auc(&collect_scores(&classes, &s.predicted_scores()));

    println!("churn scenario: {n} nodes, {churned} leave and rejoin mid-run\n");
    println!("{:>34} {:>7} {:>7}", "phase", "alive", "AUC");
    println!(
        "{:>34} {:>7} {:>7.3}",
        "initialized",
        session.num_alive(),
        auc_now(&session)
    );

    // Phase 1: steady state.
    session.run(n * 10 * 20, &mut provider)?;
    let auc_steady = auc_now(&session);
    println!(
        "{:>34} {:>7} {:>7.3}",
        "after 20×k training",
        session.num_alive(),
        auc_steady
    );

    // Phase 2: a correlated failure takes out 10% of the population.
    // Every survivor that referenced a leaver gets a fresh alive
    // neighbor — an in-place swap, no global rebuild.
    let leavers: Vec<usize> = (0..churned).map(|i| i * (n / churned)).collect();
    for &id in &leavers {
        session.leave(id)?;
    }
    println!(
        "{:>34} {:>7} {:>7.3}",
        "10% departed",
        session.num_alive(),
        auc_now(&session)
    );

    // Phase 3: the survivors keep learning undisturbed.
    session.run(n * 10 * 5, &mut provider)?;
    println!(
        "{:>34} {:>7} {:>7.3}",
        "survivors keep training",
        session.num_alive(),
        auc_now(&session)
    );

    // Phase 4: 10% rejoin — same slots, fresh random coordinates, so
    // the population-level AUC dips before the newcomers learn.
    for _ in &leavers {
        session.join()?;
    }
    let auc_rejoined = auc_now(&session);
    println!(
        "{:>34} {:>7} {:>7.3}",
        "10% rejoined (cold coordinates)",
        session.num_alive(),
        auc_rejoined
    );

    // Phase 5: recovery — newcomers probe, everyone converges again.
    session.run(n * 10 * 20, &mut provider)?;
    let auc_recovered = auc_now(&session);
    println!(
        "{:>34} {:>7} {:>7.3}",
        "after recovery training",
        session.num_alive(),
        auc_recovered
    );

    assert!(auc_steady > 0.85, "steady-state AUC {auc_steady}");
    assert!(
        auc_recovered > auc_rejoined,
        "training after rejoin must recover accuracy ({auc_rejoined} → {auc_recovered})"
    );
    assert!(auc_recovered > 0.85, "post-churn AUC {auc_recovered}");
    println!(
        "\nok: membership churn is a first-class event — neighbor sets repair\n\
         in place and accuracy recovers as rejoined nodes relearn their\n\
         coordinates ({auc_rejoined:.3} → {auc_recovered:.3})"
    );
    Ok(())
}
