//! The operational arc of a live UDP fleet, narrated.
//!
//! A 64-agent fleet runs over real localhost sockets under the lossy
//! fault profile while we watch it the way an operator would — live
//! metrics and a typed health verdict, not log grep. Then the story
//! the health machinery exists for: a total loss storm stalls every
//! coordinate, staleness climbs past the policy limit and the fleet
//! reports `Degraded { StaleCoordinates }`; the storm clears, updates
//! resume, and the verdict recovers on its own (health is recomputed
//! from live signals, never latched). Finally the still-running fleet
//! is checkpointed stop-the-world into the same bit-exact `Snapshot`
//! the `Session` API restores from.
//!
//! Run: `cargo run --release --example fleet_ops`
//! The full operator contract is documented in `docs/operations.md`.

use dmfsgd::agent::{ClusterConfig, Fleet, STAT_METRICS};
use dmfsgd::datasets::rtt::meridian_like;
use dmfsgd::eval::{collect_scores, roc::auc};
use dmfsgd::ops::{Health, HealthPolicy, SampleValue};
use dmfsgd::proto::{FaultSpec, WireVersion};
use dmfsgd::{DmfsgdError, Session, Snapshot};
use std::time::{Duration, Instant};

const N: usize = 64;
const SEED: u64 = 9;

/// Reads one summed agent counter out of the fleet-wide snapshot
/// (samples are sorted by name, so look up by name).
fn counter(fleet: &Fleet, name: &str) -> u64 {
    assert!(STAT_METRICS.iter().any(|m| m.name == name));
    let snap = fleet.metrics();
    let sample = snap
        .metrics
        .iter()
        .find(|m| m.name == name)
        .expect("an exported sample");
    match sample.value {
        SampleValue::Counter(v) => v,
        ref other => panic!("{name} is a counter, got {other:?}"),
    }
}

fn report(fleet: &Fleet, tag: &str) {
    let s = fleet.signals();
    println!(
        "  [{tag}] running {:2}/{:2}  updates {:6}  gaps {:4}  auc {}  staleness {}  -> {:?}",
        fleet.running_count(),
        fleet.len(),
        counter(fleet, "dmf_agent_updates_applied_total"),
        counter(fleet, "dmf_agent_gaps_detected_total"),
        s.rolling_auc.map_or("  n/a".into(), |a| format!("{a:.3}")),
        s.staleness_s
            .map_or("  n/a".into(), |t| format!("{t:5.2}s")),
        fleet.health(),
    );
}

/// Polls until the fleet's health code matches, or panics after the
/// deadline — the transitions below all happen within a few seconds.
fn wait_for_health(fleet: &Fleet, code: u8, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while fleet.health().code() != code {
        assert!(Instant::now() < deadline, "fleet never became {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
    report(fleet, what);
}

fn main() -> Result<(), DmfsgdError> {
    let dataset = meridian_like(N, SEED);
    let tau = dataset.median();
    let classes = dataset.classify(tau);

    println!("launching {N} UDP agents under FaultSpec::lossy() (20% drop + corruption)...");
    let mut fleet = Fleet::launch(
        dataset,
        tau,
        ClusterConfig {
            probe_interval: Duration::from_millis(2),
            wire: WireVersion::V2,
            faults: Some(FaultSpec::lossy()),
            ..ClusterConfig::default()
        },
    )?;
    fleet.set_health_policy(HealthPolicy {
        min_quality_samples: 50,
        auc_floor: Some(0.6),
        staleness_limit_s: Some(1.0),
        rejection_rate_limit: None,
    });

    println!("\nwarm-up: live metrics every 400 ms (Unready until the quality window fills)");
    for round in 0..5 {
        std::thread::sleep(Duration::from_millis(400));
        report(&fleet, &format!("round {round}"));
    }
    wait_for_health(&fleet, 0, "healthy");

    println!("\nloss storm: drop probability 1.0 on every socket — coordinates go stale");
    fleet.set_faults(Some(FaultSpec {
        drop: 1.0,
        ..FaultSpec::default()
    }));
    fleet.restart_all()?;
    wait_for_health(&fleet, 1, "degraded");
    if let Health::Degraded { reasons } = fleet.health() {
        for r in &reasons {
            println!("    reason: {r:?}");
        }
    }

    println!("\nstorm clears: back to the lossy profile — recovery needs no reset");
    fleet.set_faults(Some(FaultSpec::lossy()));
    fleet.restart_all()?;
    wait_for_health(&fleet, 0, "recovered");

    println!("\nlive checkpoint (stop-the-world; ports and counters survive)...");
    let snap = fleet.checkpoint()?;
    let restored = Session::restore(&Snapshot::from_json(&snap.to_json())?)?;
    let offline = auc(&collect_scores(&classes, &restored.predicted_scores()));
    println!(
        "  snapshot restores into a Session: offline AUC {offline:.3}, live gauge {}",
        fleet
            .quality()
            .auc()
            .map_or("n/a".into(), |a| format!("{a:.3}")),
    );

    let outcome = fleet.shutdown()?;
    println!(
        "\nshutdown: {} total updates across the fleet's lifetime",
        outcome.total_updates()
    );
    Ok(())
}
