//! A *real* decentralized deployment: N agents, each with its own UDP
//! socket and OS thread, speaking the dmf-proto wire format on
//! localhost. No simulator in the loop — datagrams, nonces, losses and
//! all. (Measured values come from the shared oracle; see DESIGN.md §4.)
//!
//! ```sh
//! cargo run --release --example live_udp_cluster
//! ```

use dmfsgd::agent::{ClusterConfig, UdpCluster};
use dmfsgd::datasets::rtt::meridian_like;
use dmfsgd::eval::{collect_scores, roc::auc, ConfusionMatrix};
use std::time::Duration;

fn main() {
    let n = 48;
    let dataset = meridian_like(n, 3);
    let tau = dataset.median();
    let classes = dataset.classify(tau);
    println!("spawning {n} UDP agents on 127.0.0.1 (τ = {tau:.1} ms)…");

    let outcome = UdpCluster::run(
        dataset,
        tau,
        ClusterConfig {
            duration: Duration::from_secs(3),
            probe_interval: Duration::from_millis(3),
            ..ClusterConfig::default()
        },
    )
    .expect("cluster");

    let probes: usize = outcome.stats.iter().map(|s| s.probes_sent).sum();
    let decode_errors: usize = outcome.stats.iter().map(|s| s.decode_errors).sum();
    println!(
        "ran for 3 s: {probes} probes sent, {} SGD updates applied, {decode_errors} decode errors",
        outcome.total_updates()
    );

    let samples = collect_scores(&classes, &outcome.predicted_scores());
    let a = auc(&samples);
    let cm = ConfusionMatrix::at_sign(&samples);
    println!("AUC = {a:.3}, accuracy = {:.1}%", cm.accuracy() * 100.0);
    assert!(a > 0.75, "live cluster should learn the class structure");
    println!("ok: the protocol converges over real sockets with zero coordination");
}
