//! Riding out a flash-congestion epoch: a `Session` keeps serving
//! while RTTs between several cluster pairs quadruple for two
//! minutes, and windowed quality shows the dip and the recovery that
//! a single end-of-run number would hide.
//!
//! The scenario engine (`dmfsgd::datasets::scenario`) declares the
//! storm; the simnet driver's impairment hooks re-embed the delay
//! table window by window, so the nodes *measure* the congested
//! network rather than being told about it.
//!
//! ```sh
//! cargo run --release --example flash_congestion
//! ```

use dmfsgd::core::runner::SimnetDriver;
use dmfsgd::datasets::rtt::RttDatasetConfig;
use dmfsgd::datasets::scenario::{Condition, Scenario, ScenarioSpec};
use dmfsgd::eval::window::window_stats;
use dmfsgd::eval::{collect_scores, ScoredLabel};
use dmfsgd::simnet::NetConfig;
use dmfsgd::{DmfsgdError, Session};

fn main() -> Result<(), DmfsgdError> {
    let (storm_start, storm_end) = (180.0, 300.0);
    let spec = ScenarioSpec::stationary(
        "flash-congestion-demo",
        RttDatasetConfig::meridian(120),
        23,
        480.0,
        30.0,
    )
    .with(Condition::FlashCongestion {
        start_s: storm_start,
        end_s: storm_end,
        cluster_pairs: 12,
        factor: 4.0,
    });
    let scenario = Scenario::realize(spec);

    // τ is pinned to the calm median — the storm pushes paths across
    // this fixed operating point, which is what the predictor must
    // track.
    let calm = scenario.ground_truth_at(0.0);
    let tau = calm.median();
    let mut session = Session::builder()
        .nodes(scenario.nodes())
        .k(10)
        .seed(23)
        .tau(tau)
        .build()?;
    let mut driver =
        SimnetDriver::new(&session, calm, NetConfig::default())?.with_probe_interval(0.5)?;

    println!(
        "flash congestion: {} nodes, RTT ×4 between 12 cluster pairs for t ∈ [{storm_start}, {storm_end})\n",
        scenario.nodes()
    );
    println!(
        "{:>8} {:>10} {:>7} {:>9} {:>13}",
        "window", "phase", "AUC", "accuracy", "measurements"
    );

    let mut calm_auc = 0.0; // last pre-storm window
    let mut storm_min = f64::INFINITY;
    let mut last_meas = 0usize;
    for w in 0..scenario.window_count() {
        let (start, end) = scenario.window_bounds(w);
        // Re-embed the network on the truth in force for this window
        // (piecewise-constant, exactly like the scenario_suite
        // harness), then let the protocol run the window out.
        let truth = scenario.ground_truth_at(start);
        driver.update_rtt_ground_truth(truth.clone())?;
        driver.run_until(&mut session, end)?;

        let classes = truth.classify(tau);
        let samples: Vec<ScoredLabel> = collect_scores(&classes, &session.predicted_scores());
        let stats = window_stats(&samples).expect("median split keeps both classes");
        let completed = driver.stats().measurements_completed;
        let phase = if start >= storm_start && start < storm_end {
            "STORM"
        } else if start < storm_start {
            "calm"
        } else {
            "recovery"
        };
        println!(
            "{:>8} {:>10} {:>7.3} {:>9.3} {:>13}",
            format!("[{start:.0},{end:.0})"),
            phase,
            stats.auc,
            stats.accuracy,
            completed - last_meas,
        );
        last_meas = completed;
        if phase == "calm" {
            calm_auc = stats.auc;
        }
        if phase == "STORM" {
            storm_min = storm_min.min(stats.auc);
        }
    }

    let classes = scenario.ground_truth_at(480.0).classify(tau);
    let final_auc = {
        let samples = collect_scores(&classes, &session.predicted_scores());
        window_stats(&samples).expect("both classes").auc
    };
    assert!(calm_auc > 0.85, "pre-storm AUC {calm_auc}");
    assert!(
        storm_min < calm_auc - 0.05,
        "the storm should dent windowed AUC ({calm_auc:.3} calm vs {storm_min:.3} storm)"
    );
    assert!(final_auc > 0.85, "post-recovery AUC {final_auc}");
    println!(
        "\nok: windowed AUC dipped to {storm_min:.3} during the storm and recovered to \
         {final_auc:.3}\nonce the congestion cleared — the session re-learned both truths \
         from live probes."
    );
    Ok(())
}
