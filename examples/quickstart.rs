//! Quickstart: predict RTT performance classes on a Meridian-like
//! network with the paper's default configuration.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dmfsgd::core::provider::ClassLabelProvider;
use dmfsgd::datasets::rtt::meridian_like;
use dmfsgd::eval::roc::auc;
use dmfsgd::eval::{collect_scores, ConfusionMatrix};
use dmfsgd::{DmfsgdError, Session};

fn main() -> Result<(), DmfsgdError> {
    // 1. Ground truth: a 300-node RTT dataset with the Meridian
    //    median (56.4 ms). In a deployment this is the real network;
    //    here it is the calibrated synthetic substitute.
    let n = 300;
    let dataset = meridian_like(n, 42);
    println!(
        "dataset: {} nodes, median RTT {:.1} ms",
        n,
        dataset.median()
    );

    // 2. Classification threshold τ: the median ⇒ 50% good paths.
    let tau = dataset.median();
    let classes = dataset.classify(tau);
    println!(
        "classes at τ={tau:.1} ms: {:.1}% good",
        classes.good_fraction() * 100.0
    );

    // 3. Train DMFSGD: every node probes k=10 random neighbors,
    //    updating its rank-10 coordinates on each binary measurement.
    //    The builder validates every knob — no panics on bad input.
    let k = 10;
    let budget = n * k * 25; // ≈ 25×k measurements per node
    let mut provider = ClassLabelProvider::new(classes.clone());
    let mut system = Session::builder()
        .nodes(n)
        .rank(10) // r=10, η=λ=0.1, logistic: the paper defaults
        .eta(0.1)
        .lambda(0.1)
        .k(k)
        .tau(tau)
        .build()?;
    system.run(budget, &mut provider)?;
    println!(
        "trained on {} measurements ({:.0} per node)",
        system.measurements_used(),
        system.avg_measurements_per_node()
    );

    // 4. Evaluate: the system has only seen ~k neighbors per node but
    //    predicts all n·(n−1) pairs.
    let samples = collect_scores(&classes, &system.predicted_scores());
    let roc_auc = auc(&samples);
    let cm = ConfusionMatrix::at_sign(&samples);
    println!("\nAUC        = {roc_auc:.3}");
    println!("accuracy   = {:.1}%", cm.accuracy() * 100.0);
    let p = cm.as_percentages();
    println!("P(G|G) = {:.1}%   P(B|G) = {:.1}%", p[0][0], p[0][1]);
    println!("P(G|B) = {:.1}%   P(B|B) = {:.1}%", p[1][0], p[1][1]);

    assert!(roc_auc > 0.85, "quickstart should reach AUC > 0.85");
    println!(
        "\nok: class-based prediction from {}% of the pairwise measurements",
        {
            let probed = (k as f64) / (n as f64 - 1.0) * 100.0;
            format!("{probed:.1}")
        }
    );
    Ok(())
}
