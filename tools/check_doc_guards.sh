#!/usr/bin/env bash
# Verifies that every service-surface module keeps its
# `#[deny(missing_docs)]` attribute.
#
# The attribute is what turns an undocumented public item into a hard
# build error (the real enforcement happens in `cargo build`/`clippy`);
# this script only keeps the attribute itself from being silently
# dropped in a refactor. It replaces the ad-hoc `grep -B1` pipeline the
# CI workflow used to inline: one data-driven list, runnable locally
# (`./tools/check_doc_guards.sh`) and from CI.
#
# To guard a new module: add `#[deny(missing_docs)]` above its
# `pub mod <name>;` declaration and append "<lib.rs path>:<name>" below.
set -euo pipefail
cd "$(dirname "$0")/.."

GUARDS=(
  "crates/core/src/lib.rs:epoch"
  "crates/core/src/lib.rs:session"
  "crates/core/src/lib.rs:snapshot"
  "crates/core/src/lib.rs:error"
  "crates/core/src/lib.rs:view"
  "crates/agent/src/lib.rs:driver"
  "crates/agent/src/lib.rs:fleet"
  "crates/agent/src/lib.rs:metrics"
  "crates/datasets/src/lib.rs:scenario"
  "crates/eval/src/lib.rs:window"
  "crates/linalg/src/lib.rs:simd"
  "crates/ops/src/lib.rs:export"
  "crates/ops/src/lib.rs:health"
  "crates/ops/src/lib.rs:quality"
  "crates/ops/src/lib.rs:registry"
  "crates/service/src/lib.rs:client"
  "crates/service/src/lib.rs:connection"
  "crates/service/src/lib.rs:loopback"
  "crates/service/src/lib.rs:metrics"
  "crates/service/src/lib.rs:partition"
  "crates/service/src/lib.rs:protocol"
  "crates/service/src/lib.rs:service"
  "crates/service/src/lib.rs:worker"
)

fail=0
for guard in "${GUARDS[@]}"; do
  file="${guard%%:*}"
  module="${guard##*:}"
  if ! grep -B1 "pub mod ${module};" "$file" | grep -q "deny(missing_docs)"; then
    echo "MISSING doc guard: ${file}: pub mod ${module} lost #[deny(missing_docs)]" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "doc guards OK (${#GUARDS[@]} modules)"
