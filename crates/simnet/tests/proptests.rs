//! Property-based tests for the simulation substrate.

use dmf_datasets::rtt::meridian_like;
use dmf_simnet::errors::{calibrate_delta, inject, BandErrorKind, ErrorModel};
use dmf_simnet::{EventQueue, NeighborSets, NetConfig, SimNet};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn event_queue_preserves_count(times in proptest::collection::vec(0.0f64..100.0, 0..50)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule_at(t, ());
        }
        prop_assert_eq!(q.len(), times.len());
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn simnet_conserves_messages(loss in 0.0f64..1.0, count in 1usize..200, seed in 0u64..100) {
        let mut net: SimNet<usize> = SimNet::uniform(
            4,
            0.01,
            NetConfig { loss_probability: loss, seed, ..NetConfig::default() },
        );
        for i in 0..count {
            net.send(i % 4, (i + 1) % 4, i);
        }
        let mut delivered = 0usize;
        while net.next_delivery().is_some() {
            delivered += 1;
        }
        let stats = net.stats();
        prop_assert_eq!(stats.sent, count);
        prop_assert_eq!(stats.delivered, delivered);
        prop_assert_eq!(stats.delivered + stats.dropped, count);
    }

    #[test]
    fn neighbor_sets_valid(n in 3usize..40, seed in 0u64..50) {
        let k = (n / 3).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sets = NeighborSets::random(n, k, &mut rng);
        for i in 0..n {
            let neigh = sets.neighbors(i);
            prop_assert_eq!(neigh.len(), k);
            prop_assert!(!neigh.contains(&i));
            let mut uniq = neigh.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), k);
            prop_assert!(uniq.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn flip_near_tau_calibration_tracks_target(
        seed in 0u64..20,
        target in 0.01f64..0.2,
    ) {
        let d = meridian_like(60, seed);
        let tau = d.median();
        let delta = calibrate_delta(&d, tau, target, BandErrorKind::FlipNearTau);
        let base = d.classify(tau);
        let mut noisy = base.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x77);
        inject(&mut noisy, &d, ErrorModel::FlipNearTau { delta }, &mut rng);
        let level = base.disagreement_count(&noisy) as f64 / base.mask.count_known() as f64;
        prop_assert!(
            (level - target).abs() < 0.04,
            "target {target}, achieved {level}"
        );
    }

    #[test]
    fn error_injection_never_touches_unobserved(seed in 0u64..20) {
        let d = meridian_like(30, seed);
        let base = d.classify(d.median());
        let mut noisy = base.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        inject(&mut noisy, &d, ErrorModel::FlipRandom { fraction: 0.5 }, &mut rng);
        // Mask must be untouched; only labels may differ.
        prop_assert_eq!(&noisy.mask, &base.mask);
        for i in 0..30 {
            prop_assert_eq!(noisy.label(i, i), None);
        }
    }
}
