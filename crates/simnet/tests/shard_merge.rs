//! Merge-order conformance: a `k`-island [`ShardedSimNet`] must
//! produce **exactly** the delivery stream a single-queue [`SimNet`]
//! produces for the same operation script.
//!
//! The comparison is only meaningful on a partition-free topology
//! with jitter and loss disabled and a uniform delay: then neither
//! net draws from an RNG, sharded intra-island delays equal the
//! single net's table, and the cross-island default-delay carve-out
//! coincides with the uniform delay — so any divergence is a bug in
//! the deterministic merge itself (seq threading, heap mirroring,
//! clock handling), which is precisely what this suite pins.

use dmf_simnet::{NetConfig, ShardedSimNet, SimNet, SimTime};
use proptest::prelude::*;

const DELAY_S: f64 = 0.05;

/// One step of an operation script. `Pop(c)` drains up to `c`
/// deliveries before the next schedule, so scripts exercise the merge
/// mid-run (schedules relative to an advanced clock), not just a
/// schedule-everything-then-drain pattern.
#[derive(Clone, Debug)]
enum Op {
    Send { from: usize, to: usize },
    Timer { node: usize, delay_ms: u16 },
    TimerAt { node: usize, at_ms: u16 },
    Roundtrip { from: usize, to: usize },
    Pop(u8),
}

fn op(n: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n, 0..n).prop_map(|(from, to)| Op::Send { from, to }),
        (0..n, 1u16..2000).prop_map(|(node, delay_ms)| Op::Timer { node, delay_ms }),
        (0..n, 1u16..5000).prop_map(|(node, at_ms)| Op::TimerAt { node, at_ms }),
        (0..n, 0..n).prop_map(|(from, to)| Op::Roundtrip { from, to }),
        (1u8..6).prop_map(Op::Pop),
    ]
}

/// The full observable record of one delivery: exact time bits,
/// endpoints and payload.
type Event = (u64, usize, usize, u32);

/// Runs `script` against any net exposing the shared surface, logging
/// every delivery. `TimerAt` times in the past of the advancing clock
/// are clamped to `now` (both nets clamp identically, keeping the
/// script valid without constraining generation).
fn run_script(
    script: &[Op],
    now: impl Fn() -> SimTime,
    mut send: impl FnMut(usize, usize, u32),
    mut set_timer: impl FnMut(usize, SimTime, u32),
    mut set_timer_at: impl FnMut(usize, SimTime, u32),
    mut roundtrip: impl FnMut(usize, usize, u32) -> bool,
    mut pop: impl FnMut() -> Option<(SimTime, (usize, usize, u32))>,
) -> Vec<Event> {
    let mut log = Vec::new();
    for (i, step) in script.iter().enumerate() {
        let msg = i as u32;
        match *step {
            Op::Send { from, to } => send(from, to, msg),
            Op::Timer { node, delay_ms } => set_timer(node, f64::from(delay_ms) / 1000.0, msg),
            Op::TimerAt { node, at_ms } => {
                let at = (f64::from(at_ms) / 1000.0).max(now());
                set_timer_at(node, at, msg);
            }
            Op::Roundtrip { from, to } => {
                roundtrip(from, to, msg);
            }
            Op::Pop(count) => {
                for _ in 0..count {
                    match pop() {
                        Some((t, (from, to, m))) => log.push((t.to_bits(), from, to, m)),
                        None => break,
                    }
                }
            }
        }
    }
    while let Some((t, (from, to, m))) = pop() {
        log.push((t.to_bits(), from, to, m));
    }
    log
}

fn quiet() -> NetConfig {
    NetConfig {
        loss_probability: 0.0,
        delay_jitter_sigma: 0.0,
        default_one_way_delay_s: DELAY_S,
        ..NetConfig::default()
    }
}

fn run_single(n: usize, script: &[Op]) -> Vec<Event> {
    let mut net: SimNet<u32> = SimNet::uniform(n, DELAY_S, quiet());
    let net = std::cell::RefCell::new(&mut net);
    run_script(
        script,
        || net.borrow().now(),
        |from, to, m| net.borrow_mut().send(from, to, m),
        |node, d, m| net.borrow_mut().set_timer(node, d, m),
        |node, at, m| net.borrow_mut().set_timer_at(node, at, m),
        |from, to, m| net.borrow_mut().roundtrip(from, to, m),
        || {
            net.borrow_mut()
                .next_delivery()
                .map(|(t, d)| (t, (d.from, d.to, d.msg)))
        },
    )
}

fn run_sharded(n: usize, islands: usize, script: &[Op]) -> Vec<Event> {
    let mut net: ShardedSimNet<u32> = ShardedSimNet::uniform(n, islands, DELAY_S, quiet());
    let net = std::cell::RefCell::new(&mut net);
    run_script(
        script,
        || net.borrow().now(),
        |from, to, m| net.borrow_mut().send(from, to, m),
        |node, d, m| net.borrow_mut().set_timer(node, d, m),
        |node, at, m| net.borrow_mut().set_timer_at(node, at, m),
        |from, to, m| net.borrow_mut().roundtrip(from, to, m),
        || {
            net.borrow_mut()
                .next_delivery()
                .map(|(t, d)| (t, (d.from, d.to, d.msg)))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: for every script, every island count
    /// divides into the same bit-exact delivery stream — times, FIFO
    /// tie order, endpoints and payloads.
    #[test]
    fn merged_event_order_equals_single_queue_order(
        n in 2usize..13,
        script in proptest::collection::vec(op(13), 1..120),
    ) {
        // Node draws above `n` wrap into range so one generator serves
        // every population size.
        let script: Vec<Op> = script
            .into_iter()
            .map(|s| match s {
                Op::Send { from, to } => Op::Send { from: from % n, to: to % n },
                Op::Timer { node, delay_ms } => Op::Timer { node: node % n, delay_ms },
                Op::TimerAt { node, at_ms } => Op::TimerAt { node: node % n, at_ms },
                Op::Roundtrip { from, to } => Op::Roundtrip { from: from % n, to: to % n },
                pop => pop,
            })
            .collect();
        let want = run_single(n, &script);
        for islands in [1, 2, n.div_ceil(2), n] {
            let got = run_sharded(n, islands, &script);
            prop_assert_eq!(
                &got,
                &want,
                "{} islands diverged from the single queue (n={})",
                islands,
                n
            );
        }
    }
}

/// Deterministic smoke for the same property at a fixed, larger scale
/// (plus a stats cross-check the proptest skips).
#[test]
fn sharded_equals_single_on_dense_tie_heavy_script() {
    let n = 24;
    let mut script = Vec::new();
    for i in 0..n {
        script.push(Op::TimerAt {
            node: i,
            at_ms: 1000,
        }); // n-way time tie across every island
    }
    for i in 0..n {
        script.push(Op::Send {
            from: i,
            to: (i * 7 + 1) % n,
        });
        if i % 3 == 0 {
            script.push(Op::Pop(2));
        }
        script.push(Op::Roundtrip {
            from: (i * 5) % n,
            to: (i * 11 + 3) % n,
        });
    }
    let want = run_single(n, &script);
    for islands in [2, 3, 8, 24] {
        assert_eq!(run_sharded(n, islands, &script), want, "{islands} islands");
    }
    assert!(want.len() >= 2 * n, "script actually delivered traffic");
}
