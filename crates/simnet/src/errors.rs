//! Erroneous-label injection (paper §6.3) and its calibration
//! (Table 3).
//!
//! Four error models, exercised by Figure 6:
//!
//! * **Type 1 — flip near τ**: labels of paths whose quantity lies in
//!   `[τ − δ, τ + δ]` flip with probability ½ (inaccurate tools are
//!   unreliable exactly near the threshold).
//! * **Type 2 — underestimation bias** (ABW): paths with quantity in
//!   `(τ, τ + δ]` are labeled "bad" even though they are good, because
//!   measurement tools systematically under-report ABW.
//! * **Type 3 — flip randomly** (ABW): a random `p` fraction of paths
//!   get flipped labels (malicious target nodes can lie, since ABW is
//!   inferred at the target).
//! * **Type 4 — good-to-bad**: a random `p` fraction of *good* paths
//!   are labeled "bad" (anomalies, sudden traffic bursts).
//!
//! The paper reports error *levels* of 5/10/15 % of all labels and the
//! δ values that achieve them (its Table 3); [`calibrate_delta`]
//! computes those δ values from the ground-truth distribution, and
//! [`calibrate_good_to_bad_fraction`] maps an overall error level to
//! the fraction of good paths that must flip.

use dmf_datasets::{ClassMatrix, Dataset};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An erroneous-label model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ErrorModel {
    /// Type 1: flip labels of paths within `[τ−δ, τ+δ]` with prob. ½.
    FlipNearTau {
        /// Half-width of the unreliable band, in metric units.
        delta: f64,
    },
    /// Type 2: label paths within `(τ, τ+δ]` as bad (ABW
    /// underestimation; "good" side of the threshold only).
    UnderestimationBias {
        /// Width of the biased band above τ, in metric units.
        delta: f64,
    },
    /// Type 3: flip a random fraction of all labels.
    FlipRandom {
        /// Fraction of observed paths to flip (`0.05` = 5 %).
        fraction: f64,
    },
    /// Type 4: relabel a random fraction of *good* paths as bad.
    GoodToBad {
        /// Fraction of good paths to flip.
        fraction_of_good: f64,
    },
}

/// Distance of each observed quantity from τ on the "good" side,
/// used by Type 2: for RTT good means below τ, for ABW above.
fn good_side_gap(dataset: &Dataset, tau: f64, value: f64) -> f64 {
    if dataset.metric.lower_is_better() {
        tau - value
    } else {
        value - tau
    }
}

/// Applies an error model to a class matrix derived from `dataset` at
/// threshold `class.tau`. Returns the number of labels actually
/// changed.
pub fn inject(
    class: &mut ClassMatrix,
    dataset: &Dataset,
    model: ErrorModel,
    rng: &mut impl Rng,
) -> usize {
    assert_eq!(class.len(), dataset.len(), "class/dataset size mismatch");
    let tau = class.tau;
    let mut changed = 0;
    let known: Vec<(usize, usize)> = class.mask.iter_known().collect();
    match model {
        ErrorModel::FlipNearTau { delta } => {
            assert!(delta >= 0.0, "delta must be non-negative");
            for (i, j) in known {
                let Some(v) = dataset.value(i, j) else {
                    continue;
                };
                if (v - tau).abs() <= delta && rng.gen::<f64>() < 0.5 {
                    let old = class.labels[(i, j)];
                    class.set_label(i, j, -old);
                    changed += 1;
                }
            }
        }
        ErrorModel::UnderestimationBias { delta } => {
            assert!(delta >= 0.0, "delta must be non-negative");
            for (i, j) in known {
                let Some(v) = dataset.value(i, j) else {
                    continue;
                };
                let gap = good_side_gap(dataset, tau, v);
                if gap > 0.0 && gap <= delta && class.labels[(i, j)] > 0.0 {
                    class.set_label(i, j, -1.0);
                    changed += 1;
                }
            }
        }
        ErrorModel::FlipRandom { fraction } => {
            assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
            for (i, j) in known {
                if rng.gen::<f64>() < fraction {
                    let old = class.labels[(i, j)];
                    class.set_label(i, j, -old);
                    changed += 1;
                }
            }
        }
        ErrorModel::GoodToBad { fraction_of_good } => {
            assert!(
                (0.0..=1.0).contains(&fraction_of_good),
                "fraction out of range"
            );
            for (i, j) in known {
                if class.labels[(i, j)] > 0.0 && rng.gen::<f64>() < fraction_of_good {
                    class.set_label(i, j, -1.0);
                    changed += 1;
                }
            }
        }
    }
    changed
}

/// Which band-based error type to calibrate δ for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BandErrorKind {
    /// Type 1 (flip with prob ½ inside `[τ−δ, τ+δ]`).
    FlipNearTau,
    /// Type 2 (all good paths inside `(τ, τ+δ]` flipped).
    UnderestimationBias,
}

/// Finds the δ that produces an expected erroneous-label level of
/// `target_error` (fraction of all observed labels) — the computation
/// behind the paper's Table 3.
///
/// * Type 1 flips half the paths inside the band, so δ is chosen such
///   that the band contains `2 · target_error` of the paths.
/// * Type 2 flips every good path inside the band, so δ is chosen such
///   that the band (on the good side of τ) contains `target_error`.
pub fn calibrate_delta(dataset: &Dataset, tau: f64, target_error: f64, kind: BandErrorKind) -> f64 {
    assert!(
        (0.0..0.5).contains(&target_error),
        "target error must be in [0, 0.5), got {target_error}"
    );
    let observed = dataset.observed_values();
    assert!(!observed.is_empty(), "empty dataset");
    let n = observed.len() as f64;
    match kind {
        BandErrorKind::FlipNearTau => {
            let mut gaps: Vec<f64> = observed.iter().map(|&v| (v - tau).abs()).collect();
            gaps.sort_by(|a, b| a.partial_cmp(b).expect("NaN value"));
            let want = ((2.0 * target_error) * n).round() as usize;
            if want == 0 {
                return 0.0;
            }
            gaps[want.min(gaps.len()) - 1]
        }
        BandErrorKind::UnderestimationBias => {
            let mut gaps: Vec<f64> = observed
                .iter()
                .map(|&v| good_side_gap(dataset, tau, v))
                .filter(|&g| g > 0.0)
                .collect();
            gaps.sort_by(|a, b| a.partial_cmp(b).expect("NaN value"));
            let want = (target_error * n).round() as usize;
            if want == 0 {
                return 0.0;
            }
            assert!(
                want <= gaps.len(),
                "cannot reach {target_error} error level: only {} good paths of {} total",
                gaps.len(),
                n
            );
            gaps[want - 1]
        }
    }
}

/// Maps an overall target error level to the `fraction_of_good`
/// parameter of [`ErrorModel::GoodToBad`].
pub fn calibrate_good_to_bad_fraction(class: &ClassMatrix, target_error: f64) -> f64 {
    let good_fraction = class.good_fraction();
    assert!(good_fraction > 0.0, "no good paths to flip");
    (target_error / good_fraction).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::rtt::meridian_like;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn error_level(base: &ClassMatrix, noisy: &ClassMatrix) -> f64 {
        base.disagreement_count(noisy) as f64 / base.mask.count_known() as f64
    }

    #[test]
    fn flip_near_tau_hits_target_level() {
        let d = meridian_like(120, 1);
        let tau = d.median();
        let base = d.classify(tau);
        for &target in &[0.05, 0.10, 0.15] {
            let delta = calibrate_delta(&d, tau, target, BandErrorKind::FlipNearTau);
            let mut noisy = base.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            inject(&mut noisy, &d, ErrorModel::FlipNearTau { delta }, &mut rng);
            let level = error_level(&base, &noisy);
            assert!(
                (level - target).abs() < 0.02,
                "target {target}, achieved {level} (delta {delta})"
            );
        }
    }

    #[test]
    fn underestimation_bias_hits_target_level() {
        let d = hps3_like(120, 2);
        let tau = d.median();
        let base = d.classify(tau);
        for &target in &[0.05, 0.10, 0.15] {
            let delta = calibrate_delta(&d, tau, target, BandErrorKind::UnderestimationBias);
            let mut noisy = base.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(12);
            let changed = inject(
                &mut noisy,
                &d,
                ErrorModel::UnderestimationBias { delta },
                &mut rng,
            );
            let level = error_level(&base, &noisy);
            assert!(
                (level - target).abs() < 0.01,
                "target {target}, achieved {level} ({changed} changed)"
            );
        }
    }

    #[test]
    fn underestimation_only_flips_good_to_bad() {
        let d = hps3_like(80, 3);
        let tau = d.median();
        let base = d.classify(tau);
        let mut noisy = base.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        inject(
            &mut noisy,
            &d,
            ErrorModel::UnderestimationBias { delta: tau * 0.3 },
            &mut rng,
        );
        for (i, j) in base.mask.iter_known() {
            if base.labels[(i, j)] != noisy.labels[(i, j)] {
                assert_eq!(base.labels[(i, j)], 1.0);
                assert_eq!(noisy.labels[(i, j)], -1.0);
            }
        }
    }

    #[test]
    fn flip_random_hits_fraction() {
        let d = hps3_like(100, 4);
        let base = d.classify(d.median());
        let mut noisy = base.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        inject(
            &mut noisy,
            &d,
            ErrorModel::FlipRandom { fraction: 0.10 },
            &mut rng,
        );
        let level = error_level(&base, &noisy);
        assert!((level - 0.10).abs() < 0.02, "level {level}");
    }

    #[test]
    fn good_to_bad_calibration() {
        let d = meridian_like(100, 5);
        let base = d.classify(d.median());
        let frac = calibrate_good_to_bad_fraction(&base, 0.10);
        let mut noisy = base.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        inject(
            &mut noisy,
            &d,
            ErrorModel::GoodToBad {
                fraction_of_good: frac,
            },
            &mut rng,
        );
        let level = error_level(&base, &noisy);
        assert!((level - 0.10).abs() < 0.02, "level {level}");
        // Only good→bad flips.
        for (i, j) in base.mask.iter_known() {
            if base.labels[(i, j)] != noisy.labels[(i, j)] {
                assert_eq!(base.labels[(i, j)], 1.0);
            }
        }
    }

    #[test]
    fn delta_grows_with_target_error() {
        // Table 3's rows: higher error levels require wider bands.
        let d = meridian_like(100, 6);
        let tau = d.median();
        let d5 = calibrate_delta(&d, tau, 0.05, BandErrorKind::FlipNearTau);
        let d10 = calibrate_delta(&d, tau, 0.10, BandErrorKind::FlipNearTau);
        let d15 = calibrate_delta(&d, tau, 0.15, BandErrorKind::FlipNearTau);
        assert!(
            d5 < d10 && d10 < d15,
            "δ must be increasing: {d5} {d10} {d15}"
        );
    }

    #[test]
    fn zero_target_means_zero_delta() {
        let d = meridian_like(50, 7);
        let tau = d.median();
        assert_eq!(
            calibrate_delta(&d, tau, 0.0, BandErrorKind::FlipNearTau),
            0.0
        );
    }

    #[test]
    fn inject_reports_change_count() {
        let d = meridian_like(60, 8);
        let base = d.classify(d.median());
        let mut noisy = base.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let changed = inject(
            &mut noisy,
            &d,
            ErrorModel::FlipRandom { fraction: 0.2 },
            &mut rng,
        );
        assert_eq!(changed, base.disagreement_count(&noisy));
    }
}
