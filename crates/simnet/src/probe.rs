//! Measurement tools over a ground-truth dataset.
//!
//! The paper's measurement module (its Figure 2, left) produces either
//! raw quantities or, for ABW, *direct class measurements*: a pathload
//! probe sends a UDP train at rate `τ` and observes whether congestion
//! appears — a one-bit answer obtained much more cheaply than a full
//! ABW estimate. These probers reproduce the measured-value interface
//! and the characteristic error profile of each tool:
//!
//! * [`RttProber`] — ping: accurate, small multiplicative noise.
//! * [`PathloadProber`] — binary class at rate `τ`; unreliable exactly
//!   when the true ABW is close to `τ` (paper §3.2 / error Type 1).
//! * [`PathchirpProber`] — coarse quantity with a systematic
//!   *underestimation bias* (paper §6.3 / error Type 2, citing \[15\]).

use dmf_datasets::{Dataset, Metric};
use dmf_linalg::stats::log_normal_sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ping-style RTT prober returning a quantity in ms.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RttProber {
    /// Log-normal sigma of measurement noise (0 = exact).
    pub noise_sigma: f64,
}

impl Default for RttProber {
    fn default() -> Self {
        Self { noise_sigma: 0.03 }
    }
}

impl RttProber {
    /// Measures the RTT from `i` to `j`, or `None` when the pair is not
    /// covered by the ground truth (an unreachable host).
    pub fn measure(
        &self,
        dataset: &Dataset,
        i: usize,
        j: usize,
        rng: &mut (impl Rng + ?Sized),
    ) -> Option<f64> {
        assert_eq!(
            dataset.metric,
            Metric::Rtt,
            "RttProber needs an RTT dataset"
        );
        let base = dataset.value(i, j)?;
        let noise = if self.noise_sigma > 0.0 {
            log_normal_sample(rng, 0.0, self.noise_sigma)
        } else {
            1.0
        };
        Some(base * noise)
    }
}

/// Pathload-style binary prober: sends a train at `rate` and reports
/// whether the path sustained it.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PathloadProber {
    /// Width of the unreliable band around the probe rate, relative to
    /// the rate itself: within `rate · (1 ± band)` the verdict is a
    /// coin flip, modeling self-induced-congestion flakiness near τ.
    pub unreliable_band: f64,
}

impl Default for PathloadProber {
    fn default() -> Self {
        Self {
            unreliable_band: 0.05,
        }
    }
}

impl PathloadProber {
    /// Probes the class of path `i → j` at `rate` Mbps: `+1.0` when the
    /// path sustains the rate (ABW ≥ rate), `−1.0` otherwise.
    pub fn probe_class(
        &self,
        dataset: &Dataset,
        i: usize,
        j: usize,
        rate: f64,
        rng: &mut (impl Rng + ?Sized),
    ) -> Option<f64> {
        assert_eq!(
            dataset.metric,
            Metric::Abw,
            "PathloadProber needs an ABW dataset"
        );
        assert!(rate > 0.0, "probe rate must be positive");
        let abw = dataset.value(i, j)?;
        let band = rate * self.unreliable_band;
        if (abw - rate).abs() <= band {
            // Near the rate, self-induced congestion gives noisy
            // verdicts: effectively a coin flip.
            return Some(if rng.gen::<bool>() { 1.0 } else { -1.0 });
        }
        Some(if abw >= rate { 1.0 } else { -1.0 })
    }
}

/// Pathchirp-style coarse quantity prober with underestimation bias.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PathchirpProber {
    /// Mean relative underestimation (0.1 = reported values ~10 % low).
    pub underestimation_bias: f64,
    /// Log-normal sigma of measurement noise.
    pub noise_sigma: f64,
}

impl Default for PathchirpProber {
    fn default() -> Self {
        Self {
            underestimation_bias: 0.10,
            noise_sigma: 0.15,
        }
    }
}

impl PathchirpProber {
    /// Measures a (biased, noisy) ABW quantity for `i → j` in Mbps.
    pub fn measure(
        &self,
        dataset: &Dataset,
        i: usize,
        j: usize,
        rng: &mut (impl Rng + ?Sized),
    ) -> Option<f64> {
        assert_eq!(
            dataset.metric,
            Metric::Abw,
            "PathchirpProber needs an ABW dataset"
        );
        let base = dataset.value(i, j)?;
        let noise = log_normal_sample(rng, 0.0, self.noise_sigma);
        Some(base * (1.0 - self.underestimation_bias) * noise)
    }

    /// The cheap class measurement the paper proposes: threshold the
    /// coarse quantity by `tau`.
    pub fn probe_class(
        &self,
        dataset: &Dataset,
        i: usize,
        j: usize,
        tau: f64,
        rng: &mut (impl Rng + ?Sized),
    ) -> Option<f64> {
        let value = self.measure(dataset, i, j, rng)?;
        Some(Metric::Abw.classify(value, tau))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::rtt::meridian_like;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rtt_prober_tracks_ground_truth() {
        let d = meridian_like(30, 1);
        let prober = RttProber { noise_sigma: 0.0 };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(prober.measure(&d, 0, 1, &mut rng), Some(d.values[(0, 1)]));
        assert_eq!(prober.measure(&d, 2, 2, &mut rng), None);
    }

    #[test]
    fn rtt_prober_noise_is_unbiased_multiplicative() {
        let d = meridian_like(10, 2);
        let prober = RttProber { noise_sigma: 0.1 };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let truth = d.values[(0, 1)];
        let mean: f64 = (0..5000)
            .map(|_| prober.measure(&d, 0, 1, &mut rng).unwrap())
            .sum::<f64>()
            / 5000.0;
        // Log-normal with sigma 0.1 has mean exp(sigma²/2) ≈ 1.005.
        assert!(
            (mean / truth - 1.0).abs() < 0.03,
            "mean ratio {}",
            mean / truth
        );
    }

    #[test]
    fn pathload_far_from_rate_is_exact() {
        let d = hps3_like(40, 3);
        let prober = PathloadProber {
            unreliable_band: 0.05,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for (i, j) in d.mask.iter_known().take(200) {
            let abw = d.values[(i, j)];
            // Probe far below and far above the true ABW.
            let below = prober.probe_class(&d, i, j, abw * 0.5, &mut rng).unwrap();
            let above = prober.probe_class(&d, i, j, abw * 2.0, &mut rng).unwrap();
            assert_eq!(below, 1.0, "path must sustain half its ABW");
            assert_eq!(above, -1.0, "path cannot sustain double its ABW");
        }
    }

    #[test]
    fn pathload_near_rate_is_cointoss() {
        let d = hps3_like(40, 4);
        let prober = PathloadProber {
            unreliable_band: 0.05,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (i, j) = d.mask.iter_known().next().unwrap();
        let abw = d.values[(i, j)];
        let goods = (0..2000)
            .filter(|_| prober.probe_class(&d, i, j, abw, &mut rng).unwrap() > 0.0)
            .count();
        assert!(
            (goods as f64 / 2000.0 - 0.5).abs() < 0.05,
            "near-rate verdicts should be ~50/50, got {goods}/2000"
        );
    }

    #[test]
    fn pathchirp_underestimates() {
        let d = hps3_like(40, 5);
        let prober = PathchirpProber {
            underestimation_bias: 0.2,
            noise_sigma: 0.05,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (i, j) = d.mask.iter_known().next().unwrap();
        let truth = d.values[(i, j)];
        let mean: f64 = (0..3000)
            .map(|_| prober.measure(&d, i, j, &mut rng).unwrap())
            .sum::<f64>()
            / 3000.0;
        assert!(
            mean < truth * 0.9,
            "pathchirp mean {mean} should sit clearly below truth {truth}"
        );
    }

    #[test]
    fn pathchirp_class_uses_abw_orientation() {
        let d = hps3_like(40, 6);
        let prober = PathchirpProber {
            underestimation_bias: 0.0,
            noise_sigma: 1e-9,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (i, j) = d.mask.iter_known().next().unwrap();
        let truth = d.values[(i, j)];
        assert_eq!(
            prober.probe_class(&d, i, j, truth * 0.5, &mut rng),
            Some(1.0)
        );
        assert_eq!(
            prober.probe_class(&d, i, j, truth * 2.0, &mut rng),
            Some(-1.0)
        );
    }

    #[test]
    #[should_panic(expected = "needs an ABW dataset")]
    fn pathload_rejects_rtt_dataset() {
        let d = meridian_like(10, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        PathloadProber::default().probe_class(&d, 0, 1, 10.0, &mut rng);
    }
}
