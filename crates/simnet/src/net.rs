//! Message-passing network simulation.
//!
//! [`SimNet`] delivers opaque messages between nodes with one-way
//! delays derived from the RTT ground truth (half the pair RTT, plus
//! log-normal jitter) and optional random loss. Timers are modeled as
//! lossless self-deliveries. The structure mirrors how a real
//! deployment behaves — a probe is a message exchange taking real time,
//! a reply can be lost — so the DMFSGD node logic that runs on top of
//! it transfers unchanged to the UDP agents in `dmf-agent`.

use crate::event::{EventQueue, SimTime};
use dmf_datasets::Dataset;
use dmf_linalg::stats::log_normal_sample;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Network behaviour knobs (fault injection included).
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Probability that any network message is silently dropped.
    /// Timers never drop.
    pub loss_probability: f64,
    /// Log-normal sigma of per-message delay jitter.
    pub delay_jitter_sigma: f64,
    /// Fallback one-way delay (seconds) for pairs without ground-truth
    /// RTT (e.g. unmeasured pairs in sparse datasets).
    pub default_one_way_delay_s: f64,
    /// RNG seed for delays and losses.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            loss_probability: 0.0,
            delay_jitter_sigma: 0.05,
            default_one_way_delay_s: 0.05,
            seed: 0,
        }
    }
}

/// A message being delivered to a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Sender node id (`from == to` for timers).
    pub from: usize,
    /// Destination node id.
    pub to: usize,
    /// Payload.
    pub msg: M,
}

/// Counters describing what the network did (used by tests and the
/// harness to report fault-injection levels actually achieved).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to `send` (excluding timers).
    pub sent: usize,
    /// Messages delivered (excluding timers).
    pub delivered: usize,
    /// Messages dropped by loss injection.
    pub dropped: usize,
    /// Timers fired.
    pub timers: usize,
}

/// The simulated network: an event queue plus a latency/loss model.
pub struct SimNet<M> {
    queue: EventQueue<Delivery<M>>,
    /// One-way delays in seconds, `n × n`, derived from the dataset.
    one_way_delay: Vec<f64>,
    n: usize,
    config: NetConfig,
    rng: ChaCha8Rng,
    stats: NetStats,
    in_flight_non_timer: usize,
}

impl<M> SimNet<M> {
    /// Builds a network over `n` nodes whose one-way delays come from
    /// an RTT dataset in **milliseconds** (delay = RTT/2, converted to
    /// seconds). Pairs the dataset does not cover use the configured
    /// default delay.
    pub fn from_rtt_dataset(dataset: &Dataset, config: NetConfig) -> Self {
        let n = dataset.len();
        let mut one_way_delay = vec![config.default_one_way_delay_s; n * n];
        for (i, j) in dataset.mask.iter_known() {
            one_way_delay[i * n + j] = dataset.values[(i, j)] / 2.0 / 1000.0;
        }
        Self::with_delays(n, one_way_delay, config)
    }

    /// Builds a network with a uniform one-way delay (useful for unit
    /// tests of protocol logic).
    pub fn uniform(n: usize, one_way_delay_s: f64, config: NetConfig) -> Self {
        Self::with_delays(n, vec![one_way_delay_s; n * n], config)
    }

    fn with_delays(n: usize, one_way_delay: Vec<f64>, config: NetConfig) -> Self {
        assert_eq!(one_way_delay.len(), n * n, "delay table shape mismatch");
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        Self {
            queue: EventQueue::new(),
            one_way_delay,
            n,
            config,
            rng,
            stats: NetStats::default(),
            in_flight_non_timer: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Sends `msg` from `from` to `to`. The message is subject to loss
    /// and delay jitter.
    pub fn send(&mut self, from: usize, to: usize, msg: M) {
        assert!(from < self.n && to < self.n, "node id out of range");
        self.stats.sent += 1;
        if self.rng.gen::<f64>() < self.config.loss_probability {
            self.stats.dropped += 1;
            return;
        }
        let base = self.one_way_delay[from * self.n + to];
        let jitter = if self.config.delay_jitter_sigma > 0.0 {
            log_normal_sample(&mut self.rng, 0.0, self.config.delay_jitter_sigma)
        } else {
            1.0
        };
        self.in_flight_non_timer += 1;
        self.queue
            .schedule_after(base * jitter, Delivery { from, to, msg });
    }

    /// Schedules a lossless timer for `node` after `delay` seconds.
    pub fn set_timer(&mut self, node: usize, delay: SimTime, msg: M) {
        assert!(node < self.n, "node id out of range");
        self.queue.schedule_after(
            delay,
            Delivery {
                from: node,
                to: node,
                msg,
            },
        );
    }

    /// Delivers the next message (advancing simulated time).
    pub fn next_delivery(&mut self) -> Option<(SimTime, Delivery<M>)> {
        let (t, d) = self.queue.pop()?;
        if d.from == d.to {
            self.stats.timers += 1;
        } else {
            self.stats.delivered += 1;
            self.in_flight_non_timer -= 1;
        }
        Some((t, d))
    }

    /// Number of queued deliveries (timers included).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of queued *network* messages (timers excluded).
    pub fn pending_messages(&self) -> usize {
        self.in_flight_non_timer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::rtt::meridian_like;

    #[test]
    fn message_arrives_after_half_rtt() {
        let d = meridian_like(10, 1);
        let mut net: SimNet<&str> = SimNet::from_rtt_dataset(
            &d,
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        );
        net.send(0, 1, "probe");
        let (t, delivery) = net.next_delivery().unwrap();
        assert_eq!(
            delivery,
            Delivery {
                from: 0,
                to: 1,
                msg: "probe"
            }
        );
        let expected = d.values[(0, 1)] / 2.0 / 1000.0;
        assert!((t - expected).abs() < 1e-12, "t={t}, expected {expected}");
    }

    #[test]
    fn round_trip_takes_full_rtt() {
        let d = meridian_like(10, 2);
        let mut net: SimNet<u8> = SimNet::from_rtt_dataset(
            &d,
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        );
        net.send(3, 7, 1);
        let (_, probe) = net.next_delivery().unwrap();
        net.send(probe.to, probe.from, 2);
        let (t, reply) = net.next_delivery().unwrap();
        assert_eq!(reply.to, 3);
        let expected_rtt_s = d.values[(3, 7)] / 1000.0;
        assert!((t - expected_rtt_s).abs() < 1e-9);
    }

    #[test]
    fn loss_injection_drops_messages() {
        let mut net: SimNet<u32> = SimNet::uniform(
            4,
            0.01,
            NetConfig {
                loss_probability: 0.5,
                seed: 3,
                ..NetConfig::default()
            },
        );
        for i in 0..1000 {
            net.send(0, 1, i);
        }
        let stats = net.stats();
        assert_eq!(stats.sent, 1000);
        assert!(
            stats.dropped > 350 && stats.dropped < 650,
            "dropped {}",
            stats.dropped
        );
        assert_eq!(net.pending_messages() + stats.dropped, 1000);
    }

    #[test]
    fn timers_never_drop() {
        let mut net: SimNet<u32> = SimNet::uniform(
            2,
            0.01,
            NetConfig {
                loss_probability: 1.0,
                seed: 4,
                ..NetConfig::default()
            },
        );
        for i in 0..50 {
            net.set_timer(1, 0.1 + i as f64, i);
        }
        let mut fired = 0;
        while let Some((_, d)) = net.next_delivery() {
            assert_eq!(d.from, d.to);
            fired += 1;
        }
        assert_eq!(fired, 50);
        assert_eq!(net.stats().timers, 50);
    }

    #[test]
    fn deliveries_are_time_ordered() {
        let d = meridian_like(20, 5);
        let mut net: SimNet<usize> = SimNet::from_rtt_dataset(&d, NetConfig::default());
        for i in 0..19 {
            net.send(i, i + 1, i);
        }
        let mut last = 0.0;
        while let Some((t, _)) = net.next_delivery() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_validates_node_ids() {
        let mut net: SimNet<()> = SimNet::uniform(2, 0.01, NetConfig::default());
        net.send(0, 5, ());
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let mut net: SimNet<u32> = SimNet::uniform(
                3,
                0.02,
                NetConfig {
                    seed,
                    loss_probability: 0.2,
                    ..NetConfig::default()
                },
            );
            for i in 0..100 {
                net.send((i % 3) as usize, ((i + 1) % 3) as usize, i);
            }
            let mut log = Vec::new();
            while let Some((t, d)) = net.next_delivery() {
                log.push((t.to_bits(), d.msg));
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
