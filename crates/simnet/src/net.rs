//! Message-passing network simulation.
//!
//! [`SimNet`] delivers opaque messages between nodes with one-way
//! delays derived from the RTT ground truth (half the pair RTT, plus
//! log-normal jitter) and optional random loss. Timers are modeled as
//! lossless self-deliveries. The structure mirrors how a real
//! deployment behaves — a probe is a message exchange taking real time,
//! a reply can be lost — so the DMFSGD node logic that runs on top of
//! it transfers unchanged to the UDP agents in `dmf-agent`.

use crate::event::{EventQueue, Lane, SimTime};
use dmf_datasets::Dataset;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Network behaviour knobs (fault injection included).
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Probability that any network message is silently dropped.
    /// Timers never drop.
    pub loss_probability: f64,
    /// Log-normal sigma of per-message delay jitter.
    pub delay_jitter_sigma: f64,
    /// Fallback one-way delay (seconds) for pairs without ground-truth
    /// RTT (e.g. unmeasured pairs in sparse datasets).
    pub default_one_way_delay_s: f64,
    /// RNG seed for delays and losses.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            loss_probability: 0.0,
            delay_jitter_sigma: 0.05,
            default_one_way_delay_s: 0.05,
            seed: 0,
        }
    }
}

/// A message being delivered to a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Sender node id (`from == to` for timers).
    pub from: usize,
    /// Destination node id.
    pub to: usize,
    /// Payload.
    pub msg: M,
}

/// Counters describing what the network did (used by tests and the
/// harness to report fault-injection levels actually achieved).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to `send` (excluding timers).
    pub sent: usize,
    /// Messages delivered (excluding timers).
    pub delivered: usize,
    /// Messages dropped by loss injection.
    pub dropped: usize,
    /// Timers fired.
    pub timers: usize,
}

/// Per-message multiplicative delay jitter: `exp(σ·Z)`, `Z ~ N(0,1)`.
///
/// Box–Muller yields *two* independent normals per pair of uniforms
/// (the cosine and sine projections); the historical sampler computed
/// the cosine one and threw the sine away, paying `ln`/`sqrt`/`cos`
/// on every message. Banking the companion halves the transcendental
/// cost of the single hottest sampler in a simulated run while
/// drawing from exactly the same distribution.
struct JitterSampler {
    sigma: f64,
    banked: Option<f64>,
}

impl JitterSampler {
    fn new(sigma: f64) -> Self {
        Self {
            sigma,
            banked: None,
        }
    }

    #[inline]
    fn sample(&mut self, rng: &mut ChaCha8Rng) -> f64 {
        let z = match self.banked.take() {
            Some(z) => z,
            None => {
                // Box–Muller; u1 in (0, 1] avoids ln(0).
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                let r = (-2.0 * u1.ln()).sqrt();
                let (sin, cos) = (2.0 * std::f64::consts::PI * u2).sin_cos();
                self.banked = Some(r * sin);
                r * cos
            }
        };
        (self.sigma * z).exp()
    }
}

/// The simulated network: an event queue plus a latency/loss model.
pub struct SimNet<M> {
    queue: EventQueue<Delivery<M>>,
    /// One-way delays in seconds, `n × n`, derived from the dataset.
    /// Stored as `f32`: delays are physical quantities good to well
    /// under a relative 1e-7, and halving the table keeps the whole
    /// simulation working set L2-resident at population scale — the
    /// two random-indexed delay lookups per probe cycle are the
    /// hottest memory accesses in a run.
    one_way_delay: Vec<f32>,
    n: usize,
    config: NetConfig,
    rng: ChaCha8Rng,
    jitter: JitterSampler,
    stats: NetStats,
    in_flight_non_timer: usize,
}

impl<M> SimNet<M> {
    /// Builds a network over `n` nodes whose one-way delays come from
    /// an RTT dataset in **milliseconds** (delay = RTT/2, converted to
    /// seconds). Pairs the dataset does not cover use the configured
    /// default delay.
    pub fn from_rtt_dataset(dataset: &Dataset, config: NetConfig) -> Self {
        let n = dataset.len();
        let mut one_way_delay = vec![config.default_one_way_delay_s as f32; n * n];
        for (i, j) in dataset.mask.iter_known() {
            one_way_delay[i * n + j] = (dataset.values[(i, j)] / 2.0 / 1000.0) as f32;
        }
        Self::with_delays(n, one_way_delay, config)
    }

    /// Builds a network with a uniform one-way delay (useful for unit
    /// tests of protocol logic).
    pub fn uniform(n: usize, one_way_delay_s: f64, config: NetConfig) -> Self {
        Self::with_delays(n, vec![one_way_delay_s as f32; n * n], config)
    }

    fn with_delays(n: usize, one_way_delay: Vec<f32>, config: NetConfig) -> Self {
        assert_eq!(one_way_delay.len(), n * n, "delay table shape mismatch");
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        Self {
            // Steady state holds ~1 timer per node plus the in-flight
            // messages; reserving up front keeps the hot loop
            // allocation-free from the first delivery.
            queue: EventQueue::with_capacity(4 * n + 16),
            one_way_delay,
            n,
            jitter: JitterSampler::new(config.delay_jitter_sigma),
            config,
            rng,
            stats: NetStats::default(),
            in_flight_non_timer: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Sends `msg` from `from` to `to`. The message is subject to loss
    /// and delay jitter.
    pub fn send(&mut self, from: usize, to: usize, msg: M) {
        assert!(from < self.n && to < self.n, "node id out of range");
        self.stats.sent += 1;
        // Loss-free networks skip the loss draw entirely.
        if self.config.loss_probability > 0.0
            && self.rng.gen::<f64>() < self.config.loss_probability
        {
            self.stats.dropped += 1;
            return;
        }
        let base = f64::from(self.one_way_delay[from * self.n + to]);
        let jitter = if self.config.delay_jitter_sigma > 0.0 {
            self.jitter.sample(&mut self.rng)
        } else {
            1.0
        };
        self.in_flight_non_timer += 1;
        self.queue
            .schedule_after(base * jitter, Delivery { from, to, msg });
    }

    /// Schedules a lossless timer for `node` after `delay` seconds.
    ///
    /// Timers ride the far queue lane: they are periodic with
    /// ~second horizons while message deliveries land within
    /// milliseconds, and separating the populations keeps delivery
    /// pops out of the (much larger) timer heap.
    pub fn set_timer(&mut self, node: usize, delay: SimTime, msg: M) {
        assert!(delay >= 0.0, "negative timer delay {delay}");
        self.set_timer_at(node, self.now() + delay, msg);
    }

    /// Schedules a lossless timer for `node` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when `at` lies in the simulated past.
    pub fn set_timer_at(&mut self, node: usize, at: SimTime, msg: M) {
        assert!(node < self.n, "node id out of range");
        self.queue.schedule_at_on(
            Lane::Far,
            at,
            Delivery {
                from: node,
                to: node,
                msg,
            },
        );
    }

    /// Schedules a full probe→reply round trip as **one** delivery:
    /// `msg` arrives back at `from` after
    /// `delay(from→to)·jitter + delay(to→from)·jitter`, with loss
    /// applied independently to each leg (either loss silently drops
    /// the whole exchange, exactly as losing that message would).
    /// Returns whether the exchange survived (false = a leg was lost).
    ///
    /// This is the event-collapsed fast path for request/response
    /// exchanges whose request leg has no observable effect at the
    /// responder: it halves the event count and keeps coordinate
    /// payloads out of the queue entirely. Use [`send`](Self::send)
    /// when the intermediate delivery matters.
    pub fn roundtrip(&mut self, from: usize, to: usize, msg: M) -> bool {
        self.roundtrip_at(from, to, self.now(), msg)
    }

    /// [`roundtrip`](Self::roundtrip) departing at the (current or
    /// future) absolute time `at`: the completion delivers at
    /// `at + rtt`. Lets a driver chain periodic exchanges without a
    /// separate timer event per period.
    ///
    /// # Panics
    /// Panics when `at` lies in the simulated past.
    pub fn roundtrip_at(&mut self, from: usize, to: usize, at: SimTime, msg: M) -> bool {
        assert!(from < self.n && to < self.n, "node id out of range");
        assert!(at >= self.now(), "roundtrip departing in the past");
        self.stats.sent += 2;
        if self.config.loss_probability > 0.0 {
            let lost_fwd = self.rng.gen::<f64>() < self.config.loss_probability;
            let lost_back = self.rng.gen::<f64>() < self.config.loss_probability;
            if lost_fwd || lost_back {
                self.stats.dropped += usize::from(lost_fwd) + usize::from(lost_back);
                return false;
            }
        }
        let fwd = f64::from(self.one_way_delay[from * self.n + to]);
        let back = f64::from(self.one_way_delay[to * self.n + from]);
        let rtt = if self.config.delay_jitter_sigma > 0.0 {
            let j1 = self.jitter.sample(&mut self.rng);
            let j2 = self.jitter.sample(&mut self.rng);
            fwd * j1 + back * j2
        } else {
            fwd + back
        };
        self.in_flight_non_timer += 1;
        self.queue.schedule_at_on(
            Lane::Far,
            at + rtt,
            Delivery {
                from: to,
                to: from,
                msg,
            },
        );
        true
    }

    /// Delivers the next message (advancing simulated time).
    pub fn next_delivery(&mut self) -> Option<(SimTime, Delivery<M>)> {
        let (t, d) = self.queue.pop()?;
        self.account_delivery(&d);
        Some((t, d))
    }

    /// Delivers the next message only if it is due at or before
    /// `deadline`; later messages stay queued and the clock stays put.
    pub fn next_delivery_before(&mut self, deadline: SimTime) -> Option<(SimTime, Delivery<M>)> {
        let (t, d) = self.queue.pop_before(deadline)?;
        self.account_delivery(&d);
        Some((t, d))
    }

    #[inline]
    fn account_delivery(&mut self, d: &Delivery<M>) {
        if d.from == d.to {
            self.stats.timers += 1;
        } else {
            self.stats.delivered += 1;
            self.in_flight_non_timer -= 1;
        }
    }

    /// Timestamp of the next delivery without consuming it (`None`
    /// when the queue is empty). Lets run loops stop *before* an event
    /// past their deadline instead of delivering it first.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of queued deliveries (timers included).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of queued *network* messages (timers excluded).
    pub fn pending_messages(&self) -> usize {
        self.in_flight_non_timer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::rtt::meridian_like;

    #[test]
    fn message_arrives_after_half_rtt() {
        let d = meridian_like(10, 1);
        let mut net: SimNet<&str> = SimNet::from_rtt_dataset(
            &d,
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        );
        net.send(0, 1, "probe");
        let (t, delivery) = net.next_delivery().unwrap();
        assert_eq!(
            delivery,
            Delivery {
                from: 0,
                to: 1,
                msg: "probe"
            }
        );
        let expected = d.values[(0, 1)] / 2.0 / 1000.0;
        // Delays are stored as f32: exact to a relative ~6e-8.
        assert!(
            (t - expected).abs() < expected * 1e-6,
            "t={t}, expected {expected}"
        );
    }

    #[test]
    fn round_trip_takes_full_rtt() {
        let d = meridian_like(10, 2);
        let mut net: SimNet<u8> = SimNet::from_rtt_dataset(
            &d,
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        );
        net.send(3, 7, 1);
        let (_, probe) = net.next_delivery().unwrap();
        net.send(probe.to, probe.from, 2);
        let (t, reply) = net.next_delivery().unwrap();
        assert_eq!(reply.to, 3);
        let expected_rtt_s = d.values[(3, 7)] / 1000.0;
        assert!((t - expected_rtt_s).abs() < expected_rtt_s * 1e-6);
    }

    #[test]
    fn loss_injection_drops_messages() {
        let mut net: SimNet<u32> = SimNet::uniform(
            4,
            0.01,
            NetConfig {
                loss_probability: 0.5,
                seed: 3,
                ..NetConfig::default()
            },
        );
        for i in 0..1000 {
            net.send(0, 1, i);
        }
        let stats = net.stats();
        assert_eq!(stats.sent, 1000);
        assert!(
            stats.dropped > 350 && stats.dropped < 650,
            "dropped {}",
            stats.dropped
        );
        assert_eq!(net.pending_messages() + stats.dropped, 1000);
    }

    #[test]
    fn timers_never_drop() {
        let mut net: SimNet<u32> = SimNet::uniform(
            2,
            0.01,
            NetConfig {
                loss_probability: 1.0,
                seed: 4,
                ..NetConfig::default()
            },
        );
        for i in 0..50 {
            net.set_timer(1, 0.1 + i as f64, i);
        }
        let mut fired = 0;
        while let Some((_, d)) = net.next_delivery() {
            assert_eq!(d.from, d.to);
            fired += 1;
        }
        assert_eq!(fired, 50);
        assert_eq!(net.stats().timers, 50);
    }

    #[test]
    fn deliveries_are_time_ordered() {
        let d = meridian_like(20, 5);
        let mut net: SimNet<usize> = SimNet::from_rtt_dataset(&d, NetConfig::default());
        for i in 0..19 {
            net.send(i, i + 1, i);
        }
        let mut last = 0.0;
        while let Some((t, _)) = net.next_delivery() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_validates_node_ids() {
        let mut net: SimNet<()> = SimNet::uniform(2, 0.01, NetConfig::default());
        net.send(0, 5, ());
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let mut net: SimNet<u32> = SimNet::uniform(
                3,
                0.02,
                NetConfig {
                    seed,
                    loss_probability: 0.2,
                    ..NetConfig::default()
                },
            );
            for i in 0..100 {
                net.send((i % 3) as usize, ((i + 1) % 3) as usize, i);
            }
            let mut log = Vec::new();
            while let Some((t, d)) = net.next_delivery() {
                log.push((t.to_bits(), d.msg));
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
