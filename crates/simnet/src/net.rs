//! Message-passing network simulation.
//!
//! [`SimNet`] delivers opaque messages between nodes with one-way
//! delays derived from the RTT ground truth (half the pair RTT, plus
//! log-normal jitter) and optional random loss. Timers are modeled as
//! lossless self-deliveries. The structure mirrors how a real
//! deployment behaves — a probe is a message exchange taking real time,
//! a reply can be lost — so the DMFSGD node logic that runs on top of
//! it transfers unchanged to the UDP agents in `dmf-agent`.

use crate::event::{EventQueue, Lane, SimTime};
use dmf_datasets::Dataset;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Network behaviour knobs (fault injection included).
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Probability that any network message is silently dropped.
    /// Timers never drop.
    pub loss_probability: f64,
    /// Log-normal sigma of per-message delay jitter.
    pub delay_jitter_sigma: f64,
    /// Fallback one-way delay (seconds) for pairs without ground-truth
    /// RTT (e.g. unmeasured pairs in sparse datasets).
    pub default_one_way_delay_s: f64,
    /// RNG seed for delays and losses.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            loss_probability: 0.0,
            delay_jitter_sigma: 0.05,
            default_one_way_delay_s: 0.05,
            seed: 0,
        }
    }
}

/// A message being delivered to a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Sender node id (`from == to` for timers).
    pub from: usize,
    /// Destination node id.
    pub to: usize,
    /// Payload.
    pub msg: M,
}

/// Counters describing what the network did (used by tests and the
/// harness to report fault-injection levels actually achieved).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to `send` (excluding timers).
    pub sent: usize,
    /// Messages delivered (excluding timers).
    pub delivered: usize,
    /// Messages dropped by loss injection.
    pub dropped: usize,
    /// Timers fired.
    pub timers: usize,
}

/// Per-message multiplicative delay jitter: `exp(σ·Z)`, `Z ~ N(0,1)`.
///
/// Box–Muller yields *two* independent normals per pair of uniforms
/// (the cosine and sine projections); the historical sampler computed
/// the cosine one and threw the sine away, paying `ln`/`sqrt`/`cos`
/// on every message. Banking the companion halves the transcendental
/// cost of the single hottest sampler in a simulated run while
/// drawing from exactly the same distribution.
struct JitterSampler {
    sigma: f64,
    banked: Option<f64>,
}

impl JitterSampler {
    fn new(sigma: f64) -> Self {
        Self {
            sigma,
            banked: None,
        }
    }

    #[inline]
    fn sample(&mut self, rng: &mut ChaCha8Rng) -> f64 {
        let z = match self.banked.take() {
            Some(z) => z,
            None => {
                // Box–Muller; u1 in (0, 1] avoids ln(0).
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                let r = (-2.0 * u1.ln()).sqrt();
                let (sin, cos) = (2.0 * std::f64::consts::PI * u2).sin_cos();
                self.banked = Some(r * sin);
                r * cos
            }
        };
        (self.sigma * z).exp()
    }
}

/// The simulated network: an event queue plus a latency/loss model,
/// with mid-run impairment hooks (loss level, partitions, stragglers,
/// delay re-embedding) for non-stationary scenarios.
pub struct SimNet<M> {
    queue: EventQueue<Delivery<M>>,
    /// One-way delays in seconds, `n × n`, derived from the dataset.
    /// Stored as `f32`: delays are physical quantities good to well
    /// under a relative 1e-7, and halving the table keeps the whole
    /// simulation working set L2-resident at population scale — the
    /// two random-indexed delay lookups per probe cycle are the
    /// hottest memory accesses in a run.
    one_way_delay: Vec<f32>,
    n: usize,
    config: NetConfig,
    rng: ChaCha8Rng,
    jitter: JitterSampler,
    stats: NetStats,
    in_flight_non_timer: usize,
    /// Partition classes: a message passes only between nodes of
    /// equal class, so each bit models one independent island's cut.
    /// Empty = no partition (the hot-path fast case).
    partition_class: Vec<u32>,
    /// Per-node delay multiplier (stragglers); empty = all ones.
    delay_factor: Vec<f32>,
}

impl<M> SimNet<M> {
    /// Builds a network over `n` nodes whose one-way delays come from
    /// an RTT dataset in **milliseconds** (delay = RTT/2, converted to
    /// seconds). Pairs the dataset does not cover use the configured
    /// default delay.
    pub fn from_rtt_dataset(dataset: &Dataset, config: NetConfig) -> Self {
        let n = dataset.len();
        let table = vec![config.default_one_way_delay_s as f32; n * n];
        let mut net = Self::with_delays(n, table, config);
        // One conversion path: construction IS a delay re-embedding
        // onto a default-filled table, so the two can never drift.
        net.set_one_way_delays_from_rtt(dataset);
        net
    }

    /// Builds a network with a uniform one-way delay (useful for unit
    /// tests of protocol logic).
    pub fn uniform(n: usize, one_way_delay_s: f64, config: NetConfig) -> Self {
        Self::with_delays(n, vec![one_way_delay_s as f32; n * n], config)
    }

    /// Builds a network whose one-way delays come from `delay_s(i, j)`
    /// (seconds), evaluated in row-major order. This is the
    /// dataset-free constructor: synthetic topologies (the 10k/100k
    /// scale workloads) embed a delay model directly instead of
    /// materializing an `n × n` ground-truth matrix first.
    pub fn from_delay_fn(
        n: usize,
        config: NetConfig,
        mut delay_s: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut table = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                table.push(delay_s(i, j) as f32);
            }
        }
        Self::with_delays(n, table, config)
    }

    fn with_delays(n: usize, one_way_delay: Vec<f32>, config: NetConfig) -> Self {
        assert_eq!(one_way_delay.len(), n * n, "delay table shape mismatch");
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        Self {
            // Steady state holds ~1 timer per node plus the in-flight
            // messages; reserving up front keeps the hot loop
            // allocation-free from the first delivery.
            queue: EventQueue::with_capacity(4 * n + 16),
            one_way_delay,
            n,
            jitter: JitterSampler::new(config.delay_jitter_sigma),
            config,
            rng,
            stats: NetStats::default(),
            in_flight_non_timer: 0,
            partition_class: Vec::new(),
            delay_factor: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    // ---- impairment hooks (non-stationary scenarios) ----------------

    /// Replaces the message-loss probability mid-run (scenario loss
    /// epochs). Timers are still never lost.
    ///
    /// # Panics
    /// Panics when `p` is not a probability.
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} out of [0, 1]"
        );
        self.config.loss_probability = p;
    }

    /// The message-loss probability currently in force.
    pub fn loss_probability(&self) -> f64 {
        self.config.loss_probability
    }

    /// Partitions the network into one island: `island` nodes can no
    /// longer exchange messages with the rest (island-internal and
    /// mainland-internal traffic still flows; cut messages count as
    /// dropped). Replaces any previous partition. Timers keep firing
    /// on both sides. For several concurrent islands use
    /// [`set_partition_classes`](Self::set_partition_classes).
    ///
    /// # Panics
    /// Panics on an out-of-range node id, or when the island holds the
    /// whole population (the cut would be empty, silently inverting
    /// the caller's intent).
    pub fn set_partition(&mut self, island: &[usize]) {
        if island.is_empty() {
            self.partition_class.clear();
            return;
        }
        let mut classes = vec![0u32; self.n];
        for &i in island {
            assert!(i < self.n, "node id out of range");
            classes[i] = 1;
        }
        assert!(
            classes.contains(&0),
            "partition island must be a strict subset of the population"
        );
        self.partition_class = classes;
    }

    /// Partitions the network into arbitrary connectivity classes: a
    /// message passes only between nodes of equal class, so several
    /// islands can be cut from the mainland *and from each other* at
    /// once (encode each island as its own bit, as
    /// `dmf_datasets::scenario::Impairments::partition_classes` does).
    /// An empty slice (or all-equal classes) means fully connected.
    /// Replaces any previous partition.
    ///
    /// # Panics
    /// Panics when `classes` is non-empty and not one entry per node.
    pub fn set_partition_classes(&mut self, classes: &[u32]) {
        if classes.is_empty() {
            self.partition_class.clear();
            return;
        }
        assert_eq!(
            classes.len(),
            self.n,
            "partition class vector shape mismatch"
        );
        self.partition_class.clear();
        self.partition_class.extend_from_slice(classes);
    }

    /// Heals any partition.
    pub fn clear_partition(&mut self) {
        self.partition_class.clear();
    }

    /// True when a message between `from` and `to` would cross an
    /// active partition cut.
    pub fn is_cut(&self, from: usize, to: usize) -> bool {
        !self.partition_class.is_empty() && self.partition_class[from] != self.partition_class[to]
    }

    /// Multiplies every message leg touching `node` by `factor`
    /// (straggler injection: the host is slow, not the path — ground
    /// truth is unaffected). Factors from both endpoints compose
    /// multiplicatively; `1.0` restores the node.
    ///
    /// # Panics
    /// Panics on an out-of-range id or a non-positive factor.
    pub fn set_delay_factor(&mut self, node: usize, factor: f64) {
        assert!(node < self.n, "node id out of range");
        assert!(
            factor.is_finite() && factor > 0.0,
            "delay factor must be positive (got {factor})"
        );
        if self.delay_factor.is_empty() {
            if factor == 1.0 {
                return;
            }
            self.delay_factor = vec![1.0; self.n];
        }
        self.delay_factor[node] = factor as f32;
    }

    /// Rebuilds the one-way delay table from a new RTT ground truth in
    /// **milliseconds** (delay = RTT/2). This is the single conversion
    /// path — [`from_rtt_dataset`](Self::from_rtt_dataset) constructs
    /// through it — so re-embedding behaves exactly like construction:
    /// pairs the dataset's mask does not cover reset to the configured
    /// default delay, never to the previous truth's stale value. Messages
    /// already in flight keep their old delay; everything sent
    /// afterwards sees the new network. This is the re-embedding hook
    /// drift and congestion scenarios use.
    ///
    /// # Panics
    /// Panics when the dataset covers a different node count.
    pub fn set_one_way_delays_from_rtt(&mut self, dataset: &Dataset) {
        assert_eq!(dataset.len(), self.n, "delay table shape mismatch");
        self.one_way_delay
            .fill(self.config.default_one_way_delay_s as f32);
        for (i, j) in dataset.mask.iter_known() {
            self.one_way_delay[i * self.n + j] = (dataset.values[(i, j)] / 2.0 / 1000.0) as f32;
        }
    }

    /// The combined straggler factor on the leg `from → to`.
    #[inline]
    fn leg_factor(&self, from: usize, to: usize) -> f64 {
        if self.delay_factor.is_empty() {
            1.0
        } else {
            f64::from(self.delay_factor[from]) * f64::from(self.delay_factor[to])
        }
    }

    /// Sends `msg` from `from` to `to`. The message is subject to
    /// loss, partitions and delay jitter.
    pub fn send(&mut self, from: usize, to: usize, msg: M) {
        assert!(from < self.n && to < self.n, "node id out of range");
        self.stats.sent += 1;
        if self.is_cut(from, to) {
            self.stats.dropped += 1;
            return;
        }
        // Loss-free networks skip the loss draw entirely.
        if self.config.loss_probability > 0.0
            && self.rng.gen::<f64>() < self.config.loss_probability
        {
            self.stats.dropped += 1;
            return;
        }
        let base = f64::from(self.one_way_delay[from * self.n + to]) * self.leg_factor(from, to);
        let jitter = if self.config.delay_jitter_sigma > 0.0 {
            self.jitter.sample(&mut self.rng)
        } else {
            1.0
        };
        self.in_flight_non_timer += 1;
        self.queue
            .schedule_after(base * jitter, Delivery { from, to, msg });
    }

    /// Schedules a lossless timer for `node` after `delay` seconds.
    ///
    /// Timers ride the far queue lane: they are periodic with
    /// ~second horizons while message deliveries land within
    /// milliseconds, and separating the populations keeps delivery
    /// pops out of the (much larger) timer heap.
    pub fn set_timer(&mut self, node: usize, delay: SimTime, msg: M) {
        assert!(delay >= 0.0, "negative timer delay {delay}");
        self.set_timer_at(node, self.now() + delay, msg);
    }

    /// Schedules a lossless timer for `node` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when `at` lies in the simulated past.
    pub fn set_timer_at(&mut self, node: usize, at: SimTime, msg: M) {
        assert!(node < self.n, "node id out of range");
        self.queue.schedule_at_on(
            Lane::Far,
            at,
            Delivery {
                from: node,
                to: node,
                msg,
            },
        );
    }

    /// Schedules a full probe→reply round trip as **one** delivery:
    /// `msg` arrives back at `from` after
    /// `delay(from→to)·jitter + delay(to→from)·jitter`, with loss
    /// applied independently to each leg (either loss silently drops
    /// the whole exchange, exactly as losing that message would).
    /// Returns whether the exchange survived (false = a leg was lost).
    ///
    /// This is the event-collapsed fast path for request/response
    /// exchanges whose request leg has no observable effect at the
    /// responder: it halves the event count and keeps coordinate
    /// payloads out of the queue entirely. Use [`send`](Self::send)
    /// when the intermediate delivery matters.
    pub fn roundtrip(&mut self, from: usize, to: usize, msg: M) -> bool {
        self.roundtrip_at(from, to, self.now(), msg)
    }

    /// [`roundtrip`](Self::roundtrip) departing at the (current or
    /// future) absolute time `at`: the completion delivers at
    /// `at + rtt`. Lets a driver chain periodic exchanges without a
    /// separate timer event per period.
    ///
    /// # Panics
    /// Panics when `at` lies in the simulated past.
    pub fn roundtrip_at(&mut self, from: usize, to: usize, at: SimTime, msg: M) -> bool {
        assert!(from < self.n && to < self.n, "node id out of range");
        assert!(at >= self.now(), "roundtrip departing in the past");
        self.stats.sent += 2;
        if self.is_cut(from, to) {
            // The probe leg dies at the cut; the reply is never sent.
            self.stats.dropped += 1;
            return false;
        }
        if self.config.loss_probability > 0.0 {
            let lost_fwd = self.rng.gen::<f64>() < self.config.loss_probability;
            let lost_back = self.rng.gen::<f64>() < self.config.loss_probability;
            if lost_fwd || lost_back {
                self.stats.dropped += usize::from(lost_fwd) + usize::from(lost_back);
                return false;
            }
        }
        let factor = self.leg_factor(from, to);
        let fwd = f64::from(self.one_way_delay[from * self.n + to]) * factor;
        let back = f64::from(self.one_way_delay[to * self.n + from]) * factor;
        let rtt = if self.config.delay_jitter_sigma > 0.0 {
            let j1 = self.jitter.sample(&mut self.rng);
            let j2 = self.jitter.sample(&mut self.rng);
            fwd * j1 + back * j2
        } else {
            fwd + back
        };
        self.in_flight_non_timer += 1;
        self.queue.schedule_at_on(
            Lane::Far,
            at + rtt,
            Delivery {
                from: to,
                to: from,
                msg,
            },
        );
        true
    }

    /// Delivers the next message (advancing simulated time).
    pub fn next_delivery(&mut self) -> Option<(SimTime, Delivery<M>)> {
        let (t, d) = self.queue.pop()?;
        self.account_delivery(&d);
        Some((t, d))
    }

    /// Delivers the next message only if it is due at or before
    /// `deadline`; later messages stay queued and the clock stays put.
    pub fn next_delivery_before(&mut self, deadline: SimTime) -> Option<(SimTime, Delivery<M>)> {
        let (t, d) = self.queue.pop_before(deadline)?;
        self.account_delivery(&d);
        Some((t, d))
    }

    #[inline]
    fn account_delivery(&mut self, d: &Delivery<M>) {
        if d.from == d.to {
            self.stats.timers += 1;
        } else {
            self.stats.delivered += 1;
            self.in_flight_non_timer -= 1;
        }
    }

    /// Timestamp of the next delivery without consuming it (`None`
    /// when the queue is empty). Lets run loops stop *before* an event
    /// past their deadline instead of delivering it first.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of queued deliveries (timers included).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of queued *network* messages (timers excluded).
    pub fn pending_messages(&self) -> usize {
        self.in_flight_non_timer
    }

    /// Bytes held by the one-way delay table (the dominant fixed cost
    /// of a simulated network; used for memory-per-node accounting in
    /// the scale workloads).
    pub fn table_bytes(&self) -> usize {
        self.one_way_delay.len() * std::mem::size_of::<f32>()
    }

    // ---- shard plumbing (crate-internal) ----------------------------
    //
    // `ShardedSimNet` composes per-island `SimNet`s but owns the
    // message model itself: deliveries carry *global* ids and must land
    // in the destination's shard queue, so the shard layer needs raw
    // access to each island's queue, delay table and RNG draws rather
    // than the public `send`/`roundtrip` (which validate local ids and
    // keep their own stats).

    /// The island's event queue.
    pub(crate) fn queue(&self) -> &EventQueue<Delivery<M>> {
        &self.queue
    }

    /// The island's event queue, mutably.
    pub(crate) fn queue_mut(&mut self) -> &mut EventQueue<Delivery<M>> {
        &mut self.queue
    }

    /// Raw table delay for a *local* pair, in seconds (no straggler
    /// factor, no jitter).
    pub(crate) fn delay_s(&self, from: usize, to: usize) -> f64 {
        f64::from(self.one_way_delay[from * self.n + to])
    }

    /// Draws one per-leg loss decision (no draw at all when the
    /// network is loss-free, matching [`send`](Self::send)).
    pub(crate) fn draw_loss(&mut self) -> bool {
        self.config.loss_probability > 0.0 && self.rng.gen::<f64>() < self.config.loss_probability
    }

    /// Draws one multiplicative jitter factor (exactly `1.0`, with no
    /// RNG draw, when jitter is disabled).
    pub(crate) fn draw_jitter(&mut self) -> f64 {
        if self.config.delay_jitter_sigma > 0.0 {
            self.jitter.sample(&mut self.rng)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::rtt::meridian_like;

    #[test]
    fn message_arrives_after_half_rtt() {
        let d = meridian_like(10, 1);
        let mut net: SimNet<&str> = SimNet::from_rtt_dataset(
            &d,
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        );
        net.send(0, 1, "probe");
        let (t, delivery) = net.next_delivery().unwrap();
        assert_eq!(
            delivery,
            Delivery {
                from: 0,
                to: 1,
                msg: "probe"
            }
        );
        let expected = d.values[(0, 1)] / 2.0 / 1000.0;
        // Delays are stored as f32: exact to a relative ~6e-8.
        assert!(
            (t - expected).abs() < expected * 1e-6,
            "t={t}, expected {expected}"
        );
    }

    #[test]
    fn round_trip_takes_full_rtt() {
        let d = meridian_like(10, 2);
        let mut net: SimNet<u8> = SimNet::from_rtt_dataset(
            &d,
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        );
        net.send(3, 7, 1);
        let (_, probe) = net.next_delivery().unwrap();
        net.send(probe.to, probe.from, 2);
        let (t, reply) = net.next_delivery().unwrap();
        assert_eq!(reply.to, 3);
        let expected_rtt_s = d.values[(3, 7)] / 1000.0;
        assert!((t - expected_rtt_s).abs() < expected_rtt_s * 1e-6);
    }

    #[test]
    fn loss_injection_drops_messages() {
        let mut net: SimNet<u32> = SimNet::uniform(
            4,
            0.01,
            NetConfig {
                loss_probability: 0.5,
                seed: 3,
                ..NetConfig::default()
            },
        );
        for i in 0..1000 {
            net.send(0, 1, i);
        }
        let stats = net.stats();
        assert_eq!(stats.sent, 1000);
        assert!(
            stats.dropped > 350 && stats.dropped < 650,
            "dropped {}",
            stats.dropped
        );
        assert_eq!(net.pending_messages() + stats.dropped, 1000);
    }

    #[test]
    fn timers_never_drop() {
        let mut net: SimNet<u32> = SimNet::uniform(
            2,
            0.01,
            NetConfig {
                loss_probability: 1.0,
                seed: 4,
                ..NetConfig::default()
            },
        );
        for i in 0..50 {
            net.set_timer(1, 0.1 + i as f64, i);
        }
        let mut fired = 0;
        while let Some((_, d)) = net.next_delivery() {
            assert_eq!(d.from, d.to);
            fired += 1;
        }
        assert_eq!(fired, 50);
        assert_eq!(net.stats().timers, 50);
    }

    #[test]
    fn deliveries_are_time_ordered() {
        let d = meridian_like(20, 5);
        let mut net: SimNet<usize> = SimNet::from_rtt_dataset(&d, NetConfig::default());
        for i in 0..19 {
            net.send(i, i + 1, i);
        }
        let mut last = 0.0;
        while let Some((t, _)) = net.next_delivery() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_validates_node_ids() {
        let mut net: SimNet<()> = SimNet::uniform(2, 0.01, NetConfig::default());
        net.send(0, 5, ());
    }

    #[test]
    fn partition_cuts_cross_island_traffic_only() {
        let mut net: SimNet<u32> = SimNet::uniform(
            6,
            0.01,
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        );
        net.set_partition(&[0, 1]);
        assert!(net.is_cut(0, 3) && net.is_cut(3, 0));
        assert!(!net.is_cut(0, 1), "island-internal traffic flows");
        assert!(!net.is_cut(4, 5), "mainland-internal traffic flows");
        net.send(0, 3, 1); // cut: dropped
        net.send(0, 1, 2); // island-internal: delivered
        net.send(4, 5, 3); // mainland: delivered
        assert!(!net.roundtrip(2, 1, 9), "roundtrip across the cut dies");
        assert!(net.roundtrip(0, 1, 10));
        let mut got = Vec::new();
        while let Some((_, d)) = net.next_delivery() {
            got.push(d.msg);
        }
        got.sort_unstable();
        assert_eq!(got, vec![2, 3, 10]);
        assert_eq!(net.stats().dropped, 2);

        // Healing restores full connectivity.
        net.clear_partition();
        assert!(!net.is_cut(0, 3));
        assert!(net.roundtrip(2, 1, 11));
    }

    #[test]
    fn partition_classes_cut_islands_from_each_other() {
        let mut net: SimNet<u32> = SimNet::uniform(
            6,
            0.01,
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        );
        // Two islands {0,1} and {2,3}, mainland {4,5}: every
        // cross-group pair is cut, intra-group traffic flows.
        net.set_partition_classes(&[1, 1, 2, 2, 0, 0]);
        assert!(net.is_cut(0, 2), "islands are mutually cut");
        assert!(net.is_cut(1, 4) && net.is_cut(3, 5));
        assert!(!net.is_cut(0, 1) && !net.is_cut(2, 3) && !net.is_cut(4, 5));
        net.send(0, 2, 1); // island↔island: dropped
        net.send(2, 3, 2); // intra-island: delivered
        net.send(4, 5, 3); // mainland: delivered
        let mut got = Vec::new();
        while let Some((_, d)) = net.next_delivery() {
            got.push(d.msg);
        }
        got.sort_unstable();
        assert_eq!(got, vec![2, 3]);
        // Empty classes heal; all-equal classes are fully connected.
        net.set_partition_classes(&[]);
        assert!(!net.is_cut(0, 2));
        net.set_partition_classes(&[7, 7, 7, 7, 7, 7]);
        assert!(!net.is_cut(0, 5));
    }

    #[test]
    #[should_panic(expected = "strict subset")]
    fn full_population_island_rejected() {
        let mut net: SimNet<()> = SimNet::uniform(3, 0.01, NetConfig::default());
        net.set_partition(&[0, 1, 2]);
    }

    #[test]
    fn straggler_factor_slows_both_legs() {
        let mut net: SimNet<u8> = SimNet::uniform(
            3,
            0.01,
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        );
        net.set_delay_factor(1, 5.0);
        net.send(0, 1, 1);
        let (t, _) = net.next_delivery().unwrap();
        assert!((t - 0.05).abs() < 1e-7, "leg to the straggler is 5×: {t}");
        net.send(0, 2, 2);
        let (t2, _) = net.next_delivery().unwrap();
        assert!((t2 - t - 0.01).abs() < 1e-7, "non-straggler leg unchanged");
        assert!(net.roundtrip(2, 1, 3));
        let (t3, _) = net.next_delivery().unwrap();
        assert!(
            (t3 - t2 - 0.10).abs() < 1e-7,
            "round trip via the straggler is 5× both ways: {}",
            t3 - t2
        );
        // Restoring the factor restores timing.
        net.set_delay_factor(1, 1.0);
        net.send(0, 1, 4);
        let (t4, _) = net.next_delivery().unwrap();
        assert!((t4 - t3 - 0.01).abs() < 1e-7);
    }

    #[test]
    fn loss_probability_update_takes_effect() {
        let mut net: SimNet<u32> = SimNet::uniform(2, 0.01, NetConfig::default());
        assert_eq!(net.loss_probability(), 0.0);
        for i in 0..100 {
            net.send(0, 1, i);
        }
        assert_eq!(net.stats().dropped, 0);
        net.set_loss_probability(1.0);
        for i in 0..100 {
            net.send(0, 1, i);
        }
        assert_eq!(net.stats().dropped, 100);
        net.set_loss_probability(0.0);
        net.send(0, 1, 7);
        assert_eq!(net.stats().dropped, 100);
    }

    #[test]
    fn delay_re_embedding_applies_to_new_sends() {
        let d = meridian_like(8, 11);
        let mut net: SimNet<u8> = SimNet::from_rtt_dataset(
            &d,
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        );
        let mut congested = d.clone();
        congested.scale_values(3.0);
        net.send(0, 1, 1); // in flight under the old delays
        net.set_one_way_delays_from_rtt(&congested);
        net.send(0, 1, 2);
        let (t1, _) = net.next_delivery().unwrap();
        let (t2, _) = net.next_delivery().unwrap();
        let old = d.values[(0, 1)] / 2.0 / 1000.0;
        assert!((t1 - old).abs() < old * 1e-6, "in-flight keeps old delay");
        assert!(
            (t2 - 3.0 * old).abs() < 3.0 * old * 1e-6,
            "post-update sends see the congested network"
        );

        // A sparser truth resets uncovered pairs to the default delay
        // (no stale leftovers from the previous embedding).
        let mut sparse = congested;
        sparse.mask.set(0, 1, false);
        net.set_one_way_delays_from_rtt(&sparse);
        net.send(0, 1, 3);
        let (t3, _) = net.next_delivery().unwrap();
        let default = NetConfig::default().default_one_way_delay_s;
        assert!(
            (t3 - t2 - default).abs() < default * 1e-6,
            "uncovered pair must fall back to the default delay, got {}",
            t3 - t2
        );
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn loss_probability_validated() {
        let mut net: SimNet<()> = SimNet::uniform(2, 0.01, NetConfig::default());
        net.set_loss_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_validates_ids() {
        let mut net: SimNet<()> = SimNet::uniform(2, 0.01, NetConfig::default());
        net.set_partition(&[5]);
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let mut net: SimNet<u32> = SimNet::uniform(
                3,
                0.02,
                NetConfig {
                    seed,
                    loss_probability: 0.2,
                    ..NetConfig::default()
                },
            );
            for i in 0..100 {
                net.send((i % 3) as usize, ((i + 1) % 3) as usize, i);
            }
            let mut log = Vec::new();
            while let Some((t, d)) = net.next_delivery() {
                log.push((t.to_bits(), d.msg));
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
