//! Neighbor and peer set management.
//!
//! DMFSGD "has the same architecture as Vivaldi where each node
//! randomly and independently chooses a neighbor set of k nodes as
//! references and randomly probes one of its neighbors at each time"
//! (paper §5.3). The peer-selection experiment (§6.4) additionally
//! gives every node a *peer set* forced to be disjoint from its
//! neighbor set, so prediction quality is evaluated on pairs the node
//! never trained on.

use rand::Rng;
use serde::{DeError, Deserialize, Serialize, Value};

/// Per-node reference sets.
///
/// Stored flat (CSR layout: one contiguous id array plus per-node
/// offsets) so that the per-probe `sample_neighbor` touches a single
/// cache-resident array instead of chasing one heap `Vec` per node.
/// Serialization keeps the historical nested-array JSON shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NeighborSets {
    /// Concatenated neighbor ids, node by node.
    flat: Vec<usize>,
    /// `flat[offsets[i]..offsets[i+1]]` is node `i`'s neighbor list.
    offsets: Vec<u32>,
}

impl NeighborSets {
    /// Chooses `k` distinct random neighbors (≠ self) for each of `n`
    /// nodes.
    ///
    /// # Panics
    /// Panics when `k >= n` (a node cannot reference itself).
    pub fn random(n: usize, k: usize, rng: &mut impl Rng) -> Self {
        assert!(n >= 2, "need at least two nodes");
        assert!(k >= 1 && k < n, "k must satisfy 1 <= k < n (k={k}, n={n})");
        let mut flat = Vec::with_capacity(n * k);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for i in 0..n {
            flat.extend(sample_distinct(n, k, &[i], rng));
            offsets.push(u32::try_from(flat.len()).expect("neighbor table overflow"));
        }
        Self { flat, offsets }
    }

    /// Builds sets from explicit lists (used by tests and loaders).
    pub fn from_sets(sets: Vec<Vec<usize>>) -> Self {
        let mut flat = Vec::new();
        let mut offsets = Vec::with_capacity(sets.len() + 1);
        offsets.push(0);
        for (i, set) in sets.iter().enumerate() {
            assert!(!set.contains(&i), "node {i} cannot be its own neighbor");
            flat.extend_from_slice(set);
            offsets.push(u32::try_from(flat.len()).expect("neighbor table overflow"));
        }
        Self { flat, offsets }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The neighbor list of node `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.flat[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Uniformly samples one neighbor of node `i`.
    #[inline]
    pub fn sample_neighbor(&self, i: usize, rng: &mut impl Rng) -> usize {
        let set = self.neighbors(i);
        set[rng.gen_range(0..set.len())]
    }

    /// True when `j` is in node `i`'s neighbor list.
    #[inline]
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.neighbors(i).contains(&j)
    }

    /// Appends a new node with the given neighbor list; returns its
    /// id. O(len(set)) — no CSR rebuild.
    ///
    /// # Panics
    /// Panics when the set contains the new node itself (callers
    /// validate membership; this guards the structural invariant).
    pub fn add_node(&mut self, set: &[usize]) -> usize {
        let id = self.len();
        assert!(!set.contains(&id), "node {id} cannot be its own neighbor");
        self.flat.extend_from_slice(set);
        self.offsets
            .push(u32::try_from(self.flat.len()).expect("neighbor table overflow"));
        id
    }

    /// Replaces the first occurrence of `old` in node `i`'s list with
    /// `new`, in place (offsets untouched). Returns whether a
    /// replacement happened. This is the O(k) repair primitive for
    /// membership churn: swapping a departed neighbor for a live one
    /// never changes row lengths, so the CSR layout needs no rebuild.
    pub fn replace_in_row(&mut self, i: usize, old: usize, new: usize) -> bool {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        match self.flat[lo..hi].iter().position(|&x| x == old) {
            Some(pos) => {
                self.flat[lo + pos] = new;
                true
            }
            None => false,
        }
    }

    /// Overwrites node `i`'s neighbor list. Same-length rows are
    /// written in place (the common churn case: a rejoining node
    /// resamples its `k` references); a length change triggers one
    /// O(total) CSR rebuild — amortized out as long as `k` is stable.
    ///
    /// # Panics
    /// Panics when the set contains node `i` itself.
    pub fn set_row(&mut self, i: usize, set: &[usize]) {
        assert!(!set.contains(&i), "node {i} cannot be its own neighbor");
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        if set.len() == hi - lo {
            self.flat[lo..hi].copy_from_slice(set);
            return;
        }
        // Rebuild: splice the new row in and reflow the offsets.
        let mut flat = Vec::with_capacity(self.flat.len() - (hi - lo) + set.len());
        flat.extend_from_slice(&self.flat[..lo]);
        flat.extend_from_slice(set);
        flat.extend_from_slice(&self.flat[hi..]);
        let delta = set.len() as i64 - (hi - lo) as i64;
        for off in self.offsets.iter_mut().skip(i + 1) {
            *off = u32::try_from(i64::from(*off) + delta).expect("neighbor table overflow");
        }
        self.flat = flat;
    }

    /// Ids of all nodes whose neighbor list contains `j` (the rows a
    /// departure of `j` would leave dangling). O(total neighbors).
    pub fn rows_containing(&self, j: usize) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.contains(i, j)).collect()
    }

    /// Draws per-node peer sets of size `m`, disjoint from each node's
    /// neighbor set and excluding the node itself (paper §6.4).
    ///
    /// # Panics
    /// Panics when `m + k + 1 > n` so no valid peer set exists.
    pub fn disjoint_peer_sets(&self, m: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
        let n = self.len();
        (0..n)
            .map(|i| {
                let mut excluded: Vec<usize> = self.neighbors(i).to_vec();
                excluded.push(i);
                assert!(
                    m + excluded.len() <= n,
                    "peer set of {m} impossible: {} nodes excluded of {n}",
                    excluded.len()
                );
                sample_distinct(n, m, &excluded, rng)
            })
            .collect()
    }
}

impl Serialize for NeighborSets {
    fn to_value(&self) -> Value {
        // Historical JSON shape: an object holding the nested lists.
        let sets: Vec<Vec<usize>> = (0..self.len())
            .map(|i| self.neighbors(i).to_vec())
            .collect();
        Value::Object(vec![("sets".to_string(), sets.to_value())])
    }
}

impl Deserialize for NeighborSets {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let sets = v
            .get("sets")
            .ok_or_else(|| DeError::missing_field("sets", "NeighborSets"))?;
        Ok(NeighborSets::from_sets(Vec::<Vec<usize>>::from_value(
            sets,
        )?))
    }
}

/// Samples `k` distinct values from `0..n` excluding `excluded`
/// (partial Fisher–Yates over the allowed pool).
///
/// The pool is *virtual*: position `p` holds the `p`-th element of
/// `(0..n) \\ excluded` until a swap displaces it, and only displaced
/// positions are stored (in a small sorted map). This keeps the draw
/// sequence — and therefore every sampled set — bit-identical to a
/// materialized partial Fisher–Yates while costing O(k²) instead of
/// O(n) per call, which is what makes building 100k-node neighbor
/// tables (n calls of this) linear in n rather than quadratic.
fn sample_distinct(n: usize, k: usize, excluded: &[usize], rng: &mut impl Rng) -> Vec<usize> {
    let mut ex: Vec<usize> = excluded.iter().copied().filter(|&x| x < n).collect();
    ex.sort_unstable();
    ex.dedup();
    let pool_len = n - ex.len();
    assert!(pool_len >= k, "pool too small: {pool_len} < {k}");
    // The p-th element of the ascending allowed values.
    let nth = |p: usize| {
        let mut v = p;
        for &e in &ex {
            if e <= v {
                v += 1;
            } else {
                break;
            }
        }
        v
    };
    // Displaced positions, sorted by position (≤ 2k entries, so a
    // flat Vec beats a hash map and stays deterministic).
    let mut displaced: Vec<(usize, usize)> = Vec::with_capacity(2 * k);
    let read = |displaced: &Vec<(usize, usize)>, p: usize| match displaced
        .binary_search_by_key(&p, |&(pos, _)| pos)
    {
        Ok(idx) => displaced[idx].1,
        Err(_) => nth(p),
    };
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let j = rng.gen_range(i..pool_len);
        let vi = read(&displaced, i);
        let vj = read(&displaced, j);
        for (p, v) in [(i, vj), (j, vi)] {
            match displaced.binary_search_by_key(&p, |&(pos, _)| pos) {
                Ok(idx) => displaced[idx].1 = v,
                Err(idx) => displaced.insert(idx, (p, v)),
            }
        }
        out.push(vj);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// The sparse virtual-pool sampler must replay the materialized
    /// partial Fisher–Yates draw-for-draw: neighbor tables seed every
    /// downstream golden, so this equality is what lets the O(n·k)
    /// construction land without re-pinning anything.
    #[test]
    fn sparse_sampler_matches_materialized_fisher_yates() {
        fn materialized(n: usize, k: usize, excluded: &[usize], rng: &mut impl Rng) -> Vec<usize> {
            let mut pool: Vec<usize> = (0..n).filter(|x| !excluded.contains(x)).collect();
            for i in 0..k {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            pool.truncate(k);
            pool
        }
        for seed in 0..20u64 {
            for &(n, k, ref excluded) in &[
                (2usize, 1usize, vec![0usize]),
                (13, 5, vec![7]),
                (13, 12, vec![]),
                (50, 10, vec![3, 17, 40, 49]),
                (257, 32, vec![0, 256]),
            ] {
                let mut a = ChaCha8Rng::seed_from_u64(seed);
                let mut b = ChaCha8Rng::seed_from_u64(seed);
                assert_eq!(
                    sample_distinct(n, k, excluded, &mut a),
                    materialized(n, k, excluded, &mut b),
                    "n={n} k={k} excluded={excluded:?} seed={seed}"
                );
                // Both must also leave the RNG at the same point.
                assert_eq!(a.gen::<u64>(), b.gen::<u64>());
            }
        }
    }

    #[test]
    fn random_sets_have_size_k_and_exclude_self() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ns = NeighborSets::random(50, 10, &mut rng);
        assert_eq!(ns.len(), 50);
        for i in 0..50 {
            let set = ns.neighbors(i);
            assert_eq!(set.len(), 10);
            assert!(!set.contains(&i));
            let mut sorted = set.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10, "neighbors must be distinct");
        }
    }

    #[test]
    fn sample_neighbor_stays_in_set() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ns = NeighborSets::random(20, 5, &mut rng);
        for _ in 0..100 {
            let picked = ns.sample_neighbor(3, &mut rng);
            assert!(ns.neighbors(3).contains(&picked));
        }
    }

    #[test]
    fn sample_neighbor_covers_whole_set() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ns = NeighborSets::random(10, 4, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(ns.sample_neighbor(0, &mut rng));
        }
        assert_eq!(seen.len(), 4, "all neighbors should eventually be probed");
    }

    #[test]
    fn peer_sets_disjoint_from_neighbors() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ns = NeighborSets::random(40, 8, &mut rng);
        let peers = ns.disjoint_peer_sets(10, &mut rng);
        for (i, peer_set) in peers.iter().enumerate() {
            assert_eq!(peer_set.len(), 10);
            assert!(!peer_set.contains(&i));
            for p in peer_set {
                assert!(
                    !ns.neighbors(i).contains(p),
                    "peer {p} of node {i} is also a neighbor"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must satisfy")]
    fn k_of_n_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        NeighborSets::random(5, 5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "peer set of")]
    fn oversized_peer_sets_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let ns = NeighborSets::random(10, 5, &mut rng);
        ns.disjoint_peer_sets(6, &mut rng);
    }

    #[test]
    #[should_panic(expected = "own neighbor")]
    fn from_sets_validates_self_reference() {
        NeighborSets::from_sets(vec![vec![0]]);
    }

    #[test]
    fn add_node_appends_without_disturbing_existing_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut ns = NeighborSets::random(10, 3, &mut rng);
        let before: Vec<Vec<usize>> = (0..10).map(|i| ns.neighbors(i).to_vec()).collect();
        let id = ns.add_node(&[0, 4, 7]);
        assert_eq!(id, 10);
        assert_eq!(ns.len(), 11);
        assert_eq!(ns.neighbors(10), &[0, 4, 7]);
        for (i, row) in before.iter().enumerate() {
            assert_eq!(ns.neighbors(i), row.as_slice());
        }
    }

    #[test]
    fn replace_in_row_swaps_in_place() {
        let mut ns = NeighborSets::from_sets(vec![vec![1, 2], vec![0, 2], vec![0, 1]]);
        assert!(ns.replace_in_row(0, 2, 1));
        assert_eq!(ns.neighbors(0), &[1, 1]);
        assert!(!ns.replace_in_row(1, 9, 5), "absent id must be a no-op");
        assert_eq!(ns.neighbors(1), &[0, 2]);
    }

    #[test]
    fn set_row_same_length_in_place_and_longer_rebuilds() {
        let mut ns = NeighborSets::from_sets(vec![vec![1, 2], vec![0, 2], vec![0, 1]]);
        ns.set_row(1, &[2, 0]);
        assert_eq!(ns.neighbors(1), &[2, 0]);
        // Length change reflows the CSR but preserves every other row.
        ns.set_row(1, &[2, 0, 0]);
        assert_eq!(ns.neighbors(0), &[1, 2]);
        assert_eq!(ns.neighbors(1), &[2, 0, 0]);
        assert_eq!(ns.neighbors(2), &[0, 1]);
        ns.set_row(1, &[2]);
        assert_eq!(ns.neighbors(1), &[2]);
        assert_eq!(ns.neighbors(2), &[0, 1]);
    }

    #[test]
    fn rows_containing_finds_all_referrers() {
        let ns = NeighborSets::from_sets(vec![vec![1, 2], vec![0, 2], vec![0, 1]]);
        assert_eq!(ns.rows_containing(2), vec![0, 1]);
        assert_eq!(ns.rows_containing(0), vec![1, 2]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(
            NeighborSets::random(30, 6, &mut a),
            NeighborSets::random(30, 6, &mut b)
        );
    }
}
