//! Sharded network simulation for population scales where one dense
//! delay table stops fitting.
//!
//! A single [`SimNet`] stores an `n × n` one-way delay table: 4 bytes
//! per pair, which is 400 MB at `n = 10 000` and 40 GB at
//! `n = 100 000`. [`ShardedSimNet`] breaks that quadratic wall by
//! splitting the population into `k` contiguous *islands*, each backed
//! by its own [`SimNet`] (own delay table, own RNG stream, own event
//! queue); traffic between islands uses the configured default one-way
//! delay, so no cross-island table exists at all. Memory becomes
//! `k · (n/k)²` table entries — linear in `n` for a fixed island size.
//!
//! # Deterministic event-order merge
//!
//! The point of sharding is that the *single-queue story breaks*: with
//! `k` independent queues there is no longer one heap whose pop order
//! defines simulated time. The shard layer restores exactly the
//! single-queue semantics:
//!
//! * **One global sequence counter.** Every scheduled event, whichever
//!   island queue it lands in, takes its insertion number from one
//!   shared counter (threaded into each queue via
//!   `EventQueue::set_next_seq` just before scheduling). Same-time
//!   events across shards therefore keep the total FIFO order a single
//!   queue would have given them.
//! * **Exact-mirror merge heap.** Each schedule also pushes the
//!   event's full ordering key `(time bits, seq, shard)` into one
//!   binary min-heap. Because non-negative `f64` times order the same
//!   as their bit patterns, the heap root is always the globally
//!   earliest pending event, and popping it pops the *head* of its
//!   shard's queue (the root is ≤ every key in that shard). The merged
//!   delivery stream is provably the stream one big queue would
//!   produce — `tests/shard_merge.rs` pins this property against a
//!   real single-queue [`SimNet`] run.
//! * **One global clock.** `now` is the timestamp of the last merged
//!   pop; per-shard clocks only ever trail it, so scheduling at
//!   `at ≥ now` can never violate a shard queue's past-check.
//!
//! # Model carve-outs
//!
//! Cross-island messages see the default delay with the *sender's*
//! island jitter/loss stream; intra-island messages see the island's
//! own table and stream. The mid-run impairment hooks (partitions,
//! stragglers, re-embedding) are intentionally not exposed here — the
//! scale workloads are partition-free; use [`SimNet`] when a scenario
//! needs them.

use crate::event::{Lane, SimTime};
use crate::net::{Delivery, NetConfig, NetStats, SimNet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A population split into per-island [`SimNet`]s behind a
/// deterministic event-order merge. Node ids are global (`0..n`);
/// island membership is by contiguous range.
pub struct ShardedSimNet<M> {
    shards: Vec<SimNet<M>>,
    island_size: usize,
    n: usize,
    cross_delay_s: f64,
    /// Global insertion counter: the single-queue FIFO tie-break.
    seq: u64,
    /// Global clock: timestamp of the last merged pop.
    now: SimTime,
    /// Exact mirror of every pending event, keyed as the queues key
    /// them; `Reverse` turns `BinaryHeap` into a min-heap.
    heads: BinaryHeap<Reverse<(u64, u64, usize)>>,
    stats: NetStats,
    in_flight_non_timer: usize,
}

impl<M> ShardedSimNet<M> {
    /// Builds a sharded network with a uniform one-way delay, split
    /// into (at most) `islands` contiguous islands.
    ///
    /// # Panics
    /// Panics when `n == 0` or `islands == 0` or `islands > n`.
    pub fn uniform(n: usize, islands: usize, one_way_delay_s: f64, config: NetConfig) -> Self {
        Self::from_delay_fn(n, islands, config, |_, _| one_way_delay_s)
    }

    /// Builds a sharded network whose *intra-island* one-way delays
    /// come from `delay_s(i, j)` over **global** ids; cross-island
    /// pairs use `config.default_one_way_delay_s` and are never asked
    /// of `delay_s`. Island `k` covers global ids
    /// `[k·s, min((k+1)·s, n))` with `s = ⌈n / islands⌉`; the realized
    /// island count is `⌈n / s⌉`, which can be smaller than requested
    /// (no empty islands are created).
    ///
    /// Each island draws jitter/loss from its own RNG stream,
    /// decorrelated from `config.seed` by island index (island 0 keeps
    /// the seed unchanged, so a 1-island sharded net replays a plain
    /// [`SimNet`] bit-for-bit).
    ///
    /// # Panics
    /// Panics when `n == 0` or `islands == 0` or `islands > n`.
    pub fn from_delay_fn(
        n: usize,
        islands: usize,
        config: NetConfig,
        mut delay_s: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        assert!(n > 0, "sharded network needs at least one node");
        assert!(
            islands > 0 && islands <= n,
            "island count {islands} out of range 1..={n}"
        );
        let island_size = n.div_ceil(islands);
        let islands = n.div_ceil(island_size);
        let shards = (0..islands)
            .map(|k| {
                let start = k * island_size;
                let m = island_size.min(n - start);
                let cfg = NetConfig {
                    seed: config
                        .seed
                        .wrapping_add((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ..config.clone()
                };
                SimNet::from_delay_fn(m, cfg, |i, j| delay_s(start + i, start + j))
            })
            .collect();
        Self {
            shards,
            island_size,
            n,
            // Rounded through f32 like every table entry, so a
            // cross-island leg costs bit-exactly what the same pair
            // would cost in a single net's table.
            cross_delay_s: f64::from(config.default_one_way_delay_s as f32),
            seq: 0,
            now: 0.0,
            heads: BinaryHeap::with_capacity(4 * n + 16),
            stats: NetStats::default(),
            in_flight_non_timer: 0,
        }
    }

    /// Number of nodes (across all islands).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the network has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of islands.
    pub fn islands(&self) -> usize {
        self.shards.len()
    }

    /// The island a global node id belongs to.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn island_of(&self, node: usize) -> usize {
        assert!(node < self.n, "node id out of range");
        node / self.island_size
    }

    /// Current simulated time in seconds (the global merged clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Aggregate network statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Total bytes held by the per-island delay tables — the number
    /// the sharding exists to shrink (`k · ⌈n/k⌉²` entries instead of
    /// `n²`).
    pub fn table_bytes(&self) -> usize {
        self.shards.iter().map(SimNet::table_bytes).sum()
    }

    /// Schedules into `shard`'s queue under the global seq counter and
    /// mirrors the key into the merge heap.
    fn schedule(&mut self, shard: usize, lane: Lane, at: SimTime, delivery: Delivery<M>) {
        assert!(
            at >= self.now,
            "cannot schedule in the past: at={at}, now={}",
            self.now
        );
        let seq = self.seq;
        let queue = self.shards[shard].queue_mut();
        queue.set_next_seq(seq);
        queue.schedule_at_on(lane, at, delivery);
        self.heads.push(Reverse((at.to_bits(), seq, shard)));
        self.seq = seq + 1;
    }

    /// Sends `msg` from `from` to `to` (global ids), subject to loss
    /// and jitter drawn from the sender's island stream. Cross-island
    /// pairs travel at the default one-way delay.
    ///
    /// # Panics
    /// Panics on an out-of-range node id.
    pub fn send(&mut self, from: usize, to: usize, msg: M) {
        let (sf, st) = (self.island_of(from), self.island_of(to));
        self.stats.sent += 1;
        if self.shards[sf].draw_loss() {
            self.stats.dropped += 1;
            return;
        }
        let base = if sf == st {
            let start = sf * self.island_size;
            self.shards[sf].delay_s(from - start, to - start)
        } else {
            self.cross_delay_s
        };
        let jitter = self.shards[sf].draw_jitter();
        let at = self.now + base * jitter;
        self.in_flight_non_timer += 1;
        self.schedule(st, Lane::Near, at, Delivery { from, to, msg });
    }

    /// Schedules a lossless timer for `node` after `delay` seconds.
    pub fn set_timer(&mut self, node: usize, delay: SimTime, msg: M) {
        assert!(delay >= 0.0, "negative timer delay {delay}");
        self.set_timer_at(node, self.now + delay, msg);
    }

    /// Schedules a lossless timer for `node` at absolute time `at`.
    ///
    /// # Panics
    /// Panics on an out-of-range id or a time in the simulated past.
    pub fn set_timer_at(&mut self, node: usize, at: SimTime, msg: M) {
        let shard = self.island_of(node);
        self.schedule(
            shard,
            Lane::Far,
            at,
            Delivery {
                from: node,
                to: node,
                msg,
            },
        );
    }

    /// Schedules a full probe→reply round trip as one delivery, like
    /// [`SimNet::roundtrip`]: `msg` arrives back at `from` after both
    /// legs' delay, with loss applied per leg. Returns whether the
    /// exchange survived.
    pub fn roundtrip(&mut self, from: usize, to: usize, msg: M) -> bool {
        self.roundtrip_at(from, to, self.now, msg)
    }

    /// [`roundtrip`](Self::roundtrip) departing at absolute time `at`;
    /// the completion delivers at `at + rtt`.
    ///
    /// # Panics
    /// Panics on an out-of-range id or a departure in the past.
    pub fn roundtrip_at(&mut self, from: usize, to: usize, at: SimTime, msg: M) -> bool {
        let (sf, st) = (self.island_of(from), self.island_of(to));
        assert!(at >= self.now, "roundtrip departing in the past");
        self.stats.sent += 2;
        let lost_fwd = self.shards[sf].draw_loss();
        let lost_back = self.shards[sf].draw_loss();
        if lost_fwd || lost_back {
            self.stats.dropped += usize::from(lost_fwd) + usize::from(lost_back);
            return false;
        }
        let (fwd, back) = if sf == st {
            let start = sf * self.island_size;
            (
                self.shards[sf].delay_s(from - start, to - start),
                self.shards[sf].delay_s(to - start, from - start),
            )
        } else {
            (self.cross_delay_s, self.cross_delay_s)
        };
        let j1 = self.shards[sf].draw_jitter();
        let j2 = self.shards[sf].draw_jitter();
        let rtt = fwd * j1 + back * j2;
        self.in_flight_non_timer += 1;
        self.schedule(
            sf,
            Lane::Far,
            at + rtt,
            Delivery {
                from: to,
                to: from,
                msg,
            },
        );
        true
    }

    /// Delivers the next message across all islands, advancing the
    /// global clock.
    pub fn next_delivery(&mut self) -> Option<(SimTime, Delivery<M>)> {
        let Reverse((bits, seq, shard)) = self.heads.pop()?;
        debug_assert_eq!(
            self.shards[shard].queue().peek_key(),
            Some((bits, seq)),
            "merge-heap root must be its shard's queue head"
        );
        let (t, d) = self.shards[shard]
            .queue_mut()
            .pop()
            .expect("mirrored head vanished from shard queue");
        debug_assert_eq!(t.to_bits(), bits);
        self.now = t;
        if d.from == d.to {
            self.stats.timers += 1;
        } else {
            self.stats.delivered += 1;
            self.in_flight_non_timer -= 1;
        }
        Some((t, d))
    }

    /// Delivers the next message only if it is due at or before
    /// `deadline`; later messages stay queued and the clock stays put.
    pub fn next_delivery_before(&mut self, deadline: SimTime) -> Option<(SimTime, Delivery<M>)> {
        let &Reverse((bits, _, _)) = self.heads.peek()?;
        if SimTime::from_bits(bits) > deadline {
            return None;
        }
        self.next_delivery()
    }

    /// Timestamp of the next delivery without consuming it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heads
            .peek()
            .map(|&Reverse((bits, _, _))| SimTime::from_bits(bits))
    }

    /// Number of queued deliveries (timers included).
    pub fn pending(&self) -> usize {
        self.heads.len()
    }

    /// Number of queued *network* messages (timers excluded).
    pub fn pending_messages(&self) -> usize {
        self.in_flight_non_timer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(seed: u64) -> NetConfig {
        NetConfig {
            delay_jitter_sigma: 0.0,
            seed,
            ..NetConfig::default()
        }
    }

    #[test]
    fn islands_partition_ids_contiguously() {
        let net: ShardedSimNet<()> = ShardedSimNet::uniform(10, 3, 0.01, quiet(0));
        // ⌈10/3⌉ = 4 → islands [0,4), [4,8), [8,10).
        assert_eq!(net.islands(), 3);
        assert_eq!(net.island_of(0), 0);
        assert_eq!(net.island_of(3), 0);
        assert_eq!(net.island_of(4), 1);
        assert_eq!(net.island_of(9), 2);
    }

    #[test]
    fn no_empty_islands_created() {
        // ⌈6/4⌉ = 2 → only 3 islands materialize, none empty.
        let net: ShardedSimNet<()> = ShardedSimNet::uniform(6, 4, 0.01, quiet(0));
        assert_eq!(net.islands(), 3);
        assert_eq!(net.island_of(5), 2);
    }

    #[test]
    fn intra_island_uses_table_cross_island_uses_default() {
        let config = quiet(1);
        let default = config.default_one_way_delay_s;
        let mut net: ShardedSimNet<u8> =
            ShardedSimNet::from_delay_fn(8, 2, config, |i, j| 0.001 * (1 + i + j) as f64);
        net.send(0, 1, 1); // intra-island 0: table delay 0.002
        net.send(1, 5, 2); // cross-island: default delay
        let (t1, d1) = net.next_delivery().unwrap();
        assert_eq!((d1.from, d1.to, d1.msg), (0, 1, 1));
        assert!((t1 - 0.002).abs() < 1e-9, "t1={t1}");
        let (t2, d2) = net.next_delivery().unwrap();
        assert_eq!((d2.from, d2.to, d2.msg), (1, 5, 2));
        // The cross-island delay is the f32-rounded default.
        assert!((t2 - f64::from(default as f32)).abs() < 1e-12, "t2={t2}");
        assert_eq!(net.stats().delivered, 2);
    }

    #[test]
    fn roundtrip_returns_to_sender_after_both_legs() {
        let mut net: ShardedSimNet<u8> =
            ShardedSimNet::from_delay_fn(8, 2, quiet(2), |i, j| 0.001 * (1 + i + j) as f64);
        assert!(net.roundtrip(2, 3, 9)); // fwd 0.006 + back 0.006
        let (t, d) = net.next_delivery().unwrap();
        assert_eq!((d.from, d.to, d.msg), (3, 2, 9));
        assert!((t - 0.012).abs() < 1e-9, "t={t}");
        // Cross-island roundtrip: default both legs.
        assert!(net.roundtrip(0, 7, 8));
        let (t2, d2) = net.next_delivery().unwrap();
        assert_eq!((d2.from, d2.to), (7, 0));
        // Cross-island delay is the f32-rounded default (matching
        // intra-island table bits), so mirror the rounding here.
        let rtt = 2.0 * f64::from(NetConfig::default().default_one_way_delay_s as f32);
        assert!((t2 - t - rtt).abs() < 1e-12, "t2-t={}", t2 - t);
    }

    #[test]
    fn merged_stream_is_globally_time_ordered_with_fifo_ties() {
        let mut net: ShardedSimNet<usize> = ShardedSimNet::uniform(12, 4, 0.01, quiet(3));
        // Same-time timers scheduled across different islands must
        // come back in scheduling order (the global seq tie-break).
        for (i, node) in [11, 0, 5, 8, 2].into_iter().enumerate() {
            net.set_timer_at(node, 1.0, i);
        }
        for node in 0..12 {
            net.set_timer_at(node, 0.5 + node as f64 * 0.01, 100 + node);
        }
        let mut log = Vec::new();
        let mut last = (0u64, 0u64);
        while let Some((t, d)) = net.next_delivery() {
            log.push(d.msg);
            let key = (t.to_bits(), 0);
            assert!(key >= last, "time went backwards");
            last = key;
        }
        assert_eq!(&log[..12], &(100..112).collect::<Vec<_>>()[..]);
        assert_eq!(&log[12..], &[0, 1, 2, 3, 4]);
        assert_eq!(net.stats().timers, 17);
    }

    #[test]
    fn timers_interleave_with_messages_across_islands() {
        let mut net: ShardedSimNet<u32> = ShardedSimNet::uniform(9, 3, 0.01, quiet(4));
        net.set_timer(4, 0.005, 1);
        net.send(0, 8, 2); // cross: arrives at 0.05
        net.set_timer(8, 0.02, 3);
        let order: Vec<u32> =
            std::iter::from_fn(|| net.next_delivery().map(|(_, d)| d.msg)).collect();
        assert_eq!(order, vec![1, 3, 2]);
        assert_eq!(net.pending(), 0);
        assert_eq!(net.pending_messages(), 0);
    }

    #[test]
    fn sharding_breaks_the_quadratic_table() {
        let single: SimNet<()> = SimNet::uniform(1024, 0.01, quiet(0));
        let sharded: ShardedSimNet<()> = ShardedSimNet::uniform(1024, 16, 0.01, quiet(0));
        assert_eq!(single.table_bytes(), 1024 * 1024 * 4);
        // 16 islands of 64: 16 · 64² entries = n²/16.
        assert_eq!(sharded.table_bytes(), single.table_bytes() / 16);
    }

    #[test]
    fn loss_and_jitter_draw_from_island_streams_deterministically() {
        let run = |seed| {
            let mut net: ShardedSimNet<u32> = ShardedSimNet::uniform(
                8,
                2,
                0.02,
                NetConfig {
                    seed,
                    loss_probability: 0.3,
                    delay_jitter_sigma: 0.1,
                    ..NetConfig::default()
                },
            );
            for i in 0..200u32 {
                let from = (i as usize * 3) % 8;
                let to = (i as usize * 5 + 1) % 8;
                if from != to {
                    net.send(from, to, i);
                }
            }
            let mut log = Vec::new();
            while let Some((t, d)) = net.next_delivery() {
                log.push((t.to_bits(), d.from, d.to, d.msg));
            }
            (log, net.stats())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
        let (_, stats) = run(7);
        assert!(stats.dropped > 20, "loss injection active: {stats:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_validates_global_ids() {
        let mut net: ShardedSimNet<()> = ShardedSimNet::uniform(4, 2, 0.01, quiet(0));
        net.send(0, 4, ());
    }

    #[test]
    #[should_panic(expected = "island count")]
    fn more_islands_than_nodes_rejected() {
        let _: ShardedSimNet<()> = ShardedSimNet::uniform(3, 4, 0.01, quiet(0));
    }
}
