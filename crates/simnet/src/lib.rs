//! # dmf-simnet
//!
//! Discrete-event network simulation substrate for the DMFSGD
//! reproduction.
//!
//! The paper evaluates its decentralized protocol by replaying
//! measurements in simulation; this crate makes the simulation explicit
//! and reusable:
//!
//! * [`event`] — a deterministic future-event list (time-ordered,
//!   FIFO-stable for ties).
//! * [`net`] — [`net::SimNet`], a message-passing network whose one-way
//!   delays derive from an RTT ground truth, with optional packet loss
//!   (fault injection in the spirit of the smoltcp examples).
//! * [`probe`] — measurement tools: a ping-style RTT prober, a
//!   pathload-style binary ABW class prober (UDP train at rate `τ`:
//!   congestion or not), and a pathchirp-style coarse quantity prober
//!   with underestimation bias (paper §3.1–3.2).
//! * [`shard`] — [`shard::ShardedSimNet`], the same message model
//!   split into per-island networks behind a deterministic
//!   event-order merge, for 10k–100k-node populations where one
//!   dense delay table stops fitting.
//! * [`errors`] — the four erroneous-label models of §6.3 plus the
//!   δ/p calibration that reproduces Table 3.
//! * [`neighbors`] — random `k`-neighbor sets (the Vivaldi-style
//!   architecture of §5.3) and the disjoint peer sets of §6.4.
//!
//! # Position in the workspace
//!
//! Sits between [`dmf_datasets`] (ground truth the probers measure —
//! one-way delays derive from a [`dmf_datasets::Dataset`]) and
//! `dmf-core`, whose `runner` module drives the DMFSGD node state
//! machines through [`SimNet`] message passing. `dmf-agent` reuses
//! the same [`probe`] instruments against its measurement oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod errors;
pub mod event;
pub mod neighbors;
pub mod net;
pub mod probe;
pub mod shard;

pub use event::{EventQueue, Lane, SimTime};
pub use neighbors::NeighborSets;
pub use net::{Delivery, NetConfig, SimNet};
pub use shard::ShardedSimNet;
