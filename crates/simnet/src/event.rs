//! Deterministic future-event list.
//!
//! A binary-heap priority queue keyed by simulated time with a
//! monotonically increasing sequence number breaking ties, so that two
//! events scheduled for the same instant are delivered in scheduling
//! order. Determinism matters: every experiment in the harness is
//! reproducible from a seed, and a nondeterministic event order would
//! leak scheduling noise into the published numbers.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in seconds since simulation start.
pub type SimTime = f64;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the
        // earliest (time, seq) on top.
        other
            .time
            .partial_cmp(&self.time)
            .expect("NaN simulation time")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by `(time, insertion order)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event
    /// (0 before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is NaN or lies in the past (before [`now`]).
    ///
    /// [`now`]: EventQueue::now
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(!at.is_nan(), "cannot schedule at NaN time");
        assert!(
            at >= self.now,
            "cannot schedule in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` after a relative `delay`.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule_at(4.5, ());
        q.pop();
        assert_eq!(q.now(), 4.5);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, "first");
        q.pop();
        q.schedule_after(3.0, "second");
        assert_eq!(q.pop(), Some((5.0, "second")));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, ());
        q.pop();
        q.schedule_at(5.0, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(f64::NAN, ());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule_at(7.0, 1);
        q.schedule_at(6.0, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(6.0));
    }

    #[test]
    fn interleaved_scheduling_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, 1);
        q.schedule_at(10.0, 4);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.schedule_at(2.0, 2);
        q.schedule_at(5.0, 3);
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((5.0, 3)));
        assert_eq!(q.pop(), Some((10.0, 4)));
    }
}
