//! Deterministic future-event list.
//!
//! Events are delivered in `(time, scheduling order)` — two events at
//! the same instant fire in the order they were scheduled. Determinism
//! matters: every experiment in the harness is reproducible from a
//! seed, and a nondeterministic event order would leak scheduling
//! noise into the published numbers.
//!
//! # Layout (why this is fast)
//!
//! The queue is the single hottest structure of a simulated run
//! (~3 heap operations per probe cycle), so the representation is
//! chosen for cache behaviour rather than simplicity:
//!
//! * **Slab payloads** — heap nodes are 20-byte `(time, seq, slot)`
//!   keys; the event payloads (protocol messages can be ~300 bytes
//!   with inline coordinates) are written once into a reusable slot
//!   slab and never moved during sifts. Freed slots are recycled, so
//!   a steady-state simulation performs no allocation per event.
//! * **Integer keys** — times are non-negative finite `f64`s, whose
//!   IEEE-754 bit patterns order identically to the values; storing
//!   the bits as `u64` makes every sift comparison a branch-free
//!   integer compare instead of a NaN-aware float compare.
//! * **Two lanes** — callers hint whether an event is *near* (message
//!   deliveries, ~milliseconds out) or *far* ([`Lane::Far`]: probe
//!   timers, ~seconds out). The near lane is a 4-ary heap sized by the
//!   genuinely imminent events; the far lane is a timing wheel.
//!   Since the far population (one timer per node) vastly outnumbers
//!   the in-flight messages, this keeps per-delivery work away from
//!   the whole timer population. The lane is purely a performance
//!   hint: ordering is global across both lanes via the shared
//!   `(time, seq)` key, and a far event beyond the wheel horizon
//!   falls back to an overflow heap, so any schedule is correct.
//! * **Timing wheel** — far events hash into a ring of ~1 ms buckets
//!   covering a 2 s horizon, with a bitmap of occupied buckets; push
//!   and pop are O(1) scans instead of O(log n) sifts through the
//!   timer population.

/// Simulated time in seconds since simulation start.
pub type SimTime = f64;

/// Scheduling locality hint. Ordering is identical either way; the
/// lane only decides which internal heap carries the key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// Expected to fire soon relative to other events (default).
    Near,
    /// Expected to fire far in the future (periodic timers).
    Far,
}

/// Min-ordering key; the payload lives in the slab at `slot`.
#[derive(Clone, Copy)]
struct Key {
    /// `SimTime::to_bits()` — valid because times are `>= 0` and not
    /// NaN, for which range the f64 bit pattern is order-preserving.
    time_bits: u64,
    seq: u64,
    slot: u32,
}

impl Key {
    /// Strict `(time, seq)` order; `seq` is globally unique, so two
    /// distinct keys are never equal.
    #[inline]
    fn is_before(&self, other: &Key) -> bool {
        (self.time_bits, self.seq) < (other.time_bits, other.seq)
    }
}

/// A 4-ary min-heap of [`Key`]s.
#[derive(Default)]
struct Heap4 {
    items: Vec<Key>,
}

impl Heap4 {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            items: Vec::with_capacity(capacity),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    #[inline]
    fn peek(&self) -> Option<&Key> {
        self.items.first()
    }

    fn push(&mut self, key: Key) {
        let mut i = self.items.len();
        self.items.push(key);
        // Sift up.
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.items[i].is_before(&self.items[parent]) {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn pop(&mut self) -> Option<Key> {
        let len = self.items.len();
        if len <= 1 {
            return self.items.pop();
        }
        let top = self.items.swap_remove(0);
        // Sift the relocated tail element down.
        let len = len - 1;
        let mut i = 0;
        loop {
            let first_child = 4 * i + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + 4).min(len);
            let mut best = first_child;
            for c in first_child + 1..last_child {
                if self.items[c].is_before(&self.items[best]) {
                    best = c;
                }
            }
            if self.items[best].is_before(&self.items[i]) {
                self.items.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
        Some(top)
    }
}

/// Ring size of the far-lane timing wheel (power of two).
const WHEEL_SLOTS: usize = 2048;
/// Buckets per simulated second (bucket width ≈ 0.98 ms; horizon =
/// `WHEEL_SLOTS / BUCKETS_PER_SECOND` = 2 s).
const BUCKETS_PER_SECOND: f64 = 1024.0;

/// A timing wheel over [`Key`]s: O(1) insert/pop for events within a
/// 2-second horizon of *now*, falling back to a heap beyond it.
///
/// Invariant: every wheeled key satisfies
/// `now ≤ time < now + horizon`, so the ring index
/// `⌊time·BUCKETS_PER_SECOND⌋ mod WHEEL_SLOTS` is unambiguous and a
/// forward bitmap scan from `now`'s bucket finds the earliest event.
#[derive(Default)]
struct Wheel {
    /// Lazily grown to `WHEEL_SLOTS` buckets; each bucket is sorted
    /// *descending* by `(time, seq)` so the minimum pops from the end.
    buckets: Vec<Vec<Key>>,
    /// One bit per bucket: does it hold any key?
    occupied: Vec<u64>,
    /// Keys currently in buckets (not counting `overflow`).
    wheeled: usize,
    /// Far events beyond the wheel horizon at insert time.
    overflow: Heap4,
}

impl Wheel {
    fn len(&self) -> usize {
        self.wheeled + self.overflow.len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn ensure_ring(&mut self) {
        if self.buckets.is_empty() {
            // Pre-size buckets so steady-state churn never grows them:
            // with timers hashed over 2048 buckets, more than four
            // collisions in one ~1 ms bucket is vanishingly rare.
            self.buckets = (0..WHEEL_SLOTS).map(|_| Vec::with_capacity(4)).collect();
            self.occupied = vec![0u64; WHEEL_SLOTS / 64];
        }
    }

    #[inline]
    fn bucket_of(time: SimTime) -> u64 {
        (time * BUCKETS_PER_SECOND) as u64
    }

    fn insert(&mut self, key: Key, now: SimTime) {
        let abs = Self::bucket_of(SimTime::from_bits(key.time_bits));
        if abs >= Self::bucket_of(now) + WHEEL_SLOTS as u64 {
            self.overflow.push(key);
            return;
        }
        self.ensure_ring();
        let idx = (abs as usize) & (WHEEL_SLOTS - 1);
        let bucket = &mut self.buckets[idx];
        // Sorted descending; new keys are usually the bucket's latest
        // (seq grows), so scanning from the front stops immediately.
        let pos = bucket
            .iter()
            .position(|k| k.is_before(&key))
            .unwrap_or(bucket.len());
        bucket.insert(pos, key);
        self.occupied[idx / 64] |= 1 << (idx % 64);
        self.wheeled += 1;
    }

    /// Ring index of the first occupied bucket at or after `now`'s
    /// bucket (`None` when the ring is empty).
    fn first_occupied(&self, now: SimTime) -> Option<usize> {
        if self.wheeled == 0 {
            return None;
        }
        let start = (Self::bucket_of(now) as usize) & (WHEEL_SLOTS - 1);
        let (start_word, start_bit) = (start / 64, start % 64);
        let words = self.occupied.len();
        // First word: mask off bits before `start`.
        let masked = self.occupied[start_word] & (!0u64 << start_bit);
        if masked != 0 {
            return Some(start_word * 64 + masked.trailing_zeros() as usize);
        }
        for step in 1..=words {
            let w = (start_word + step) % words;
            let bits = self.occupied[w];
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    fn peek(&self, now: SimTime) -> Option<&Key> {
        let wheel_min = self
            .first_occupied(now)
            .and_then(|idx| self.buckets[idx].last());
        match (wheel_min, self.overflow.peek()) {
            (None, o) => o,
            (w, None) => w,
            (Some(w), Some(o)) => Some(if w.is_before(o) { w } else { o }),
        }
    }

    fn pop(&mut self, now: SimTime) -> Option<Key> {
        let wheel_idx = self.first_occupied(now);
        let wheel_min = wheel_idx.and_then(|idx| self.buckets[idx].last());
        let take_overflow = match (wheel_min, self.overflow.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(w), Some(o)) => o.is_before(w),
        };
        if take_overflow {
            return self.overflow.pop();
        }
        let idx = wheel_idx.expect("wheel min implies occupied bucket");
        let bucket = &mut self.buckets[idx];
        let key = bucket.pop().expect("occupied bucket cannot be empty");
        if bucket.is_empty() {
            self.occupied[idx / 64] &= !(1 << (idx % 64));
        }
        self.wheeled -= 1;
        Some(key)
    }
}

/// A future-event list ordered by `(time, insertion order)`.
pub struct EventQueue<E> {
    near: Heap4,
    far: Wheel,
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self {
            near: Heap4::default(),
            far: Wheel::default(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// An empty queue with room for `capacity` pending events before
    /// any internal structure reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            near: Heap4::with_capacity(capacity),
            far: Wheel::default(),
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event
    /// (0 before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at` on the given lane.
    ///
    /// # Panics
    /// Panics if `at` is NaN or lies in the past (before [`now`]).
    ///
    /// [`now`]: EventQueue::now
    pub fn schedule_at_on(&mut self, lane: Lane, at: SimTime, event: E) {
        assert!(!at.is_nan(), "cannot schedule at NaN time");
        assert!(
            at >= self.now,
            "cannot schedule in the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slab overflow");
                self.slots.push(Some(event));
                slot
            }
        };
        let key = Key {
            time_bits: at.to_bits(),
            seq,
            slot,
        };
        match lane {
            Lane::Near => self.near.push(key),
            Lane::Far => self.far.insert(key, self.now),
        }
    }

    /// Schedules `event` at absolute time `at` (near lane).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.schedule_at_on(Lane::Near, at, event);
    }

    /// Schedules `event` after a relative `delay` on the given lane.
    pub fn schedule_after_on(&mut self, lane: Lane, delay: SimTime, event: E) {
        assert!(delay >= 0.0, "negative delay {delay}");
        self.schedule_at_on(lane, self.now + delay, event);
    }

    /// Schedules `event` after a relative `delay` (near lane).
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule_after_on(Lane::Near, delay, event);
    }

    /// Which lane holds the earliest event (`None` when empty).
    fn head_lane(&self) -> Option<Lane> {
        match (self.near.peek(), self.far.peek(self.now)) {
            (None, None) => None,
            (Some(_), None) => Some(Lane::Near),
            (None, Some(_)) => Some(Lane::Far),
            (Some(n), Some(f)) => Some(if n.is_before(f) {
                Lane::Near
            } else {
                Lane::Far
            }),
        }
    }

    /// Pops from the given (non-empty) lane and reclaims the slot.
    fn pop_from(&mut self, lane: Lane) -> (SimTime, E) {
        let key = match lane {
            Lane::Near => self.near.pop(),
            Lane::Far => self.far.pop(self.now),
        }
        .expect("head lane cannot be empty");
        let time = SimTime::from_bits(key.time_bits);
        self.now = time;
        let event = self.slots[key.slot as usize]
            .take()
            .expect("slab slot vacated twice");
        self.free.push(key.slot);
        (time, event)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let lane = self.head_lane()?;
        Some(self.pop_from(lane))
    }

    /// Pops the earliest event only if it is due at or before
    /// `deadline`; a later event stays queued (and the clock stays
    /// put). One head lookup instead of a `peek_time` + `pop` pair —
    /// this is the run-loop primitive that lets drivers stop exactly
    /// at a simulated-time budget without overshooting it.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let lane = self.head_lane()?;
        let head = match lane {
            Lane::Near => self.near.peek(),
            Lane::Far => self.far.peek(self.now),
        }
        .expect("head lane cannot be empty");
        if SimTime::from_bits(head.time_bits) > deadline {
            return None;
        }
        Some(self.pop_from(lane))
    }

    /// Full ordering key `(time bits, insertion seq)` of the next
    /// event, without popping it. `pub(crate)`: the sharded merge in
    /// [`crate::shard`] orders shard heads by exactly the key the
    /// queue itself pops by, so the merged stream is the same total
    /// order a single queue would produce.
    pub(crate) fn peek_key(&self) -> Option<(u64, u64)> {
        let key = match (self.near.peek(), self.far.peek(self.now)) {
            (None, None) => return None,
            (Some(n), None) => n,
            (None, Some(f)) => f,
            (Some(n), Some(f)) => {
                if n.is_before(f) {
                    n
                } else {
                    f
                }
            }
        };
        Some((key.time_bits, key.seq))
    }

    /// Overrides the next insertion sequence number. `pub(crate)`: the
    /// sharded net threads one global counter through all shard queues
    /// so same-time events across shards keep a total FIFO order.
    ///
    /// # Panics
    /// Panics if `seq` would reuse an already-issued number.
    pub(crate) fn set_next_seq(&mut self, seq: u64) {
        assert!(seq >= self.next_seq, "seq counter cannot run backwards");
        self.next_seq = seq;
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let bits = match (self.near.peek(), self.far.peek(self.now)) {
            (None, None) => return None,
            (Some(n), None) => n.time_bits,
            (None, Some(f)) => f.time_bits,
            (Some(n), Some(f)) => n.time_bits.min(f.time_bits),
        };
        Some(SimTime::from_bits(bits))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near.len() + self.far.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.near.is_empty() && self.far.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn ties_break_fifo_across_lanes() {
        let mut q = EventQueue::new();
        q.schedule_at_on(Lane::Far, 5.0, "far-first");
        q.schedule_at_on(Lane::Near, 5.0, "near-second");
        q.schedule_at_on(Lane::Far, 5.0, "far-third");
        assert_eq!(q.pop(), Some((5.0, "far-first")));
        assert_eq!(q.pop(), Some((5.0, "near-second")));
        assert_eq!(q.pop(), Some((5.0, "far-third")));
    }

    #[test]
    fn lanes_interleave_by_time() {
        let mut q = EventQueue::new();
        q.schedule_at_on(Lane::Far, 1.0, 1);
        q.schedule_at_on(Lane::Near, 0.5, 0);
        q.schedule_at_on(Lane::Far, 2.0, 3);
        q.schedule_at_on(Lane::Near, 1.5, 2);
        for expect in 0..4 {
            assert_eq!(q.pop().map(|(_, e)| e), Some(expect));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule_at(4.5, ());
        q.pop();
        assert_eq!(q.now(), 4.5);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, "first");
        q.pop();
        q.schedule_after(3.0, "second");
        assert_eq!(q.pop(), Some((5.0, "second")));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, ());
        q.pop();
        q.schedule_at(5.0, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(f64::NAN, ());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule_at(7.0, 1);
        q.schedule_at_on(Lane::Far, 6.0, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(6.0));
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, "a");
        q.schedule_at_on(Lane::Far, 2.0, "b");
        q.schedule_at(3.0, "c");
        assert_eq!(q.pop_before(2.5), Some((1.0, "a")));
        assert_eq!(q.pop_before(2.5), Some((2.0, "b")));
        // "c" is past the deadline: not popped, clock unchanged.
        assert_eq!(q.pop_before(2.5), None);
        assert_eq!(q.now(), 2.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(3.0), Some((3.0, "c")));
        assert_eq!(q.pop_before(99.0), None);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule_at(1.25, "x");
        assert_eq!(q.peek_time(), Some(1.25));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((1.25, "x")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_scheduling_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, 1);
        q.schedule_at(10.0, 4);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.schedule_at(2.0, 2);
        q.schedule_at(5.0, 3);
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((5.0, 3)));
        assert_eq!(q.pop(), Some((10.0, 4)));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::with_capacity(4);
        // Steady-state churn: schedule/pop far more events than the
        // peak pending count; the slab must stay at the peak size.
        for round in 0..1000u32 {
            q.schedule_at(round as f64, round);
            q.schedule_at_on(Lane::Far, round as f64 + 0.5, round + 1_000_000);
            q.pop();
            q.pop();
        }
        assert!(q.is_empty());
        assert!(
            q.slots.len() <= 4,
            "slab grew to {} despite peak pending of 2",
            q.slots.len()
        );
    }

    #[test]
    fn interleaved_random_churn_matches_reference() {
        // Harsher heap exercise: pops interleaved with pushes, so
        // sift-down runs against live populations of both lanes.
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        let mut popped: Vec<(u64, usize)> = Vec::new();
        let mut state = 0xdead_beefu64;
        let mut horizon = 0.0f64;
        let mut id = 0usize;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let action = state % 3;
            if action < 2 {
                let dt = ((state >> 7) % 1000) as f64 / 100.0;
                let t = horizon + dt;
                let lane = if state & 4 == 0 {
                    Lane::Near
                } else {
                    Lane::Far
                };
                q.schedule_at_on(lane, t, id);
                reference.push((t.to_bits(), id));
                id += 1;
            } else if let Some((t, e)) = q.pop() {
                horizon = t;
                popped.push((t.to_bits(), e));
            }
        }
        while let Some((t, e)) = q.pop() {
            popped.push((t.to_bits(), e));
        }
        // Stable sort by time = global (time, insertion order).
        reference.sort_by_key(|&(t, _)| t);
        assert_eq!(popped, reference);
    }

    #[test]
    fn random_workload_matches_reference_sort() {
        // Model: a reference Vec sorted stably by time must match the
        // queue's delivery order exactly, lanes notwithstanding.
        let mut q = EventQueue::new();
        let mut reference: Vec<(f64, usize)> = Vec::new();
        let mut state = 0x9e37_79b9u64;
        for i in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            let lane = if state & 1 == 0 {
                Lane::Near
            } else {
                Lane::Far
            };
            q.schedule_at_on(lane, t, i);
            reference.push((t, i));
        }
        reference.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (t, i) in reference {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }
}
