//! Centralized matrix factorization baselines.
//!
//! The paper's §2 positions DMFSGD against centralized approaches
//! that "collect and process the measurements at a central node"
//! (its own Figure 2 architecture before decentralization, MMMF \[20\],
//! IDES \[13\]). These baselines optimize the *same* regularized
//! objective (paper eq. 3) with full access to the observed matrix:
//!
//! * [`batch_gd`] — full-gradient descent for any loss (hinge,
//!   logistic, L2);
//! * [`als`] — alternating least squares for the L2 loss, solving
//!   exact `r × r` normal equations per row.
//!
//! The decentralized algorithm should approach their accuracy while
//! touching only per-node data — that comparison is an ablation the
//! benchmark harness reports.

use dmf_core::loss::Loss;
use dmf_datasets::ClassMatrix;
use dmf_linalg::decomp::solve;
use dmf_linalg::{Mask, Matrix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A factorization result `X̂ = U Vᵀ`.
#[derive(Clone, Debug)]
pub struct Factorization {
    /// `n × r` row factors.
    pub u: Matrix,
    /// `n × r` column factors.
    pub v: Matrix,
}

impl Factorization {
    /// Random uniform `[0, 1)` initialization (matching DMFSGD).
    pub fn random(n: usize, rank: usize, rng: &mut impl Rng) -> Self {
        Self {
            u: Matrix::from_fn(n, rank, |_, _| rng.gen::<f64>()),
            v: Matrix::from_fn(n, rank, |_, _| rng.gen::<f64>()),
        }
    }

    /// The predicted score for a pair.
    pub fn predict(&self, i: usize, j: usize) -> f64 {
        Matrix::dot(self.u.row(i), self.v.row(j))
    }

    /// Materializes all pairwise scores (diagonal zeroed).
    pub fn predicted_scores(&self) -> Matrix {
        let n = self.u.rows();
        Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { self.predict(i, j) })
    }

    /// The regularized objective (paper eq. 3) over observed entries.
    pub fn objective(&self, values: &Matrix, mask: &Mask, loss: Loss, lambda: f64) -> f64 {
        let mut total = 0.0;
        for (i, j) in mask.iter_known() {
            total += loss.value(values[(i, j)], self.predict(i, j));
        }
        let reg: f64 = self
            .u
            .as_slice()
            .iter()
            .chain(self.v.as_slice().iter())
            .map(|x| x * x)
            .sum();
        total + lambda * reg
    }
}

/// Batch gradient descent on the full observed matrix.
///
/// Runs `iters` full passes; each pass computes the exact gradient of
/// eq. 3 over all observed entries and steps with learning rate `eta`
/// (per-entry scaling keeps `eta` comparable to the SGD step).
#[allow(clippy::too_many_arguments)] // mirrors the paper's hyper-parameter list
pub fn batch_gd(
    values: &Matrix,
    mask: &Mask,
    rank: usize,
    loss: Loss,
    eta: f64,
    lambda: f64,
    iters: usize,
    seed: u64,
) -> Factorization {
    assert!(values.is_square(), "pairwise matrix must be square");
    let n = values.rows();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut f = Factorization::random(n, rank, &mut rng);
    let observed = mask.count_known().max(1);
    let step = eta / (observed as f64 / n as f64); // normalize per-row visits

    for _ in 0..iters {
        let mut grad_u = Matrix::zeros(n, rank);
        let mut grad_v = Matrix::zeros(n, rank);
        for (i, j) in mask.iter_known() {
            let xhat = f.predict(i, j);
            let g = loss.gradient_factor(values[(i, j)], xhat);
            if g != 0.0 {
                for k in 0..rank {
                    grad_u[(i, k)] += g * f.v[(j, k)];
                    grad_v[(j, k)] += g * f.u[(i, k)];
                }
            }
        }
        for i in 0..n {
            for k in 0..rank {
                f.u[(i, k)] -= step * (grad_u[(i, k)] + lambda * f.u[(i, k)]);
                f.v[(i, k)] -= step * (grad_v[(i, k)] + lambda * f.v[(i, k)]);
            }
        }
    }
    f
}

/// Convenience: batch GD on a class matrix.
pub fn batch_gd_class(
    class: &ClassMatrix,
    rank: usize,
    loss: Loss,
    eta: f64,
    lambda: f64,
    iters: usize,
    seed: u64,
) -> Factorization {
    batch_gd(
        &class.labels,
        &class.mask,
        rank,
        loss,
        eta,
        lambda,
        iters,
        seed,
    )
}

/// Alternating least squares for the L2 loss.
///
/// Fixing `V`, each row `u_i` has a closed-form ridge solution
/// `(Σ_j v_j v_jᵀ + λI)⁻¹ Σ_j x_ij v_j` over observed `j`; then roles
/// swap. Monotone decrease of the objective is guaranteed.
pub fn als(
    values: &Matrix,
    mask: &Mask,
    rank: usize,
    lambda: f64,
    iters: usize,
    seed: u64,
) -> Factorization {
    assert!(values.is_square(), "pairwise matrix must be square");
    assert!(lambda > 0.0, "ALS needs lambda > 0 for well-posed solves");
    let n = values.rows();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut f = Factorization::random(n, rank, &mut rng);

    for _ in 0..iters {
        // Solve for each u_i given V.
        for i in 0..n {
            if let Some(u_i) = ridge_row(values, mask, &f.v, i, lambda, rank, RowKind::U) {
                f.u.row_mut(i).copy_from_slice(&u_i);
            }
        }
        // Solve for each v_j given U.
        for j in 0..n {
            if let Some(v_j) = ridge_row(values, mask, &f.u, j, lambda, rank, RowKind::V) {
                f.v.row_mut(j).copy_from_slice(&v_j);
            }
        }
    }
    f
}

enum RowKind {
    /// Solving `u_i` from observed `x_i·` against `V` rows.
    U,
    /// Solving `v_j` from observed `x_·j` against `U` rows.
    V,
}

fn ridge_row(
    values: &Matrix,
    mask: &Mask,
    other: &Matrix,
    idx: usize,
    lambda: f64,
    rank: usize,
    kind: RowKind,
) -> Option<Vec<f64>> {
    let n = values.rows();
    let mut gram = Matrix::zeros(rank, rank);
    let mut rhs = vec![0.0; rank];
    let mut seen = false;
    for t in 0..n {
        let (known, x) = match kind {
            RowKind::U => (mask.is_known(idx, t), values[(idx, t)]),
            RowKind::V => (mask.is_known(t, idx), values[(t, idx)]),
        };
        if !known {
            continue;
        }
        seen = true;
        let row = other.row(t);
        for a in 0..rank {
            rhs[a] += x * row[a];
            for b in 0..rank {
                gram[(a, b)] += row[a] * row[b];
            }
        }
    }
    if !seen {
        return None; // no observations touch this row; keep it as-is
    }
    for a in 0..rank {
        gram[(a, a)] += lambda;
    }
    solve(&gram, &rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::rtt::meridian_like;
    use dmf_eval::{collect_scores, roc::auc};

    #[test]
    fn batch_gd_reaches_high_training_auc() {
        let d = meridian_like(60, 1);
        let cm = d.classify(d.median());
        let f = batch_gd_class(&cm, 10, Loss::Logistic, 0.1, 0.1, 150, 7);
        let a = auc(&collect_scores(&cm, &f.predicted_scores()));
        assert!(a > 0.9, "centralized batch GD AUC {a}");
    }

    #[test]
    fn batch_gd_decreases_objective() {
        let d = meridian_like(40, 2);
        let cm = d.classify(d.median());
        let early = batch_gd_class(&cm, 8, Loss::Logistic, 0.1, 0.1, 2, 3);
        let late = batch_gd_class(&cm, 8, Loss::Logistic, 0.1, 0.1, 60, 3);
        let obj_early = early.objective(&cm.labels, &cm.mask, Loss::Logistic, 0.1);
        let obj_late = late.objective(&cm.labels, &cm.mask, Loss::Logistic, 0.1);
        assert!(
            obj_late < obj_early,
            "objective should fall: {obj_early} → {obj_late}"
        );
    }

    #[test]
    fn als_objective_monotone() {
        let d = meridian_like(30, 3);
        // Scale values near 1 for a conditioned L2 problem.
        let med = d.median();
        let scaled = d.values.scale(1.0 / med);
        let one_iter = als(&scaled, &d.mask, 6, 0.1, 1, 5);
        let five_iter = als(&scaled, &d.mask, 6, 0.1, 5, 5);
        let o1 = one_iter.objective(&scaled, &d.mask, Loss::L2, 0.1);
        let o5 = five_iter.objective(&scaled, &d.mask, Loss::L2, 0.1);
        assert!(o5 <= o1 + 1e-9, "ALS objective must not rise: {o1} → {o5}");
    }

    #[test]
    fn als_fits_low_rank_matrix_exactly() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let truth = dmf_linalg::svd::random_low_rank(25, 25, 4, &mut rng);
        let mask = Mask::full_off_diagonal(25);
        let f = als(&truth, &mask, 6, 1e-6, 20, 1);
        let mut max_err = 0.0f64;
        for (i, j) in mask.iter_known() {
            max_err = max_err.max((f.predict(i, j) - truth[(i, j)]).abs());
        }
        assert!(max_err < 0.05, "ALS max reconstruction error {max_err}");
    }

    #[test]
    fn factorization_prediction_consistency() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let f = Factorization::random(5, 3, &mut rng);
        let scores = f.predicted_scores();
        assert_eq!(scores[(1, 2)], f.predict(1, 2));
        assert_eq!(scores[(3, 3)], 0.0);
    }
}
