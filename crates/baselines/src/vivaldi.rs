//! Vivaldi network coordinates (Dabek, Cox, Kaashoek, Morris —
//! SIGCOMM 2004).
//!
//! Each node holds a point in a low-dimensional Euclidean space plus a
//! non-negative *height* modeling its access link; the RTT estimate
//! between two nodes is the Euclidean distance between their points
//! plus both heights. Measurements relax a virtual spring between the
//! two nodes, weighted by relative confidence, which is the adaptive
//! timestep of the original paper.
//!
//! Vivaldi is the architectural template DMFSGD cites (§5.3) and the
//! canonical quantity-based RTT predictor; it also illustrates what
//! matrix factorization fixes: Euclidean embeddings cannot express
//! triangle-inequality violations, while `u · v` factorizations can.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tunables of the Vivaldi algorithm (defaults from the paper).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VivaldiConfig {
    /// Embedding dimension (excluding height).
    pub dims: usize,
    /// Coordinate timestep gain `c_c`.
    pub cc: f64,
    /// Error-estimate gain `c_e`.
    pub ce: f64,
    /// Minimum height (keeps the height positive).
    pub min_height: f64,
}

impl Default for VivaldiConfig {
    fn default() -> Self {
        Self {
            dims: 2,
            cc: 0.25,
            ce: 0.25,
            min_height: 1e-3,
        }
    }
}

/// One node's Vivaldi state.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct VivaldiNode {
    position: Vec<f64>,
    height: f64,
    /// Local error estimate in (0, 1].
    error: f64,
}

/// A Vivaldi coordinate system over `n` nodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vivaldi {
    config: VivaldiConfig,
    nodes: Vec<VivaldiNode>,
    observations: usize,
}

impl Vivaldi {
    /// Initializes all nodes at small random positions (breaking the
    /// symmetry of the all-zero start).
    pub fn new(n: usize, config: VivaldiConfig, rng: &mut impl Rng) -> Self {
        assert!(n >= 2, "need at least two nodes");
        assert!(config.dims >= 1, "need at least one dimension");
        let nodes = (0..n)
            .map(|_| VivaldiNode {
                position: (0..config.dims).map(|_| rng.gen::<f64>() * 1e-3).collect(),
                height: config.min_height,
                error: 1.0,
            })
            .collect();
        Self {
            config,
            nodes,
            observations: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the system has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Measurements processed.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// The RTT estimate between `i` and `j` (symmetric).
    pub fn estimate(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let a = &self.nodes[i];
        let b = &self.nodes[j];
        euclidean(&a.position, &b.position) + a.height + b.height
    }

    /// Local error estimate of node `i`.
    pub fn node_error(&self, i: usize) -> f64 {
        self.nodes[i].error
    }

    /// Processes one RTT measurement between `i` and `j` (node `i` is
    /// the observer, as in the original protocol).
    pub fn observe(&mut self, i: usize, j: usize, rtt: f64, rng: &mut impl Rng) {
        assert!(i != j, "self-measurement");
        assert!(rtt > 0.0, "RTT must be positive, got {rtt}");
        let predicted = self.estimate(i, j);
        let (e_i, e_j) = (self.nodes[i].error, self.nodes[j].error);

        // Confidence weight: how much node i trusts itself vs node j.
        let w = e_i / (e_i + e_j);
        // Relative error of this sample.
        let es = (predicted - rtt).abs() / rtt;
        // Update the local error estimate (EWMA weighted by w).
        self.nodes[i].error =
            (es * self.config.ce * w + e_i * (1.0 - self.config.ce * w)).clamp(1e-6, 1.0);

        // Move along the unit vector away from/toward j.
        let delta = self.config.cc * w;
        let force = rtt - predicted; // >0: too close, push apart
        let (dir, dist) = {
            let pi = &self.nodes[i].position;
            let pj = &self.nodes[j].position;
            let mut d: Vec<f64> = pi.iter().zip(pj.iter()).map(|(a, b)| a - b).collect();
            let norm = d.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-9 {
                // Coincident points: pick a random direction.
                for x in d.iter_mut() {
                    *x = rng.gen::<f64>() - 0.5;
                }
                let n2 = d.iter().map(|x| x * x).sum::<f64>().sqrt();
                for x in d.iter_mut() {
                    *x /= n2;
                }
                (d, 0.0)
            } else {
                for x in d.iter_mut() {
                    *x /= norm;
                }
                (d, norm)
            }
        };
        let _ = dist;
        let node = &mut self.nodes[i];
        for (p, u) in node.position.iter_mut().zip(dir.iter()) {
            *p += delta * force * u;
        }
        // Height absorbs the residual shared by all of i's paths.
        node.height = (node.height + delta * force).max(self.config.min_height);
        self.observations += 1;
    }

    /// Median relative estimation error over the observed entries of a
    /// ground-truth matrix (evaluation helper).
    pub fn median_relative_error(&self, dataset: &dmf_datasets::Dataset) -> f64 {
        let mut errs: Vec<f64> = dataset
            .mask
            .iter_known()
            .map(|(i, j)| {
                let truth = dataset.values[(i, j)];
                (self.estimate(i, j) - truth).abs() / truth
            })
            .collect();
        assert!(!errs.is_empty(), "empty dataset");
        errs.sort_by(|a, b| a.partial_cmp(b).expect("NaN error"));
        dmf_linalg::stats::percentile_of_sorted(&errs, 50.0)
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::rtt::meridian_like;
    use dmf_simnet::NeighborSets;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn estimates_symmetric_and_zero_diagonal() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v = Vivaldi::new(10, VivaldiConfig::default(), &mut rng);
        assert_eq!(v.estimate(3, 3), 0.0);
        assert!((v.estimate(1, 2) - v.estimate(2, 1)).abs() < 1e-12);
        assert!(v.estimate(1, 2) >= 2.0 * VivaldiConfig::default().min_height);
    }

    #[test]
    fn learns_rtt_structure() {
        let d = meridian_like(60, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut viv = Vivaldi::new(60, VivaldiConfig::default(), &mut rng);
        let neighbors = NeighborSets::random(60, 10, &mut rng);
        let initial = viv.median_relative_error(&d);
        for _ in 0..60 * 400 {
            let i = rng.gen_range(0..60);
            let j = neighbors.sample_neighbor(i, &mut rng);
            viv.observe(i, j, d.values[(i, j)], &mut rng);
        }
        let trained = viv.median_relative_error(&d);
        assert!(
            trained < initial * 0.5,
            "vivaldi should at least halve the error: {initial} → {trained}"
        );
        assert!(trained < 0.5, "trained median relative error {trained}");
    }

    #[test]
    fn error_estimates_shrink_with_training() {
        let d = meridian_like(40, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut viv = Vivaldi::new(40, VivaldiConfig::default(), &mut rng);
        let neighbors = NeighborSets::random(40, 8, &mut rng);
        for _ in 0..40 * 300 {
            let i = rng.gen_range(0..40);
            let j = neighbors.sample_neighbor(i, &mut rng);
            viv.observe(i, j, d.values[(i, j)], &mut rng);
        }
        let avg_err: f64 = (0..40).map(|i| viv.node_error(i)).sum::<f64>() / 40.0;
        assert!(
            avg_err < 0.7,
            "confidence should improve, avg error {avg_err}"
        );
    }

    #[test]
    fn heights_stay_positive() {
        let d = meridian_like(30, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut viv = Vivaldi::new(30, VivaldiConfig::default(), &mut rng);
        for _ in 0..5000 {
            let i = rng.gen_range(0..30usize);
            let j = (i + 1 + rng.gen_range(0..29usize)) % 30;
            if i != j {
                viv.observe(i, j, d.values[(i, j)], &mut rng);
            }
        }
        for i in 0..30 {
            assert!(viv.nodes[i].height >= VivaldiConfig::default().min_height);
        }
    }

    #[test]
    #[should_panic(expected = "self-measurement")]
    fn self_measurement_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut viv = Vivaldi::new(5, VivaldiConfig::default(), &mut rng);
        viv.observe(2, 2, 10.0, &mut rng);
    }

    #[test]
    fn observation_counter() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut viv = Vivaldi::new(5, VivaldiConfig::default(), &mut rng);
        viv.observe(0, 1, 50.0, &mut rng);
        viv.observe(1, 2, 60.0, &mut rng);
        assert_eq!(viv.observations(), 2);
    }
}
