//! # dmf-baselines
//!
//! Reference algorithms the paper compares against (or that situate
//! DMFSGD in the literature):
//!
//! * [`vivaldi`] — the Vivaldi network coordinate system [Dabek et
//!   al., SIGCOMM 2004]: spring-relaxation Euclidean + height
//!   coordinates. DMFSGD borrows its architecture (random neighbor
//!   sets, probe-one-at-a-time); Vivaldi is the classical
//!   quantity-based predictor for RTT.
//! * [`centralized`] — centralized matrix factorization on the full
//!   observed matrix: batch gradient descent for the classification
//!   losses and alternating least squares for L2. The decentralized
//!   SGD should approach these (they optimize the same objective with
//!   full data access).
//! * [`selection`] — peer-selection reference strategies: the oracle
//!   (true-best) selector and score-matrix builders for it.
//!
//! # Position in the workspace
//!
//! Consumes the same substrate as the main algorithm so comparisons
//! are apples-to-apples: datasets from [`dmf_datasets`], losses from
//! [`dmf_core::loss`], linear solves from [`dmf_linalg`], and the
//! evaluation criteria of [`dmf_eval`]. `dmf-bench` pits these
//! baselines against DMFSGD in the ablation binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralized;
pub mod selection;
pub mod vivaldi;

pub use vivaldi::Vivaldi;
