//! Peer-selection reference strategies.
//!
//! The paper's Figure 7 compares DMFSGD-driven selection against
//! *random* selection (implemented as a strategy in
//! `dmf_eval::peersel`); the natural upper bound is the *oracle*
//! selector that sees the true quantities. This module builds the
//! score matrices those references need.

use dmf_datasets::Dataset;
use dmf_linalg::Matrix;

/// A score matrix under which "higher is better" coincides with the
/// true metric ordering: the oracle for
/// [`dmf_eval::peersel::SelectionStrategy::HighestScore`].
pub fn oracle_scores(dataset: &Dataset) -> Matrix {
    let n = dataset.len();
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            return 0.0;
        }
        match dataset.value(i, j) {
            // Negate RTT so smaller RTT = larger score; ABW is already
            // higher-is-better.
            Some(v) => {
                if dataset.metric.lower_is_better() {
                    -v
                } else {
                    v
                }
            }
            // Unobserved pairs get the worst possible score.
            None => f64::NEG_INFINITY,
        }
    })
}

/// A constant score matrix: makes `HighestScore` behave like a
/// deterministic arbitrary choice (useful as a degenerate control in
/// ablations — it should perform like random selection on average).
pub fn constant_scores(n: usize) -> Matrix {
    Matrix::zeros(n, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::rtt::meridian_like;
    use dmf_eval::peersel::{evaluate_peer_selection, SelectionStrategy};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn oracle_scores_achieve_unit_stretch_rtt() {
        let d = meridian_like(40, 1);
        let scores = oracle_scores(&d);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let peer_sets: Vec<Vec<usize>> = (0..40)
            .map(|i| (0..40).filter(|&p| p != i).take(12).collect())
            .collect();
        let out = evaluate_peer_selection(
            &d,
            d.median(),
            &peer_sets,
            SelectionStrategy::HighestScore(&scores),
            &mut rng,
        );
        assert!((out.avg_stretch - 1.0).abs() < 1e-12);
        assert_eq!(out.unsatisfied_fraction, 0.0);
    }

    #[test]
    fn oracle_scores_achieve_unit_stretch_abw() {
        let d = hps3_like(40, 2);
        let scores = oracle_scores(&d);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let peer_sets: Vec<Vec<usize>> = (0..40)
            .map(|i| (0..40).filter(|&p| p != i).take(12).collect())
            .collect();
        let out = evaluate_peer_selection(
            &d,
            d.median(),
            &peer_sets,
            SelectionStrategy::HighestScore(&scores),
            &mut rng,
        );
        assert!(
            (out.avg_stretch - 1.0).abs() < 1e-12,
            "stretch {}",
            out.avg_stretch
        );
        assert_eq!(out.unsatisfied_fraction, 0.0);
    }

    #[test]
    fn oracle_beats_random() {
        let d = meridian_like(50, 3);
        let scores = oracle_scores(&d);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let peer_sets: Vec<Vec<usize>> = (0..50)
            .map(|i| (0..50).filter(|&p| p != i).take(15).collect())
            .collect();
        let oracle = evaluate_peer_selection(
            &d,
            d.median(),
            &peer_sets,
            SelectionStrategy::HighestScore(&scores),
            &mut rng,
        );
        let random = evaluate_peer_selection(
            &d,
            d.median(),
            &peer_sets,
            SelectionStrategy::Random,
            &mut rng,
        );
        assert!(oracle.avg_stretch < random.avg_stretch);
        assert!(oracle.unsatisfied_fraction <= random.unsatisfied_fraction);
    }

    #[test]
    fn constant_scores_shape() {
        let m = constant_scores(7);
        assert_eq!(m.shape(), (7, 7));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }
}
