//! In-memory duplex byte pipe for driving the service without
//! sockets: [`loopback_pair`].
//!
//! The load generator, the examples and the threaded conformance
//! tests all need a transport, but the container the differential
//! suite runs in may not allow binding sockets — and a socket adds
//! nothing to what those tests measure. The loopback pipe is the
//! minimal stand-in: two endpoints, each endpoint's `send` feeding
//! the peer's `recv`, with blocking reads (condvar, no spinning) and
//! explicit close semantics. Anything that speaks bytes over it —
//! [`serve_loopback`](crate::connection::serve_loopback) on one side,
//! a [`ServiceClient`](crate::client::ServiceClient) pump on the
//! other — would speak identically over a TCP stream.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// One direction of the pipe.
struct Channel {
    state: Mutex<ChannelState>,
    readable: Condvar,
}

struct ChannelState {
    bytes: VecDeque<u8>,
    closed: bool,
}

impl Channel {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(ChannelState {
                bytes: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
        })
    }

    fn send(&self, bytes: &[u8]) {
        let mut st = self.state.lock().expect("pipe lock");
        if !st.closed {
            st.bytes.extend(bytes);
            self.readable.notify_all();
        }
    }

    /// Blocks until bytes arrive or the channel closes; drains
    /// everything available into `buf`. Returns the byte count (0 =
    /// closed and drained).
    fn recv(&self, buf: &mut Vec<u8>) -> usize {
        let mut st = self.state.lock().expect("pipe lock");
        while st.bytes.is_empty() && !st.closed {
            st = self.readable.wait(st).expect("pipe lock");
        }
        let n = st.bytes.len();
        buf.extend(st.bytes.drain(..));
        n
    }

    fn try_recv(&self, buf: &mut Vec<u8>) -> usize {
        let mut st = self.state.lock().expect("pipe lock");
        let n = st.bytes.len();
        buf.extend(st.bytes.drain(..));
        n
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("pipe lock");
        st.closed = true;
        self.readable.notify_all();
    }
}

/// One end of an in-memory duplex byte pipe (create with
/// [`loopback_pair`]). Cloning an endpoint shares it.
#[derive(Clone)]
pub struct LoopbackEndpoint {
    tx: Arc<Channel>,
    rx: Arc<Channel>,
}

impl LoopbackEndpoint {
    /// Queues `bytes` for the peer (dropped silently if the peer
    /// closed — matching what a socket write after FIN amounts to).
    pub fn send(&self, bytes: &[u8]) {
        self.tx.send(bytes);
    }

    /// Blocks until the peer sends or closes; appends everything
    /// available to `buf` and returns the count (0 means the peer
    /// closed and the pipe is drained).
    pub fn recv(&self, buf: &mut Vec<u8>) -> usize {
        self.rx.recv(buf)
    }

    /// Non-blocking [`recv`](Self::recv): appends whatever is queued
    /// right now (possibly nothing).
    pub fn try_recv(&self, buf: &mut Vec<u8>) -> usize {
        self.rx.try_recv(buf)
    }

    /// Closes the direction the peer reads from; their `recv` drains
    /// the backlog, then returns 0.
    pub fn close(&self) {
        self.tx.close();
    }
}

/// Creates a connected pair of duplex endpoints.
pub fn loopback_pair() -> (LoopbackEndpoint, LoopbackEndpoint) {
    let a2b = Channel::new();
    let b2a = Channel::new();
    (
        LoopbackEndpoint {
            tx: a2b.clone(),
            rx: b2a.clone(),
        },
        LoopbackEndpoint { tx: b2a, rx: a2b },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bytes_flow_both_ways() {
        let (a, b) = loopback_pair();
        a.send(b"ping");
        let mut buf = Vec::new();
        assert_eq!(b.recv(&mut buf), 4);
        assert_eq!(buf, b"ping");
        b.send(b"pong");
        buf.clear();
        assert_eq!(a.recv(&mut buf), 4);
        assert_eq!(buf, b"pong");
    }

    #[test]
    fn close_wakes_a_blocked_reader_after_the_backlog_drains() {
        let (a, b) = loopback_pair();
        a.send(b"tail");
        a.close();
        let mut buf = Vec::new();
        assert_eq!(b.recv(&mut buf), 4);
        assert_eq!(b.recv(&mut buf), 0);

        // A reader blocked with nothing queued is woken by close.
        let (c, d) = loopback_pair();
        let t = thread::spawn(move || {
            let mut buf = Vec::new();
            d.recv(&mut buf)
        });
        c.close();
        assert_eq!(t.join().expect("reader thread"), 0);
    }

    #[test]
    fn try_recv_never_blocks() {
        let (a, b) = loopback_pair();
        let mut buf = Vec::new();
        assert_eq!(b.try_recv(&mut buf), 0);
        a.send(b"x");
        assert_eq!(b.try_recv(&mut buf), 1);
    }
}
