//! Service-side observability: [`ServiceMetrics`].
//!
//! One `ServiceMetrics` instruments one [`PredictionService`](crate::PredictionService) and
//! every connection serving it: request counters by type, error and
//! overload counters, the admission-window depth, a per-request
//! latency histogram, per-shard update counters, and the live quality
//! surface — a rolling AUC over recently observed `(measurement,
//! prediction)` pairs recorded on the update path, where ground truth
//! arrives. Health is computed from the same signals through a
//! declared [`HealthPolicy`].
//!
//! Hot-path discipline: every per-request record is a handful of
//! relaxed atomics plus (on updates only) one ring-slot write behind
//! the quality mutex. The derived gauges (rolling AUC, staleness,
//! health state) are refreshed lazily — at snapshot and health time —
//! so serving traffic never pays for them.
//!
//! Instrumentation is opt-in per connection
//! ([`ServerConnection::with_metrics`](crate::ServerConnection::with_metrics)
//! (crate::connection::ServerConnection::with_metrics)); connections
//! built without it serve exactly as before. The full metric
//! reference lives in `docs/operations.md` and is cross-checked
//! against this module's registrations by CI.

use crate::protocol::MetricsFormat;
use dmf_ops::{
    Counter, Gauge, Health, HealthPolicy, HealthSignals, Histogram, LiveQuality, MetricDesc,
    MetricsSnapshot, Registry, Unit,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default capacity of the live quality window (recent update pairs
/// the rolling AUC is computed over).
pub const DEFAULT_QUALITY_WINDOW: usize = 512;

/// Latency bucket bounds in microseconds for
/// `dmf_service_request_latency_us` (an overflow bucket is implicit).
pub const LATENCY_BUCKETS_US: [u64; 11] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
];

/// Which request type a sample belongs to — the `type` label of
/// `dmf_service_requests_total`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// [`Request::Predict`](crate::protocol::Request::Predict).
    Predict,
    /// [`Request::PredictClass`](crate::protocol::Request::PredictClass).
    PredictClass,
    /// [`Request::RankNeighbors`](crate::protocol::Request::RankNeighbors).
    Rank,
    /// [`Request::Update`](crate::protocol::Request::Update).
    Update,
    /// [`Request::Snapshot`](crate::protocol::Request::Snapshot).
    Snapshot,
    /// [`Request::Metrics`](crate::protocol::Request::Metrics).
    Metrics,
    /// [`Request::Health`](crate::protocol::Request::Health).
    Health,
}

impl RequestKind {
    /// All kinds, in label order.
    pub const ALL: [RequestKind; 7] = [
        RequestKind::Predict,
        RequestKind::PredictClass,
        RequestKind::Rank,
        RequestKind::Update,
        RequestKind::Snapshot,
        RequestKind::Metrics,
        RequestKind::Health,
    ];

    /// The `type` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Predict => "predict",
            RequestKind::PredictClass => "predict_class",
            RequestKind::Rank => "rank",
            RequestKind::Update => "update",
            RequestKind::Snapshot => "snapshot",
            RequestKind::Metrics => "metrics",
            RequestKind::Health => "health",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("in ALL")
    }
}

/// Metrics, quality window and health rules for one service (see the
/// [module docs](self)). Share it via `Arc` between the connections
/// serving one [`PredictionService`](crate::PredictionService).
pub struct ServiceMetrics {
    registry: Registry,
    requests: [Counter; RequestKind::ALL.len()],
    request_errors: Counter,
    overload_rejections: Counter,
    in_flight: Gauge,
    latency: Histogram,
    shard_updates: Vec<Counter>,
    shard_queue_depth: Vec<Gauge>,
    worker_batch: Histogram,
    rolling_auc: Gauge,
    quality_samples: Gauge,
    staleness: Gauge,
    health_state: Gauge,
    quality: LiveQuality,
    policy: Mutex<HealthPolicy>,
    /// Process-local time origin for staleness.
    epoch: Instant,
    /// Milliseconds since `epoch` of the last applied update;
    /// `u64::MAX` = no update applied yet.
    last_update_ms: AtomicU64,
}

impl ServiceMetrics {
    /// Metrics for a service with `shards` shards, the
    /// [`DEFAULT_QUALITY_WINDOW`] and the default [`HealthPolicy`].
    pub fn new(shards: usize) -> Self {
        Self::with_quality_window(shards, DEFAULT_QUALITY_WINDOW)
    }

    /// As [`new`](Self::new) with an explicit quality-window capacity
    /// (must be at least 1).
    pub fn with_quality_window(shards: usize, window: usize) -> Self {
        let registry = Registry::new();
        let requests = RequestKind::ALL.map(|k| {
            registry.counter(MetricDesc::labeled(
                "dmf_service_requests_total",
                "Requests executed, by request type.",
                Unit::None,
                "type",
                k.as_str(),
            ))
        });
        let request_errors = registry.counter(MetricDesc::plain(
            "dmf_service_request_errors_total",
            "Requests answered with an error response.",
            Unit::None,
        ));
        let overload_rejections = registry.counter(MetricDesc::plain(
            "dmf_service_overload_rejections_total",
            "Requests rejected at admission because the in-flight window was full.",
            Unit::None,
        ));
        let in_flight = registry.gauge(MetricDesc::plain(
            "dmf_service_in_flight",
            "Requests admitted and not yet executed (admission-window depth).",
            Unit::None,
        ));
        let latency = registry.histogram(
            MetricDesc::plain(
                "dmf_service_request_latency_us",
                "Per-request execution latency in microseconds.",
                Unit::Micros,
            ),
            &LATENCY_BUCKETS_US,
        );
        let shard_updates = (0..shards)
            .map(|s| {
                registry.counter(MetricDesc::labeled(
                    "dmf_service_shard_updates_total",
                    "Measurement updates applied, by owning shard.",
                    Unit::None,
                    "shard",
                    s.to_string(),
                ))
            })
            .collect();
        let shard_queue_depth = (0..shards)
            .map(|s| {
                registry.gauge(MetricDesc::labeled(
                    "dmf_service_shard_queue_depth",
                    "Pending updates in the shard's bounded write queue, by owning shard.",
                    Unit::None,
                    "shard",
                    s.to_string(),
                ))
            })
            .collect();
        let worker_batch = registry.histogram(
            MetricDesc::plain(
                "dmf_service_worker_batch_size",
                "Updates drained per write-lock acquisition (combiner or worker batch).",
                Unit::None,
            ),
            &crate::worker::DIST_BUCKETS,
        );
        let rolling_auc = registry.gauge(MetricDesc::plain(
            "dmf_service_rolling_auc",
            "Rolling AUC over the live quality window (NaN while undefined).",
            Unit::Ratio,
        ));
        let quality_samples = registry.gauge(MetricDesc::plain(
            "dmf_service_quality_samples",
            "Pairs currently held in the live quality window.",
            Unit::Samples,
        ));
        let staleness = registry.gauge(MetricDesc::plain(
            "dmf_service_update_staleness_seconds",
            "Seconds since the last applied update (NaN before the first).",
            Unit::Seconds,
        ));
        let health_state = registry.gauge(MetricDesc::plain(
            "dmf_service_health_state",
            "Health verdict: 0 healthy, 1 degraded, 2 unready.",
            Unit::None,
        ));
        rolling_auc.set(f64::NAN);
        staleness.set(f64::NAN);
        health_state.set(f64::from(
            Health::Unready {
                reason: String::new(),
            }
            .code(),
        ));
        Self {
            registry,
            requests,
            request_errors,
            overload_rejections,
            in_flight,
            latency,
            shard_updates,
            shard_queue_depth,
            worker_batch,
            rolling_auc,
            quality_samples,
            staleness,
            health_state,
            quality: LiveQuality::new(window),
            policy: Mutex::new(HealthPolicy::default()),
            epoch: Instant::now(),
            last_update_ms: AtomicU64::new(u64::MAX),
        }
    }

    /// The live quality window (shared with whatever records into it).
    pub fn quality(&self) -> &LiveQuality {
        &self.quality
    }

    /// Replaces the health rules (takes effect on the next
    /// [`health`](Self::health) evaluation).
    pub fn set_health_policy(&self, policy: HealthPolicy) {
        *self.policy.lock().expect("policy lock") = policy;
    }

    /// Records one executed request: its type, whether it was
    /// answered successfully, and its execution latency.
    pub fn record_request(&self, kind: RequestKind, ok: bool, latency_us: u64) {
        self.requests[kind.index()].inc();
        if !ok {
            self.request_errors.inc();
        }
        self.latency.observe(latency_us);
    }

    /// Records an admission rejection ([`ErrorCode::Overloaded`](crate::protocol::ErrorCode::Overloaded)
    /// (crate::protocol::ErrorCode::Overloaded)).
    pub fn record_overload(&self) {
        self.overload_rejections.inc();
    }

    /// Publishes the current admission-window depth.
    pub fn set_in_flight(&self, depth: usize) {
        self.in_flight.set(depth as f64);
    }

    /// Records an applied update: bumps the owning shard's counter,
    /// feeds the quality window with the (ground truth, pre-update
    /// score) pair, and refreshes the staleness origin.
    pub fn record_update(&self, shard: usize, positive: bool, score: f64) {
        if let Some(c) = self.shard_updates.get(shard) {
            c.inc();
        }
        self.quality.record(positive, score);
        self.last_update_ms
            .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// Publishes shard `shard`'s current update-queue depth (sampled
    /// by the write path at every enqueue and drain).
    pub fn set_shard_queue_depth(&self, shard: usize, depth: usize) {
        if let Some(g) = self.shard_queue_depth.get(shard) {
            g.set(depth as f64);
        }
    }

    /// Records the size of one drained update batch.
    pub fn record_worker_batch(&self, size: usize) {
        self.worker_batch.observe(size as u64);
    }

    /// The health signals as observed right now.
    pub fn signals(&self) -> HealthSignals {
        let admitted: u64 = self.requests.iter().map(Counter::get).sum();
        let rejected = self.overload_rejections.get();
        let rejection_rate = if admitted + rejected > 0 {
            Some(rejected as f64 / (admitted + rejected) as f64)
        } else {
            None
        };
        let staleness_s = match self.last_update_ms.load(Ordering::Relaxed) {
            u64::MAX => None,
            then_ms => {
                let now_ms = self.epoch.elapsed().as_millis() as u64;
                Some(now_ms.saturating_sub(then_ms) as f64 / 1_000.0)
            }
        };
        HealthSignals {
            quality_samples: self.quality.len(),
            rolling_auc: self.quality.auc(),
            staleness_s,
            rejection_rate,
        }
    }

    /// Evaluates health under the current policy and refreshes the
    /// `dmf_service_health_state` gauge.
    pub fn health(&self) -> Health {
        let h = self
            .policy
            .lock()
            .expect("policy lock")
            .evaluate(&self.signals());
        self.health_state.set(f64::from(h.code()));
        h
    }

    /// Refreshes the derived gauges and snapshots every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let signals = self.signals();
        self.rolling_auc
            .set(signals.rolling_auc.unwrap_or(f64::NAN));
        self.quality_samples.set(signals.quality_samples as f64);
        self.staleness.set(signals.staleness_s.unwrap_or(f64::NAN));
        self.health_state.set(f64::from(
            self.policy
                .lock()
                .expect("policy lock")
                .evaluate(&signals)
                .code(),
        ));
        self.registry.snapshot()
    }

    /// Renders a snapshot in the requested exposition format.
    pub fn render(&self, format: MetricsFormat) -> Vec<u8> {
        let snap = self.snapshot();
        match format {
            MetricsFormat::Text => snap.render_text().into_bytes(),
            MetricsFormat::Json => snap.render_json().into_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_records_land_in_typed_counters_and_the_histogram() {
        let m = ServiceMetrics::new(2);
        m.record_request(RequestKind::Predict, true, 80);
        m.record_request(RequestKind::Predict, true, 80);
        m.record_request(RequestKind::Update, false, 9_000);
        m.record_overload();
        m.set_in_flight(5);
        assert_eq!(m.requests[RequestKind::Predict.index()].get(), 2);
        assert_eq!(m.requests[RequestKind::Update.index()].get(), 1);
        assert_eq!(m.request_errors.get(), 1);
        assert_eq!(m.overload_rejections.get(), 1);
        assert_eq!(m.latency.count(), 3);
        assert_eq!(m.in_flight.get(), 5.0);
    }

    #[test]
    fn updates_feed_the_shard_counters_and_quality_window() {
        let m = ServiceMetrics::with_quality_window(3, 8);
        m.record_update(1, true, 0.5);
        m.record_update(1, false, -0.5);
        m.record_update(2, true, 1.5);
        assert_eq!(m.shard_updates[0].get(), 0);
        assert_eq!(m.shard_updates[1].get(), 2);
        assert_eq!(m.shard_updates[2].get(), 1);
        let s = m.signals();
        assert_eq!(s.quality_samples, 3);
        assert_eq!(s.rolling_auc, Some(1.0));
        assert!(s.staleness_s.expect("updated") >= 0.0);
    }

    #[test]
    fn write_path_metrics_land_in_the_queue_gauges_and_batch_histogram() {
        let m = ServiceMetrics::new(2);
        m.set_shard_queue_depth(0, 3);
        m.set_shard_queue_depth(1, 7);
        m.set_shard_queue_depth(9, 1); // out of range: ignored
        m.record_worker_batch(1);
        m.record_worker_batch(64);
        m.record_worker_batch(200);
        assert_eq!(m.shard_queue_depth[0].get(), 3.0);
        assert_eq!(m.shard_queue_depth[1].get(), 7.0);
        assert_eq!(m.worker_batch.count(), 3);
        let snap = m.snapshot();
        assert!(snap
            .metrics
            .iter()
            .any(|s| s.name == "dmf_service_shard_queue_depth"));
        assert!(snap
            .metrics
            .iter()
            .any(|s| s.name == "dmf_service_worker_batch_size"));
    }

    #[test]
    fn health_reflects_the_declared_policy() {
        let m = ServiceMetrics::with_quality_window(1, 8);
        m.set_health_policy(HealthPolicy {
            min_quality_samples: 2,
            auc_floor: Some(0.75),
            staleness_limit_s: None,
            rejection_rate_limit: Some(0.5),
        });
        assert_eq!(m.health().code(), 2, "cold window is unready");
        m.record_update(0, true, 1.0);
        m.record_update(0, false, -1.0);
        assert!(m.health().is_healthy());
        // Invert the window: AUC collapses below the floor.
        for _ in 0..4 {
            m.record_update(0, false, 2.0);
            m.record_update(0, true, -2.0);
        }
        assert_eq!(m.health().code(), 1);
    }

    #[test]
    fn rejection_rate_counts_rejections_against_all_arrivals() {
        let m = ServiceMetrics::new(1);
        assert_eq!(m.signals().rejection_rate, None, "no traffic yet");
        m.record_request(RequestKind::Predict, true, 10);
        m.record_overload();
        assert_eq!(m.signals().rejection_rate, Some(0.5));
    }

    #[test]
    fn snapshot_refreshes_derived_gauges() {
        let m = ServiceMetrics::with_quality_window(1, 4);
        m.record_update(0, true, 1.0);
        m.record_update(0, false, -1.0);
        let snap = m.snapshot();
        let auc = snap
            .metrics
            .iter()
            .find(|s| s.name == "dmf_service_rolling_auc")
            .expect("registered");
        assert_eq!(auc.value, dmf_ops::SampleValue::Gauge(1.0));
        let samples = snap
            .metrics
            .iter()
            .find(|s| s.name == "dmf_service_quality_samples")
            .expect("registered");
        assert_eq!(samples.value, dmf_ops::SampleValue::Gauge(2.0));
    }

    #[test]
    fn render_emits_both_contract_formats() {
        let m = ServiceMetrics::new(1);
        let text = String::from_utf8(m.render(MetricsFormat::Text)).expect("utf8");
        assert!(text.starts_with("# dmfsgd-metrics schema 1\n"));
        assert!(text.contains("dmf_service_requests_total{type=\"predict\"} 0"));
        let json = String::from_utf8(m.render(MetricsFormat::Json)).expect("utf8");
        assert!(json.starts_with("{\"schema\":1,"));
        assert!(json.contains("\"name\":\"dmf_service_health_state\""));
    }
}
