//! Client side of the service protocol: [`ServiceClient`].
//!
//! The client is a sequence allocator plus a response decoder; like
//! [`ServerConnection`](crate::connection::ServerConnection) it is
//! transport-agnostic and manually pumped, so the same type drives a
//! deterministic test (bytes in, bytes out, no threads) and a
//! threaded load generator over a loopback pipe.
//!
//! Pipelining is the point: `submit_*` encodes a request into the
//! caller's wire buffer *without waiting* and returns its sequence
//! number; the caller ships as many as it likes, then feeds whatever
//! bytes come back to [`ingest`](ServiceClient::ingest) and pops
//! decoded responses with [`poll`](ServiceClient::poll). Responses
//! carry the request's sequence, so matching them to callers is a
//! lookup, not a protocol property. [`Response::into_result`] folds a
//! remote [`Response::Error`] into the crate's typed error surface —
//! an [`ErrorCode::Overloaded`](crate::protocol::ErrorCode::Overloaded)
//! rejection becomes
//! [`DmfsgdError::Transport`], which is how a pipelining client
//! notices it outran the server's admission window.

use crate::protocol::{MetricsFormat, ProtocolDecode, ProtocolEncode, Request, Response};
use dmf_core::DmfsgdError;
use std::ops::ControlFlow;

/// Client-side connection state: allocates sequence numbers and
/// decodes the pipelined response stream.
#[derive(Default)]
pub struct ServiceClient {
    next_seq: u32,
    /// Undecoded response-stream bytes.
    inbuf: Vec<u8>,
    /// Responses submitted minus responses polled.
    outstanding: usize,
}

impl ServiceClient {
    /// A fresh client (sequences start at 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests submitted whose responses have not been polled yet.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    fn submit(&mut self, req: Request, wire: &mut Vec<u8>) -> u32 {
        let seq = req.seq();
        req.encode(wire);
        self.next_seq = self.next_seq.wrapping_add(1);
        self.outstanding += 1;
        seq
    }

    /// Encodes a predict request for `(i, j)`; returns its sequence.
    pub fn submit_predict(&mut self, i: u32, j: u32, wire: &mut Vec<u8>) -> u32 {
        let seq = self.next_seq;
        self.submit(Request::Predict { seq, i, j }, wire)
    }

    /// Encodes a class-predict request for `(i, j)`.
    pub fn submit_predict_class(&mut self, i: u32, j: u32, wire: &mut Vec<u8>) -> u32 {
        let seq = self.next_seq;
        self.submit(Request::PredictClass { seq, i, j }, wire)
    }

    /// Encodes a rank request for node `i`.
    pub fn submit_rank(&mut self, i: u32, top_k: u16, wire: &mut Vec<u8>) -> u32 {
        let seq = self.next_seq;
        self.submit(Request::RankNeighbors { seq, i, top_k }, wire)
    }

    /// Encodes an RTT-class update for `(i, j)` with value `x`.
    pub fn submit_update(&mut self, i: u32, j: u32, x: f64, wire: &mut Vec<u8>) -> u32 {
        let seq = self.next_seq;
        self.submit(Request::Update { seq, i, j, x }, wire)
    }

    /// Encodes a snapshot request for `shard`.
    pub fn submit_snapshot(&mut self, shard: u16, wire: &mut Vec<u8>) -> u32 {
        let seq = self.next_seq;
        self.submit(Request::Snapshot { seq, shard }, wire)
    }

    /// Encodes a metrics request in the given exposition format.
    pub fn submit_metrics(&mut self, format: MetricsFormat, wire: &mut Vec<u8>) -> u32 {
        let seq = self.next_seq;
        self.submit(Request::Metrics { seq, format }, wire)
    }

    /// Encodes a health request.
    pub fn submit_health(&mut self, wire: &mut Vec<u8>) -> u32 {
        let seq = self.next_seq;
        self.submit(Request::Health { seq }, wire)
    }

    /// Buffers response-stream bytes received from the server.
    pub fn ingest(&mut self, bytes: &[u8]) {
        self.inbuf.extend_from_slice(bytes);
    }

    /// Decodes the next complete response, if one has buffered.
    /// Framing corruption surfaces as the typed
    /// [`DmfsgdError::Decode`] and is fatal to the connection.
    pub fn poll(&mut self) -> Result<Option<Response>, DmfsgdError> {
        match Response::check(&self.inbuf)? {
            ControlFlow::Continue(_) => Ok(None),
            ControlFlow::Break(len) => {
                let resp = Response::consume(&self.inbuf[..len])?;
                self.inbuf.drain(..len);
                self.outstanding = self.outstanding.saturating_sub(1);
                Ok(Some(resp))
            }
        }
    }
}

impl Response {
    /// Folds a remote error into the typed error surface: an
    /// [`ErrorCode::Overloaded`](crate::protocol::ErrorCode::Overloaded)
    /// rejection (and any other remote
    /// failure) becomes [`DmfsgdError::Transport`]; successful
    /// responses pass through unchanged.
    pub fn into_result(self) -> Result<Response, DmfsgdError> {
        match self {
            Response::Error { code, message, seq } => Err(DmfsgdError::Transport(format!(
                "request {seq} failed remotely ({code:?}): {message}"
            ))),
            ok => Ok(ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ErrorCode;

    #[test]
    fn sequences_increment_per_submission() {
        let mut c = ServiceClient::new();
        let mut wire = Vec::new();
        assert_eq!(c.submit_predict(0, 1, &mut wire), 0);
        assert_eq!(c.submit_rank(2, 8, &mut wire), 1);
        assert_eq!(c.submit_update(0, 1, 1.0, &mut wire), 2);
        assert_eq!(c.outstanding(), 3);
    }

    #[test]
    fn poll_decodes_a_pipelined_stream_incrementally() {
        let mut c = ServiceClient::new();
        let mut stream = Vec::new();
        Response::Value { seq: 0, value: 1.5 }.encode(&mut stream);
        Response::Updated { seq: 1 }.encode(&mut stream);
        c.outstanding = 2;

        c.ingest(&stream[..5]);
        assert!(c.poll().unwrap().is_none());
        c.ingest(&stream[5..]);
        assert_eq!(
            c.poll().unwrap(),
            Some(Response::Value { seq: 0, value: 1.5 })
        );
        assert_eq!(c.poll().unwrap(), Some(Response::Updated { seq: 1 }));
        assert!(c.poll().unwrap().is_none());
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn overload_errors_become_typed_transport_failures() {
        let resp = Response::Error {
            seq: 64,
            code: ErrorCode::Overloaded,
            message: "in-flight window full (64 requests)".to_string(),
        };
        let err = resp.into_result().unwrap_err();
        assert!(matches!(&err, DmfsgdError::Transport(m) if m.contains("Overloaded")));
        assert!(Response::Updated { seq: 1 }.into_result().is_ok());
    }
}
