//! Per-shard single-writer update machinery: the bounded update
//! queue, completion tickets, and the always-on batching statistics.
//!
//! Every shard of a [`PredictionService`](crate::PredictionService)
//! owns one `UpdateQueue` (a bounded MPSC FIFO of update jobs) and
//! one dedicated worker thread parked on the queue's condvar. The
//! enqueue-then-combine protocol lives in
//! [`service`](crate::service); this module provides the moving
//! parts:
//!
//! * `UpdateQueue` — connections `try_push` jobs (a full queue maps
//!   to the wire's `Overloaded` rejection, never blocking); whoever
//!   holds the shard write lock pops jobs in arrival-order batches.
//!   The queue never blocks a pusher and never drops an accepted job.
//! * [`UpdateTicket`] — the per-job completion cell a submitting
//!   connection parks on. Tickets are completed only *after* the
//!   update's publication is visible, so a caller that observed its
//!   `update` complete reads its own write.
//! * `WorkerStats` — relaxed-atomic distributions of batch sizes
//!   and queue depths, cheap enough to stay on in production and
//!   exported through the bench (`BENCH.json` schema v5) and
//!   `ServiceMetrics`.

use dmf_core::{DmfsgdError, NodeId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// One queued RTT update: the pair, the measured class, and the
/// ticket its submitter is parked on.
#[derive(Debug)]
pub(crate) struct UpdateJob {
    pub(crate) i: NodeId,
    pub(crate) j: NodeId,
    pub(crate) x: f64,
    pub(crate) ticket: std::sync::Arc<UpdateTicket>,
}

/// The completion cell of one queued update: filled exactly once per
/// submission with the update's result (the pre-update score, or the
/// apply-time error), after its publication is visible.
///
/// A ticket is reusable: `take` consumes the
/// result and resets the cell, so a connection — whose pipelined
/// updates execute strictly one at a time — allocates one ticket for
/// its whole lifetime.
#[derive(Debug)]
pub struct UpdateTicket {
    result: Mutex<Option<Result<f64, DmfsgdError>>>,
    done: Condvar,
}

impl Default for UpdateTicket {
    fn default() -> Self {
        Self::new()
    }
}

impl UpdateTicket {
    /// An empty ticket.
    pub fn new() -> Self {
        Self {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Fills the ticket and wakes the submitter.
    pub(crate) fn complete(&self, result: Result<f64, DmfsgdError>) {
        let mut cell = self.result.lock().expect("ticket lock");
        debug_assert!(cell.is_none(), "ticket completed twice");
        *cell = Some(result);
        self.done.notify_all();
    }

    /// True once [`complete`](Self::complete) ran for the current
    /// submission.
    pub(crate) fn is_done(&self) -> bool {
        self.result.lock().expect("ticket lock").is_some()
    }

    /// Blocks until the ticket is filled, then consumes the result
    /// (resetting the ticket for reuse).
    pub(crate) fn take(&self) -> Result<f64, DmfsgdError> {
        let mut cell = self.result.lock().expect("ticket lock");
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = self.done.wait(cell).expect("ticket lock");
        }
    }
}

struct QueueInner {
    jobs: VecDeque<UpdateJob>,
    closed: bool,
}

/// The bounded per-shard update queue (see the [module docs](self)).
///
/// Lock order: the inner queue mutex is a *leaf* — no other lock is
/// ever acquired while holding it. Poppers hold the shard write lock
/// *around* their pop calls (single-writer discipline: only the
/// write-lock holder removes jobs), pushers hold nothing else.
pub(crate) struct UpdateQueue {
    inner: Mutex<QueueInner>,
    /// The dedicated worker parks here; woken on failed-combine
    /// handoffs and on close, and re-checks the queue under the inner
    /// mutex before sleeping, so a wakeup can never be lost.
    ready: Condvar,
    capacity: usize,
    /// Mirror of the queue length for lock-free depth reads
    /// (metrics/stats; the inner mutex holds the truth).
    depth: AtomicUsize,
}

impl UpdateQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy mirror; exact under the inner mutex).
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Enqueues a job unless the queue is at capacity; returns the
    /// depth after the push, or the job back on a full queue (the
    /// caller maps that to the `Overloaded` rejection).
    pub(crate) fn try_push(&self, job: UpdateJob) -> Result<usize, UpdateJob> {
        let mut q = self.inner.lock().expect("update queue lock");
        if q.jobs.len() >= self.capacity {
            return Err(job);
        }
        q.jobs.push_back(job);
        let depth = q.jobs.len();
        self.depth.store(depth, Ordering::Relaxed);
        Ok(depth)
    }

    /// Moves up to `max` jobs (arrival order) into `out` (cleared
    /// first). Callers must hold the shard write lock.
    pub(crate) fn pop_batch(&self, out: &mut Vec<UpdateJob>, max: usize) {
        out.clear();
        let mut q = self.inner.lock().expect("update queue lock");
        let take = q.jobs.len().min(max);
        out.extend(q.jobs.drain(..take));
        self.depth.store(q.jobs.len(), Ordering::Relaxed);
    }

    /// True when no jobs are queued right now.
    pub(crate) fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .expect("update queue lock")
            .jobs
            .is_empty()
    }

    /// Wakes the dedicated worker (a handoff: the pusher or a
    /// finishing combiner observed work it won't drain itself).
    pub(crate) fn notify_worker(&self) {
        self.ready.notify_one();
    }

    /// Parks the worker until jobs are queued (true) or the queue is
    /// closed *and* drained (false, the worker exits). The queue
    /// state is re-checked under the inner mutex before every sleep.
    pub(crate) fn wait_for_work(&self) -> bool {
        let mut q = self.inner.lock().expect("update queue lock");
        loop {
            if !q.jobs.is_empty() {
                return true;
            }
            if q.closed {
                return false;
            }
            q = self.ready.wait(q).expect("update queue lock");
        }
    }

    /// Marks the queue closed and wakes the worker for its final
    /// drain-and-exit pass.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("update queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// Upper bucket bounds (inclusive) for the batch-size and queue-depth
/// distributions in [`WorkerStatsSnapshot`]; one implicit overflow
/// bucket follows.
pub const DIST_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

fn bucket_index(value: u64) -> usize {
    DIST_BUCKETS
        .iter()
        .position(|&b| value <= b)
        .unwrap_or(DIST_BUCKETS.len())
}

/// Always-on, relaxed-atomic batching statistics for one shard (see
/// the [module docs](self)).
#[derive(Default)]
pub(crate) struct WorkerStats {
    batches: AtomicU64,
    updates: AtomicU64,
    worker_batches: AtomicU64,
    max_batch: AtomicU64,
    max_depth: AtomicU64,
    batch_hist: [AtomicU64; DIST_BUCKETS.len() + 1],
    depth_hist: [AtomicU64; DIST_BUCKETS.len() + 1],
}

fn fetch_max(cell: &AtomicU64, value: u64) {
    cell.fetch_max(value, Ordering::Relaxed);
}

impl WorkerStats {
    /// Records one drained batch of `size` jobs; `by_worker` says
    /// whether the dedicated worker (vs an inline combiner) drained
    /// it.
    pub(crate) fn record_batch(&self, size: usize, by_worker: bool) {
        let size = size as u64;
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.updates.fetch_add(size, Ordering::Relaxed);
        if by_worker {
            self.worker_batches.fetch_add(1, Ordering::Relaxed);
        }
        fetch_max(&self.max_batch, size);
        self.batch_hist[bucket_index(size)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records the queue depth observed right after a push.
    pub(crate) fn record_depth(&self, depth: usize) {
        let depth = depth as u64;
        fetch_max(&self.max_depth, depth);
        self.depth_hist[bucket_index(depth)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> WorkerStatsSnapshot {
        WorkerStatsSnapshot {
            batches: self.batches.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            worker_batches: self.worker_batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
            batch_hist: self
                .batch_hist
                .each_ref()
                .map(|c| c.load(Ordering::Relaxed)),
            depth_hist: self
                .depth_hist
                .each_ref()
                .map(|c| c.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of one shard's `WorkerStats` — the
/// batch-size and queue-depth distributions `BENCH.json` (schema v5)
/// tracks per service run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStatsSnapshot {
    /// Batches drained (inline combiners and the worker together).
    pub batches: u64,
    /// Updates applied across all batches.
    pub updates: u64,
    /// Batches drained by the dedicated worker thread specifically.
    pub worker_batches: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Deepest queue observed at push time.
    pub max_depth: u64,
    /// Batch-size counts per [`DIST_BUCKETS`] bound (+ overflow).
    pub batch_hist: [u64; DIST_BUCKETS.len() + 1],
    /// Push-time queue-depth counts per [`DIST_BUCKETS`] bound
    /// (+ overflow).
    pub depth_hist: [u64; DIST_BUCKETS.len() + 1],
}

impl WorkerStatsSnapshot {
    /// Mean updates per batch (0 when nothing drained).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.updates as f64 / self.batches as f64
        }
    }

    /// Element-wise accumulation (maxes take the max) — aggregates
    /// per-shard snapshots into one service-wide distribution.
    pub fn merge(&mut self, other: &WorkerStatsSnapshot) {
        self.batches += other.batches;
        self.updates += other.updates;
        self.worker_batches += other.worker_batches;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.max_depth = self.max_depth.max(other.max_depth);
        for (a, b) in self.batch_hist.iter_mut().zip(other.batch_hist) {
            *a += b;
        }
        for (a, b) in self.depth_hist.iter_mut().zip(other.depth_hist) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn job(i: usize, ticket: &Arc<UpdateTicket>) -> UpdateJob {
        UpdateJob {
            i,
            j: i + 1,
            x: 1.0,
            ticket: Arc::clone(ticket),
        }
    }

    #[test]
    fn queue_is_fifo_bounded_and_depth_tracked() {
        let q = UpdateQueue::new(3);
        let t = Arc::new(UpdateTicket::new());
        assert_eq!(q.try_push(job(0, &t)).unwrap(), 1);
        assert_eq!(q.try_push(job(1, &t)).unwrap(), 2);
        assert_eq!(q.try_push(job(2, &t)).unwrap(), 3);
        let back = q.try_push(job(3, &t)).unwrap_err();
        assert_eq!(back.i, 3, "full queue hands the job back");
        assert_eq!(q.depth(), 3);
        let mut batch = Vec::new();
        q.pop_batch(&mut batch, 2);
        assert_eq!(batch.iter().map(|j| j.i).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(q.depth(), 1);
        q.pop_batch(&mut batch, 8);
        assert_eq!(batch.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn tickets_park_until_completed_and_reset_on_take() {
        let t = Arc::new(UpdateTicket::new());
        assert!(!t.is_done());
        let waiter = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || t.take())
        };
        t.complete(Ok(0.25));
        assert_eq!(waiter.join().unwrap().unwrap(), 0.25);
        // Reusable: the cell is empty again.
        assert!(!t.is_done());
        t.complete(Err(DmfsgdError::Transport("boom".into())));
        assert!(t.is_done());
        assert!(t.take().is_err());
    }

    #[test]
    fn a_parked_worker_wakes_for_work_and_exits_on_close() {
        let q = Arc::new(UpdateQueue::new(8));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut rounds = 0;
                while q.wait_for_work() {
                    let mut batch = Vec::new();
                    q.pop_batch(&mut batch, 64);
                    rounds += batch.len();
                }
                rounds
            })
        };
        let t = Arc::new(UpdateTicket::new());
        q.try_push(job(0, &t)).unwrap();
        q.notify_worker();
        // Push without notify: the close wakeup must still find it
        // (the worker re-checks the queue before sleeping).
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.try_push(job(1, &t)).unwrap();
        q.close();
        assert_eq!(worker.join().unwrap(), 2);
    }

    #[test]
    fn stats_bucket_batches_and_depths() {
        let s = WorkerStats::default();
        s.record_batch(1, false);
        s.record_batch(3, true);
        s.record_batch(200, true);
        s.record_depth(1);
        s.record_depth(70);
        let snap = s.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.updates, 204);
        assert_eq!(snap.worker_batches, 2);
        assert_eq!(snap.max_batch, 200);
        assert_eq!(snap.max_depth, 70);
        assert_eq!(snap.batch_hist[0], 1, "size 1 → bucket ≤1");
        assert_eq!(snap.batch_hist[2], 1, "size 3 → bucket ≤4");
        assert_eq!(snap.batch_hist[7], 1, "size 200 → overflow");
        assert_eq!(snap.depth_hist[0], 1);
        assert_eq!(snap.depth_hist[7], 1);
        assert!((snap.mean_batch() - 68.0).abs() < 1e-12);
        let mut merged = snap;
        merged.merge(&snap);
        assert_eq!(merged.updates, 408);
        assert_eq!(merged.max_batch, 200);
    }
}
