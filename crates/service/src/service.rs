//! The shard pool and query router: [`PredictionService`].
//!
//! A service hosts `shards` replicas of one DMFSGD population, each a
//! full [`Session`] plus a published [`CoordView`], with authority
//! over the coordinates partitioned by [`Partition`]: shard `s` is
//! the *owner* of the node ids in `partition.range(s)` — updates for
//! node `i` are applied only at `owner(i)`, so each replica's
//! coordinates are authoritative exactly on its own range.
//!
//! Queries route by ownership. A prediction for `(i, j)` reads `u_i`
//! from `owner(i)`'s published view and `v_j` from `owner(j)`'s; a
//! rank query fans out across every shard owning one of `i`'s
//! neighbors and merges with the same tie-break
//! ([`dmf_core::session::rank_scored`]) the single-session queries
//! use. Because an RTT update modifies only node `i`'s coordinates —
//! reading the peer's reply `(u_j, v_j)`, exactly the paper's
//! Algorithm 1 wire shape — the sharded service is *bit-identical* to
//! one big session fed the same operations in the same order: the
//! router ships `j`'s published reply coordinates to `owner(i)`,
//! which applies them through [`Session::apply_rtt_remote`].
//!
//! Reads and writes split per shard: the [`Session`] sits behind a
//! `Mutex` (writers serialize), the [`CoordView`] behind a `RwLock`
//! (readers share). An update holds the session lock only for the
//! `O(r)` SGD step and the view lock only for the `O(r)` republish,
//! so predict traffic keeps flowing while training traffic lands.
//!
//! The service population is *static*: membership changes
//! (join/leave) are a session-level concern not exposed through the
//! query surface, which keeps every replica's membership flags
//! trivially consistent.

use crate::partition::Partition;
use dmf_core::{
    CoordView, DmfsgdConfig, DmfsgdError, MembershipError, NodeId, PredictionMode, Session,
    Snapshot,
};
use std::sync::{Mutex, RwLock};

/// One shard: the writable session and its published read view.
struct Shard {
    session: Mutex<Session>,
    view: RwLock<CoordView>,
}

impl Shard {
    fn new(session: Session) -> Self {
        let view = RwLock::new(session.publish());
        Self {
            session: Mutex::new(session),
            view,
        }
    }
}

/// A sharded, concurrently-queryable prediction service over one
/// DMFSGD population (see the [module docs](self) for the ownership
/// and consistency model).
///
/// All methods take `&self`; the service is `Sync` and meant to be
/// shared across connection threads behind an `Arc`.
pub struct PredictionService {
    partition: Partition,
    shards: Vec<Shard>,
}

/// Replicated membership checks against a published view, mirroring
/// the session's error order and payloads exactly (the parity suite
/// pins this).
fn check_alive(view: &CoordView, id: NodeId) -> Result<(), MembershipError> {
    if id >= view.len() {
        Err(MembershipError::UnknownNode {
            id,
            slots: view.len(),
        })
    } else if !view.is_alive(id) {
        Err(MembershipError::Departed { id })
    } else {
        Ok(())
    }
}

fn check_pair(vi: &CoordView, vj: &CoordView, i: NodeId, j: NodeId) -> Result<(), MembershipError> {
    check_alive(vi, i)?;
    check_alive(vj, j)?;
    if i == j {
        return Err(MembershipError::SelfPair { id: i });
    }
    Ok(())
}

impl PredictionService {
    /// Builds a fresh service: `shards` identical session replicas of
    /// an `n`-node population from `config` (coordinates are seeded by
    /// `config.seed`, so every replica — and any single-session oracle
    /// built from the same config — starts bit-identical).
    pub fn build(config: DmfsgdConfig, n: usize, shards: usize) -> Result<Self, DmfsgdError> {
        let partition = Partition::new(n, shards)?;
        let sessions = (0..shards)
            .map(|_| {
                Session::builder()
                    .config(config)
                    .nodes(n)
                    .build()
                    .map_err(DmfsgdError::from)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_sessions(partition, sessions))
    }

    /// Serves an already-trained population: every shard restores the
    /// same `snapshot`, then owns its partition range from there. This
    /// is the deploy path — train one session offline, snapshot it,
    /// and stand up a sharded service in front of it.
    pub fn from_snapshot(snapshot: &Snapshot, shards: usize) -> Result<Self, DmfsgdError> {
        let reference = Session::restore(snapshot)?;
        let partition = Partition::new(reference.len(), shards)?;
        let mut sessions = Vec::with_capacity(shards);
        for _ in 1..shards {
            sessions.push(Session::restore(snapshot)?);
        }
        sessions.push(reference);
        Ok(Self::from_sessions(partition, sessions))
    }

    fn from_sessions(partition: Partition, sessions: Vec<Session>) -> Self {
        Self {
            partition,
            shards: sessions.into_iter().map(Shard::new).collect(),
        }
    }

    /// The id partition routing queries to shards.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of node slots served.
    pub fn len(&self) -> usize {
        self.partition.len()
    }

    /// True when the service covers no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.partition.is_empty()
    }

    /// Raw predictor output `u_i · v_j` plus the prediction mode, read
    /// from the owning shards' published views.
    fn scored(&self, i: NodeId, j: NodeId) -> Result<(f64, PredictionMode), DmfsgdError> {
        let oi = self.partition.owner(i.min(self.len())); // clamp: membership check rejects below
        let oj = self.partition.owner(j.min(self.len()));
        if oi == oj {
            let v = self.shards[oi].view.read().expect("shard view lock");
            check_pair(&v, &v, i, j)?;
            let (ci, cj) = (v.coords(i).expect("alive"), v.coords(j).expect("alive"));
            Ok((ci.predict_to(cj), v.mode()))
        } else {
            // Two shard views; acquire in ascending shard order so
            // concurrent cross-shard readers and per-shard writers
            // cannot form a cycle.
            let (lo, hi) = (oi.min(oj), oi.max(oj));
            let vlo = self.shards[lo].view.read().expect("shard view lock");
            let vhi = self.shards[hi].view.read().expect("shard view lock");
            let (vi, vj) = if oi == lo { (&vlo, &vhi) } else { (&vhi, &vlo) };
            check_pair(vi, vj, i, j)?;
            let (ci, cj) = (vi.coords(i).expect("alive"), vj.coords(j).expect("alive"));
            Ok((ci.predict_to(cj), vi.mode()))
        }
    }

    /// Predicted measure for the path `i → j` in natural units —
    /// [`Session::predict`] semantics over the sharded views.
    pub fn predict(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        let (raw, mode) = self.scored(i, j)?;
        Ok(match mode {
            PredictionMode::Class => raw,
            PredictionMode::Quantity { value_scale } => raw * value_scale,
        })
    }

    /// Predicted class (`+1.0` / `-1.0`) for the path `i → j` —
    /// [`Session::predict_class`] semantics over the sharded views.
    pub fn predict_class(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        Ok(if self.scored(i, j)?.0 >= 0.0 {
            1.0
        } else {
            -1.0
        })
    }

    /// Node `i`'s neighbors ranked by predicted score into a
    /// caller-owned buffer — [`Session::rank_neighbors_into`]
    /// semantics, cross-shard. With one shard this is a direct
    /// [`CoordView::rank_neighbors_into`] call; with more, the router
    /// fans out over every owning shard's view and merges with the
    /// shared tie-break, bit-identically to the single-session query.
    pub fn rank_neighbors_into(
        &self,
        i: NodeId,
        top_k: usize,
        out: &mut Vec<(NodeId, f64)>,
    ) -> Result<(), DmfsgdError> {
        if self.shards.len() == 1 {
            return self.shards[0]
                .view
                .read()
                .expect("shard view lock")
                .rank_neighbors_into(i, top_k, out);
        }
        out.clear();
        // Consistent fan-out read: all views, ascending shard order.
        let views: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.view.read().expect("shard view lock"))
            .collect();
        let oi = self.partition.owner(i.min(self.len()));
        check_alive(&views[oi], i)?;
        let ci = views[oi].coords(i).expect("alive");
        // Neighbor rows are replicated (same seed), so any view serves.
        out.extend(views[oi].neighbors().neighbors(i).iter().map(|&j| {
            let cj = views[self.partition.owner(j)].coords(j).expect("in range");
            (j, ci.predict_to(cj))
        }));
        dmf_core::session::rank_scored(out, top_k);
        Ok(())
    }

    /// Allocating convenience form of
    /// [`rank_neighbors_into`](Self::rank_neighbors_into).
    pub fn rank_neighbors(
        &self,
        i: NodeId,
        top_k: usize,
    ) -> Result<Vec<(NodeId, f64)>, DmfsgdError> {
        let mut out = Vec::new();
        self.rank_neighbors_into(i, top_k, &mut out)?;
        Ok(out)
    }

    /// Applies an RTT-class measurement `x` for the pair `(i, j)`:
    /// reads `j`'s published reply coordinates at `owner(j)`, applies
    /// the Algorithm 1 step at `owner(i)` through
    /// [`Session::apply_rtt_remote`], and republishes `i`'s slot.
    /// Sequentially this is bit-identical to
    /// `Session::apply_measurement(i, j, x, Metric::Rtt)` on a single
    /// session.
    pub fn update_rtt(&self, i: NodeId, j: NodeId, x: f64) -> Result<(), DmfsgdError> {
        self.update_rtt_scored(i, j, x).map(|_| ())
    }

    /// As [`update_rtt`](Self::update_rtt), additionally returning the
    /// *pre-update* raw score `u_i · v_j` — the prediction the service
    /// would have given for the path just measured. Pairing it with
    /// the measured class `x` is how the observability layer feeds its
    /// live quality window: the score is read under the same session
    /// lock that applies the update, so it is exactly the prediction
    /// in force when the measurement arrived.
    pub fn update_rtt_scored(&self, i: NodeId, j: NodeId, x: f64) -> Result<f64, DmfsgdError> {
        let oj = self.partition.owner(j.min(self.len()));
        // Fetch the reply under the read lock, then drop it before
        // touching owner(i)'s locks — no lock is held while acquiring
        // a lock of another kind.
        let (u_j, v_j) = {
            let vj = self.shards[oj].view.read().expect("shard view lock");
            // Membership flags are replicated, so owner(j)'s view can
            // run the full pair check in the session's order.
            check_pair(&vj, &vj, i, j)?;
            let cj = vj.coords(j).expect("alive");
            (cj.u.to_vec(), cj.v.to_vec())
        };
        let oi = self.partition.owner(i);
        let shard = &self.shards[oi];
        let mut session = shard.session.lock().expect("shard session lock");
        let score = dmf_core::coords::dot(&session.nodes()[i].coords.u, &v_j);
        session.apply_rtt_remote(i, x, &u_j, &v_j)?;
        shard
            .view
            .write()
            .expect("shard view lock")
            .republish_node(&session, i)?;
        Ok(score)
    }

    /// Restores every shard of a *live* service from `snapshot` — the
    /// in-place counterpart of [`from_snapshot`](Self::from_snapshot),
    /// for rolling a running deployment back to a known-good
    /// checkpoint without tearing down its connections.
    ///
    /// The swap is atomic with respect to updates: all shard session
    /// locks are taken (in ascending order, the crate-wide rule)
    /// before any shard is touched, restored sessions are built and
    /// validated *before* any lock is taken, and the published views
    /// are republished before the locks are released — so readers
    /// never observe a mix of old and new coordinates once the first
    /// view flips. The snapshot must describe the same population
    /// size the service was built for.
    pub fn restore_from_snapshot(&self, snapshot: &Snapshot) -> Result<(), DmfsgdError> {
        if snapshot.len() != self.len() {
            return Err(DmfsgdError::Import(format!(
                "snapshot has {} nodes, the service serves {}",
                snapshot.len(),
                self.len()
            )));
        }
        // Build (and thereby validate) every replacement session while
        // the service keeps serving; only then stop the world.
        let mut restored = Vec::with_capacity(self.shards.len());
        for _ in 0..self.shards.len() {
            restored.push(Session::restore(snapshot)?);
        }
        let mut sessions: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.session.lock().expect("shard session lock"))
            .collect();
        for (guard, fresh) in sessions.iter_mut().zip(restored) {
            **guard = fresh;
        }
        for (shard, guard) in self.shards.iter().zip(&sessions) {
            *shard.view.write().expect("shard view lock") = guard.publish();
        }
        Ok(())
    }

    /// JSON snapshot of shard `shard`'s session (authoritative for its
    /// own partition range; replica state elsewhere).
    pub fn snapshot_json(&self, shard: usize) -> Result<Vec<u8>, DmfsgdError> {
        let Some(s) = self.shards.get(shard) else {
            return Err(DmfsgdError::Transport(format!(
                "snapshot of shard {shard}, but the service has {} shards",
                self.shards.len()
            )));
        };
        let session = s.session.lock().expect("shard session lock");
        Ok(session.snapshot().to_json().into_bytes())
    }

    /// Total measurements applied across all shards (each update lands
    /// on exactly one shard, so this is the service-wide count).
    pub fn measurements_used(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.session
                    .lock()
                    .expect("shard session lock")
                    .measurements_used()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_core::SessionBuilder;

    fn config(n: usize, seed: u64) -> DmfsgdConfig {
        // Build through the validated path so defaults stay in sync.
        let s = SessionBuilder::new()
            .nodes(n)
            .seed(seed)
            .build()
            .expect("valid");
        *s.config()
    }

    #[test]
    fn replicas_start_identical_to_the_oracle() {
        let cfg = config(30, 7);
        let oracle = Session::builder().config(cfg).nodes(30).build().unwrap();
        let svc = PredictionService::build(cfg, 30, 3).unwrap();
        for i in 0..30 {
            for j in 0..30 {
                if i == j {
                    continue;
                }
                assert_eq!(
                    svc.predict(i, j).unwrap(),
                    oracle.predict(i, j).unwrap(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn updates_route_to_the_owner_and_stay_oracle_exact() {
        let cfg = config(24, 8);
        let mut oracle = Session::builder().config(cfg).nodes(24).build().unwrap();
        let svc = PredictionService::build(cfg, 24, 4).unwrap();
        // A deterministic mixed schedule crossing every shard pair.
        let mut x = 1.0;
        for step in 0..400usize {
            let i = (step * 7) % 24;
            let j = (i + 1 + (step * 5) % 23) % 24;
            svc.update_rtt(i, j, x).unwrap();
            oracle
                .apply_measurement(i, j, x, dmf_datasets::Metric::Rtt)
                .unwrap();
            x = -x;
        }
        assert_eq!(svc.measurements_used(), 400);
        for i in 0..24 {
            for j in 0..24 {
                if i == j {
                    continue;
                }
                let a = svc.predict(i, j).unwrap();
                let b = oracle.predict(i, j).unwrap();
                assert!(a == b, "({i},{j}): {a} != {b}");
            }
            assert_eq!(
                svc.rank_neighbors(i, 8).unwrap(),
                oracle.rank_neighbors(i, 8).unwrap()
            );
        }
    }

    #[test]
    fn membership_errors_match_the_session_surface() {
        let cfg = config(12, 9);
        let svc = PredictionService::build(cfg, 12, 2).unwrap();
        let oracle = Session::builder().config(cfg).nodes(12).build().unwrap();
        assert_eq!(
            svc.predict(3, 3).unwrap_err(),
            oracle.predict(3, 3).unwrap_err()
        );
        assert_eq!(
            svc.predict(0, 99).unwrap_err(),
            oracle.predict(0, 99).unwrap_err()
        );
        assert_eq!(
            svc.update_rtt(99, 0, 1.0).unwrap_err(),
            oracle.rank_neighbors(99, 1).unwrap_err()
        );
    }

    #[test]
    fn snapshot_round_trips_through_the_wireable_json() {
        let cfg = config(12, 10);
        let svc = PredictionService::build(cfg, 12, 2).unwrap();
        svc.update_rtt(0, 1, 1.0).unwrap();
        let json = svc.snapshot_json(0).unwrap();
        let snap = Snapshot::from_json(std::str::from_utf8(&json).unwrap()).unwrap();
        let restored = Session::restore(&snap).unwrap();
        assert_eq!(restored.len(), 12);
        assert!(matches!(
            svc.snapshot_json(5).unwrap_err(),
            DmfsgdError::Transport(_)
        ));
    }

    #[test]
    fn scored_updates_return_the_pre_update_prediction() {
        let cfg = config(16, 12);
        let svc = PredictionService::build(cfg, 16, 4).unwrap();
        let before = svc.predict(2, 9).unwrap();
        let mode_scale = 1.0; // class mode: predict() is the raw score
        let score = svc.update_rtt_scored(2, 9, -1.0).unwrap();
        assert_eq!(score * mode_scale, before);
        // And the update really landed: plain and scored paths are the
        // same code path.
        let svc2 = PredictionService::build(cfg, 16, 4).unwrap();
        svc2.update_rtt(2, 9, -1.0).unwrap();
        assert_eq!(svc.predict(2, 9).unwrap(), svc2.predict(2, 9).unwrap());
    }

    #[test]
    fn restore_from_snapshot_rolls_a_live_service_back() {
        let cfg = config(18, 13);
        let svc = PredictionService::build(cfg, 18, 3).unwrap();
        // Checkpoint the fresh state, then train past it.
        let checkpoint_json = svc.snapshot_json(0).unwrap();
        let checkpoint =
            Snapshot::from_json(std::str::from_utf8(&checkpoint_json).unwrap()).unwrap();
        let fresh: Vec<f64> = (0..18)
            .map(|j| {
                if j == 5 {
                    0.0
                } else {
                    svc.predict(5, j).unwrap()
                }
            })
            .collect();
        for step in 0..120usize {
            let i = step % 18;
            let j = (i + 1 + step % 17) % 18;
            svc.update_rtt(i, j, if step % 2 == 0 { 1.0 } else { -1.0 })
                .unwrap();
        }
        let trained: Vec<f64> = (0..18)
            .map(|j| {
                if j == 5 {
                    0.0
                } else {
                    svc.predict(5, j).unwrap()
                }
            })
            .collect();
        assert_ne!(fresh, trained, "training moved the coordinates");
        svc.restore_from_snapshot(&checkpoint).unwrap();
        let restored: Vec<f64> = (0..18)
            .map(|j| {
                if j == 5 {
                    0.0
                } else {
                    svc.predict(5, j).unwrap()
                }
            })
            .collect();
        assert_eq!(restored, fresh, "restore is bit-exact");
        // The service keeps serving and training after the rollback.
        svc.update_rtt(0, 1, 1.0).unwrap();

        // Population-size mismatch is rejected before any mutation.
        let other = Session::builder().nodes(12).seed(1).build().unwrap();
        assert!(matches!(
            svc.restore_from_snapshot(&other.snapshot()).unwrap_err(),
            DmfsgdError::Import(_)
        ));
    }

    #[test]
    fn from_snapshot_serves_a_pretrained_population() {
        let cfg = config(16, 11);
        let mut trained = Session::builder().config(cfg).nodes(16).build().unwrap();
        for step in 0..200usize {
            let i = step % 16;
            let j = (i + 1 + step % 15) % 16;
            trained
                .apply_measurement(
                    i,
                    j,
                    if step % 3 == 0 { -1.0 } else { 1.0 },
                    dmf_datasets::Metric::Rtt,
                )
                .unwrap();
        }
        let svc = PredictionService::from_snapshot(&trained.snapshot(), 4).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                if i == j {
                    continue;
                }
                assert_eq!(svc.predict(i, j).unwrap(), trained.predict(i, j).unwrap());
            }
        }
    }
}
