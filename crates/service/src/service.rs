//! The shard pool and query router: [`PredictionService`].
//!
//! A service hosts `shards` replicas of one DMFSGD population, each a
//! full [`Session`] plus a lock-free published [`EpochView`], with
//! authority over the coordinates partitioned by [`Partition`]:
//! shard `s` is the *owner* of the node ids in `partition.range(s)` —
//! updates for node `i` are applied only at `owner(i)`, so each
//! replica's coordinates are authoritative exactly on its own range.
//!
//! Queries route by ownership. A prediction for `(i, j)` reads `u_i`
//! from `owner(i)`'s published view and `v_j` from `owner(j)`'s; a
//! rank query fans out across every shard owning one of `i`'s
//! neighbors and merges with the same tie-break
//! ([`dmf_core::session::rank_scored`]) the single-session queries
//! use. Because an RTT update modifies only node `i`'s coordinates —
//! reading the peer's reply `(u_j, v_j)`, exactly the paper's
//! Algorithm 1 wire shape — the sharded service is *bit-identical* to
//! one big session fed the same operations in the same order: the
//! router ships `j`'s published reply coordinates to `owner(i)`,
//! which applies them through [`Session::apply_rtt_remote_batch`].
//!
//! # Threading model
//!
//! *Reads never take a lock.* `predict` / `predict_class` /
//! `rank_neighbors` run entirely against the per-shard [`EpochView`]
//! seqlocks: each slot read is atomic (never torn), retried only for
//! the nanoseconds a publication of that very slot is in flight.
//!
//! *Writes are single-writer per shard, batched.* An update is
//! validated against the published membership, enqueued on the owning
//! shard's bounded FIFO (`UpdateQueue`), and then drained by
//! whoever holds that shard's write lock — the submitting connection
//! itself when the shard is uncontended (it `try_lock`s and becomes
//! the *combiner*, applying the queued batch inline), or the shard's
//! dedicated worker thread when the lock is busy (the submitter
//! notifies the worker and parks on its [`UpdateTicket`]). Batches
//! drain in arrival order through
//! [`Session::apply_rtt_remote_batch`], are published as one epoch
//! swap, and tickets complete only after publication — so a caller
//! that saw its update return reads its own write, and per-shard
//! update order (hence byte-determinism) is preserved.
//!
//! A full queue is *backpressure*, not blocking: `try_push` failure
//! surfaces as the wire protocol's `Overloaded` rejection
//! ([`PredictionService::is_overload`]).
//!
//! # Lock order
//!
//! Pinned crate-wide (and exercised by the concurrent stress suite):
//!
//! 1. `write[s]` → `queue-inner[s]`: the combiner pops batches while
//!    holding the shard write lock (only the write-lock holder may
//!    pop). Pushers take the queue-inner mutex alone.
//! 2. `write[s]` and `publish[s]` are **never held together**: a
//!    batch's dirty slots are copied out under the write lock, the
//!    write lock drops, and publication happens under the publish
//!    lock (the short-critical-section rule). The versioned frontier
//!    (`apply_seq` vs `published_seq`) makes the out-of-lock
//!    publication safe: a slow publisher carrying stale slot copies
//!    finds the frontier already past its batch and skips them.
//! 3. Cross-shard acquisition (restore only) is ascending by shard
//!    index, write locks before publish locks per shard.
//!
//! The service population is *static*: membership changes
//! (join/leave) are a session-level concern not exposed through the
//! query surface, which keeps every replica's membership flags
//! trivially consistent.

use crate::partition::Partition;
use crate::worker::{UpdateJob, UpdateQueue, UpdateTicket, WorkerStats, WorkerStatsSnapshot};
use dmf_core::session::RemoteRtt;
use dmf_core::{
    CoordVec, DmfsgdConfig, DmfsgdError, EpochView, MembershipError, NodeId, PredictionMode,
    Session, Snapshot,
};
use std::cell::RefCell;
use std::sync::{Arc, Mutex, OnceLock, TryLockError};

/// Default bound of each shard's update queue. Deep enough that
/// well-behaved pipelined connections (each with at most one update
/// in execution) never hit it; the bound exists so a stalled shard
/// rejects with `Overloaded` instead of buffering without limit.
pub const DEFAULT_UPDATE_QUEUE: usize = 1024;

/// Most updates drained per write-lock acquisition. Bounds the time
/// the write lock is held per batch (and the latency of the updates
/// queued behind a long burst).
const MAX_BATCH: usize = 64;

/// The write half of one shard: the authoritative session plus the
/// monotone apply sequence stamped onto every drained batch.
struct ShardWrite {
    session: Session,
    /// Bumped once per applied batch (and per restore); never reset,
    /// so slot copies stamped before a restore can never overwrite
    /// the restored state.
    apply_seq: u64,
}

/// One shard: single-writer state, lock-free read store, the bounded
/// update queue its worker drains, and the publication frontier.
struct Shard {
    write: Mutex<ShardWrite>,
    store: EpochView,
    queue: UpdateQueue,
    /// `published_seq` per slot: the `apply_seq` of the newest batch
    /// whose copy of that slot has been published. Guarded by its own
    /// mutex so publication never holds the write lock.
    publish: Mutex<Vec<u64>>,
    stats: WorkerStats,
}

/// The shared state behind [`PredictionService`] (the service itself
/// additionally owns the worker threads' join handles).
struct ServiceInner {
    partition: Partition,
    shards: Vec<Shard>,
    /// Set once by the first instrumented connection
    /// ([`attach_metrics`](PredictionService::attach_metrics)); read
    /// lock-free on the update hot path.
    metrics: OnceLock<Arc<crate::metrics::ServiceMetrics>>,
}

/// Reusable per-thread buffers for the drain path, so the inline
/// combiner fast path allocates (almost) nothing per update.
#[derive(Default)]
struct DrainScratch {
    batch: Vec<UpdateJob>,
    /// Fetched replies, `2 * rank` values per job: `[u_j, v_j]`.
    reply: Vec<f64>,
    scores: Vec<f64>,
    results: Vec<Result<f64, DmfsgdError>>,
    /// Dirty slots copied out under the write lock for publication.
    slots: Vec<(NodeId, dmf_core::Coordinates, bool)>,
}

thread_local! {
    static SCRATCH: RefCell<DrainScratch> = RefCell::default();
}

/// A sharded, concurrently-queryable prediction service over one
/// DMFSGD population (see the [module docs](self) for the ownership,
/// consistency and threading model).
///
/// All methods take `&self`; the service is `Sync` and meant to be
/// shared across connection threads behind an `Arc`. Dropping it
/// stops and joins the per-shard worker threads.
pub struct PredictionService {
    inner: Arc<ServiceInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PredictionService {
    /// Builds a fresh service: `shards` identical session replicas of
    /// an `n`-node population from `config` (coordinates are seeded by
    /// `config.seed`, so every replica — and any single-session oracle
    /// built from the same config — starts bit-identical).
    pub fn build(config: DmfsgdConfig, n: usize, shards: usize) -> Result<Self, DmfsgdError> {
        Self::build_with_queue(config, n, shards, DEFAULT_UPDATE_QUEUE)
    }

    /// As [`build`](Self::build) with an explicit per-shard update
    /// queue bound (backpressure knob; `>= 1`).
    pub fn build_with_queue(
        config: DmfsgdConfig,
        n: usize,
        shards: usize,
        queue_capacity: usize,
    ) -> Result<Self, DmfsgdError> {
        let partition = Partition::new(n, shards)?;
        let sessions = (0..shards)
            .map(|_| {
                Session::builder()
                    .config(config)
                    .nodes(n)
                    .build()
                    .map_err(DmfsgdError::from)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_sessions(partition, sessions, queue_capacity))
    }

    /// Serves an already-trained population: every shard restores the
    /// same `snapshot`, then owns its partition range from there. This
    /// is the deploy path — train one session offline, snapshot it,
    /// and stand up a sharded service in front of it.
    pub fn from_snapshot(snapshot: &Snapshot, shards: usize) -> Result<Self, DmfsgdError> {
        let reference = Session::restore(snapshot)?;
        let partition = Partition::new(reference.len(), shards)?;
        let mut sessions = Vec::with_capacity(shards);
        for _ in 1..shards {
            sessions.push(Session::restore(snapshot)?);
        }
        sessions.push(reference);
        Ok(Self::from_sessions(
            partition,
            sessions,
            DEFAULT_UPDATE_QUEUE,
        ))
    }

    fn from_sessions(partition: Partition, sessions: Vec<Session>, queue_capacity: usize) -> Self {
        let n = partition.len();
        let shards: Vec<Shard> = sessions
            .into_iter()
            .map(|session| Shard {
                store: EpochView::capture(&session),
                write: Mutex::new(ShardWrite {
                    session,
                    apply_seq: 0,
                }),
                queue: UpdateQueue::new(queue_capacity),
                publish: Mutex::new(vec![0; n]),
                stats: WorkerStats::default(),
            })
            .collect();
        let inner = Arc::new(ServiceInner {
            partition,
            shards,
            metrics: OnceLock::new(),
        });
        let workers = (0..inner.shards.len())
            .map(|s| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dmf-shard-{s}"))
                    .spawn(move || worker_loop(&inner, s))
                    .expect("spawn shard worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// The id partition routing queries to shards.
    pub fn partition(&self) -> &Partition {
        &self.inner.partition
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Number of node slots served.
    pub fn len(&self) -> usize {
        self.inner.partition.len()
    }

    /// True when the service covers no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.inner.partition.is_empty()
    }

    /// Attaches the observability sink (idempotent; the first call
    /// wins). Once attached, the update path publishes
    /// `dmf_service_shard_queue_depth` and the worker batch-size
    /// histogram into it. Called by
    /// [`ServerConnection::with_metrics`](crate::ServerConnection::with_metrics).
    pub fn attach_metrics(&self, metrics: &Arc<crate::metrics::ServiceMetrics>) {
        let _ = self.inner.metrics.set(Arc::clone(metrics));
    }

    /// Point-in-time batching statistics per shard: how updates
    /// batched, how deep the queues ran (see [`WorkerStatsSnapshot`]).
    pub fn worker_stats(&self) -> Vec<WorkerStatsSnapshot> {
        self.inner
            .shards
            .iter()
            .map(|s| s.stats.snapshot())
            .collect()
    }

    /// True when `e` is the bounded-update-queue rejection — the
    /// backpressure signal connections map to the wire protocol's
    /// `Overloaded` code.
    pub fn is_overload(e: &DmfsgdError) -> bool {
        matches!(e, DmfsgdError::Transport(m) if m.contains("update queue full"))
    }

    /// Raw predictor output `u_i · v_j` plus the prediction mode, read
    /// lock-free from the owning shards' published stores.
    fn scored(&self, i: NodeId, j: NodeId) -> Result<(f64, PredictionMode), DmfsgdError> {
        let inner = &*self.inner;
        let n = inner.partition.len();
        let store_i = &inner.shards[inner.partition.owner(i)].store;
        let store_j = &inner.shards[inner.partition.owner(j)].store;
        let rank = store_i.rank();
        let mut u_i = CoordVec::zeros(rank);
        let mut v_j = CoordVec::zeros(rank);
        // Membership checks in the session's order (i, then j, then
        // the self-pair), each fused with its slot read.
        match store_i.read_u_into(i, &mut u_i) {
            None => return Err(MembershipError::UnknownNode { id: i, slots: n }.into()),
            Some(false) => return Err(MembershipError::Departed { id: i }.into()),
            Some(true) => {}
        }
        match store_j.read_v_into(j, &mut v_j) {
            None => return Err(MembershipError::UnknownNode { id: j, slots: n }.into()),
            Some(false) => return Err(MembershipError::Departed { id: j }.into()),
            Some(true) => {}
        }
        if i == j {
            return Err(MembershipError::SelfPair { id: i }.into());
        }
        Ok((dmf_core::coords::dot(&u_i, &v_j), store_i.mode()))
    }

    /// Predicted measure for the path `i → j` in natural units —
    /// [`Session::predict`] semantics over the sharded stores.
    pub fn predict(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        let (raw, mode) = self.scored(i, j)?;
        Ok(match mode {
            PredictionMode::Class => raw,
            PredictionMode::Quantity { value_scale } => raw * value_scale,
        })
    }

    /// Predicted class (`+1.0` / `-1.0`) for the path `i → j` —
    /// [`Session::predict_class`] semantics over the sharded stores.
    pub fn predict_class(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        Ok(if self.scored(i, j)?.0 >= 0.0 {
            1.0
        } else {
            -1.0
        })
    }

    /// Node `i`'s neighbors ranked by predicted score into a
    /// caller-owned buffer — [`Session::rank_neighbors_into`]
    /// semantics, cross-shard and lock-free. With one shard this is a
    /// direct [`EpochView::rank_neighbors_into`] call; with more, the
    /// router fans out over every owning shard's store and merges
    /// with the shared tie-break, bit-identically to the
    /// single-session query. Each slot read is atomic; a query
    /// concurrent with updates may span publication epochs across
    /// *different* slots, never within one.
    pub fn rank_neighbors_into(
        &self,
        i: NodeId,
        top_k: usize,
        out: &mut Vec<(NodeId, f64)>,
    ) -> Result<(), DmfsgdError> {
        let inner = &*self.inner;
        if inner.shards.len() == 1 {
            return inner.shards[0].store.rank_neighbors_into(i, top_k, out);
        }
        out.clear();
        let store_i = &inner.shards[inner.partition.owner(i)].store;
        store_i.check_alive(i)?;
        let rank = store_i.rank();
        let mut u_i = CoordVec::zeros(rank);
        let mut v_j = CoordVec::zeros(rank);
        store_i.read_u_into(i, &mut u_i);
        // Neighbor rows are replicated (same seed), so any store
        // serves them; coordinates come from each neighbor's owner.
        for &j in store_i.neighbors().neighbors(i) {
            inner.shards[inner.partition.owner(j)]
                .store
                .read_v_into(j, &mut v_j);
            out.push((j, dmf_core::coords::dot(&u_i, &v_j)));
        }
        dmf_core::session::rank_scored(out, top_k);
        Ok(())
    }

    /// Allocating convenience form of
    /// [`rank_neighbors_into`](Self::rank_neighbors_into).
    pub fn rank_neighbors(
        &self,
        i: NodeId,
        top_k: usize,
    ) -> Result<Vec<(NodeId, f64)>, DmfsgdError> {
        let mut out = Vec::new();
        self.rank_neighbors_into(i, top_k, &mut out)?;
        Ok(out)
    }

    /// Applies an RTT-class measurement `x` for the pair `(i, j)`:
    /// reads `j`'s published reply coordinates at `owner(j)`, applies
    /// the Algorithm 1 step at `owner(i)` through the shard's
    /// single-writer batch path, and publishes `i`'s slot.
    /// Sequentially this is bit-identical to
    /// `Session::apply_measurement(i, j, x, Metric::Rtt)` on a single
    /// session.
    pub fn update_rtt(&self, i: NodeId, j: NodeId, x: f64) -> Result<(), DmfsgdError> {
        self.update_rtt_scored(i, j, x).map(|_| ())
    }

    /// As [`update_rtt`](Self::update_rtt), additionally returning the
    /// *pre-update* raw score `u_i · v_j` — the prediction the service
    /// would have given for the path just measured. Pairing it with
    /// the measured class `x` is how the observability layer feeds its
    /// live quality window: the score is computed inside the shard's
    /// single-writer drain, so it is exactly the prediction in force
    /// when the measurement's turn came.
    ///
    /// Blocks until the update is applied *and published* (or
    /// rejected): a caller that sees this return observes its own
    /// write. A full shard queue returns the `Overloaded`-mapped
    /// rejection immediately ([`is_overload`](Self::is_overload)).
    pub fn update_rtt_scored(&self, i: NodeId, j: NodeId, x: f64) -> Result<f64, DmfsgdError> {
        let ticket = Arc::new(UpdateTicket::new());
        self.update_rtt_scored_with(i, j, x, &ticket)
    }

    /// [`update_rtt_scored`](Self::update_rtt_scored) with a
    /// caller-owned (reusable) ticket — the connection hot path.
    pub(crate) fn update_rtt_scored_with(
        &self,
        i: NodeId,
        j: NodeId,
        x: f64,
        ticket: &Arc<UpdateTicket>,
    ) -> Result<f64, DmfsgdError> {
        let inner = &*self.inner;
        // Admission validation against the published membership, in
        // the session's error order (flags are replicated, so
        // owner(j)'s store can run the full pair check); the x
        // finiteness check mirrors `apply_rtt_remote`'s. Invalid
        // requests never enqueue.
        inner.shards[inner.partition.owner(j)]
            .store
            .check_pair(i, j)?;
        if !x.is_finite() {
            return Err(DmfsgdError::Import(
                "remote reply carries non-finite values".to_string(),
            ));
        }
        let s = inner.partition.owner(i);
        let shard = &inner.shards[s];
        let depth = shard
            .queue
            .try_push(UpdateJob {
                i,
                j,
                x,
                ticket: Arc::clone(ticket),
            })
            .map_err(|_| {
                DmfsgdError::Transport(format!(
                    "shard {s} update queue full ({} updates queued)",
                    shard.queue.capacity()
                ))
            })?;
        shard.stats.record_depth(depth);
        if let Some(m) = inner.metrics.get() {
            m.set_shard_queue_depth(s, depth);
        }
        // Combine or delegate: become the shard's writer if the lock
        // is free (the uncontended fast path applies the update
        // inline, no handoff); otherwise wake the dedicated worker.
        SCRATCH.with(|scratch| {
            drain_queue(inner, s, &mut scratch.borrow_mut(), false, Some(ticket));
        });
        ticket.take()
    }

    /// Restores every shard of a *live* service from `snapshot` — the
    /// in-place counterpart of [`from_snapshot`](Self::from_snapshot),
    /// for rolling a running deployment back to a known-good
    /// checkpoint without tearing down its connections.
    ///
    /// The swap is atomic with respect to updates: restored sessions
    /// are built and validated *before* any lock is taken, then all
    /// shard write locks are acquired in ascending order (the
    /// crate-wide rule), each store is republished wholesale under
    /// its publish lock, and the publication frontier jumps past
    /// every in-flight batch — a straggling publisher carrying
    /// pre-restore slot copies finds the frontier ahead of its batch
    /// and skips them. Updates still queued when the restore lands
    /// apply *after* it, to the restored coordinates.
    ///
    /// The snapshot must describe the same population the service was
    /// built for: size, rank, prediction mode and neighbor rows (the
    /// published stores' immutable layout). Stand up a fresh service
    /// via [`from_snapshot`](Self::from_snapshot) for structural
    /// changes.
    pub fn restore_from_snapshot(&self, snapshot: &Snapshot) -> Result<(), DmfsgdError> {
        let inner = &*self.inner;
        if snapshot.len() != self.len() {
            return Err(DmfsgdError::Import(format!(
                "snapshot has {} nodes, the service serves {}",
                snapshot.len(),
                self.len()
            )));
        }
        // Build (and thereby validate) every replacement session while
        // the service keeps serving; only then stop the world.
        let mut restored = Vec::with_capacity(inner.shards.len());
        for _ in 0..inner.shards.len() {
            restored.push(Session::restore(snapshot)?);
        }
        let store0 = &inner.shards[0].store;
        let fresh = restored.first().expect("at least one shard");
        if fresh.config().rank != store0.rank()
            || fresh.config().mode != store0.mode()
            || !same_neighbors(fresh, store0)
        {
            return Err(DmfsgdError::Import(
                "snapshot changes the served structure (rank, mode or neighbor rows); \
                 build a fresh service with from_snapshot instead"
                    .to_string(),
            ));
        }
        let mut guards: Vec<_> = inner
            .shards
            .iter()
            .map(|sh| sh.write.lock().expect("shard write lock"))
            .collect();
        for ((shard, guard), fresh) in inner.shards.iter().zip(guards.iter_mut()).zip(restored) {
            let mut frontier = shard.publish.lock().expect("shard publish lock");
            guard.session = fresh;
            guard.apply_seq += 1;
            let seq = guard.apply_seq;
            shard
                .store
                .publish_all(&guard.session)
                .expect("structure validated above");
            for f in frontier.iter_mut() {
                *f = seq;
            }
        }
        Ok(())
    }

    /// JSON snapshot of shard `shard`'s session (authoritative for its
    /// own partition range; replica state elsewhere).
    pub fn snapshot_json(&self, shard: usize) -> Result<Vec<u8>, DmfsgdError> {
        let Some(s) = self.inner.shards.get(shard) else {
            return Err(DmfsgdError::Transport(format!(
                "snapshot of shard {shard}, but the service has {} shards",
                self.inner.shards.len()
            )));
        };
        let w = s.write.lock().expect("shard write lock");
        Ok(w.session.snapshot().to_json().into_bytes())
    }

    /// Total measurements applied across all shards (each update lands
    /// on exactly one shard, so this is the service-wide count).
    pub fn measurements_used(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.write
                    .lock()
                    .expect("shard write lock")
                    .session
                    .measurements_used()
            })
            .sum()
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        for shard in &self.inner.shards {
            shard.queue.close();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// True when the restored session's neighbor rows equal the store's
/// (the rank queries' immutable fan-out layout).
fn same_neighbors(session: &Session, store: &EpochView) -> bool {
    let (a, b) = (session.neighbors(), store.neighbors());
    session.len() == store.len() && (0..session.len()).all(|i| a.neighbors(i) == b.neighbors(i))
}

/// The dedicated single-writer backstop of shard `s`: parks on the
/// queue condvar, drains on every handoff, exits when the service
/// drops.
fn worker_loop(inner: &ServiceInner, s: usize) {
    let mut scratch = DrainScratch::default();
    while inner.shards[s].queue.wait_for_work() {
        drain_queue(inner, s, &mut scratch, true, None);
    }
}

/// Drains shard `s`'s queue in arrival-order batches: acquire the
/// write lock (blocking for the worker, `try` for an inline
/// combiner), pop a batch, apply it, *release*, publish, complete
/// tickets; repeat until the queue is observed empty (or, for a
/// combiner, its own ticket completed). Always leaves a non-empty
/// queue with a worker wakeup pending, so no accepted job strands.
fn drain_queue(
    inner: &ServiceInner,
    s: usize,
    scratch: &mut DrainScratch,
    by_worker: bool,
    own: Option<&UpdateTicket>,
) {
    let shard = &inner.shards[s];
    loop {
        let guard = if by_worker {
            Some(shard.write.lock().expect("shard write lock"))
        } else {
            match shard.write.try_lock() {
                Ok(g) => Some(g),
                Err(TryLockError::WouldBlock) => None,
                Err(TryLockError::Poisoned(e)) => panic!("shard write lock: {e}"),
            }
        };
        let Some(mut w) = guard else {
            // Combine lost the race: hand the shard to its worker.
            break;
        };
        shard.queue.pop_batch(&mut scratch.batch, MAX_BATCH);
        if scratch.batch.is_empty() {
            break;
        }
        let batch_seq = apply_batch(inner, s, &mut w, scratch);
        // Lock-order rule 2: the write lock drops before publication;
        // the O(r) slot copies in `scratch.slots` travel across.
        drop(w);
        publish_batch(inner, s, batch_seq, scratch);
        shard.stats.record_batch(scratch.batch.len(), by_worker);
        if let Some(m) = inner.metrics.get() {
            m.record_worker_batch(scratch.batch.len());
            m.set_shard_queue_depth(s, shard.queue.depth());
        }
        // Tickets complete only now — the publication is visible, so
        // every completed update reads its own write.
        for (job, result) in scratch.batch.drain(..).zip(scratch.results.drain(..)) {
            job.ticket.complete(result);
        }
        if own.is_some_and(UpdateTicket::is_done) {
            break;
        }
    }
    if !shard.queue.is_empty() {
        shard.queue.notify_worker();
    }
}

/// Applies `scratch.batch` to shard `s` under its held write lock:
/// fetches every reply lock-free from the owners' stores, applies the
/// whole batch through [`Session::apply_rtt_remote_batch`] (with a
/// per-job fallback preserving the exact sequential error surface if
/// any job turned invalid since admission), stamps the batch
/// sequence, and copies the dirty slots out for publication. Fills
/// `scratch.results` (one per job, in order) and `scratch.slots`.
fn apply_batch(
    inner: &ServiceInner,
    s: usize,
    w: &mut ShardWrite,
    scratch: &mut DrainScratch,
) -> u64 {
    let shard = &inner.shards[s];
    let rank = shard.store.rank();
    let DrainScratch {
        batch,
        reply,
        scores,
        results,
        slots,
    } = scratch;
    reply.clear();
    reply.resize(batch.len() * 2 * rank, 0.0);
    results.clear();
    let mut all_fetched = true;
    for (k, job) in batch.iter().enumerate() {
        let slot = &mut reply[k * 2 * rank..(k + 1) * 2 * rank];
        let (u_j, v_j) = slot.split_at_mut(rank);
        let owner_j = &inner.shards[inner.partition.owner(job.j)].store;
        if owner_j.read_into(job.j, u_j, v_j) != Some(true) {
            all_fetched = false;
        }
    }
    let batched_ok = all_fetched && {
        let updates: Vec<RemoteRtt<'_>> = batch
            .iter()
            .enumerate()
            .map(|(k, job)| {
                let slot = &reply[k * 2 * rank..(k + 1) * 2 * rank];
                let (u_j, v_j) = slot.split_at(rank);
                RemoteRtt {
                    i: job.i,
                    x: job.x,
                    u_j,
                    v_j,
                }
            })
            .collect();
        w.session.apply_rtt_remote_batch(&updates, scores).is_ok()
    };
    if batched_ok {
        results.extend(scores.iter().copied().map(Ok));
    } else {
        // Rare: some job became invalid between admission and apply
        // (a concurrent restore flipped membership, or a published
        // reply carried non-finite values). Re-run the batch job by
        // job so valid updates still land and each invalid one gets
        // the exact error the sequential path would have produced.
        for (k, job) in batch.iter().enumerate() {
            let slot = &mut reply[k * 2 * rank..(k + 1) * 2 * rank];
            let (u_j, v_j) = slot.split_at_mut(rank);
            let owner_j = &inner.shards[inner.partition.owner(job.j)].store;
            let result = owner_j
                .check_pair(job.i, job.j)
                .map_err(DmfsgdError::from)
                .and_then(|()| {
                    if owner_j.read_into(job.j, u_j, v_j) != Some(true) {
                        return Err(MembershipError::Departed { id: job.j }.into());
                    }
                    let score =
                        dmf_core::coords::dot(&w.session.nodes()[job.i].coords.u, &v_j[..rank]);
                    w.session
                        .apply_rtt_remote(job.i, job.x, &u_j[..rank], &v_j[..rank])?;
                    Ok(score)
                });
            results.push(result);
        }
    }
    w.apply_seq += 1;
    let batch_seq = w.apply_seq;
    slots.clear();
    for job in batch.iter() {
        if !slots.iter().any(|&(id, ..)| id == job.i) {
            let node = w.session.node(job.i).expect("admission-validated id");
            slots.push((job.i, node.coords.clone(), w.session.is_alive(job.i)));
        }
    }
    batch_seq
}

/// Publishes a drained batch's slot copies under the shard's publish
/// lock, skipping any slot the frontier already carried past
/// `batch_seq` (a fresher batch published first), then bumps the
/// store epoch once for the whole batch.
fn publish_batch(inner: &ServiceInner, s: usize, batch_seq: u64, scratch: &mut DrainScratch) {
    let shard = &inner.shards[s];
    let mut frontier = shard.publish.lock().expect("shard publish lock");
    for (id, coords, alive) in &scratch.slots {
        if batch_seq > frontier[*id] {
            shard
                .store
                .publish_slot(*id, coords, *alive)
                .expect("slot copied from the owning session");
            frontier[*id] = batch_seq;
        }
    }
    shard.store.bump_epoch();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_core::SessionBuilder;

    fn config(n: usize, seed: u64) -> DmfsgdConfig {
        // Build through the validated path so defaults stay in sync.
        let s = SessionBuilder::new()
            .nodes(n)
            .seed(seed)
            .build()
            .expect("valid");
        *s.config()
    }

    #[test]
    fn replicas_start_identical_to_the_oracle() {
        let cfg = config(30, 7);
        let oracle = Session::builder().config(cfg).nodes(30).build().unwrap();
        let svc = PredictionService::build(cfg, 30, 3).unwrap();
        for i in 0..30 {
            for j in 0..30 {
                if i == j {
                    continue;
                }
                assert_eq!(
                    svc.predict(i, j).unwrap(),
                    oracle.predict(i, j).unwrap(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn updates_route_to_the_owner_and_stay_oracle_exact() {
        let cfg = config(24, 8);
        let mut oracle = Session::builder().config(cfg).nodes(24).build().unwrap();
        let svc = PredictionService::build(cfg, 24, 4).unwrap();
        // A deterministic mixed schedule crossing every shard pair.
        let mut x = 1.0;
        for step in 0..400usize {
            let i = (step * 7) % 24;
            let j = (i + 1 + (step * 5) % 23) % 24;
            svc.update_rtt(i, j, x).unwrap();
            oracle
                .apply_measurement(i, j, x, dmf_datasets::Metric::Rtt)
                .unwrap();
            x = -x;
        }
        assert_eq!(svc.measurements_used(), 400);
        for i in 0..24 {
            for j in 0..24 {
                if i == j {
                    continue;
                }
                let a = svc.predict(i, j).unwrap();
                let b = oracle.predict(i, j).unwrap();
                assert!(a == b, "({i},{j}): {a} != {b}");
            }
            assert_eq!(
                svc.rank_neighbors(i, 8).unwrap(),
                oracle.rank_neighbors(i, 8).unwrap()
            );
        }
        // Every update drained through the batch machinery.
        let stats = svc.worker_stats();
        assert_eq!(stats.iter().map(|s| s.updates).sum::<u64>(), 400);
        assert!(stats.iter().map(|s| s.batches).sum::<u64>() > 0);
    }

    #[test]
    fn membership_errors_match_the_session_surface() {
        let cfg = config(12, 9);
        let svc = PredictionService::build(cfg, 12, 2).unwrap();
        let oracle = Session::builder().config(cfg).nodes(12).build().unwrap();
        assert_eq!(
            svc.predict(3, 3).unwrap_err(),
            oracle.predict(3, 3).unwrap_err()
        );
        assert_eq!(
            svc.predict(0, 99).unwrap_err(),
            oracle.predict(0, 99).unwrap_err()
        );
        assert_eq!(
            svc.update_rtt(99, 0, 1.0).unwrap_err(),
            oracle.rank_neighbors(99, 1).unwrap_err()
        );
        // Admission also rejects non-finite measurements with the
        // session's exact error.
        assert_eq!(
            svc.update_rtt(0, 1, f64::NAN).unwrap_err(),
            oracle
                .clone()
                .apply_rtt_remote(
                    0,
                    f64::NAN,
                    &vec![0.0; oracle.config().rank],
                    &vec![0.0; oracle.config().rank]
                )
                .unwrap_err()
        );
    }

    #[test]
    fn snapshot_round_trips_through_the_wireable_json() {
        let cfg = config(12, 10);
        let svc = PredictionService::build(cfg, 12, 2).unwrap();
        svc.update_rtt(0, 1, 1.0).unwrap();
        let json = svc.snapshot_json(0).unwrap();
        let snap = Snapshot::from_json(std::str::from_utf8(&json).unwrap()).unwrap();
        let restored = Session::restore(&snap).unwrap();
        assert_eq!(restored.len(), 12);
        assert!(matches!(
            svc.snapshot_json(5).unwrap_err(),
            DmfsgdError::Transport(_)
        ));
    }

    #[test]
    fn scored_updates_return_the_pre_update_prediction() {
        let cfg = config(16, 12);
        let svc = PredictionService::build(cfg, 16, 4).unwrap();
        let before = svc.predict(2, 9).unwrap();
        let mode_scale = 1.0; // class mode: predict() is the raw score
        let score = svc.update_rtt_scored(2, 9, -1.0).unwrap();
        assert_eq!(score * mode_scale, before);
        // And the update really landed: plain and scored paths are the
        // same code path.
        let svc2 = PredictionService::build(cfg, 16, 4).unwrap();
        svc2.update_rtt(2, 9, -1.0).unwrap();
        assert_eq!(svc.predict(2, 9).unwrap(), svc2.predict(2, 9).unwrap());
    }

    #[test]
    fn restore_from_snapshot_rolls_a_live_service_back() {
        let cfg = config(18, 13);
        let svc = PredictionService::build(cfg, 18, 3).unwrap();
        // Checkpoint the fresh state, then train past it.
        let checkpoint_json = svc.snapshot_json(0).unwrap();
        let checkpoint =
            Snapshot::from_json(std::str::from_utf8(&checkpoint_json).unwrap()).unwrap();
        let fresh: Vec<f64> = (0..18)
            .map(|j| {
                if j == 5 {
                    0.0
                } else {
                    svc.predict(5, j).unwrap()
                }
            })
            .collect();
        for step in 0..120usize {
            let i = step % 18;
            let j = (i + 1 + step % 17) % 18;
            svc.update_rtt(i, j, if step % 2 == 0 { 1.0 } else { -1.0 })
                .unwrap();
        }
        let trained: Vec<f64> = (0..18)
            .map(|j| {
                if j == 5 {
                    0.0
                } else {
                    svc.predict(5, j).unwrap()
                }
            })
            .collect();
        assert_ne!(fresh, trained, "training moved the coordinates");
        svc.restore_from_snapshot(&checkpoint).unwrap();
        let restored: Vec<f64> = (0..18)
            .map(|j| {
                if j == 5 {
                    0.0
                } else {
                    svc.predict(5, j).unwrap()
                }
            })
            .collect();
        assert_eq!(restored, fresh, "restore is bit-exact");
        // The service keeps serving and training after the rollback.
        svc.update_rtt(0, 1, 1.0).unwrap();

        // Population-size mismatch is rejected before any mutation.
        let other = Session::builder().nodes(12).seed(1).build().unwrap();
        assert!(matches!(
            svc.restore_from_snapshot(&other.snapshot()).unwrap_err(),
            DmfsgdError::Import(_)
        ));
        // So is a same-size snapshot with a different structure
        // (different seed ⇒ different neighbor rows).
        let reseeded = Session::builder().nodes(18).seed(99).build().unwrap();
        assert!(matches!(
            svc.restore_from_snapshot(&reseeded.snapshot()).unwrap_err(),
            DmfsgdError::Import(_)
        ));
    }

    #[test]
    fn from_snapshot_serves_a_pretrained_population() {
        let cfg = config(16, 11);
        let mut trained = Session::builder().config(cfg).nodes(16).build().unwrap();
        for step in 0..200usize {
            let i = step % 16;
            let j = (i + 1 + step % 15) % 16;
            trained
                .apply_measurement(
                    i,
                    j,
                    if step % 3 == 0 { -1.0 } else { 1.0 },
                    dmf_datasets::Metric::Rtt,
                )
                .unwrap();
        }
        let svc = PredictionService::from_snapshot(&trained.snapshot(), 4).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                if i == j {
                    continue;
                }
                assert_eq!(svc.predict(i, j).unwrap(), trained.predict(i, j).unwrap());
            }
        }
    }

    /// The backpressure path end to end: with the shard write lock
    /// pinned (so neither an inline combiner nor the worker can
    /// drain), a capacity-1 queue accepts exactly one update and
    /// rejects the next with the `Overloaded`-mapped error; releasing
    /// the lock lets the dedicated worker drain the queued update and
    /// complete its parked submitter.
    #[test]
    fn full_queue_rejects_as_overload_and_the_worker_drains_the_backlog() {
        let cfg = config(12, 14);
        let svc = Arc::new(PredictionService::build_with_queue(cfg, 12, 1, 1).unwrap());
        let guard = svc.inner.shards[0].write.lock().unwrap();
        let parked = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || svc.update_rtt_scored(0, 1, 1.0))
        };
        // Wait until the parked submitter's job is queued.
        while svc.inner.shards[0].queue.depth() < 1 {
            std::thread::yield_now();
        }
        let err = svc.update_rtt(2, 3, 1.0).unwrap_err();
        assert!(PredictionService::is_overload(&err), "{err}");
        assert!(matches!(err, DmfsgdError::Transport(_)));
        drop(guard);
        let score = parked.join().unwrap().unwrap();
        assert!(score.is_finite());
        assert_eq!(svc.measurements_used(), 1);
        let stats = svc.worker_stats();
        assert_eq!(stats[0].updates, 1);
        assert_eq!(stats[0].worker_batches, 1, "the backstop drained it");
        assert_eq!(stats[0].max_depth, 1);
    }
}
