//! # dmf-service — sharded, pipelined prediction serving
//!
//! DMFSGD (CoNEXT 2011) trains coordinates decentrally, but something
//! still has to *answer queries*: an overlay scheduler asking "which
//! class is the path from `i` to `j`?", a peer selector asking for
//! `i`'s best neighbors. This crate is that serving layer — many
//! DMFSGD sessions behind one query surface:
//!
//! * [`partition`] — landmark-style partitioning of the node id space
//!   into contiguous per-shard ranges with `O(1)` ownership lookup.
//! * [`service`] — the shard pool and router
//!   ([`PredictionService`]): each shard owns a
//!   [`Session`](dmf_core::Session) behind a single-writer lock and
//!   publishes its coordinates into a lock-free seqlocked
//!   [`EpochView`](dmf_core::EpochView), so predictions and rank
//!   queries never block on writers. Updates route to the owning
//!   shard carrying the peer's reply coordinates (the paper's
//!   Algorithm 1 wire shape), drain in arrival order through a
//!   bounded per-shard queue — applied inline by the submitting
//!   connection when the shard is uncontended, or by the shard's
//!   dedicated worker thread under contention — and publish as one
//!   epoch swap per batch. Sharded answers are **bit-identical** to
//!   a single-session oracle fed the same operations in the same
//!   order — the conformance suite pins this at several shard
//!   counts.
//! * [`worker`] — the building blocks of that write path: the
//!   bounded MPSC update queue, the parked submitters' completion
//!   tickets ([`UpdateTicket`]), and always-on batch-size /
//!   queue-depth distribution statistics
//!   ([`WorkerStatsSnapshot`]).
//! * [`protocol`] — the framed request/response wire format:
//!   `check`/`consume` buffered decoding over a byte stream
//!   ([`ControlFlow`](std::ops::ControlFlow)-based head inspection),
//!   reusing `dmf-proto`'s header conventions and FNV-1a checksum.
//!   Every response echoes its request's sequence number.
//! * [`connection`] — request pipelining with bounded backpressure:
//!   strictly in-order execution (deterministic response streams),
//!   a bounded admission window, and immediate typed
//!   [`ErrorCode::Overloaded`] rejection beyond it.
//! * [`client`] — sequence allocation, response matching, and the
//!   fold from remote errors into [`DmfsgdError`](dmf_core::DmfsgdError)
//!   (overload → `Transport`).
//! * [`loopback`] — an in-memory duplex byte pipe so benches and
//!   examples run the full wire path without sockets.
//! * [`metrics`] — the service's observability surface
//!   ([`ServiceMetrics`]): request/error/overload counters, latency
//!   histogram, per-shard update counters, a live rolling-AUC quality
//!   window and declared health rules, served over the protocol's
//!   `Metrics`/`Health` request types. Documented as an operator
//!   contract in `docs/operations.md`.
//!
//! # Position in the workspace
//!
//! Depends on `dmf-core` (sessions, views, typed errors), `dmf-proto`
//! (checksum, decode-error vocabulary) and `dmf-ops` (metric
//! registry, health semantics). Downstream, `dmf-bench` load-tests it
//! (`service_runs` in BENCH.json) and the facade re-exports it as
//! `dmfsgd::service`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[deny(missing_docs)]
pub mod client;
#[deny(missing_docs)]
pub mod connection;
#[deny(missing_docs)]
pub mod loopback;
#[deny(missing_docs)]
pub mod metrics;
#[deny(missing_docs)]
pub mod partition;
#[deny(missing_docs)]
pub mod protocol;
#[deny(missing_docs)]
pub mod service;
#[deny(missing_docs)]
pub mod worker;

pub use client::ServiceClient;
pub use connection::{serve_loopback, ServerConnection, DEFAULT_MAX_IN_FLIGHT};
pub use loopback::{loopback_pair, LoopbackEndpoint};
pub use metrics::{RequestKind, ServiceMetrics, DEFAULT_QUALITY_WINDOW, LATENCY_BUCKETS_US};
pub use partition::Partition;
pub use protocol::{
    ErrorCode, MetricsFormat, ProtocolDecode, ProtocolEncode, Request, Response, CHECKSUM_LEN,
    HEADER_LEN, MAX_HEALTH_REASONS, MAX_PAYLOAD, MAX_RANKED, SERVICE_MAGIC, SERVICE_VERSION,
};
pub use service::{PredictionService, DEFAULT_UPDATE_QUEUE};
pub use worker::{UpdateTicket, WorkerStatsSnapshot, DIST_BUCKETS};
