//! Landmark-style partitioning of the node id space across shards.
//!
//! The service splits the population into contiguous id ranges, one
//! per shard — the serving-side analogue of the landmark clusters in
//! classical network coordinate systems, except that here a shard owns
//! the *authoritative coordinates* of its range rather than a set of
//! fixed measurement targets. Contiguity keeps ownership lookup
//! arithmetic (no routing table) and makes range scans trivially
//! shard-local.

use dmf_core::{ConfigError, DmfsgdError, NodeId};
use std::ops::Range;

/// A contiguous partition of node ids `0..n` into `shards` ranges.
///
/// Sizes differ by at most one: the first `n % shards` ranges get the
/// extra slot. Ownership is pure arithmetic — [`owner`](Self::owner)
/// is `O(1)` and allocation-free, which keeps it off the serving hot
/// path's profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    n: usize,
    shards: usize,
    /// `n / shards` (the small range size).
    base: usize,
    /// `n % shards` (how many leading ranges hold `base + 1` ids).
    extra: usize,
}

impl Partition {
    /// Partitions `n` node ids across `shards` ranges.
    ///
    /// Fails with a typed [`DmfsgdError::Config`] when `shards` is
    /// zero or exceeds `n` (an empty shard could never own a node, so
    /// asking for one is always a deployment bug).
    pub fn new(n: usize, shards: usize) -> Result<Self, DmfsgdError> {
        if shards == 0 || shards > n {
            return Err(DmfsgdError::Config(ConfigError::Shards { n, shards }));
        }
        Ok(Self {
            n,
            shards,
            base: n / shards,
            extra: n % shards,
        })
    }

    /// Number of node ids covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the partition covers no ids (never, by construction:
    /// `new` requires `shards <= n` and `shards >= 1`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning node `id` (ids at or beyond `len` clamp to the
    /// last shard; membership is checked by the session layer, not the
    /// router).
    pub fn owner(&self, id: NodeId) -> usize {
        let wide = self.extra * (self.base + 1);
        let shard = if id < wide {
            id / (self.base + 1)
        } else {
            // base > 0 here: base == 0 implies extra == n, so every
            // in-range id takes the branch above.
            self.extra + (id - wide) / self.base.max(1)
        };
        shard.min(self.shards - 1)
    }

    /// The id range owned by `shard` (panics when `shard` is out of
    /// range — shard indices are internal, not wire input).
    pub fn range(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        let start = if shard <= self.extra {
            shard * (self.base + 1)
        } else {
            self.extra * (self.base + 1) + (shard - self.extra) * self.base
        };
        let len = self.base + usize::from(shard < self.extra);
        start..start + len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_id_space() {
        for n in [1usize, 2, 7, 64, 100, 101, 257] {
            for shards in 1..=n.min(9) {
                let p = Partition::new(n, shards).unwrap();
                let mut next = 0;
                for s in 0..shards {
                    let r = p.range(s);
                    assert_eq!(r.start, next, "n={n} shards={shards} s={s}");
                    for id in r.clone() {
                        assert_eq!(p.owner(id), s, "n={n} shards={shards} id={id}");
                    }
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let p = Partition::new(10, 3).unwrap();
        let sizes: Vec<usize> = (0..3).map(|s| p.range(s).len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn out_of_range_ids_clamp_to_the_last_shard() {
        let p = Partition::new(10, 4).unwrap();
        assert_eq!(p.owner(10), 3);
        assert_eq!(p.owner(usize::MAX), 3);
    }

    #[test]
    fn degenerate_partitions_are_rejected() {
        assert!(matches!(
            Partition::new(4, 0).unwrap_err(),
            DmfsgdError::Config(_)
        ));
        assert!(matches!(
            Partition::new(4, 5).unwrap_err(),
            DmfsgdError::Config(_)
        ));
        Partition::new(4, 4).expect("one node per shard is fine");
    }
}
