//! Per-connection request pipelining with bounded backpressure:
//! [`ServerConnection`].
//!
//! The service speaks a pipelined protocol: a client may ship many
//! requests back to back without waiting for answers, and the server
//! executes them strictly in arrival order, tagging each response
//! with the request's sequence number. In-order execution is what
//! makes the whole stack deterministic — for a fixed request
//! schedule, the response byte stream is identical regardless of
//! shard count or timing (the conformance suite pins this).
//!
//! Backpressure is a bounded admission window, not an unbounded
//! queue: at most `max_in_flight` requests may be admitted and not
//! yet answered. A request arriving with the window full is *not*
//! buffered — it is answered immediately with
//! [`ErrorCode::Overloaded`], which clients surface as a typed
//! [`DmfsgdError::Transport`]. Memory per connection is therefore
//! bounded by the window size plus one frame, no matter how fast the
//! client pushes.
//!
//! The connection is transport-agnostic and manually pumped —
//! [`ingest`](ServerConnection::ingest) bytes in,
//! [`execute_one`](ServerConnection::execute_one) /
//! [`drain`](ServerConnection::drain) response bytes out — so tests
//! drive it deterministically. [`serve_loopback`] wraps the same pump
//! in a thread loop over a [`Loopback`](crate::loopback) pipe for the
//! benches and examples.

use crate::metrics::{RequestKind, ServiceMetrics};
use crate::protocol::{ErrorCode, ProtocolDecode, ProtocolEncode, Request, Response, MAX_PAYLOAD};
use crate::service::PredictionService;
use crate::worker::UpdateTicket;
use dmf_core::{DmfsgdError, NodeId};
use std::collections::VecDeque;
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Instant;

/// Default admission window: how many requests may be in flight on
/// one connection before overload rejection kicks in.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 128;

/// Server side of one pipelined connection (see the [module
/// docs](self)).
pub struct ServerConnection {
    service: Arc<PredictionService>,
    max_in_flight: usize,
    /// Undecoded stream bytes (at most one partial frame after each
    /// `ingest` returns).
    inbuf: Vec<u8>,
    /// Admitted, not-yet-executed requests, in arrival order.
    pending: VecDeque<Request>,
    /// Reusable rank buffer: neighbor ranking allocates nothing per
    /// query ([`PredictionService::rank_neighbors_into`]).
    rank_buf: Vec<(NodeId, f64)>,
    /// Reusable update-completion ticket: in-order execution means at
    /// most one update from this connection is ever in flight, so one
    /// ticket serves the whole connection without per-update
    /// allocation.
    update_ticket: Arc<UpdateTicket>,
    /// Requests rejected with [`ErrorCode::Overloaded`] so far.
    overload_rejections: u64,
    /// Observability sink, shared across the connections of one
    /// service. `None` (the default) serves with no instrumentation
    /// overhead and answers `Metrics`/`Health` requests with
    /// [`ErrorCode::BadRequest`].
    metrics: Option<Arc<ServiceMetrics>>,
}

impl ServerConnection {
    /// A connection serving `service` with the given admission window
    /// (`max_in_flight >= 1`; clamped up from 0).
    pub fn new(service: Arc<PredictionService>, max_in_flight: usize) -> Self {
        Self {
            service,
            max_in_flight: max_in_flight.max(1),
            inbuf: Vec::new(),
            pending: VecDeque::new(),
            rank_buf: Vec::new(),
            update_ticket: Arc::new(UpdateTicket::new()),
            overload_rejections: 0,
            metrics: None,
        }
    }

    /// A connection with the [`DEFAULT_MAX_IN_FLIGHT`] window.
    pub fn with_default_window(service: Arc<PredictionService>) -> Self {
        Self::new(service, DEFAULT_MAX_IN_FLIGHT)
    }

    /// An instrumented connection: every request is counted and
    /// timed into `metrics` (share one [`ServiceMetrics`] across all
    /// connections of a service), updates feed its live quality
    /// window, and `Metrics`/`Health` requests are answered from it.
    pub fn with_metrics(
        service: Arc<PredictionService>,
        max_in_flight: usize,
        metrics: Arc<ServiceMetrics>,
    ) -> Self {
        service.attach_metrics(&metrics);
        let mut conn = Self::new(service, max_in_flight);
        conn.metrics = Some(metrics);
        conn
    }

    /// Requests admitted and not yet executed.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// The admission window size.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Requests rejected with [`ErrorCode::Overloaded`] so far.
    pub fn overload_rejections(&self) -> u64 {
        self.overload_rejections
    }

    /// Feeds stream bytes into the connection. Complete frames are
    /// decoded and admitted (or overload-rejected straight into
    /// `out`); a trailing partial frame stays buffered for the next
    /// call.
    ///
    /// A framing error (bad magic, bad checksum, hostile length) is
    /// fatal to the connection — a byte stream with a corrupt frame
    /// header cannot be resynchronized — and surfaces as the typed
    /// [`DmfsgdError::Decode`]; the caller should drop the
    /// connection.
    pub fn ingest(&mut self, bytes: &[u8], out: &mut Vec<u8>) -> Result<(), DmfsgdError> {
        self.inbuf.extend_from_slice(bytes);
        let mut consumed = 0;
        loop {
            match Request::check(&self.inbuf[consumed..]) {
                Err(e) => {
                    self.inbuf.drain(..consumed);
                    return Err(e.into());
                }
                Ok(ControlFlow::Continue(_)) => break,
                Ok(ControlFlow::Break(len)) => {
                    let frame = &self.inbuf[consumed..consumed + len];
                    let req = match Request::consume(frame) {
                        Ok(req) => req,
                        Err(e) => {
                            self.inbuf.drain(..consumed);
                            return Err(e.into());
                        }
                    };
                    consumed += len;
                    if self.pending.len() >= self.max_in_flight {
                        self.overload_rejections += 1;
                        if let Some(m) = &self.metrics {
                            m.record_overload();
                        }
                        Response::Error {
                            seq: req.seq(),
                            code: ErrorCode::Overloaded,
                            message: format!(
                                "in-flight window full ({} requests)",
                                self.max_in_flight
                            ),
                        }
                        .encode(out);
                    } else {
                        self.pending.push_back(req);
                    }
                }
            }
        }
        self.inbuf.drain(..consumed);
        if let Some(m) = &self.metrics {
            m.set_in_flight(self.pending.len());
        }
        Ok(())
    }

    /// Executes the oldest pending request, appending its response
    /// frame to `out`. Returns whether a request was executed.
    ///
    /// Service-level failures (membership, bad shard index, ...) are
    /// answered with [`Response::Error`] — they never kill the
    /// connection.
    pub fn execute_one(&mut self, out: &mut Vec<u8>) -> bool {
        let Some(req) = self.pending.pop_front() else {
            return false;
        };
        let resp = self.execute(req);
        resp.encode(out);
        if let Some(m) = &self.metrics {
            m.set_in_flight(self.pending.len());
        }
        true
    }

    /// Executes every pending request in order; returns how many ran.
    pub fn drain(&mut self, out: &mut Vec<u8>) -> usize {
        let mut n = 0;
        while self.execute_one(out) {
            n += 1;
        }
        n
    }

    fn execute(&mut self, req: Request) -> Response {
        let metrics = self.metrics.clone();
        let started = metrics.as_ref().map(|_| Instant::now());
        let kind = request_kind(&req);
        let seq = req.seq();
        let result = match req {
            Request::Predict { i, j, .. } => self
                .service
                .predict(i as usize, j as usize)
                .map(|value| Response::Value { seq, value }),
            Request::PredictClass { i, j, .. } => self
                .service
                .predict_class(i as usize, j as usize)
                .map(|class| Response::Class {
                    seq,
                    class: if class >= 0.0 { 1 } else { -1 },
                }),
            Request::RankNeighbors { i, top_k, .. } => self
                .service
                .rank_neighbors_into(i as usize, top_k as usize, &mut self.rank_buf)
                .map(|()| Response::Ranked {
                    seq,
                    entries: self
                        .rank_buf
                        .iter()
                        .map(|&(id, score)| (id as u32, score))
                        .collect(),
                }),
            Request::Update { i, j, x, .. } => self
                .service
                .update_rtt_scored_with(i as usize, j as usize, x, &self.update_ticket)
                .map(|score| {
                    if let Some(m) = &metrics {
                        // The pre-update score against the measured
                        // class is the live quality pair.
                        let shard = self.service.partition().owner(i as usize);
                        m.record_update(shard, x > 0.0, score);
                    }
                    Response::Updated { seq }
                }),
            Request::Snapshot { shard, .. } => self
                .service
                .snapshot_json(shard as usize)
                .map(|json| Response::SnapshotData { seq, json }),
            Request::Metrics { format, .. } => match &metrics {
                Some(m) => {
                    let body = m.render(format);
                    if body.len() + 9 > MAX_PAYLOAD {
                        Err(DmfsgdError::Transport(
                            "metrics snapshot exceeds the frame payload bound".to_string(),
                        ))
                    } else {
                        Ok(Response::MetricsData { seq, format, body })
                    }
                }
                None => Err(metrics_disabled()),
            },
            Request::Health { .. } => match &metrics {
                Some(m) => Ok(Response::HealthStatus {
                    seq,
                    health: m.health(),
                }),
                None => Err(metrics_disabled()),
            },
        };
        let ok = result.is_ok();
        let resp = result.unwrap_or_else(|e| {
            if let (Some(m), ErrorCode::Overloaded) = (&metrics, error_code(&e)) {
                m.record_overload();
            }
            Response::Error {
                seq,
                code: error_code(&e),
                message: e.to_string(),
            }
        });
        if let (Some(m), Some(t0)) = (&metrics, started) {
            m.record_request(kind, ok, t0.elapsed().as_micros() as u64);
        }
        resp
    }
}

/// The metric label for a request (see
/// [`ServiceMetrics::record_request`]).
fn request_kind(req: &Request) -> RequestKind {
    match req {
        Request::Predict { .. } => RequestKind::Predict,
        Request::PredictClass { .. } => RequestKind::PredictClass,
        Request::RankNeighbors { .. } => RequestKind::Rank,
        Request::Update { .. } => RequestKind::Update,
        Request::Snapshot { .. } => RequestKind::Snapshot,
        Request::Metrics { .. } => RequestKind::Metrics,
        Request::Health { .. } => RequestKind::Health,
    }
}

/// The error answering `Metrics`/`Health` on an uninstrumented
/// connection (maps to [`ErrorCode::BadRequest`]).
fn metrics_disabled() -> DmfsgdError {
    DmfsgdError::Transport(
        "metrics are not enabled on this connection (ServerConnection::with_metrics)".to_string(),
    )
}

/// Maps a service error to its wire category. The shard-queue
/// backpressure rejection keeps its `Overloaded` identity — clients
/// treat it exactly like an admission-window rejection (back off and
/// retry), unlike `BadRequest`, which means the request itself is
/// wrong.
fn error_code(e: &DmfsgdError) -> ErrorCode {
    if PredictionService::is_overload(e) {
        return ErrorCode::Overloaded;
    }
    match e {
        DmfsgdError::Membership(_) => ErrorCode::Membership,
        DmfsgdError::Config(_) | DmfsgdError::Import(_) | DmfsgdError::Transport(_) => {
            ErrorCode::BadRequest
        }
        _ => ErrorCode::Internal,
    }
}

/// Runs a connection as a thread loop over a loopback pipe: read,
/// ingest, drain, write back, until the peer closes. Framing errors
/// terminate the loop (the connection is unrecoverable); the error is
/// returned for the caller to log or assert on.
pub fn serve_loopback(
    mut conn: ServerConnection,
    pipe: crate::loopback::LoopbackEndpoint,
) -> Result<(), DmfsgdError> {
    let mut rx = Vec::new();
    let mut tx = Vec::new();
    loop {
        rx.clear();
        if pipe.recv(&mut rx) == 0 {
            return Ok(());
        }
        tx.clear();
        let res = conn.ingest(&rx, &mut tx);
        conn.drain(&mut tx);
        if !tx.is_empty() {
            pipe.send(&tx);
        }
        res?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SERVICE_MAGIC;
    use dmf_core::SessionBuilder;

    fn service(n: usize, shards: usize) -> Arc<PredictionService> {
        let s = SessionBuilder::new()
            .nodes(n)
            .seed(3)
            .build()
            .expect("valid");
        Arc::new(PredictionService::build(*s.config(), n, shards).expect("service"))
    }

    fn encode_req(req: &Request) -> Vec<u8> {
        let mut b = Vec::new();
        req.encode(&mut b);
        b
    }

    fn decode_all(mut bytes: &[u8]) -> Vec<Response> {
        let mut out = Vec::new();
        while !bytes.is_empty() {
            let ControlFlow::Break(len) = Response::check(bytes).expect("well-formed") else {
                panic!("truncated response stream");
            };
            out.push(Response::consume(&bytes[..len]).expect("decodes"));
            bytes = &bytes[len..];
        }
        out
    }

    #[test]
    fn requests_execute_in_order_with_matching_seqs() {
        let mut conn = ServerConnection::new(service(12, 3), 16);
        let mut wire = Vec::new();
        for (seq, (i, j)) in [(0u32, (0u32, 5u32)), (1, (5, 0)), (2, (3, 9))].into_iter() {
            Request::Predict { seq, i, j }.encode(&mut wire);
        }
        Request::RankNeighbors {
            seq: 3,
            i: 1,
            top_k: 4,
        }
        .encode(&mut wire);
        let mut out = Vec::new();
        conn.ingest(&wire, &mut out).unwrap();
        assert_eq!(conn.in_flight(), 4);
        conn.drain(&mut out);
        let resps = decode_all(&out);
        assert_eq!(
            resps.iter().map(Response::seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(matches!(resps[3], Response::Ranked { ref entries, .. } if entries.len() == 4));
    }

    #[test]
    fn partial_frames_buffer_across_ingest_calls() {
        let mut conn = ServerConnection::new(service(12, 2), 8);
        let wire = encode_req(&Request::Predict { seq: 9, i: 1, j: 2 });
        let mut out = Vec::new();
        for chunk in wire.chunks(3) {
            conn.ingest(chunk, &mut out).unwrap();
        }
        assert_eq!(conn.in_flight(), 1);
        conn.drain(&mut out);
        assert_eq!(decode_all(&out)[0].seq(), 9);
    }

    #[test]
    fn window_overflow_is_rejected_immediately_with_a_typed_code() {
        let mut conn = ServerConnection::new(service(12, 2), 4);
        let mut wire = Vec::new();
        for seq in 0..6u32 {
            Request::Predict { seq, i: 0, j: 1 }.encode(&mut wire);
        }
        let mut out = Vec::new();
        conn.ingest(&wire, &mut out).unwrap();
        // 4 admitted, 2 rejected without growing the queue.
        assert_eq!(conn.in_flight(), 4);
        assert_eq!(conn.overload_rejections(), 2);
        let rejections = decode_all(&out);
        assert_eq!(rejections.len(), 2);
        for (resp, want_seq) in rejections.iter().zip([4u32, 5]) {
            assert!(
                matches!(resp, Response::Error { seq, code: ErrorCode::Overloaded, .. } if *seq == want_seq)
            );
        }
        // Draining reopens the window.
        conn.drain(&mut out);
        assert_eq!(conn.in_flight(), 0);
        conn.ingest(
            &encode_req(&Request::Predict { seq: 6, i: 0, j: 1 }),
            &mut out,
        )
        .unwrap();
        assert_eq!(conn.in_flight(), 1);
    }

    #[test]
    fn service_errors_answer_the_request_instead_of_killing_the_connection() {
        let mut conn = ServerConnection::new(service(12, 2), 8);
        let mut out = Vec::new();
        conn.ingest(
            &encode_req(&Request::Predict { seq: 1, i: 3, j: 3 }),
            &mut out,
        )
        .unwrap();
        conn.ingest(
            &encode_req(&Request::Snapshot { seq: 2, shard: 77 }),
            &mut out,
        )
        .unwrap();
        conn.ingest(
            &encode_req(&Request::Predict { seq: 3, i: 0, j: 1 }),
            &mut out,
        )
        .unwrap();
        conn.drain(&mut out);
        let resps = decode_all(&out);
        assert!(matches!(
            &resps[0],
            Response::Error {
                seq: 1,
                code: ErrorCode::Membership,
                ..
            }
        ));
        assert!(matches!(
            &resps[1],
            Response::Error {
                seq: 2,
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        assert!(matches!(&resps[2], Response::Value { seq: 3, .. }));
    }

    #[test]
    fn framing_corruption_is_fatal_and_typed() {
        let mut conn = ServerConnection::new(service(12, 2), 8);
        let mut wire = encode_req(&Request::Predict { seq: 1, i: 0, j: 1 });
        wire[0] ^= 0xFF;
        let mut out = Vec::new();
        assert!(matches!(
            conn.ingest(&wire, &mut out).unwrap_err(),
            DmfsgdError::Decode(dmf_proto::DecodeError::BadMagic)
        ));
        // Sanity: the magic constant this connection expects.
        assert_eq!(SERVICE_MAGIC, 0xD3F6);
    }
}
