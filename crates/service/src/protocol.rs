//! Framed request/response protocol for the prediction service.
//!
//! The probe protocol in `dmf-proto` is datagram-shaped: one message
//! per packet, decoded all-or-nothing. A serving connection is
//! stream-shaped instead — requests arrive back to back in one byte
//! stream and the decoder must know, *before* parsing, whether a full
//! frame has buffered. This module follows the buffered-protocol
//! idiom: [`ProtocolDecode::check`] inspects the buffer head and
//! returns [`ControlFlow::Continue`] with the total length still
//! needed (read more and re-check) or [`ControlFlow::Break`] with the
//! length of the complete frame, after which
//! [`ProtocolDecode::consume`] parses exactly those bytes.
//!
//! The frame shape deliberately mirrors `dmf-proto` v1 so one hostile
//! -input analysis covers both wire formats (all integers
//! little-endian):
//!
//! ```text
//! +-------+----+------+-------------+~~~~~~~~~+----------+
//! | magic | =1 | type | payload_len | payload | checksum |
//! |  u16  | u8 |  u8  |     u32     |  bytes  |   u32    |
//! +-------+----+------+-------------+~~~~~~~~~+----------+
//! ```
//!
//! The magic is [`SERVICE_MAGIC`] (`0xD3F6`, distinct from the probe
//! protocol's `0xD3F5` so a misrouted datagram fails fast) and the
//! checksum is the same FNV-1a ([`dmf_proto::fnv1a`]) over everything
//! before it. Every request and response payload begins with a `u32`
//! sequence number: responses are tagged with the sequence of the
//! request they answer, which is what makes pipelining safe — a
//! client with 64 requests in flight matches answers by sequence, not
//! by arrival order (though the server does answer in order).
//!
//! Malformed input of any kind produces a typed
//! [`DecodeError`] — never a panic, and never
//! an allocation larger than [`MAX_PAYLOAD`].

use dmf_ops::{DegradedReason, Health};
use dmf_proto::{fnv1a, DecodeError};
use std::ops::ControlFlow;

/// Frame magic for the service protocol (`0xD3F6`; the probe protocol
/// uses `0xD3F5`).
pub const SERVICE_MAGIC: u16 = 0xD3F6;

/// Service protocol version byte.
pub const SERVICE_VERSION: u8 = 1;

/// Fixed frame header length: magic + version + type + payload_len.
pub const HEADER_LEN: usize = 8;

/// Trailing checksum length.
pub const CHECKSUM_LEN: usize = 4;

/// Upper bound on a frame's payload. A hostile length field cannot
/// make a peer buffer more than this per frame (snapshots are the
/// largest legitimate payload; see [`Response::SnapshotData`]).
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Upper bound on the entry count of a [`Response::Ranked`] frame —
/// decoding rejects larger counts before allocating.
pub const MAX_RANKED: usize = 4096;

/// Upper bound on the reason count of a [`Response::HealthStatus`]
/// frame (the health rules define three reasons; the bound leaves
/// room without letting a hostile count allocate).
pub const MAX_HEALTH_REASONS: usize = 16;

/// Buffered protocol encoding: append one complete frame to `buf`.
///
/// Encoding is infallible (requests and responses are constructed
/// from already-validated values) and allocation-free beyond the
/// output buffer itself.
pub trait ProtocolEncode {
    /// Appends the encoded frame to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
}

/// Buffered protocol decoding over a byte stream.
///
/// [`check`](Self::check) is called first. If it returns
/// [`ControlFlow::Continue`] with the expected total length, more
/// bytes are read until that length is buffered and the check is
/// repeated, until [`ControlFlow::Break`] reports a complete frame of
/// the returned length. Finally [`consume`](Self::consume) is called
/// with exactly that many bytes to construct the message.
pub trait ProtocolDecode: Sized {
    /// Inspects the head of `buf` without consuming it.
    fn check(buf: &[u8]) -> Result<ControlFlow<usize, usize>, DecodeError>;

    /// Parses one complete frame (`buf` must be exactly the length
    /// reported by [`check`](Self::check)'s `Break`).
    fn consume(buf: &[u8]) -> Result<Self, DecodeError>;
}

// ---- message type tags ----------------------------------------------

const T_PREDICT: u8 = 0x01;
const T_PREDICT_CLASS: u8 = 0x02;
const T_RANK: u8 = 0x03;
const T_UPDATE: u8 = 0x04;
const T_SNAPSHOT: u8 = 0x05;
const T_METRICS: u8 = 0x06;
const T_HEALTH: u8 = 0x07;
const T_VALUE: u8 = 0x81;
const T_CLASS: u8 = 0x82;
const T_RANKED: u8 = 0x83;
const T_UPDATED: u8 = 0x84;
const T_SNAPSHOT_DATA: u8 = 0x85;
const T_METRICS_DATA: u8 = 0x86;
const T_HEALTH_STATUS: u8 = 0x87;
const T_ERROR: u8 = 0xEE;

/// Exposition format requested by [`Request::Metrics`]. The formats
/// themselves are defined by `dmf-ops` (see `docs/operations.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus-style text lines.
    Text = 0,
    /// Schema-versioned JSON snapshot.
    Json = 1,
}

impl MetricsFormat {
    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        match v {
            0 => Ok(Self::Text),
            1 => Ok(Self::Json),
            _ => Err(DecodeError::BadValue),
        }
    }
}

/// A client request. Every variant carries the client-chosen sequence
/// number echoed by the matching response.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Predicted measure for the path `i → j` (natural units).
    Predict {
        /// Pipelining sequence number.
        seq: u32,
        /// Source node id.
        i: u32,
        /// Destination node id.
        j: u32,
    },
    /// Predicted performance class (±1) for the path `i → j`.
    PredictClass {
        /// Pipelining sequence number.
        seq: u32,
        /// Source node id.
        i: u32,
        /// Destination node id.
        j: u32,
    },
    /// Node `i`'s neighbors ranked by predicted score, best first.
    RankNeighbors {
        /// Pipelining sequence number.
        seq: u32,
        /// Node whose neighbors are ranked.
        i: u32,
        /// Maximum entries returned.
        top_k: u16,
    },
    /// Apply an RTT-class measurement `x` for the pair `(i, j)`
    /// (Algorithm 1; `x` must be finite — decode enforces it).
    Update {
        /// Pipelining sequence number.
        seq: u32,
        /// Measuring node (the one whose coordinates move).
        i: u32,
        /// Probed neighbor.
        j: u32,
        /// Measured class value.
        x: f64,
    },
    /// Fetch shard `shard`'s session snapshot (JSON).
    Snapshot {
        /// Pipelining sequence number.
        seq: u32,
        /// Shard index.
        shard: u16,
    },
    /// Fetch the service's metrics snapshot in the requested
    /// exposition format. Answered with [`Response::MetricsData`], or
    /// [`ErrorCode::BadRequest`] when the serving connection has no
    /// metrics enabled.
    Metrics {
        /// Pipelining sequence number.
        seq: u32,
        /// Requested exposition format.
        format: MetricsFormat,
    },
    /// Fetch the service's health verdict. Answered with
    /// [`Response::HealthStatus`], or [`ErrorCode::BadRequest`] when
    /// the serving connection has no metrics enabled.
    Health {
        /// Pipelining sequence number.
        seq: u32,
    },
}

/// Remote failure category carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request named an unknown, departed or self-paired node.
    Membership = 1,
    /// The connection's in-flight window is full; retry after draining
    /// responses. Clients surface this as `DmfsgdError::Transport`.
    Overloaded = 2,
    /// The request was structurally valid but unserviceable (bad shard
    /// index, non-finite value, ...).
    BadRequest = 3,
    /// Server-side failure not attributable to the request.
    Internal = 4,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        match v {
            1 => Ok(Self::Membership),
            2 => Ok(Self::Overloaded),
            3 => Ok(Self::BadRequest),
            4 => Ok(Self::Internal),
            _ => Err(DecodeError::BadValue),
        }
    }
}

/// A server response. The `seq` echoes the request being answered.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Predict`].
    Value {
        /// Sequence of the request answered.
        seq: u32,
        /// Predicted measure in natural units.
        value: f64,
    },
    /// Answer to [`Request::PredictClass`].
    Class {
        /// Sequence of the request answered.
        seq: u32,
        /// Predicted class: `+1` or `-1` (decode enforces it).
        class: i8,
    },
    /// Answer to [`Request::RankNeighbors`].
    Ranked {
        /// Sequence of the request answered.
        seq: u32,
        /// `(node id, raw score)` pairs, best first.
        entries: Vec<(u32, f64)>,
    },
    /// Answer to [`Request::Update`]: the measurement was applied.
    Updated {
        /// Sequence of the request answered.
        seq: u32,
    },
    /// Answer to [`Request::Snapshot`].
    SnapshotData {
        /// Sequence of the request answered.
        seq: u32,
        /// The shard session's snapshot, JSON-encoded.
        json: Vec<u8>,
    },
    /// Answer to [`Request::Metrics`].
    MetricsData {
        /// Sequence of the request answered.
        seq: u32,
        /// The exposition format of `body` (echoes the request).
        format: MetricsFormat,
        /// The rendered metrics snapshot.
        body: Vec<u8>,
    },
    /// Answer to [`Request::Health`].
    HealthStatus {
        /// Sequence of the request answered.
        seq: u32,
        /// The health verdict at evaluation time.
        health: Health,
    },
    /// The request failed; carries a typed code and a human-readable
    /// message.
    Error {
        /// Sequence of the request that failed.
        seq: u32,
        /// Failure category.
        code: ErrorCode,
        /// Human-readable detail (UTF-8, at most `u16::MAX` bytes).
        message: String,
    },
}

impl Request {
    /// The request's sequence number.
    pub fn seq(&self) -> u32 {
        match self {
            Request::Predict { seq, .. }
            | Request::PredictClass { seq, .. }
            | Request::RankNeighbors { seq, .. }
            | Request::Update { seq, .. }
            | Request::Snapshot { seq, .. }
            | Request::Metrics { seq, .. }
            | Request::Health { seq } => *seq,
        }
    }
}

impl Response {
    /// The sequence number of the request this response answers.
    pub fn seq(&self) -> u32 {
        match self {
            Response::Value { seq, .. }
            | Response::Class { seq, .. }
            | Response::Ranked { seq, .. }
            | Response::Updated { seq }
            | Response::SnapshotData { seq, .. }
            | Response::MetricsData { seq, .. }
            | Response::HealthStatus { seq, .. }
            | Response::Error { seq, .. } => *seq,
        }
    }
}

// ---- encoding -------------------------------------------------------

/// Writes the frame header, returns the offset where the frame began.
fn begin_frame(buf: &mut Vec<u8>, ty: u8, payload_len: usize) -> usize {
    debug_assert!(payload_len <= MAX_PAYLOAD);
    let start = buf.len();
    buf.extend_from_slice(&SERVICE_MAGIC.to_le_bytes());
    buf.push(SERVICE_VERSION);
    buf.push(ty);
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    start
}

/// Appends the FNV-1a checksum over the frame written since `start`.
fn end_frame(buf: &mut Vec<u8>, start: usize) {
    let sum = fnv1a(&buf[start..]);
    buf.extend_from_slice(&sum.to_le_bytes());
}

impl ProtocolEncode for Request {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            Request::Predict { seq, i, j } | Request::PredictClass { seq, i, j } => {
                let ty = if matches!(self, Request::Predict { .. }) {
                    T_PREDICT
                } else {
                    T_PREDICT_CLASS
                };
                let start = begin_frame(buf, ty, 12);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&i.to_le_bytes());
                buf.extend_from_slice(&j.to_le_bytes());
                end_frame(buf, start);
            }
            Request::RankNeighbors { seq, i, top_k } => {
                let start = begin_frame(buf, T_RANK, 10);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&i.to_le_bytes());
                buf.extend_from_slice(&top_k.to_le_bytes());
                end_frame(buf, start);
            }
            Request::Update { seq, i, j, x } => {
                let start = begin_frame(buf, T_UPDATE, 20);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&i.to_le_bytes());
                buf.extend_from_slice(&j.to_le_bytes());
                buf.extend_from_slice(&x.to_le_bytes());
                end_frame(buf, start);
            }
            Request::Snapshot { seq, shard } => {
                let start = begin_frame(buf, T_SNAPSHOT, 6);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&shard.to_le_bytes());
                end_frame(buf, start);
            }
            Request::Metrics { seq, format } => {
                let start = begin_frame(buf, T_METRICS, 5);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.push(format as u8);
                end_frame(buf, start);
            }
            Request::Health { seq } => {
                let start = begin_frame(buf, T_HEALTH, 4);
                buf.extend_from_slice(&seq.to_le_bytes());
                end_frame(buf, start);
            }
        }
    }
}

/// Wire kind tag of a degraded reason (the two `f64`s that follow are
/// always `(observed, limit)`).
fn reason_kind(r: &DegradedReason) -> u8 {
    match r {
        DegradedReason::QualityBelowFloor { .. } => 1,
        DegradedReason::StaleCoordinates { .. } => 2,
        DegradedReason::HighRejectionRate { .. } => 3,
    }
}

fn reason_values(r: &DegradedReason) -> (f64, f64) {
    match *r {
        DegradedReason::QualityBelowFloor { auc, floor } => (auc, floor),
        DegradedReason::StaleCoordinates {
            staleness_s,
            limit_s,
        } => (staleness_s, limit_s),
        DegradedReason::HighRejectionRate { rate, limit } => (rate, limit),
    }
}

impl ProtocolEncode for Response {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Value { seq, value } => {
                let start = begin_frame(buf, T_VALUE, 12);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&value.to_le_bytes());
                end_frame(buf, start);
            }
            Response::Class { seq, class } => {
                let start = begin_frame(buf, T_CLASS, 5);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.push(*class as u8);
                end_frame(buf, start);
            }
            Response::Ranked { seq, entries } => {
                assert!(entries.len() <= MAX_RANKED, "ranked reply too large");
                let start = begin_frame(buf, T_RANKED, 6 + 12 * entries.len());
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                for (id, score) in entries {
                    buf.extend_from_slice(&id.to_le_bytes());
                    buf.extend_from_slice(&score.to_le_bytes());
                }
                end_frame(buf, start);
            }
            Response::Updated { seq } => {
                let start = begin_frame(buf, T_UPDATED, 4);
                buf.extend_from_slice(&seq.to_le_bytes());
                end_frame(buf, start);
            }
            Response::SnapshotData { seq, json } => {
                assert!(json.len() + 8 <= MAX_PAYLOAD, "snapshot too large");
                let start = begin_frame(buf, T_SNAPSHOT_DATA, 8 + json.len());
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&(json.len() as u32).to_le_bytes());
                buf.extend_from_slice(json);
                end_frame(buf, start);
            }
            Response::MetricsData { seq, format, body } => {
                assert!(body.len() + 9 <= MAX_PAYLOAD, "metrics body too large");
                let start = begin_frame(buf, T_METRICS_DATA, 9 + body.len());
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.push(*format as u8);
                buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
                buf.extend_from_slice(body);
                end_frame(buf, start);
            }
            Response::HealthStatus { seq, health } => {
                let payload_len = 5 + match health {
                    Health::Healthy => 0,
                    Health::Degraded { reasons } => {
                        assert!(
                            reasons.len() <= MAX_HEALTH_REASONS,
                            "too many degraded reasons"
                        );
                        1 + 17 * reasons.len()
                    }
                    Health::Unready { reason } => {
                        assert!(reason.len() <= u16::MAX as usize, "unready reason too long");
                        2 + reason.len()
                    }
                };
                let start = begin_frame(buf, T_HEALTH_STATUS, payload_len);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.push(health.code());
                match health {
                    Health::Healthy => {}
                    Health::Degraded { reasons } => {
                        buf.push(reasons.len() as u8);
                        for r in reasons {
                            buf.push(reason_kind(r));
                            let (observed, limit) = reason_values(r);
                            buf.extend_from_slice(&observed.to_le_bytes());
                            buf.extend_from_slice(&limit.to_le_bytes());
                        }
                    }
                    Health::Unready { reason } => {
                        buf.extend_from_slice(&(reason.len() as u16).to_le_bytes());
                        buf.extend_from_slice(reason.as_bytes());
                    }
                }
                end_frame(buf, start);
            }
            Response::Error { seq, code, message } => {
                let msg = message.as_bytes();
                assert!(msg.len() <= u16::MAX as usize, "error message too long");
                let start = begin_frame(buf, T_ERROR, 7 + msg.len());
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.push(*code as u8);
                buf.extend_from_slice(&(msg.len() as u16).to_le_bytes());
                buf.extend_from_slice(msg);
                end_frame(buf, start);
            }
        }
    }
}

// ---- decoding -------------------------------------------------------

/// Stream-head inspection shared by both directions: validates what
/// the header alone can validate and reports how many bytes the frame
/// occupies.
fn check_frame(
    buf: &[u8],
    known_type: fn(u8) -> bool,
) -> Result<ControlFlow<usize, usize>, DecodeError> {
    if buf.len() < HEADER_LEN {
        return Ok(ControlFlow::Continue(HEADER_LEN));
    }
    if u16::from_le_bytes([buf[0], buf[1]]) != SERVICE_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if buf[2] != SERVICE_VERSION {
        return Err(DecodeError::BadVersion);
    }
    if !known_type(buf[3]) {
        return Err(DecodeError::BadType);
    }
    let payload_len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(DecodeError::LengthMismatch);
    }
    let total = HEADER_LEN + payload_len + CHECKSUM_LEN;
    if buf.len() < total {
        Ok(ControlFlow::Continue(total))
    } else {
        Ok(ControlFlow::Break(total))
    }
}

/// Full-frame verification: `buf` must be exactly one frame. Returns
/// the type tag and payload slice after checksum verification.
fn split_frame(buf: &[u8], known_type: fn(u8) -> bool) -> Result<(u8, &[u8]), DecodeError> {
    match check_frame(buf, known_type)? {
        ControlFlow::Continue(_) => Err(DecodeError::TooShort),
        ControlFlow::Break(total) => {
            if buf.len() != total {
                return Err(DecodeError::LengthMismatch);
            }
            let body = &buf[..total - CHECKSUM_LEN];
            let declared =
                u32::from_le_bytes(buf[total - CHECKSUM_LEN..].try_into().expect("4 bytes"));
            if fnv1a(body) != declared {
                return Err(DecodeError::BadChecksum);
            }
            Ok((buf[3], &body[HEADER_LEN..]))
        }
    }
}

/// Little-endian payload cursor; all reads bounds-checked into typed
/// errors.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(DecodeError::TruncatedPayload)?;
        if end > self.buf.len() {
            return Err(DecodeError::TruncatedPayload);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

fn is_request_type(ty: u8) -> bool {
    matches!(
        ty,
        T_PREDICT | T_PREDICT_CLASS | T_RANK | T_UPDATE | T_SNAPSHOT | T_METRICS | T_HEALTH
    )
}

fn is_response_type(ty: u8) -> bool {
    matches!(
        ty,
        T_VALUE
            | T_CLASS
            | T_RANKED
            | T_UPDATED
            | T_SNAPSHOT_DATA
            | T_METRICS_DATA
            | T_HEALTH_STATUS
            | T_ERROR
    )
}

impl ProtocolDecode for Request {
    fn check(buf: &[u8]) -> Result<ControlFlow<usize, usize>, DecodeError> {
        check_frame(buf, is_request_type)
    }

    fn consume(buf: &[u8]) -> Result<Self, DecodeError> {
        let (ty, payload) = split_frame(buf, is_request_type)?;
        let mut r = Reader::new(payload);
        let seq = r.u32()?;
        let req = match ty {
            T_PREDICT | T_PREDICT_CLASS => {
                let i = r.u32()?;
                let j = r.u32()?;
                if ty == T_PREDICT {
                    Request::Predict { seq, i, j }
                } else {
                    Request::PredictClass { seq, i, j }
                }
            }
            T_RANK => Request::RankNeighbors {
                seq,
                i: r.u32()?,
                top_k: r.u16()?,
            },
            T_UPDATE => {
                let i = r.u32()?;
                let j = r.u32()?;
                let x = r.f64()?;
                if !x.is_finite() {
                    return Err(DecodeError::BadValue);
                }
                Request::Update { seq, i, j, x }
            }
            T_SNAPSHOT => Request::Snapshot {
                seq,
                shard: r.u16()?,
            },
            T_METRICS => Request::Metrics {
                seq,
                format: MetricsFormat::from_u8(r.u8()?)?,
            },
            T_HEALTH => Request::Health { seq },
            _ => unreachable!("split_frame validated the type"),
        };
        r.finish()?;
        Ok(req)
    }
}

impl ProtocolDecode for Response {
    fn check(buf: &[u8]) -> Result<ControlFlow<usize, usize>, DecodeError> {
        check_frame(buf, is_response_type)
    }

    fn consume(buf: &[u8]) -> Result<Self, DecodeError> {
        let (ty, payload) = split_frame(buf, is_response_type)?;
        let mut r = Reader::new(payload);
        let seq = r.u32()?;
        let resp = match ty {
            T_VALUE => Response::Value {
                seq,
                value: r.f64()?,
            },
            T_CLASS => {
                let class = r.u8()? as i8;
                if class != 1 && class != -1 {
                    return Err(DecodeError::BadValue);
                }
                Response::Class { seq, class }
            }
            T_RANKED => {
                let count = r.u16()? as usize;
                if count > MAX_RANKED {
                    return Err(DecodeError::BadValue);
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = r.u32()?;
                    let score = r.f64()?;
                    entries.push((id, score));
                }
                Response::Ranked { seq, entries }
            }
            T_UPDATED => Response::Updated { seq },
            T_SNAPSHOT_DATA => {
                let len = r.u32()? as usize;
                Response::SnapshotData {
                    seq,
                    json: r.take(len)?.to_vec(),
                }
            }
            T_METRICS_DATA => {
                let format = MetricsFormat::from_u8(r.u8()?)?;
                let len = r.u32()? as usize;
                Response::MetricsData {
                    seq,
                    format,
                    body: r.take(len)?.to_vec(),
                }
            }
            T_HEALTH_STATUS => {
                let health = match r.u8()? {
                    0 => Health::Healthy,
                    1 => {
                        let count = r.u8()? as usize;
                        if count == 0 || count > MAX_HEALTH_REASONS {
                            return Err(DecodeError::BadValue);
                        }
                        let mut reasons = Vec::with_capacity(count);
                        for _ in 0..count {
                            let kind = r.u8()?;
                            let observed = r.f64()?;
                            let limit = r.f64()?;
                            if !observed.is_finite() || !limit.is_finite() {
                                return Err(DecodeError::BadValue);
                            }
                            reasons.push(match kind {
                                1 => DegradedReason::QualityBelowFloor {
                                    auc: observed,
                                    floor: limit,
                                },
                                2 => DegradedReason::StaleCoordinates {
                                    staleness_s: observed,
                                    limit_s: limit,
                                },
                                3 => DegradedReason::HighRejectionRate {
                                    rate: observed,
                                    limit,
                                },
                                _ => return Err(DecodeError::BadValue),
                            });
                        }
                        Health::Degraded { reasons }
                    }
                    2 => {
                        let len = r.u16()? as usize;
                        let reason = std::str::from_utf8(r.take(len)?)
                            .map_err(|_| DecodeError::BadValue)?
                            .to_string();
                        Health::Unready { reason }
                    }
                    _ => return Err(DecodeError::BadValue),
                };
                Response::HealthStatus { seq, health }
            }
            T_ERROR => {
                let code = ErrorCode::from_u8(r.u8()?)?;
                let len = r.u16()? as usize;
                let message = std::str::from_utf8(r.take(len)?)
                    .map_err(|_| DecodeError::BadValue)?
                    .to_string();
                Response::Error { seq, code, message }
            }
            _ => unreachable!("split_frame validated the type"),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc<T: ProtocolEncode>(msg: &T) -> Vec<u8> {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        buf
    }

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Predict { seq: 7, i: 1, j: 2 },
            Request::PredictClass { seq: 8, i: 3, j: 4 },
            Request::RankNeighbors {
                seq: 9,
                i: 5,
                top_k: 32,
            },
            Request::Update {
                seq: 10,
                i: 6,
                j: 7,
                x: -1.0,
            },
            Request::Snapshot { seq: 11, shard: 3 },
            Request::Metrics {
                seq: 12,
                format: MetricsFormat::Text,
            },
            Request::Metrics {
                seq: 13,
                format: MetricsFormat::Json,
            },
            Request::Health { seq: 14 },
        ];
        for req in &reqs {
            let bytes = enc(req);
            assert_eq!(
                Request::check(&bytes).unwrap(),
                ControlFlow::Break(bytes.len())
            );
            assert_eq!(&Request::consume(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Value {
                seq: 1,
                value: 0.25,
            },
            Response::Class { seq: 2, class: -1 },
            Response::Ranked {
                seq: 3,
                entries: vec![(4, 1.5), (9, -0.25)],
            },
            Response::Updated { seq: 4 },
            Response::SnapshotData {
                seq: 5,
                json: b"{\"x\":1}".to_vec(),
            },
            Response::MetricsData {
                seq: 6,
                format: MetricsFormat::Text,
                body: b"# dmfsgd-metrics schema 1\n".to_vec(),
            },
            Response::HealthStatus {
                seq: 7,
                health: Health::Healthy,
            },
            Response::HealthStatus {
                seq: 8,
                health: Health::Degraded {
                    reasons: vec![
                        DegradedReason::QualityBelowFloor {
                            auc: 0.5,
                            floor: 0.75,
                        },
                        DegradedReason::StaleCoordinates {
                            staleness_s: 45.0,
                            limit_s: 30.0,
                        },
                        DegradedReason::HighRejectionRate {
                            rate: 0.3,
                            limit: 0.1,
                        },
                    ],
                },
            },
            Response::HealthStatus {
                seq: 9,
                health: Health::Unready {
                    reason: "quality window 3/50 samples".to_string(),
                },
            },
            Response::Error {
                seq: 6,
                code: ErrorCode::Overloaded,
                message: "window full".to_string(),
            },
        ];
        for resp in &resps {
            let bytes = enc(resp);
            assert_eq!(
                Response::check(&bytes).unwrap(),
                ControlFlow::Break(bytes.len())
            );
            assert_eq!(&Response::consume(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn check_asks_for_more_bytes_until_a_full_frame_buffers() {
        let bytes = enc(&Request::Predict { seq: 1, i: 2, j: 3 });
        assert_eq!(
            Request::check(&bytes[..4]).unwrap(),
            ControlFlow::Continue(HEADER_LEN)
        );
        assert_eq!(
            Request::check(&bytes[..HEADER_LEN]).unwrap(),
            ControlFlow::Continue(bytes.len())
        );
        assert_eq!(
            Request::check(&bytes[..bytes.len() - 1]).unwrap(),
            ControlFlow::Continue(bytes.len())
        );
    }

    #[test]
    fn direction_confusion_is_a_bad_type() {
        let req = enc(&Request::Predict { seq: 1, i: 2, j: 3 });
        assert_eq!(Response::check(&req).unwrap_err(), DecodeError::BadType);
        let resp = enc(&Response::Updated { seq: 1 });
        assert_eq!(Request::check(&resp).unwrap_err(), DecodeError::BadType);
    }

    #[test]
    fn corruption_is_typed_not_panicking() {
        let mut bytes = enc(&Request::Update {
            seq: 1,
            i: 2,
            j: 3,
            x: 1.0,
        });
        bytes[HEADER_LEN + 4] ^= 0x40;
        assert_eq!(
            Request::consume(&bytes).unwrap_err(),
            DecodeError::BadChecksum
        );

        let mut wrong_magic = enc(&Request::Snapshot { seq: 1, shard: 0 });
        wrong_magic[0] ^= 0xFF;
        assert_eq!(
            Request::check(&wrong_magic).unwrap_err(),
            DecodeError::BadMagic
        );

        let mut huge = enc(&Request::Snapshot { seq: 1, shard: 0 });
        huge[4..8].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert_eq!(
            Request::check(&huge).unwrap_err(),
            DecodeError::LengthMismatch
        );
    }

    #[test]
    fn non_finite_update_values_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let bytes = enc(&Request::Update {
                seq: 1,
                i: 0,
                j: 1,
                x: bad,
            });
            assert_eq!(Request::consume(&bytes).unwrap_err(), DecodeError::BadValue);
        }
    }

    #[test]
    fn hostile_health_payloads_are_typed_errors() {
        // Unknown state byte.
        let mut buf = Vec::new();
        let start = begin_frame(&mut buf, T_HEALTH_STATUS, 5);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(9);
        end_frame(&mut buf, start);
        assert_eq!(Response::consume(&buf).unwrap_err(), DecodeError::BadValue);

        // Degraded with zero reasons (the encoder never emits it).
        let mut buf = Vec::new();
        let start = begin_frame(&mut buf, T_HEALTH_STATUS, 6);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(1);
        buf.push(0);
        end_frame(&mut buf, start);
        assert_eq!(Response::consume(&buf).unwrap_err(), DecodeError::BadValue);

        // Degraded reason carrying a NaN.
        let mut buf = Vec::new();
        let start = begin_frame(&mut buf, T_HEALTH_STATUS, 23);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(1);
        buf.push(1);
        buf.push(1);
        buf.extend_from_slice(&f64::NAN.to_le_bytes());
        buf.extend_from_slice(&0.75f64.to_le_bytes());
        end_frame(&mut buf, start);
        assert_eq!(Response::consume(&buf).unwrap_err(), DecodeError::BadValue);

        // Metrics request with an unknown format byte.
        let mut buf = Vec::new();
        let start = begin_frame(&mut buf, T_METRICS, 5);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(7);
        end_frame(&mut buf, start);
        assert_eq!(Request::consume(&buf).unwrap_err(), DecodeError::BadValue);
    }

    #[test]
    fn oversized_ranked_counts_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        let start = begin_frame(&mut buf, T_RANKED, 6);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(MAX_RANKED as u16 + 1).to_le_bytes());
        end_frame(&mut buf, start);
        assert_eq!(Response::consume(&buf).unwrap_err(), DecodeError::BadValue);
    }
}
