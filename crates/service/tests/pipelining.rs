//! Pipelining conformance: determinism of the response byte stream,
//! sustained in-flight depth, and typed overload rejection —
//! including a threaded stress run over the loopback transport.

use dmf_core::{DmfsgdConfig, DmfsgdError, SessionBuilder};
use dmf_service::{
    loopback_pair, serve_loopback, ErrorCode, PredictionService, ProtocolDecode, ProtocolEncode,
    Request, Response, ServerConnection, ServiceClient,
};
use std::ops::ControlFlow;
use std::sync::Arc;
use std::thread;

fn paper_config(n: usize, seed: u64) -> DmfsgdConfig {
    let s = SessionBuilder::new()
        .nodes(n)
        .seed(seed)
        .build()
        .expect("valid defaults");
    *s.config()
}

fn service(n: usize, seed: u64, shards: usize) -> Arc<PredictionService> {
    Arc::new(PredictionService::build(paper_config(n, seed), n, shards).expect("service"))
}

/// A deterministic pipelined request stream mixing every message
/// kind (no snapshots: their JSON embeds no per-shard variance for
/// shards=1 vs 4 only at byte level — snapshot determinism across
/// shard counts is a non-goal, the shard *count* is in the payload).
fn request_stream(n: u32, ops: usize) -> Vec<u8> {
    let mut client = ServiceClient::new();
    let mut wire = Vec::new();
    for s in 0..ops as u32 {
        let i = (s * 7) % n;
        let j = (i + 1 + (s * 5) % (n - 1)) % n;
        match s % 4 {
            0 => client.submit_update(i, j, if s % 3 == 0 { -1.0 } else { 1.0 }, &mut wire),
            1 => client.submit_predict(i, j, &mut wire),
            2 => client.submit_rank(i, 6, &mut wire),
            _ => client.submit_predict_class(j, i, &mut wire),
        };
    }
    wire
}

/// Pumps one fixed byte stream through a fresh service with the given
/// shard count, chunked at `chunk` bytes per ingest; returns the raw
/// response bytes.
fn pump(shards: usize, stream: &[u8], chunk: usize, window: usize) -> Vec<u8> {
    let mut conn = ServerConnection::new(service(32, 5, shards), window);
    let mut out = Vec::new();
    for part in stream.chunks(chunk) {
        conn.ingest(part, &mut out).expect("clean stream");
        conn.drain(&mut out);
    }
    conn.drain(&mut out);
    out
}

#[test]
fn response_stream_is_byte_identical_across_shard_counts() {
    let stream = request_stream(32, 500);
    let reference = pump(1, &stream, 17, 256);
    for shards in [2usize, 4, 8] {
        let got = pump(shards, &stream, 17, 256);
        assert_eq!(
            got, reference,
            "{shards} shards must produce the identical response byte stream"
        );
    }
}

#[test]
fn response_stream_is_invariant_to_chunking_and_window() {
    let stream = request_stream(32, 300);
    let reference = pump(4, &stream, stream.len(), 512);
    for chunk in [1usize, 7, 64] {
        assert_eq!(pump(4, &stream, chunk, 512), reference, "chunk {chunk}");
    }
    // A window large enough to admit everything never rejects, so the
    // stream is also window-invariant above the high-water mark.
    assert_eq!(pump(4, &stream, 17, 300), reference);
}

#[test]
fn connection_sustains_64_in_flight_with_bounded_memory() {
    let svc = service(32, 6, 4);
    let mut conn = ServerConnection::new(svc, 64);
    let mut client = ServiceClient::new();
    let mut out = Vec::new();
    let mut answered = 0usize;

    // 20 rounds: fill the window to exactly 64, then drain — the
    // admission queue never exceeds the window, whatever the client
    // pushes.
    for round in 0..20u32 {
        let mut wire = Vec::new();
        for k in 0..64u32 {
            let i = (round * 64 + k) % 32;
            client.submit_predict(i, (i + 1) % 32, &mut wire);
        }
        conn.ingest(&wire, &mut out).expect("clean stream");
        assert_eq!(conn.in_flight(), 64, "round {round} fills the window");
        assert_eq!(conn.overload_rejections(), 0);
        answered += conn.drain(&mut out);
        assert_eq!(conn.in_flight(), 0);
    }
    assert_eq!(answered, 20 * 64);

    // Every submitted request got exactly one response, in order.
    let mut seqs = Vec::new();
    let mut bytes = &out[..];
    while !bytes.is_empty() {
        let ControlFlow::Break(len) = Response::check(bytes).expect("well-formed") else {
            panic!("truncated stream");
        };
        seqs.push(Response::consume(&bytes[..len]).expect("decodes").seq());
        bytes = &bytes[len..];
    }
    assert_eq!(seqs, (0..20 * 64).collect::<Vec<u32>>());
}

#[test]
fn the_65th_in_flight_request_is_rejected_with_a_typed_overload() {
    let mut conn = ServerConnection::new(service(32, 6, 2), 64);
    let mut wire = Vec::new();
    for seq in 0..65u32 {
        Request::Predict { seq, i: 0, j: 1 }.encode(&mut wire);
    }
    let mut out = Vec::new();
    conn.ingest(&wire, &mut out).expect("clean stream");
    assert_eq!(conn.in_flight(), 64);
    assert_eq!(conn.overload_rejections(), 1);

    // The rejection is already on the wire, before any execution.
    let ControlFlow::Break(len) = Response::check(&out).expect("well-formed") else {
        panic!("rejection not flushed");
    };
    let rejection = Response::consume(&out[..len]).expect("decodes");
    assert!(matches!(
        rejection,
        Response::Error {
            seq: 64,
            code: ErrorCode::Overloaded,
            ..
        }
    ));
    // And the client-side fold pins the typed error.
    let err = rejection.into_result().unwrap_err();
    assert!(
        matches!(&err, DmfsgdError::Transport(m) if m.contains("Overloaded")),
        "got {err:?}"
    );

    // All 64 admitted requests still complete exactly once.
    out.clear();
    assert_eq!(conn.drain(&mut out), 64);
}

#[test]
fn threaded_loopback_round_trip_under_pipelined_mixed_traffic() {
    let svc = service(40, 9, 4);
    let (server_end, client_end) = loopback_pair();
    let conn = ServerConnection::new(svc, 64);
    let server = thread::spawn(move || serve_loopback(conn, server_end));

    let mut client = ServiceClient::new();
    let mut wire = Vec::new();
    let mut responses = Vec::new();
    let total = 1_000u32;
    let mut submitted = 0u32;
    let mut rx = Vec::new();
    while responses.len() < total as usize {
        // Keep up to 48 in flight (below the server window: no
        // rejections expected in this test).
        while submitted < total && client.outstanding() < 48 {
            let i = (submitted * 11) % 40;
            let j = (i + 1 + submitted % 39) % 40;
            match submitted % 3 {
                0 => client.submit_update(i, j, 1.0, &mut wire),
                1 => client.submit_predict(i, j, &mut wire),
                _ => client.submit_rank(i, 5, &mut wire),
            };
            submitted += 1;
        }
        if !wire.is_empty() {
            client_end.send(&wire);
            wire.clear();
        }
        rx.clear();
        if client_end.recv(&mut rx) == 0 {
            panic!("server closed early");
        }
        client.ingest(&rx);
        while let Some(resp) = client.poll().expect("clean stream") {
            responses.push(resp.into_result().expect("no failures in this schedule"));
        }
    }
    client_end.close();
    server
        .join()
        .expect("server thread")
        .expect("no framing errors");

    // Responses arrive in submission order (in-order execution), one
    // per request.
    let seqs: Vec<u32> = responses.iter().map(Response::seq).collect();
    assert_eq!(seqs, (0..total).collect::<Vec<u32>>());
}

/// One connection's request stream confined to its own node block
/// (`[block * width, (block + 1) * width)`): updates, predicts and
/// class queries whose answers depend only on that block's
/// coordinates. Rank queries are excluded on purpose — neighbor sets
/// span blocks, so their answers legitimately depend on concurrent
/// foreign updates.
fn block_stream(block: u32, width: u32, ops: usize) -> Vec<u8> {
    let mut client = ServiceClient::new();
    let mut wire = Vec::new();
    let base = block * width;
    for s in 0..ops as u32 {
        let i = base + (s * 3) % width;
        let j = base + ((s * 3) % width + 1 + s % (width - 1)) % width;
        match s % 3 {
            0 => client.submit_update(i, j, if s % 5 == 0 { -1.0 } else { 1.0 }, &mut wire),
            1 => client.submit_predict(i, j, &mut wire),
            _ => client.submit_predict_class(j, i, &mut wire),
        };
    }
    wire
}

/// Satellite conformance for the shard-worker write path: the same
/// per-connection schedules produce bit-identical response streams
/// whether updates drain one at a time through an uncontended inline
/// combiner (connections pumped one after another) or in worker/
/// combiner batches under real thread contention (all connections
/// pumped concurrently against the same service). Two connections
/// share each shard, so the concurrent run genuinely contends the
/// shard write locks and exercises multi-update batches; block
/// confinement makes each connection's answers interleaving-proof.
#[test]
fn worker_batched_updates_match_the_inline_path_bit_for_bit() {
    const CONNS: u32 = 4;
    const WIDTH: u32 = 8;
    const OPS: usize = 600;
    let n = (CONNS * WIDTH) as usize;
    let streams: Vec<Vec<u8>> = (0..CONNS).map(|c| block_stream(c, WIDTH, OPS)).collect();

    // Reference: connections pumped strictly one after another —
    // every update drains as an uncontended batch of one.
    let svc = service(n, 21, 2);
    let reference: Vec<Vec<u8>> = streams
        .iter()
        .map(|stream| {
            let mut conn = ServerConnection::new(Arc::clone(&svc), 64);
            let mut out = Vec::new();
            for part in stream.chunks(48) {
                conn.ingest(part, &mut out).expect("clean stream");
                conn.drain(&mut out);
            }
            out
        })
        .collect();
    let serial_stats = svc.worker_stats();
    assert_eq!(
        serial_stats.iter().map(|s| s.updates).sum::<u64>(),
        (CONNS as u64) * (OPS as u64).div_ceil(3),
        "every update drained"
    );

    // Same schedules, all connections at once, repeated a few rounds
    // to give the schedulers chances to interleave differently.
    for round in 0..3 {
        let svc = service(n, 21, 2);
        let outs: Vec<Vec<u8>> = {
            let handles: Vec<_> = streams
                .iter()
                .map(|stream| {
                    let svc = Arc::clone(&svc);
                    let stream = stream.clone();
                    thread::spawn(move || {
                        let mut conn = ServerConnection::new(svc, 64);
                        let mut out = Vec::new();
                        for part in stream.chunks(48) {
                            conn.ingest(part, &mut out).expect("clean stream");
                            conn.drain(&mut out);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("conn"))
                .collect()
        };
        for (c, (got, want)) in outs.iter().zip(&reference).enumerate() {
            assert_eq!(
                got, want,
                "round {round}: connection {c}'s response bytes diverged under contention"
            );
        }
        assert_eq!(
            svc.worker_stats().iter().map(|s| s.updates).sum::<u64>(),
            (CONNS as u64) * (OPS as u64).div_ceil(3)
        );
    }
}

/// The scored-update surface under the same contention: the pre-update
/// score sequence each writer observes is bit-identical to the one the
/// single-session oracle produces for its schedule — the batch
/// machinery neither reorders a connection's updates nor lets a batch
/// read half-applied coordinates.
#[test]
fn concurrent_scored_updates_match_the_oracle_score_sequences() {
    const CONNS: usize = 4;
    const WIDTH: usize = 8;
    const UPDATES: usize = 300;
    let n = CONNS * WIDTH;
    let cfg = paper_config(n, 23);
    let schedule = |c: usize, s: usize| {
        let base = c * WIDTH;
        let i = base + (s * 3) % WIDTH;
        let j = base + ((s * 3) % WIDTH + 1 + s % (WIDTH - 1)) % WIDTH;
        (i, j, if s.is_multiple_of(5) { -1.0 } else { 1.0 })
    };

    let mut oracle = SessionBuilder::new()
        .config(cfg)
        .nodes(n)
        .build()
        .expect("oracle");
    let mut want: Vec<Vec<f64>> = vec![Vec::new(); CONNS];
    for (c, lane) in want.iter_mut().enumerate() {
        for s in 0..UPDATES {
            let (i, j, x) = schedule(c, s);
            let (u_j, v_j) = {
                let node = oracle.node(j).expect("in range");
                (node.coords.u.to_vec(), node.coords.v.to_vec())
            };
            let score = dmf_core::coords::dot(&oracle.node(i).expect("in range").coords.u, &v_j);
            oracle.apply_rtt_remote(i, x, &u_j, &v_j).expect("applies");
            lane.push(score);
        }
    }

    let svc = service(n, 23, 2);
    let handles: Vec<_> = (0..CONNS)
        .map(|c| {
            let svc = Arc::clone(&svc);
            thread::spawn(move || {
                (0..UPDATES)
                    .map(|s| {
                        let (i, j, x) = schedule(c, s);
                        svc.update_rtt_scored(i, j, x).expect("applies")
                    })
                    .collect::<Vec<f64>>()
            })
        })
        .collect();
    for (c, handle) in handles.into_iter().enumerate() {
        let got = handle.join().expect("writer");
        assert_eq!(got, want[c], "connection {c}'s score sequence");
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                assert_eq!(
                    svc.predict(i, j).expect("serves"),
                    oracle.predict(i, j).expect("serves"),
                    "({i},{j}) after the concurrent run"
                );
            }
        }
    }
}
