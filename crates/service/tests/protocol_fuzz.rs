//! Mutation fuzzing of the service protocol: encode a corpus of
//! valid request/response frames, then round-trip, truncate,
//! bit-flip, splice and misdirect them, asserting every mutant is
//! rejected with a typed `DecodeError` — never a panic, never a
//! silent mis-decode behind a passing checksum.
//!
//! Single-bit flips are *guaranteed* detectable (the FNV-1a argument
//! from `dmf-proto`'s mutation suite carries over verbatim — the
//! service protocol reuses that exact checksum); splices rely on the
//! 2⁻³² collision bound, which is sound for any realistic case count.

use dmf_service::{ErrorCode, ProtocolDecode, ProtocolEncode, Request, Response, HEADER_LEN};
use proptest::prelude::*;
use std::ops::ControlFlow;

fn request_corpus() -> Vec<(Request, Vec<u8>)> {
    let reqs = vec![
        Request::Predict { seq: 0, i: 1, j: 2 },
        Request::Predict {
            seq: u32::MAX,
            i: u32::MAX,
            j: 0,
        },
        Request::PredictClass {
            seq: 3,
            i: 40,
            j: 7,
        },
        Request::RankNeighbors {
            seq: 4,
            i: 9,
            top_k: u16::MAX,
        },
        Request::Update {
            seq: 5,
            i: 11,
            j: 12,
            x: -1.0,
        },
        Request::Update {
            seq: 6,
            i: 0,
            j: 1,
            x: 0.015625,
        },
        Request::Snapshot { seq: 7, shard: 3 },
    ];
    reqs.into_iter()
        .map(|r| {
            let mut b = Vec::new();
            r.encode(&mut b);
            (r, b)
        })
        .collect()
}

fn response_corpus() -> Vec<(Response, Vec<u8>)> {
    let resps = vec![
        Response::Value {
            seq: 0,
            value: -3.25,
        },
        Response::Class { seq: 1, class: 1 },
        Response::Class { seq: 2, class: -1 },
        Response::Ranked {
            seq: 3,
            entries: vec![(7, 2.5), (1, 2.5), (0, -1.0)],
        },
        Response::Ranked {
            seq: 4,
            entries: Vec::new(),
        },
        Response::Updated { seq: 5 },
        Response::SnapshotData {
            seq: 6,
            json: br#"{"schema_version":3}"#.to_vec(),
        },
        Response::Error {
            seq: 7,
            code: ErrorCode::Overloaded,
            message: "in-flight window full (64 requests)".to_string(),
        },
        Response::Error {
            seq: 8,
            code: ErrorCode::Membership,
            message: String::new(),
        },
    ];
    resps
        .into_iter()
        .map(|r| {
            let mut b = Vec::new();
            r.encode(&mut b);
            (r, b)
        })
        .collect()
}

/// All corpus frames, both directions, for the byte-level mutations.
fn all_frames() -> Vec<Vec<u8>> {
    request_corpus()
        .into_iter()
        .map(|(_, b)| b)
        .chain(response_corpus().into_iter().map(|(_, b)| b))
        .collect()
}

fn pick(frames: &[Vec<u8>], seed: usize) -> Vec<u8> {
    frames[seed % frames.len()].clone()
}

/// Decoding a mutated frame through whichever direction accepts its
/// type tag; an error from both directions counts as rejection.
fn decode_either(frame: &[u8]) -> Result<(), ()> {
    let req = Request::check(frame);
    let resp = Response::check(frame);
    let ok_as = |r: Result<ControlFlow<usize, usize>, dmf_proto::DecodeError>, is_req: bool| match r
    {
        Ok(ControlFlow::Break(len)) if len == frame.len() => {
            if is_req {
                Request::consume(frame).map(|_| ()).map_err(|_| ())
            } else {
                Response::consume(frame).map(|_| ()).map_err(|_| ())
            }
        }
        _ => Err(()),
    };
    ok_as(req, true).or_else(|_| ok_as(resp, false))
}

#[test]
fn every_corpus_frame_round_trips() {
    for (req, bytes) in request_corpus() {
        assert_eq!(
            Request::check(&bytes).unwrap(),
            ControlFlow::Break(bytes.len())
        );
        assert_eq!(Request::consume(&bytes).unwrap(), req);
    }
    for (resp, bytes) in response_corpus() {
        assert_eq!(
            Response::check(&bytes).unwrap(),
            ControlFlow::Break(bytes.len())
        );
        assert_eq!(Response::consume(&bytes).unwrap(), resp);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary requests round-trip bit-exactly (finite update
    /// values; non-finite ones are rejected by construction).
    #[test]
    fn arbitrary_requests_round_trip(
        seq in any::<u32>(),
        i in any::<u32>(),
        j in any::<u32>(),
        top_k in any::<u16>(),
        shard in any::<u16>(),
        x in -1.0e300f64..1.0e300,
        kind in 0usize..5,
    ) {
        let req = match kind {
            0 => Request::Predict { seq, i, j },
            1 => Request::PredictClass { seq, i, j },
            2 => Request::RankNeighbors { seq, i, top_k },
            3 => Request::Update { seq, i, j, x },
            _ => Request::Snapshot { seq, shard },
        };
        let mut bytes = Vec::new();
        req.encode(&mut bytes);
        prop_assert_eq!(Request::check(&bytes).unwrap(), ControlFlow::Break(bytes.len()));
        prop_assert_eq!(Request::consume(&bytes).unwrap(), req);
    }

    /// Arbitrary well-formed responses round-trip bit-exactly.
    #[test]
    fn arbitrary_responses_round_trip(
        seq in any::<u32>(),
        value in -1.0e300f64..1.0e300,
        entries in proptest::collection::vec((any::<u32>(), -1.0e300f64..1.0e300), 0..40),
        message_bytes in proptest::collection::vec(0x20u8..0x7F, 0..120),
        kind in 0usize..5,
    ) {
        let message = String::from_utf8(message_bytes).expect("printable ASCII");
        let resp = match kind {
            0 => Response::Value { seq, value },
            1 => Response::Class { seq, class: if seq.is_multiple_of(2) { 1 } else { -1 } },
            2 => Response::Ranked { seq, entries },
            3 => Response::Updated { seq },
            _ => Response::Error { seq, code: ErrorCode::BadRequest, message },
        };
        let mut bytes = Vec::new();
        resp.encode(&mut bytes);
        prop_assert_eq!(Response::check(&bytes).unwrap(), ControlFlow::Break(bytes.len()));
        prop_assert_eq!(Response::consume(&bytes).unwrap(), resp);
    }

    /// Every proper prefix of every frame is incomplete (check asks
    /// for more) or rejected — consume never accepts a truncation.
    #[test]
    fn truncation_never_decodes(frame_seed in any::<usize>(), cut in 1usize..64) {
        let frame = pick(&all_frames(), frame_seed);
        let keep = frame.len().saturating_sub(cut.min(frame.len()));
        let head = &frame[..keep];
        // check either wants more bytes or errors; consume must error.
        if let Ok(ControlFlow::Break(len)) = Request::check(head) {
            prop_assert!(len < head.len() || Request::consume(head).is_err());
        }
        if let Ok(ControlFlow::Break(len)) = Response::check(head) {
            prop_assert!(len < head.len() || Response::consume(head).is_err());
        }
        prop_assert!(decode_either(head).is_err());
    }

    /// Every single-bit flip is rejected — strictly, not
    /// probabilistically (FNV-1a bijection argument).
    #[test]
    fn single_bit_flip_always_rejected(frame_seed in any::<usize>(), bit_seed in any::<usize>()) {
        let mut frame = pick(&all_frames(), frame_seed);
        let bit = bit_seed % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decode_either(&frame).is_err(), "flipped bit {} must be detected", bit);
    }

    /// Splicing random bytes over a random region is rejected
    /// whenever it changes the frame at all.
    #[test]
    fn splice_always_rejected(
        frame_seed in any::<usize>(),
        at_seed in any::<usize>(),
        cut in 0usize..16,
        replacement in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let frame = pick(&all_frames(), frame_seed);
        let at = at_seed % frame.len();
        let end = (at + cut).min(frame.len());
        let mut spliced = frame.clone();
        spliced.splice(at..end, replacement);
        prop_assume!(spliced != frame);
        prop_assert!(decode_either(&spliced).is_err());
    }

    /// Concatenating two frames never decodes as one: the stream
    /// decoder consumes exactly the first frame, and single-frame
    /// consume rejects the tail as a length mismatch.
    #[test]
    fn concatenation_is_framed_not_confused(a_seed in any::<usize>(), b_seed in any::<usize>()) {
        let frames = all_frames();
        let a = pick(&frames, a_seed);
        let mut glued = a.clone();
        glued.extend_from_slice(&pick(&frames, b_seed));
        // Single-frame consume rejects...
        prop_assert!(Request::consume(&glued).is_err());
        prop_assert!(Response::consume(&glued).is_err());
        // ...while stream check reports exactly the first frame.
        let checked = Request::check(&glued).or_else(|_| Response::check(&glued)).unwrap();
        prop_assert_eq!(checked, ControlFlow::Break(a.len()));
    }

    /// A frame fed to the wrong direction is a typed BadType, caught
    /// at the header — before any payload allocation.
    #[test]
    fn direction_misdelivery_is_typed(req_seed in any::<usize>(), resp_seed in any::<usize>()) {
        let req = pick(&request_corpus().into_iter().map(|(_, b)| b).collect::<Vec<_>>(), req_seed);
        let resp = pick(&response_corpus().into_iter().map(|(_, b)| b).collect::<Vec<_>>(), resp_seed);
        prop_assert_eq!(Response::check(&req).unwrap_err(), dmf_proto::DecodeError::BadType);
        prop_assert_eq!(Request::check(&resp).unwrap_err(), dmf_proto::DecodeError::BadType);
        prop_assert!(req.len() >= HEADER_LEN && resp.len() >= HEADER_LEN);
    }
}
