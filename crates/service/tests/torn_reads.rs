//! Concurrent read-path stress: predictions and rankings served
//! lock-free from the epoch stores while writers hammer updates.
//!
//! The seqlock mechanism itself (readers retry during an in-flight
//! publication, never observe a half-written slot) is pinned at the
//! core layer by `dmf_core::epoch`'s concurrent uniform-vector test.
//! This suite stresses the *integration*: many reader threads driving
//! the full service query surface against many writer threads, with
//! the invariants a torn or unpublished read would break —
//!
//! * every prediction is finite (coordinates only ever hold finite
//!   values, and a reader can only see whole published slots);
//! * every class is exactly `±1.0` and consistent with the raw score;
//! * every ranking is a complete, correctly ordered permutation of
//!   the node's neighbor set;
//! * after the writers finish, the service state is bit-identical to
//!   a single-session oracle fed the same per-writer schedules —
//!   concurrent readers perturbed nothing.
//!
//! CI runs this suite both natively and under `DMF_FORCE_SCALAR=1`,
//! pinning the invariants for both kernel dispatch paths.

use dmf_core::{DmfsgdConfig, Session, SessionBuilder};
use dmf_service::PredictionService;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const CONNS: usize = 4;
const WIDTH: usize = 8;
const UPDATES: usize = 400;
const READERS: usize = 3;

fn config(n: usize, seed: u64) -> DmfsgdConfig {
    let s = SessionBuilder::new()
        .nodes(n)
        .seed(seed)
        .build()
        .expect("valid defaults");
    *s.config()
}

/// Writer `c`'s deterministic update schedule, confined to its own
/// node block so the final state is oracle-checkable regardless of
/// how the writers interleave.
fn schedule(c: usize, s: usize) -> (usize, usize, f64) {
    let base = c * WIDTH;
    let i = base + (s * 3) % WIDTH;
    let j = base + ((s * 3) % WIDTH + 1 + s % (WIDTH - 1)) % WIDTH;
    (i, j, if s.is_multiple_of(5) { -1.0 } else { 1.0 })
}

#[test]
fn readers_never_observe_torn_or_unpublished_state_under_write_load() {
    let n = CONNS * WIDTH;
    let cfg = config(n, 31);
    let svc = Arc::new(PredictionService::build(cfg, n, 4).expect("service"));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut reads = 0u64;
                let mut rank_buf = Vec::new();
                let mut s = r;
                while !stop.load(Ordering::Relaxed) {
                    let i = (s * 7) % n;
                    let j = (i + 1 + s % (n - 1)) % n;
                    let value = svc.predict(i, j).expect("live pair");
                    assert!(
                        value.is_finite(),
                        "reader {r} observed a non-finite prediction for ({i},{j})"
                    );
                    let class = svc.predict_class(i, j).expect("live pair");
                    assert!(
                        class == 1.0 || class == -1.0,
                        "reader {r} observed class {class}"
                    );
                    svc.rank_neighbors_into(i, usize::MAX, &mut rank_buf)
                        .expect("live node");
                    // A complete ranking: every neighbor exactly once,
                    // scores ordered by the shared tie-break.
                    let mut ids: Vec<usize> = rank_buf.iter().map(|&(id, _)| id).collect();
                    for w in rank_buf.windows(2) {
                        let ((a_id, a), (b_id, b)) = (w[0], w[1]);
                        assert!(a.is_finite() && b.is_finite(), "reader {r}: torn score");
                        assert!(
                            a > b || (a == b && a_id < b_id),
                            "reader {r}: ranking order violated at node {i}"
                        );
                    }
                    ids.sort_unstable();
                    ids.dedup();
                    assert_eq!(ids.len(), rank_buf.len(), "reader {r}: duplicate entry");
                    reads += 1;
                    s = s.wrapping_add(1);
                }
                reads
            })
        })
        .collect();

    let writers: Vec<_> = (0..CONNS)
        .map(|c| {
            let svc = Arc::clone(&svc);
            thread::spawn(move || {
                for s in 0..UPDATES {
                    let (i, j, x) = schedule(c, s);
                    svc.update_rtt(i, j, x).expect("applies");
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    let total_reads: u64 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
    assert!(total_reads > 0, "readers made progress");

    // Concurrent readers perturbed nothing: the end state is the
    // oracle's, bit for bit (block confinement makes the oracle's
    // global order irrelevant).
    let mut oracle = Session::builder()
        .config(cfg)
        .nodes(n)
        .build()
        .expect("oracle");
    for c in 0..CONNS {
        for s in 0..UPDATES {
            let (i, j, x) = schedule(c, s);
            oracle
                .apply_measurement(i, j, x, dmf_datasets::Metric::Rtt)
                .expect("applies");
        }
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                assert_eq!(
                    svc.predict(i, j).expect("serves"),
                    oracle.predict(i, j).expect("serves"),
                    "({i},{j})"
                );
            }
        }
        assert_eq!(
            svc.rank_neighbors(i, 8).expect("serves"),
            oracle.rank_neighbors(i, 8).expect("serves")
        );
    }
    assert_eq!(svc.measurements_used(), CONNS * UPDATES);
}
