//! The observability surface over the wire: `Metrics` and `Health`
//! requests served by an instrumented connection, the typed rejection
//! on an uninstrumented one, overload pressure surfacing as a
//! degraded verdict, and the acceptance criterion that the live
//! rolling-AUC gauge agrees with an offline windowed AUC fed the
//! same update stream.

use dmf_core::{DmfsgdConfig, SessionBuilder};
use dmf_datasets::rtt::meridian_like;
use dmf_eval::window::RollingAuc;
use dmf_ops::{DegradedReason, Health, HealthPolicy};
use dmf_service::{
    ErrorCode, MetricsFormat, PredictionService, Response, ServerConnection, ServiceClient,
    ServiceMetrics,
};
use std::sync::Arc;

fn paper_config(n: usize, seed: u64) -> DmfsgdConfig {
    let s = SessionBuilder::new()
        .nodes(n)
        .seed(seed)
        .build()
        .expect("valid defaults");
    *s.config()
}

fn instrumented(
    n: usize,
    seed: u64,
    shards: usize,
    window: usize,
) -> (ServerConnection, Arc<ServiceMetrics>) {
    let svc =
        Arc::new(PredictionService::build(paper_config(n, seed), n, shards).expect("service"));
    let metrics = Arc::new(ServiceMetrics::new(shards));
    let conn = ServerConnection::with_metrics(svc, window, Arc::clone(&metrics));
    (conn, metrics)
}

/// Pumps `wire` through the connection and returns every decoded
/// response in order.
fn exchange(conn: &mut ServerConnection, client: &mut ServiceClient, wire: &[u8]) -> Vec<Response> {
    let mut out = Vec::new();
    conn.ingest(wire, &mut out).expect("clean stream");
    conn.drain(&mut out);
    client.ingest(&out);
    let mut responses = Vec::new();
    while let Some(resp) = client.poll().expect("clean stream") {
        responses.push(resp);
    }
    responses
}

/// A deterministic (i, j, ground-truth class) update stream over the
/// dataset's class matrix.
fn update_stream(n: usize, seed: u64, ops: usize) -> Vec<(u32, u32, f64)> {
    let d = meridian_like(n, seed);
    let cm = d.classify(d.median());
    (0..ops)
        .map(|s| {
            let i = (s * 7) % n;
            let j = (i + 1 + (s * 5) % (n - 1)) % n;
            let x = cm.label(i, j).expect("off-diagonal pair");
            (i as u32, j as u32, x)
        })
        .collect()
}

#[test]
fn metrics_and_health_are_served_over_the_wire() {
    let (mut conn, metrics) = instrumented(24, 3, 4, 256);
    let mut client = ServiceClient::new();
    let mut wire = Vec::new();
    for &(i, j, x) in &update_stream(24, 3, 120) {
        client.submit_update(i, j, x, &mut wire);
    }
    client.submit_predict(0, 1, &mut wire);
    let responses = exchange(&mut conn, &mut client, &wire);
    assert_eq!(responses.len(), 121);
    assert!(responses
        .iter()
        .all(|r| !matches!(r, Response::Error { .. })));

    // Text exposition.
    let mut wire = Vec::new();
    client.submit_metrics(MetricsFormat::Text, &mut wire);
    let responses = exchange(&mut conn, &mut client, &wire);
    let [Response::MetricsData {
        format: MetricsFormat::Text,
        body,
        ..
    }] = &responses[..]
    else {
        panic!("expected one MetricsData, got {responses:?}");
    };
    let text = std::str::from_utf8(body).expect("utf8");
    assert!(text.starts_with("# dmfsgd-metrics schema 1\n"));
    assert!(text.contains("dmf_service_requests_total{type=\"update\"} 120"));
    assert!(text.contains("dmf_service_requests_total{type=\"predict\"} 1"));
    assert!(text.contains("dmf_service_rolling_auc "));

    // JSON exposition parses and carries the schema stamp.
    let mut wire = Vec::new();
    client.submit_metrics(MetricsFormat::Json, &mut wire);
    let responses = exchange(&mut conn, &mut client, &wire);
    let [Response::MetricsData {
        format: MetricsFormat::Json,
        body,
        ..
    }] = &responses[..]
    else {
        panic!("expected one MetricsData, got {responses:?}");
    };
    let json = std::str::from_utf8(body).expect("utf8");
    assert!(json.starts_with("{\"schema\":1,"));
    assert!(json.contains("\"name\":\"dmf_service_shard_updates_total\""));

    // Health over the wire agrees with a direct evaluation.
    let mut wire = Vec::new();
    client.submit_health(&mut wire);
    let responses = exchange(&mut conn, &mut client, &wire);
    let [Response::HealthStatus { health, .. }] = &responses[..] else {
        panic!("expected one HealthStatus, got {responses:?}");
    };
    assert_eq!(health.code(), metrics.health().code());
}

#[test]
fn an_uninstrumented_connection_answers_metrics_with_a_typed_error() {
    let svc = Arc::new(PredictionService::build(paper_config(16, 4), 16, 2).expect("service"));
    let mut conn = ServerConnection::new(svc, 64);
    let mut client = ServiceClient::new();
    let mut wire = Vec::new();
    client.submit_metrics(MetricsFormat::Text, &mut wire);
    client.submit_health(&mut wire);
    let responses = exchange(&mut conn, &mut client, &wire);
    assert_eq!(responses.len(), 2);
    for resp in responses {
        let Response::Error { code, message, .. } = resp else {
            panic!("expected a typed error, got {resp:?}");
        };
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(message.contains("metrics are not enabled"), "{message}");
    }
}

#[test]
fn overload_pressure_surfaces_as_a_degraded_rejection_verdict() {
    let (mut conn, metrics) = instrumented(16, 5, 2, 4);
    metrics.set_health_policy(HealthPolicy {
        min_quality_samples: 0,
        auc_floor: None,
        staleness_limit_s: None,
        rejection_rate_limit: Some(0.2),
    });
    let mut client = ServiceClient::new();
    let mut wire = Vec::new();
    // 12 requests against a window of 4: eight typed overloads.
    for _ in 0..12 {
        client.submit_predict(0, 1, &mut wire);
    }
    let responses = exchange(&mut conn, &mut client, &wire);
    let rejected = responses
        .iter()
        .filter(|r| {
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::Overloaded,
                    ..
                }
            )
        })
        .count();
    assert_eq!(rejected, 8);

    let mut wire = Vec::new();
    client.submit_health(&mut wire);
    let responses = exchange(&mut conn, &mut client, &wire);
    let [Response::HealthStatus { health, .. }] = &responses[..] else {
        panic!("expected one HealthStatus, got {responses:?}");
    };
    let Health::Degraded { reasons } = health else {
        panic!("expected degraded, got {health:?}");
    };
    assert!(
        reasons.iter().any(
            |r| matches!(r, DegradedReason::HighRejectionRate { rate, limit }
                if *rate > 0.2 && *limit == 0.2)
        ),
        "expected the rejection reason, got {reasons:?}"
    );
}

/// Acceptance criterion: the live rolling-AUC gauge over the wire
/// path agrees (within 0.01) with an offline [`RollingAuc`] fed the
/// identical (ground truth, pre-update score) stream — computed on a
/// twin service built from the same config and seed.
#[test]
fn live_rolling_auc_agrees_with_the_offline_windowed_auc() {
    let (n, seed, shards, ops) = (24, 6, 4, 800);
    let stream = update_stream(n, seed, ops);

    // Offline: the same stream through a twin service, scores into a
    // window of the same capacity.
    let twin = PredictionService::build(paper_config(n, seed), n, shards).expect("twin service");
    let mut offline = RollingAuc::new(dmf_service::DEFAULT_QUALITY_WINDOW);
    for &(i, j, x) in &stream {
        let score = twin
            .update_rtt_scored(i as usize, j as usize, x)
            .expect("update");
        offline.record(x > 0.0, score);
    }
    let offline_auc = offline.auc().expect("mixed window");

    // Live: the identical stream over the framed wire path.
    let (mut conn, metrics) = instrumented(n, seed, shards, 1024);
    let mut client = ServiceClient::new();
    let mut wire = Vec::new();
    for &(i, j, x) in &stream {
        client.submit_update(i, j, x, &mut wire);
    }
    let responses = exchange(&mut conn, &mut client, &wire);
    assert_eq!(responses.len(), ops);
    let live_auc = metrics.quality().auc().expect("mixed window");

    assert!(
        (live_auc - offline_auc).abs() <= 0.01,
        "live AUC {live_auc} vs offline {offline_auc}"
    );
}
