//! Accuracy parity: the sharded service, driven through the *full*
//! wire path (client → framed protocol → pipelined connection →
//! router → shards), answers bit-identically to a single
//! [`Session`] oracle fed the same operations in the same order.
//!
//! This is the conformance anchor of the serving layer: it runs at
//! several shard counts and under `DMF_FORCE_SCALAR=1` in CI (the
//! service-conformance leg), so neither the sharding router, the wire
//! codec, nor the SIMD dispatch may perturb a single bit of the
//! predictions — and the derived AUC over a real workload is equal,
//! not merely close.

use dmf_core::{DmfsgdConfig, Session, SessionBuilder};
use dmf_eval::ScoredLabel;
use dmf_service::{PredictionService, ProtocolDecode, Response, ServerConnection, ServiceClient};
use std::ops::ControlFlow;
use std::sync::Arc;

fn paper_config(n: usize, seed: u64) -> DmfsgdConfig {
    let s = SessionBuilder::new()
        .nodes(n)
        .seed(seed)
        .build()
        .expect("valid defaults");
    *s.config()
}

/// A deterministic mixed schedule over an `n`-node population:
/// `(i, j, x)` RTT-class measurements crossing every shard boundary.
fn schedule(n: usize, steps: usize) -> Vec<(usize, usize, f64)> {
    (0..steps)
        .map(|s| {
            let i = (s * 7 + s / 11) % n;
            let j = (i + 1 + (s * 5) % (n - 1)) % n;
            let x = if (s * 13) % 3 == 0 { -1.0 } else { 1.0 };
            (i, j, x)
        })
        .collect()
}

fn decode_stream(mut bytes: &[u8]) -> Vec<Response> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let ControlFlow::Break(len) = Response::check(bytes).expect("well-formed stream") else {
            panic!("truncated response stream");
        };
        out.push(Response::consume(&bytes[..len]).expect("decodes"));
        bytes = &bytes[len..];
    }
    out
}

/// Drives the schedule through the wire path against a service with
/// `shards` shards and interleaves predict/rank queries; returns the
/// decoded response stream.
fn run_wire(n: usize, seed: u64, shards: usize, ops: &[(usize, usize, f64)]) -> Vec<Response> {
    let svc = Arc::new(
        PredictionService::build(paper_config(n, seed), n, shards).expect("service builds"),
    );
    let mut conn = ServerConnection::new(svc, 256);
    let mut client = ServiceClient::new();
    let mut wire = Vec::new();
    let mut resp_bytes = Vec::new();
    for (step, &(i, j, x)) in ops.iter().enumerate() {
        client.submit_update(i as u32, j as u32, x, &mut wire);
        // Interleave reads so queries observe mid-training state.
        if step % 3 == 0 {
            client.submit_predict(j as u32, i as u32, &mut wire);
        }
        if step % 7 == 0 {
            client.submit_rank(i as u32, 8, &mut wire);
        }
        if step % 5 == 0 {
            let cj = (j + 1) % n;
            if cj != i {
                client.submit_predict_class(i as u32, cj as u32, &mut wire);
            }
        }
        // Pipelined flush every few ops, mid-frame chunking included.
        if step % 4 == 3 {
            for chunk in wire.chunks(13) {
                conn.ingest(chunk, &mut resp_bytes).expect("clean stream");
            }
            wire.clear();
            conn.drain(&mut resp_bytes);
        }
    }
    for chunk in wire.chunks(13) {
        conn.ingest(chunk, &mut resp_bytes).expect("clean stream");
    }
    conn.drain(&mut resp_bytes);
    decode_stream(&resp_bytes)
}

/// Replays the same logical operations directly against a single
/// session, producing the expected responses.
fn run_oracle(n: usize, seed: u64, ops: &[(usize, usize, f64)]) -> Vec<(String, f64)> {
    let mut oracle = Session::builder()
        .config(paper_config(n, seed))
        .nodes(n)
        .build()
        .expect("oracle builds");
    let mut expected = Vec::new();
    for (step, &(i, j, x)) in ops.iter().enumerate() {
        oracle
            .apply_measurement(i, j, x, dmf_datasets::Metric::Rtt)
            .expect("oracle update");
        expected.push(("updated".to_string(), 0.0));
        if step % 3 == 0 {
            expected.push(("value".to_string(), oracle.predict(j, i).expect("predict")));
        }
        if step % 7 == 0 {
            let ranked = oracle.rank_neighbors(i, 8).expect("rank");
            // Flatten the ranked list into comparable numbers.
            for (id, score) in &ranked {
                expected.push((format!("rank:{id}"), *score));
            }
            expected.push(("rank-end".to_string(), ranked.len() as f64));
        }
        if step % 5 == 0 {
            let cj = (j + 1) % n;
            if cj != i {
                expected.push((
                    "class".to_string(),
                    oracle.predict_class(i, cj).expect("class"),
                ));
            }
        }
    }
    expected
}

fn flatten(responses: &[Response]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for resp in responses {
        match resp {
            Response::Updated { .. } => out.push(("updated".to_string(), 0.0)),
            Response::Value { value, .. } => out.push(("value".to_string(), *value)),
            Response::Class { class, .. } => out.push(("class".to_string(), f64::from(*class))),
            Response::Ranked { entries, .. } => {
                for (id, score) in entries {
                    out.push((format!("rank:{id}"), *score));
                }
                out.push(("rank-end".to_string(), entries.len() as f64));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    out
}

#[test]
fn sharded_wire_path_is_bit_identical_to_the_oracle() {
    let (n, seed) = (48, 20260807);
    let ops = schedule(n, 600);
    let expected = run_oracle(n, seed, &ops);
    for shards in [1usize, 2, 4] {
        let got = flatten(&run_wire(n, seed, shards, &ops));
        assert_eq!(got.len(), expected.len(), "{shards} shards: response count");
        for (k, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(g.0, e.0, "{shards} shards, response {k}: kind");
            assert!(
                g.1 == e.1 || (g.1.is_nan() && e.1.is_nan()),
                "{shards} shards, response {k} ({}): {} != {} (bitwise)",
                g.0,
                g.1,
                e.1
            );
        }
    }
}

#[test]
fn auc_over_a_real_workload_is_equal_not_close() {
    let n = 60;
    let d = dmf_datasets::rtt::meridian_like(n, 31);
    let tau = d.median();
    let cm = d.classify(tau);

    // Train oracle and sharded service on the same label stream.
    let cfg = paper_config(n, 97);
    let mut oracle = Session::builder().config(cfg).nodes(n).build().unwrap();
    let svc = PredictionService::build(cfg, n, 4).unwrap();
    let mut applied = 0usize;
    's: for round in 0..200usize {
        for i in 0..n {
            let j = (i + 1 + round) % n;
            if let Some(x) = cm.label(i, j) {
                oracle
                    .apply_measurement(i, j, x, dmf_datasets::Metric::Rtt)
                    .unwrap();
                svc.update_rtt(i, j, x).unwrap();
                applied += 1;
                if applied >= 6_000 {
                    break 's;
                }
            }
        }
    }

    // Score every known pair on both surfaces.
    let mut oracle_samples = Vec::new();
    let mut svc_samples = Vec::new();
    for (i, j) in cm.mask.iter_known() {
        let Some(label) = cm.label(i, j) else {
            continue;
        };
        oracle_samples.push(ScoredLabel {
            positive: label > 0.0,
            score: oracle.raw_score(i, j).unwrap(),
        });
        svc_samples.push(ScoredLabel {
            positive: label > 0.0,
            score: svc.predict(i, j).unwrap(),
        });
    }
    let auc_oracle = dmf_eval::roc::auc(&oracle_samples);
    let auc_svc = dmf_eval::roc::auc(&svc_samples);
    assert!(
        auc_oracle == auc_svc,
        "AUC must be equal, not close: oracle {auc_oracle} vs sharded {auc_svc}"
    );
    assert!(
        auc_oracle > 0.7,
        "workload should actually learn (AUC {auc_oracle})"
    );
}
