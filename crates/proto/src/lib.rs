//! # dmf-proto
//!
//! Binary wire protocol for DMFSGD probe/coordinate exchange.
//!
//! The paper's protocol needs exactly four datagrams (its Algorithms 1
//! and 2); this crate defines their on-the-wire form so the UDP
//! deployment in `dmf-agent` — and any future real deployment — has a
//! versioned, checksummed, bounds-checked codec instead of ad-hoc
//! serialization.
//!
//! Two wire versions share one frame shape (all integers
//! little-endian; negotiation is the version byte, dispatched by
//! [`decode_any`]):
//!
//! ```text
//! v1: +-------+----+------+-------------+~~~~~~~~~+----------+
//!     | magic | =1 | type | payload_len | payload | checksum |
//!     |  u16  | u8 |  u8  |     u32     |  bytes  |   u32    |
//!     +-------+----+------+-------------+~~~~~~~~~+----------+
//! v2: +-------+----+------+-------------+~~~~~~~~~+----------+
//!     | magic | =2 | type | payload_len | payload | checksum |
//!     |  u16  | u8 |  u8  |     u16     |  bytes  |   u32    |
//!     +-------+----+------+-------------+~~~~~~~~~+----------+
//! ```
//!
//! The checksum is FNV-1a over everything before it. **v1** carries
//! coordinates as a `u16` rank followed by `rank` f64 values. **v2**
//! ([`MessageV2`]) replaces raw vectors with quantized
//! [`delta::CoordUpdate`] blocks — binary16 keyframes or `i8` deltas
//! against the receiver's last-acknowledged state — framed with
//! per-stream sequence numbers; per-peer [`EncoderContext`] /
//! [`DecoderContext`] pairs track baselines, detect gaps, and fall
//! back to keyframes so datagram loss degrades to extra bytes, never
//! to wrong coordinates. The [`fault`] module provides the seeded
//! drop/duplicate/reorder/truncate/bit-flip injector that proves it.
//!
//! Rank is bounded by [`codec::MAX_RANK`] (blocks by
//! [`delta::MAX_BLOCK`]) so a hostile datagram cannot make a node
//! allocate unbounded memory — malformed input of any kind produces a
//! typed [`codec::DecodeError`], never a panic.
//!
//! # Position in the workspace
//!
//! A leaf crate: it depends only on the vendored `bytes` and knows
//! nothing about datasets or algorithms — messages carry plain
//! nonces, rates, labels and coordinate blocks. Its main consumer is
//! `dmf-agent`, whose UDP agents speak this format on the wire;
//! `dmf-core`'s simnet driver can route coordinate exchanges through
//! it for deterministic byte accounting, and `dmf-bench`
//! micro-benchmarks [`encode`]/[`decode`] throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod context;
pub mod delta;
pub mod fault;
pub mod message;
pub mod message_v2;

pub use codec::{
    decode, decode_any, decode_v2, encode, encode_v2, fnv1a, DecodeError, WireMessage, WireVersion,
};
pub use context::{Ack, ContextError, DecoderContext, EncoderContext};
pub use delta::{CoordUpdate, UpdatePayload};
pub use fault::{FaultCounts, FaultInjector, FaultSpec};
pub use message::Message;
pub use message_v2::MessageV2;
