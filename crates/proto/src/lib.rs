//! # dmf-proto
//!
//! Binary wire protocol for DMFSGD probe/coordinate exchange.
//!
//! The paper's protocol needs exactly four datagrams (its Algorithms 1
//! and 2); this crate defines their on-the-wire form so the UDP
//! deployment in `dmf-agent` — and any future real deployment — has a
//! versioned, checksummed, bounds-checked codec instead of ad-hoc
//! serialization.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +-------+---------+------+-------------+~~~~~~~~~+----------+
//! | magic | version | type | payload_len | payload | checksum |
//! |  u16  |   u8    |  u8  |     u32     |  bytes  |   u32    |
//! +-------+---------+------+-------------+~~~~~~~~~+----------+
//! ```
//!
//! The checksum is FNV-1a over everything before it. Coordinates are
//! encoded as a `u16` rank followed by `rank` f64 values; rank is
//! bounded by [`codec::MAX_RANK`] so a hostile datagram cannot make a
//! node allocate unbounded memory — malformed input of any kind
//! produces a typed [`codec::DecodeError`], never a panic.
//!
//! # Position in the workspace
//!
//! A leaf crate: it depends only on the vendored `bytes` and knows
//! nothing about datasets or algorithms — [`Message`] carries plain
//! nonces, rates, labels and coordinate vectors. Its one consumer is
//! `dmf-agent`, whose UDP agents speak this format on the wire;
//! `dmf-bench` micro-benchmarks [`encode`]/[`decode`] throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod message;

pub use codec::{decode, encode, DecodeError};
pub use message::Message;
