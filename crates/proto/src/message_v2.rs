//! Protocol v2 messages: quantized coordinate updates + piggybacked
//! acknowledgements.
//!
//! Same four-datagram conversation as [`crate::message::Message`]
//! (the paper's Algorithms 1 and 2), but coordinates travel as
//! [`CoordUpdate`]s (delta/keyframe, see [`crate::delta`]) and every
//! probe carries an optional [`Ack`] for the reverse-direction
//! coordinate stream. Nonces shrink to `u32` and the ABW probe rate
//! to `f32` — class thresholds need nowhere near f64 precision.

use crate::context::Ack;
use crate::delta::CoordUpdate;

/// A protocol-v2 message.
#[derive(Clone, Debug, PartialEq)]
pub enum MessageV2 {
    /// Algorithm 1, step 1: RTT probe. `ack` confirms the newest
    /// coordinate update decoded *from the target* (the reply stream
    /// travels target→prober, so its acks ride the next probe).
    RttProbe {
        /// Correlates the reply with this probe.
        nonce: u32,
        /// Ack for the target→prober coordinate stream.
        ack: Option<Ack>,
    },
    /// Algorithm 1, step 2: the target returns its coordinates as one
    /// update block carrying `u_j` and `v_j` concatenated (one
    /// sequence number covers both).
    RttReply {
        /// Echo of the probe nonce.
        nonce: u32,
        /// `u_j ‖ v_j` (even rank, split in half by the receiver).
        update: CoordUpdate,
    },
    /// Algorithm 2, step 1: ABW probe carrying the prober's `u_i` as
    /// an update block, plus an ack for the target→prober `v` stream.
    AbwProbe {
        /// Correlates the reply with this probe.
        nonce: u32,
        /// Probe rate in Mbps (the class threshold `τ`).
        rate_mbps: f64,
        /// Ack for the target→prober coordinate stream.
        ack: Option<Ack>,
        /// `u_i` of the probing node.
        update: CoordUpdate,
    },
    /// Algorithm 2, step 3: the target returns the measured class and
    /// its `v_j`, plus an ack for the prober→target `u` stream.
    AbwReply {
        /// Echo of the probe nonce.
        nonce: u32,
        /// Measured class: `+1.0` or `−1.0`.
        x: f64,
        /// Ack for the prober→target coordinate stream.
        ack: Option<Ack>,
        /// `v_j` snapshot of the replying node.
        update: CoordUpdate,
    },
}

impl MessageV2 {
    /// The wire type tag (shared with v1: 1–4).
    pub fn type_tag(&self) -> u8 {
        match self {
            MessageV2::RttProbe { .. } => 1,
            MessageV2::RttReply { .. } => 2,
            MessageV2::AbwProbe { .. } => 3,
            MessageV2::AbwReply { .. } => 4,
        }
    }

    /// The nonce carried by any message kind.
    pub fn nonce(&self) -> u32 {
        match self {
            MessageV2::RttProbe { nonce, .. }
            | MessageV2::RttReply { nonce, .. }
            | MessageV2::AbwProbe { nonce, .. }
            | MessageV2::AbwReply { nonce, .. } => *nonce,
        }
    }

    /// The coordinate update carried, if any (all kinds except
    /// `RttProbe`).
    pub fn update(&self) -> Option<&CoordUpdate> {
        match self {
            MessageV2::RttProbe { .. } => None,
            MessageV2::RttReply { update, .. }
            | MessageV2::AbwProbe { update, .. }
            | MessageV2::AbwReply { update, .. } => Some(update),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::UpdatePayload;

    fn keyframe(seq: u16, coords: Vec<f64>) -> CoordUpdate {
        CoordUpdate {
            seq,
            payload: UpdatePayload::Keyframe { coords },
        }
    }

    #[test]
    fn type_tags_match_v1() {
        let msgs = [
            MessageV2::RttProbe {
                nonce: 1,
                ack: None,
            },
            MessageV2::RttReply {
                nonce: 1,
                update: keyframe(0, vec![1.0, 2.0]),
            },
            MessageV2::AbwProbe {
                nonce: 1,
                rate_mbps: 10.0,
                ack: None,
                update: keyframe(0, vec![1.0]),
            },
            MessageV2::AbwReply {
                nonce: 1,
                x: 1.0,
                ack: None,
                update: keyframe(0, vec![1.0]),
            },
        ];
        let tags: Vec<u8> = msgs.iter().map(|m| m.type_tag()).collect();
        assert_eq!(tags, vec![1, 2, 3, 4]);
    }

    #[test]
    fn accessors() {
        let msg = MessageV2::RttReply {
            nonce: 77,
            update: keyframe(3, vec![0.5, -0.5]),
        };
        assert_eq!(msg.nonce(), 77);
        assert_eq!(msg.update().unwrap().seq, 3);
        assert!(MessageV2::RttProbe {
            nonce: 1,
            ack: None
        }
        .update()
        .is_none());
    }
}
