//! Quantized coordinate updates: f16 keyframes and i8 deltas.
//!
//! Protocol v2 never ships raw f64 coordinates. A [`CoordUpdate`] is
//! either a **keyframe** (every coordinate rounded to IEEE 754
//! binary16) or a **delta** (per-coordinate differences against an
//! earlier reconstructed state, scaled to `i8`). Both sides of a
//! connection reconstruct coordinates *from the transmitted bytes
//! only* — the encoder keeps the dequantized values it actually sent,
//! not the exact values it was given — so quantization error never
//! accumulates: each delta is computed against the state the receiver
//! really holds, and the residual left by one update is folded into
//! the next.
//!
//! The paper's outputs are classes (`sign(u_i · v_j)`), which makes
//! coordinates extremely tolerant of low-precision transport; see the
//! byte-accounting table in `docs/guide.md`.

/// Largest finite binary16 value; encoder input is clamped to ±this.
pub const F16_MAX: f64 = 65504.0;

/// Upper bound on values in one update block (a v2 `RttReply` carries
/// `u` and `v` concatenated, so this is twice [`crate::codec::MAX_RANK`]).
pub const MAX_BLOCK: usize = 2 * crate::codec::MAX_RANK;

/// Rounds an `f64` to the nearest binary16 and returns its bit
/// pattern. Non-finite input is treated as zero; magnitudes beyond
/// [`F16_MAX`] saturate to the largest finite half. Never produces an
/// infinity or NaN pattern.
pub fn f16_from_f64(value: f64) -> u16 {
    let value = if value.is_finite() { value } else { 0.0 };
    let value = value.clamp(-F16_MAX, F16_MAX) as f32;

    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;
    let unbiased = exp - 127;

    if unbiased < -24 {
        // Below the smallest half subnormal: flush to signed zero.
        return sign;
    }
    if unbiased < -14 {
        // Half subnormal range: shift the implicit-bit mantissa down
        // and round to nearest even.
        let shift = (13 - 14 - unbiased) as u32; // 14..=23
        let full = mant | 0x0080_0000;
        let mut half = (full >> shift) as u16;
        let round = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        if round > halfway || (round == halfway && half & 1 == 1) {
            half += 1;
        }
        return sign | half;
    }

    let mut h_exp = (unbiased + 15) as u32;
    let mut h_mant = mant >> 13;
    let round = mant & 0x1FFF;
    if round > 0x1000 || (round == 0x1000 && h_mant & 1 == 1) {
        h_mant += 1;
        if h_mant == 0x400 {
            h_mant = 0;
            h_exp += 1;
        }
    }
    if h_exp >= 31 {
        // Unreachable after the clamp above, but keep the saturation
        // so this function can never emit an inf/NaN pattern.
        return sign | 0x7BFF;
    }
    sign | ((h_exp as u16) << 10) | h_mant as u16
}

/// Expands a binary16 bit pattern to `f64` (exact). Exponent-31
/// patterns (inf/NaN) map to NaN; the codec rejects them before this
/// is reached on the decode path.
pub fn f16_to_f64(bits: u16) -> f64 {
    let sign = if bits & 0x8000 != 0 { -1.0 } else { 1.0 };
    let exp = ((bits >> 10) & 0x1F) as i32;
    let mant = (bits & 0x3FF) as f64;
    match exp {
        0 => sign * mant * (-24f64).exp2(),
        31 => f64::NAN,
        e => sign * (1.0 + mant / 1024.0) * f64::from(e - 15).exp2(),
    }
}

/// Whether a binary16 bit pattern is finite (not inf/NaN).
pub fn f16_is_finite(bits: u16) -> bool {
    (bits >> 10) & 0x1F != 31
}

/// Rounds every coordinate to its nearest binary16 value — the exact
/// state a receiver reconstructs from a keyframe.
pub fn quantize_keyframe(coords: &[f64]) -> Vec<f64> {
    coords
        .iter()
        .map(|&c| f16_to_f64(f16_from_f64(c)))
        .collect()
}

/// Quantizes `coords − baseline` to a shared binary16 scale and
/// per-coordinate `i8` steps.
///
/// Returns `(scale, quants)` with every quant in `[-127, 127]` and
/// `scale ≥ 0` exactly representable in binary16. A zero scale means
/// the update is a no-op (all diffs below half precision).
///
/// # Panics
/// Panics if the slices differ in length (an internal programming
/// error — the encoder context always deltas against a same-rank
/// baseline).
pub fn quantize_delta(baseline: &[f64], coords: &[f64]) -> (f64, Vec<i8>) {
    assert_eq!(
        baseline.len(),
        coords.len(),
        "delta baseline rank {} != coords rank {}",
        baseline.len(),
        coords.len()
    );
    let max_abs = baseline
        .iter()
        .zip(coords)
        .map(|(&b, &c)| (c - b).abs())
        .fold(0.0f64, f64::max);
    let scale = f16_to_f64(f16_from_f64(max_abs / 127.0));
    if scale == 0.0 || !scale.is_finite() {
        return (0.0, vec![0; coords.len()]);
    }
    let quants = baseline
        .iter()
        .zip(coords)
        .map(|(&b, &c)| ((c - b) / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (scale, quants)
}

/// Reconstructs coordinates from a baseline and a quantized delta —
/// the shared arithmetic both encoder and decoder run, so their
/// states stay bit-identical.
///
/// # Panics
/// Panics if the slices differ in length; callers validate rank
/// before reconstruction.
pub fn apply_delta(baseline: &[f64], scale: f64, quants: &[i8]) -> Vec<f64> {
    assert_eq!(
        baseline.len(),
        quants.len(),
        "delta baseline rank {} != quant rank {}",
        baseline.len(),
        quants.len()
    );
    baseline
        .iter()
        .zip(quants)
        .map(|(&b, &q)| b + f64::from(q) * scale)
        .collect()
}

/// One coordinate update on a v2 stream: a sequence number plus a
/// keyframe or delta payload.
#[derive(Clone, Debug, PartialEq)]
pub struct CoordUpdate {
    /// Position in the sender's per-peer stream (wrapping `u16`);
    /// non-contiguous arrivals are how the decoder detects gaps.
    pub seq: u16,
    /// The quantized coordinates.
    pub payload: UpdatePayload,
}

/// The body of a [`CoordUpdate`].
#[derive(Clone, Debug, PartialEq)]
pub enum UpdatePayload {
    /// Full state, each value binary16-rounded. Always decodable.
    Keyframe {
        /// The reconstructed coordinate block.
        coords: Vec<f64>,
    },
    /// Differences against an earlier update's reconstruction.
    Delta {
        /// Sequence number of the baseline this delta builds on.
        base_seq: u16,
        /// Step size shared by all quants (binary16-exact, ≥ 0).
        scale: f64,
        /// Per-coordinate steps in `[-127, 127]`.
        quants: Vec<i8>,
    },
}

impl CoordUpdate {
    /// Number of coordinate values carried.
    pub fn rank(&self) -> usize {
        match &self.payload {
            UpdatePayload::Keyframe { coords } => coords.len(),
            UpdatePayload::Delta { quants, .. } => quants.len(),
        }
    }

    /// Whether this update is a full-state keyframe.
    pub fn is_keyframe(&self) -> bool {
        matches!(self.payload, UpdatePayload::Keyframe { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrips_exact_halves() {
        for value in [0.0, -0.0, 1.0, -1.0, 0.5, 1024.0, 65504.0, -65504.0] {
            let bits = f16_from_f64(value);
            assert_eq!(f16_to_f64(bits), value, "{value} must round-trip");
        }
    }

    #[test]
    fn f16_quantization_is_idempotent() {
        for &value in &[0.3, -2.7, 1e-3, 700.25, -1e-6, 9999.0] {
            let once = f16_to_f64(f16_from_f64(value));
            let twice = f16_to_f64(f16_from_f64(once));
            assert_eq!(once, twice, "{value}: second rounding must be a no-op");
        }
    }

    #[test]
    fn f16_never_emits_non_finite() {
        for value in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 1e300, -1e300] {
            let bits = f16_from_f64(value);
            assert!(f16_is_finite(bits), "{value} must encode finite");
        }
    }

    #[test]
    fn f16_relative_error_is_half_precision() {
        for i in 0..1000 {
            let value = (i as f64 - 500.0) * 0.013 + 0.0007;
            let back = f16_to_f64(f16_from_f64(value));
            let err = (back - value).abs();
            assert!(
                err <= value.abs() * 1e-3 + 6e-8,
                "{value} -> {back}: err {err}"
            );
        }
    }

    #[test]
    fn f16_subnormals_roundtrip() {
        // Smallest positive half subnormal is 2^-24.
        let tiny = (-24f64).exp2();
        assert_eq!(f16_to_f64(f16_from_f64(tiny)), tiny);
        // Below half of it: flushes to zero.
        assert_eq!(f16_to_f64(f16_from_f64(tiny / 4.0)), 0.0);
    }

    #[test]
    fn delta_roundtrip_recovers_small_motion() {
        let baseline: Vec<f64> = (0..10).map(|i| i as f64 * 0.1 - 0.4).collect();
        let coords: Vec<f64> = baseline.iter().map(|b| b + 0.011).collect();
        let (scale, quants) = quantize_delta(&baseline, &coords);
        assert!(quants.iter().all(|&q| (-127..=127).contains(&q)));
        let recon = apply_delta(&baseline, scale, &quants);
        for (r, c) in recon.iter().zip(&coords) {
            assert!((r - c).abs() <= scale, "recon {r} vs {c} (scale {scale})");
        }
    }

    #[test]
    fn delta_of_identical_states_is_zero() {
        let baseline = [1.0, -2.0, 3.0];
        let (scale, quants) = quantize_delta(&baseline, &baseline);
        assert_eq!(scale, 0.0);
        assert_eq!(quants, vec![0, 0, 0]);
        assert_eq!(apply_delta(&baseline, scale, &quants), baseline.to_vec());
    }

    #[test]
    fn delta_scale_bounds_every_quant() {
        // Large asymmetric motion still quantizes into range.
        let baseline = [0.0, 0.0, 0.0, 0.0];
        let coords = [5.0, -5.0, 0.1, 0.0];
        let (scale, quants) = quantize_delta(&baseline, &coords);
        assert!(quants.iter().all(|&q| (-127..=127).contains(&q)));
        let recon = apply_delta(&baseline, scale, &quants);
        for (r, c) in recon.iter().zip(&coords) {
            assert!((r - c).abs() <= scale, "recon {r} vs {c}");
        }
    }

    #[test]
    fn keyframe_quantization_matches_reconstruction() {
        let coords = [0.123, -4.56, 7.89, 0.0];
        let q = quantize_keyframe(&coords);
        // Re-quantizing the reconstructed state is a no-op — encoder
        // and decoder agree on the baseline bit-for-bit.
        assert_eq!(quantize_keyframe(&q), q);
    }
}
