//! Deterministic, seeded transport fault injection.
//!
//! A [`FaultInjector`] sits between a sender and the wire and mangles
//! datagrams the way a hostile network would: **drop**, **duplicate**,
//! **reorder** (hold one datagram back and release it after the next),
//! **truncate**, and **bit-flip**. All draws come from an inline
//! xorshift64* generator seeded at construction, so a given
//! `(spec, seed)` pair replays the exact same fault schedule — tests
//! that assert on recovery behaviour are reproducible down to the
//! byte.
//!
//! The injector is pure byte-level plumbing: it knows nothing about
//! the protocol, so it exercises every [`crate::codec::DecodeError`]
//! path for free. `dmf-agent` wraps its UDP socket in a
//! `FaultySocket` built on this type; `examples/lossy_cluster.rs`
//! drives a whole cluster through it.

/// Per-datagram fault probabilities, each in `[0, 1]`.
///
/// Probabilities are evaluated independently in a fixed order (drop,
/// truncate, bit-flip, duplicate, reorder), so e.g. a duplicated
/// datagram carries any corruption applied to the original.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability the datagram is silently discarded.
    pub drop: f64,
    /// Probability the datagram is cut short (to ≥ 1 byte).
    pub truncate: f64,
    /// Probability a single random bit is flipped.
    pub bit_flip: f64,
    /// Probability the datagram is delivered twice.
    pub duplicate: f64,
    /// Probability the datagram is held back and released after the
    /// next one (pairwise reordering).
    pub reorder: f64,
}

impl FaultSpec {
    /// No faults (the identity transport).
    pub fn none() -> Self {
        Self::default()
    }

    /// The CI loss scenario: 20% drop plus a spread of corruption,
    /// duplication and reordering.
    pub fn lossy() -> Self {
        FaultSpec {
            drop: 0.20,
            truncate: 0.03,
            bit_flip: 0.05,
            duplicate: 0.05,
            reorder: 0.05,
        }
    }

    /// Whether every probability is zero.
    pub fn is_none(&self) -> bool {
        *self == Self::default()
    }
}

/// Seeded fault injector over raw datagrams.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    state: u64,
    held: Option<Vec<u8>>,
    counts: FaultCounts,
}

/// How many faults of each kind have fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Datagrams discarded.
    pub drops: u64,
    /// Datagrams cut short.
    pub truncations: u64,
    /// Datagrams with a flipped bit.
    pub bit_flips: u64,
    /// Datagrams delivered twice.
    pub duplicates: u64,
    /// Datagrams held back for reordering.
    pub reorders: u64,
}

impl FaultInjector {
    /// Injector with the given spec and seed. Identical `(spec, seed)`
    /// pairs produce identical fault schedules.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        // splitmix64 turns any seed (including 0) into a full-entropy
        // non-zero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FaultInjector {
            spec,
            state: z.max(1),
            held: None,
            counts: FaultCounts::default(),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Pushes one datagram through the fault model, returning the
    /// datagrams that actually reach the wire (0, 1 or more), in
    /// order. A datagram held for reordering is released after the
    /// next call.
    pub fn apply(&mut self, datagram: &[u8]) -> Vec<Vec<u8>> {
        let released = self.held.take();
        let mut out = Vec::new();

        if self.chance(self.spec.drop) {
            self.counts.drops += 1;
        } else {
            let mut d = datagram.to_vec();
            if d.len() > 1 && self.chance(self.spec.truncate) {
                let keep = 1 + (self.next_u64() as usize) % (d.len() - 1);
                d.truncate(keep);
                self.counts.truncations += 1;
            }
            if !d.is_empty() && self.chance(self.spec.bit_flip) {
                let bit = (self.next_u64() as usize) % (d.len() * 8);
                d[bit / 8] ^= 1 << (bit % 8);
                self.counts.bit_flips += 1;
            }
            let dup = self.chance(self.spec.duplicate);
            if released.is_none() && self.held.is_none() && self.chance(self.spec.reorder) {
                self.counts.reorders += 1;
                self.held = Some(d);
            } else {
                if dup {
                    self.counts.duplicates += 1;
                    out.push(d.clone());
                }
                out.push(d);
            }
        }

        if let Some(late) = released {
            out.push(late);
        }
        out
    }

    /// Releases a datagram still held for reordering, if any (call at
    /// stream end so the tail is delayed rather than lost).
    pub fn flush(&mut self) -> Option<Vec<u8>> {
        self.held.take()
    }

    /// Fault counters so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(spec: FaultSpec, seed: u64, n: usize) -> (Vec<Vec<u8>>, FaultCounts) {
        let mut inj = FaultInjector::new(spec, seed);
        let mut out = Vec::new();
        for i in 0..n {
            let datagram = vec![i as u8; 16];
            out.extend(inj.apply(&datagram));
        }
        out.extend(inj.flush());
        (out, inj.counts())
    }

    #[test]
    fn no_faults_is_identity() {
        let (out, counts) = run(FaultSpec::none(), 1, 50);
        assert_eq!(out.len(), 50);
        for (i, d) in out.iter().enumerate() {
            assert_eq!(d, &vec![i as u8; 16]);
        }
        assert_eq!(counts, FaultCounts::default());
    }

    #[test]
    fn same_seed_same_schedule() {
        let (a, ca) = run(FaultSpec::lossy(), 42, 500);
        let (b, cb) = run(FaultSpec::lossy(), 42, 500);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        let (c, _) = run(FaultSpec::lossy(), 43, 500);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn lossy_spec_fires_every_fault_kind() {
        let (_, counts) = run(FaultSpec::lossy(), 7, 2000);
        assert!(counts.drops > 0, "{counts:?}");
        assert!(counts.truncations > 0, "{counts:?}");
        assert!(counts.bit_flips > 0, "{counts:?}");
        assert!(counts.duplicates > 0, "{counts:?}");
        assert!(counts.reorders > 0, "{counts:?}");
    }

    #[test]
    fn drop_rate_close_to_spec() {
        let spec = FaultSpec {
            drop: 0.2,
            ..FaultSpec::none()
        };
        let (out, counts) = run(spec, 11, 10_000);
        assert_eq!(out.len() as u64 + counts.drops, 10_000);
        let rate = counts.drops as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn reorder_swaps_adjacent_datagrams() {
        let spec = FaultSpec {
            reorder: 1.0,
            ..FaultSpec::none()
        };
        let mut inj = FaultInjector::new(spec, 5);
        assert!(inj.apply(&[1]).is_empty(), "first datagram is held");
        // Second call: the new datagram is emitted first, then the
        // held one — and since a datagram was already held, the new
        // one passes straight through.
        assert_eq!(inj.apply(&[2]), vec![vec![2], vec![1]]);
        assert!(inj.apply(&[3]).is_empty());
        assert_eq!(inj.flush(), Some(vec![3]));
    }

    #[test]
    fn truncation_never_empties_a_datagram() {
        let spec = FaultSpec {
            truncate: 1.0,
            ..FaultSpec::none()
        };
        let mut inj = FaultInjector::new(spec, 3);
        for _ in 0..200 {
            for d in inj.apply(&[0xAA; 32]) {
                assert!(!d.is_empty() && d.len() < 32);
            }
        }
        // A 1-byte datagram cannot shrink.
        assert_eq!(inj.apply(&[9]), vec![vec![9]]);
    }

    #[test]
    fn duplicate_carries_corruption() {
        let spec = FaultSpec {
            bit_flip: 1.0,
            duplicate: 1.0,
            ..FaultSpec::none()
        };
        let mut inj = FaultInjector::new(spec, 9);
        let out = inj.apply(&[0u8; 8]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1], "duplicate is byte-identical");
        assert_ne!(out[0], vec![0u8; 8], "and carries the bit flip");
    }
}
