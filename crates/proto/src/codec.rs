//! Encoding and decoding of protocol messages (v1 and v2).
//!
//! Every decode path is total: malformed, truncated, corrupted or
//! hostile datagrams produce a [`DecodeError`], never a panic or an
//! unbounded allocation. These paths are exercised end-to-end by the
//! seeded fault-injection harness in [`crate::fault`] — see
//! `examples/lossy_cluster.rs`, which runs a live UDP cluster through
//! 20% drop plus corruption — and by the mutation-fuzz proptests in
//! `tests/mutation_fuzz.rs`.
//!
//! Version negotiation happens on the header byte at offset 2:
//! [`decode_any`] dispatches to the v1 or v2 parser, so a v2 node
//! stays able to decode (and answer) v1 peers.

use crate::context::Ack;
use crate::delta::{
    f16_from_f64, f16_is_finite, f16_to_f64, CoordUpdate, UpdatePayload, MAX_BLOCK,
};
use crate::message::Message;
use crate::message_v2::MessageV2;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protocol magic (little-endian on the wire).
pub const MAGIC: u16 = 0xD3F5;
/// Protocol version 1 (full f64 coordinates).
pub const VERSION: u8 = 1;
/// Protocol version 2 (quantized delta/keyframe coordinates).
pub const VERSION_V2: u8 = 2;
/// Upper bound on coordinate rank accepted from the network.
pub const MAX_RANK: usize = 256;
/// v1 header length in bytes (magic + version + type + payload_len u32).
pub const HEADER_LEN: usize = 8;
/// v2 header length in bytes (magic + version + type + payload_len u16).
pub const HEADER_LEN_V2: usize = 6;
/// Trailing checksum length.
pub const CHECKSUM_LEN: usize = 4;

/// Which protocol version a sender speaks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WireVersion {
    /// Version 1: plain f64 coordinate vectors.
    V1,
    /// Version 2: delta/keyframe quantized updates (default).
    #[default]
    V2,
}

impl WireVersion {
    /// The version byte this variant puts on the wire.
    pub fn header_byte(self) -> u8 {
        match self {
            WireVersion::V1 => VERSION,
            WireVersion::V2 => VERSION_V2,
        }
    }
}

impl std::fmt::Display for WireVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.header_byte())
    }
}

/// A successfully decoded datagram of either protocol version.
#[derive(Clone, Debug, PartialEq)]
pub enum WireMessage {
    /// A protocol-v1 message.
    V1(Message),
    /// A protocol-v2 message.
    V2(MessageV2),
}

/// Why a datagram was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Shorter than header + checksum.
    TooShort,
    /// Magic mismatch.
    BadMagic,
    /// Unknown protocol version.
    BadVersion,
    /// Unknown message type tag.
    BadType,
    /// Header length field disagrees with the datagram size.
    LengthMismatch,
    /// FNV-1a checksum mismatch (corruption).
    BadChecksum,
    /// Payload shorter than its own fields claim.
    TruncatedPayload,
    /// Coordinate rank of 0 or above [`MAX_RANK`].
    BadRank,
    /// Non-finite float, or a class label other than ±1.
    BadValue,
    /// Payload longer than its fields account for.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DecodeError::TooShort => "datagram too short",
            DecodeError::BadMagic => "bad magic",
            DecodeError::BadVersion => "unsupported version",
            DecodeError::BadType => "unknown message type",
            DecodeError::LengthMismatch => "length field mismatch",
            DecodeError::BadChecksum => "checksum mismatch",
            DecodeError::TruncatedPayload => "truncated payload",
            DecodeError::BadRank => "coordinate rank out of bounds",
            DecodeError::BadValue => "invalid field value",
            DecodeError::TrailingBytes => "trailing bytes after payload",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a 32-bit over a byte slice — the frame checksum of every
/// DMFSGD wire format (probe protocol v1/v2 here, and the
/// `dmf-service` query protocol, which reuses this exact function so
/// one hostile-input analysis covers both). Single-bit flips are
/// always detected: each byte's state transition (xor, then multiply
/// by an odd constant) is a bijection of the running hash.
pub fn fnv1a(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in data {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn put_coords(buf: &mut BytesMut, coords: &[f64]) {
    buf.put_u16_le(coords.len() as u16);
    for &c in coords {
        buf.put_f64_le(c);
    }
}

/// Encodes a message into a standalone datagram.
///
/// # Panics
/// Panics if a coordinate vector exceeds [`MAX_RANK`] (an internal
/// programming error, not a network condition).
pub fn encode(msg: &Message) -> Bytes {
    let check_rank = |coords: &[f64]| {
        assert!(
            (1..=MAX_RANK).contains(&coords.len()),
            "coordinate rank {} outside 1..={MAX_RANK}",
            coords.len()
        );
    };

    let mut payload = BytesMut::with_capacity(64);
    match msg {
        Message::RttProbe { nonce } => {
            payload.put_u64_le(*nonce);
        }
        Message::RttReply { nonce, u, v } => {
            check_rank(u);
            check_rank(v);
            payload.put_u64_le(*nonce);
            put_coords(&mut payload, u);
            put_coords(&mut payload, v);
        }
        Message::AbwProbe {
            nonce,
            rate_mbps,
            u,
        } => {
            check_rank(u);
            payload.put_u64_le(*nonce);
            payload.put_f64_le(*rate_mbps);
            put_coords(&mut payload, u);
        }
        Message::AbwReply { nonce, x, v } => {
            check_rank(v);
            payload.put_u64_le(*nonce);
            payload.put_f64_le(*x);
            put_coords(&mut payload, v);
        }
    }

    let mut out = BytesMut::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.put_u16_le(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(msg.type_tag());
    out.put_u32_le(payload.len() as u32);
    out.extend_from_slice(&payload);
    let checksum = fnv1a(&out);
    out.put_u32_le(checksum);
    out.freeze()
}

fn get_coords(buf: &mut &[u8]) -> Result<Vec<f64>, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::TruncatedPayload);
    }
    let rank = buf.get_u16_le() as usize;
    if rank == 0 || rank > MAX_RANK {
        return Err(DecodeError::BadRank);
    }
    if buf.remaining() < rank * 8 {
        return Err(DecodeError::TruncatedPayload);
    }
    let mut coords = Vec::with_capacity(rank);
    for _ in 0..rank {
        let value = buf.get_f64_le();
        if !value.is_finite() {
            return Err(DecodeError::BadValue);
        }
        coords.push(value);
    }
    Ok(coords)
}

/// Decodes a datagram.
pub fn decode(datagram: &[u8]) -> Result<Message, DecodeError> {
    if datagram.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(DecodeError::TooShort);
    }
    let (body, checksum_bytes) = datagram.split_at(datagram.len() - CHECKSUM_LEN);
    let mut check = checksum_bytes;
    let expected = check.get_u32_le();
    if fnv1a(body) != expected {
        return Err(DecodeError::BadChecksum);
    }

    let mut header = body;
    let magic = header.get_u16_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = header.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion);
    }
    let type_tag = header.get_u8();
    let payload_len = header.get_u32_le() as usize;
    if payload_len != header.len() {
        return Err(DecodeError::LengthMismatch);
    }
    let mut payload = header;

    let need_u64 = |payload: &mut &[u8]| -> Result<u64, DecodeError> {
        if payload.remaining() < 8 {
            return Err(DecodeError::TruncatedPayload);
        }
        Ok(payload.get_u64_le())
    };
    let need_f64 = |payload: &mut &[u8]| -> Result<f64, DecodeError> {
        if payload.remaining() < 8 {
            return Err(DecodeError::TruncatedPayload);
        }
        let v = payload.get_f64_le();
        if !v.is_finite() {
            return Err(DecodeError::BadValue);
        }
        Ok(v)
    };

    let msg = match type_tag {
        1 => Message::RttProbe {
            nonce: need_u64(&mut payload)?,
        },
        2 => {
            let nonce = need_u64(&mut payload)?;
            let u = get_coords(&mut payload)?;
            let v = get_coords(&mut payload)?;
            if u.len() != v.len() {
                return Err(DecodeError::BadRank);
            }
            Message::RttReply { nonce, u, v }
        }
        3 => {
            let nonce = need_u64(&mut payload)?;
            let rate_mbps = need_f64(&mut payload)?;
            if rate_mbps <= 0.0 {
                return Err(DecodeError::BadValue);
            }
            let u = get_coords(&mut payload)?;
            Message::AbwProbe {
                nonce,
                rate_mbps,
                u,
            }
        }
        4 => {
            let nonce = need_u64(&mut payload)?;
            let x = need_f64(&mut payload)?;
            if x != 1.0 && x != -1.0 {
                return Err(DecodeError::BadValue);
            }
            let v = get_coords(&mut payload)?;
            Message::AbwReply { nonce, x, v }
        }
        _ => return Err(DecodeError::BadType),
    };

    if payload.has_remaining() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(msg)
}

// ---------------------------------------------------------------- v2

/// Message flag bits (v2): ack present / ack requests a keyframe.
const FLAG_HAS_ACK: u8 = 0b01;
const FLAG_WANT_KEYFRAME: u8 = 0b10;
/// Update-block flag bit (v2): payload is a keyframe, not a delta.
const FLAG_KEYFRAME: u8 = 0b01;

fn put_ack_flags(buf: &mut BytesMut, ack: Option<Ack>) {
    match ack {
        None => buf.put_u8(0),
        Some(ack) => {
            let mut flags = FLAG_HAS_ACK;
            if ack.want_keyframe {
                flags |= FLAG_WANT_KEYFRAME;
            }
            buf.put_u8(flags);
            buf.put_u16_le(ack.seq);
        }
    }
}

fn put_update(buf: &mut BytesMut, update: &CoordUpdate) {
    let rank = update.rank();
    assert!(
        (1..=MAX_BLOCK).contains(&rank),
        "update rank {rank} outside 1..={MAX_BLOCK}"
    );
    match &update.payload {
        UpdatePayload::Keyframe { coords } => {
            buf.put_u8(FLAG_KEYFRAME);
            buf.put_u16_le(update.seq);
            buf.put_u16_le(coords.len() as u16);
            for &c in coords {
                buf.put_u16_le(f16_from_f64(c));
            }
        }
        UpdatePayload::Delta {
            base_seq,
            scale,
            quants,
        } => {
            buf.put_u8(0);
            buf.put_u16_le(update.seq);
            buf.put_u16_le(*base_seq);
            buf.put_u16_le(f16_from_f64(*scale));
            buf.put_u16_le(quants.len() as u16);
            for &q in quants {
                buf.put_i8(q);
            }
        }
    }
}

/// Encodes a v2 message into a standalone datagram.
///
/// # Panics
/// Panics if an update block is empty or exceeds
/// [`MAX_BLOCK`] values, or if an `RttReply`
/// block has odd rank (it must carry `u ‖ v`) — internal programming
/// errors, not network conditions.
pub fn encode_v2(msg: &MessageV2) -> Bytes {
    let mut payload = BytesMut::with_capacity(64);
    match msg {
        MessageV2::RttProbe { nonce, ack } => {
            payload.put_u32_le(*nonce);
            put_ack_flags(&mut payload, *ack);
        }
        MessageV2::RttReply { nonce, update } => {
            assert!(
                update.rank() % 2 == 0,
                "RttReply update must carry u ‖ v (even rank, got {})",
                update.rank()
            );
            payload.put_u32_le(*nonce);
            put_update(&mut payload, update);
        }
        MessageV2::AbwProbe {
            nonce,
            rate_mbps,
            ack,
            update,
        } => {
            payload.put_u32_le(*nonce);
            put_ack_flags(&mut payload, *ack);
            payload.put_f32_le(*rate_mbps as f32);
            put_update(&mut payload, update);
        }
        MessageV2::AbwReply {
            nonce,
            x,
            ack,
            update,
        } => {
            payload.put_u32_le(*nonce);
            put_ack_flags(&mut payload, *ack);
            payload.put_i8(if *x >= 0.0 { 1 } else { -1 });
            put_update(&mut payload, update);
        }
    }

    debug_assert!(payload.len() <= u16::MAX as usize);
    let mut out = BytesMut::with_capacity(HEADER_LEN_V2 + payload.len() + CHECKSUM_LEN);
    out.put_u16_le(MAGIC);
    out.put_u8(VERSION_V2);
    out.put_u8(msg.type_tag());
    out.put_u16_le(payload.len() as u16);
    out.extend_from_slice(&payload);
    let checksum = fnv1a(&out);
    out.put_u32_le(checksum);
    out.freeze()
}

fn get_ack_flags(payload: &mut &[u8]) -> Result<Option<Ack>, DecodeError> {
    if payload.remaining() < 1 {
        return Err(DecodeError::TruncatedPayload);
    }
    let flags = payload.get_u8();
    if flags & !(FLAG_HAS_ACK | FLAG_WANT_KEYFRAME) != 0 {
        return Err(DecodeError::BadValue);
    }
    if flags & FLAG_HAS_ACK == 0 {
        // A want_keyframe bit without an ack is malformed.
        if flags & FLAG_WANT_KEYFRAME != 0 {
            return Err(DecodeError::BadValue);
        }
        return Ok(None);
    }
    if payload.remaining() < 2 {
        return Err(DecodeError::TruncatedPayload);
    }
    Ok(Some(Ack {
        seq: payload.get_u16_le(),
        want_keyframe: flags & FLAG_WANT_KEYFRAME != 0,
    }))
}

fn get_update(payload: &mut &[u8]) -> Result<CoordUpdate, DecodeError> {
    if payload.remaining() < 3 {
        return Err(DecodeError::TruncatedPayload);
    }
    let flags = payload.get_u8();
    if flags & !FLAG_KEYFRAME != 0 {
        return Err(DecodeError::BadValue);
    }
    let seq = payload.get_u16_le();

    let get_rank = |payload: &mut &[u8]| -> Result<usize, DecodeError> {
        if payload.remaining() < 2 {
            return Err(DecodeError::TruncatedPayload);
        }
        let rank = payload.get_u16_le() as usize;
        if rank == 0 || rank > MAX_BLOCK {
            return Err(DecodeError::BadRank);
        }
        Ok(rank)
    };

    if flags & FLAG_KEYFRAME != 0 {
        let rank = get_rank(payload)?;
        if payload.remaining() < rank * 2 {
            return Err(DecodeError::TruncatedPayload);
        }
        let mut coords = Vec::with_capacity(rank);
        for _ in 0..rank {
            let bits = payload.get_u16_le();
            if !f16_is_finite(bits) {
                return Err(DecodeError::BadValue);
            }
            coords.push(f16_to_f64(bits));
        }
        Ok(CoordUpdate {
            seq,
            payload: UpdatePayload::Keyframe { coords },
        })
    } else {
        if payload.remaining() < 4 {
            return Err(DecodeError::TruncatedPayload);
        }
        let base_seq = payload.get_u16_le();
        let scale_bits = payload.get_u16_le();
        // The scale is a magnitude: reject inf/NaN and negative zero
        // patterns alike (the encoder never emits a sign bit here).
        if !f16_is_finite(scale_bits) || scale_bits & 0x8000 != 0 {
            return Err(DecodeError::BadValue);
        }
        let scale = f16_to_f64(scale_bits);
        let rank = get_rank(payload)?;
        if payload.remaining() < rank {
            return Err(DecodeError::TruncatedPayload);
        }
        let mut quants = Vec::with_capacity(rank);
        for _ in 0..rank {
            quants.push(payload.get_i8());
        }
        Ok(CoordUpdate {
            seq,
            payload: UpdatePayload::Delta {
                base_seq,
                scale,
                quants,
            },
        })
    }
}

/// Decodes a v2 datagram.
pub fn decode_v2(datagram: &[u8]) -> Result<MessageV2, DecodeError> {
    if datagram.len() < HEADER_LEN_V2 + CHECKSUM_LEN {
        return Err(DecodeError::TooShort);
    }
    let (body, checksum_bytes) = datagram.split_at(datagram.len() - CHECKSUM_LEN);
    let mut check = checksum_bytes;
    let expected = check.get_u32_le();
    if fnv1a(body) != expected {
        return Err(DecodeError::BadChecksum);
    }

    let mut header = body;
    if header.get_u16_le() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if header.get_u8() != VERSION_V2 {
        return Err(DecodeError::BadVersion);
    }
    let type_tag = header.get_u8();
    let payload_len = header.get_u16_le() as usize;
    if payload_len != header.len() {
        return Err(DecodeError::LengthMismatch);
    }
    let mut payload = header;

    let need_u32 = |payload: &mut &[u8]| -> Result<u32, DecodeError> {
        if payload.remaining() < 4 {
            return Err(DecodeError::TruncatedPayload);
        }
        Ok(payload.get_u32_le())
    };

    let msg = match type_tag {
        1 => {
            let nonce = need_u32(&mut payload)?;
            let ack = get_ack_flags(&mut payload)?;
            MessageV2::RttProbe { nonce, ack }
        }
        2 => {
            let nonce = need_u32(&mut payload)?;
            let update = get_update(&mut payload)?;
            if update.rank() % 2 != 0 {
                return Err(DecodeError::BadRank);
            }
            MessageV2::RttReply { nonce, update }
        }
        3 => {
            let nonce = need_u32(&mut payload)?;
            let ack = get_ack_flags(&mut payload)?;
            if payload.remaining() < 4 {
                return Err(DecodeError::TruncatedPayload);
            }
            let rate = payload.get_f32_le();
            if !rate.is_finite() || rate <= 0.0 {
                return Err(DecodeError::BadValue);
            }
            let update = get_update(&mut payload)?;
            MessageV2::AbwProbe {
                nonce,
                rate_mbps: f64::from(rate),
                ack,
                update,
            }
        }
        4 => {
            let nonce = need_u32(&mut payload)?;
            let ack = get_ack_flags(&mut payload)?;
            if payload.remaining() < 1 {
                return Err(DecodeError::TruncatedPayload);
            }
            let x = match payload.get_i8() {
                1 => 1.0,
                -1 => -1.0,
                _ => return Err(DecodeError::BadValue),
            };
            let update = get_update(&mut payload)?;
            MessageV2::AbwReply {
                nonce,
                x,
                ack,
                update,
            }
        }
        _ => return Err(DecodeError::BadType),
    };

    if payload.has_remaining() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(msg)
}

/// Decodes a datagram of either protocol version, dispatching on the
/// version byte at offset 2 — this is the whole of version
/// negotiation: a node answers in whatever version the probe spoke.
pub fn decode_any(datagram: &[u8]) -> Result<WireMessage, DecodeError> {
    if datagram.len() < HEADER_LEN_V2 + CHECKSUM_LEN {
        return Err(DecodeError::TooShort);
    }
    match datagram[2] {
        VERSION => decode(datagram).map(WireMessage::V1),
        VERSION_V2 => decode_v2(datagram).map(WireMessage::V2),
        _ => {
            // Unknown version: still distinguish corruption from a
            // genuinely newer protocol by checking checksum and magic.
            let (body, mut check) = datagram.split_at(datagram.len() - CHECKSUM_LEN);
            if fnv1a(body) != check.get_u32_le() {
                return Err(DecodeError::BadChecksum);
            }
            let mut header = body;
            if header.get_u16_le() != MAGIC {
                return Err(DecodeError::BadMagic);
            }
            Err(DecodeError::BadVersion)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::RttProbe { nonce: 42 },
            Message::RttReply {
                nonce: 43,
                u: vec![0.1, -0.2, 3.5],
                v: vec![1.0, 2.0, -0.5],
            },
            Message::AbwProbe {
                nonce: 44,
                rate_mbps: 43.1,
                u: vec![0.9; 10],
            },
            Message::AbwReply {
                nonce: 45,
                x: -1.0,
                v: vec![-2.0, 0.0],
            },
        ]
    }

    #[test]
    fn roundtrip_all_kinds() {
        for msg in sample_messages() {
            let wire = encode(&msg);
            let back = decode(&wire).expect("roundtrip");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn golden_rtt_probe_layout() {
        let wire = encode(&Message::RttProbe {
            nonce: 0x0102_0304_0506_0708,
        });
        // magic LE
        assert_eq!(&wire[0..2], &[0xF5, 0xD3]);
        assert_eq!(wire[2], VERSION);
        assert_eq!(wire[3], 1); // type
        assert_eq!(&wire[4..8], &8u32.to_le_bytes()); // payload length
        assert_eq!(&wire[8..16], &0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(wire.len(), HEADER_LEN + 8 + CHECKSUM_LEN);
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let wire = encode(&Message::RttReply {
            nonce: 7,
            u: vec![1.0, 2.0],
            v: vec![3.0, 4.0],
        });
        for len in 0..wire.len() {
            assert!(
                decode(&wire[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn rejects_single_byte_corruption() {
        let wire = encode(&Message::AbwReply {
            nonce: 9,
            x: 1.0,
            v: vec![0.25, -0.75],
        });
        for pos in 0..wire.len() {
            let mut corrupted = wire.to_vec();
            corrupted[pos] ^= 0xFF;
            let result = decode(&corrupted);
            assert!(
                result.is_err(),
                "flipping byte {pos} must be detected, got {result:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_magic_version_type() {
        let wire = encode(&Message::RttProbe { nonce: 1 }).to_vec();
        let refresh = |mut w: Vec<u8>| {
            let n = w.len() - CHECKSUM_LEN;
            let c = fnv1a(&w[..n]);
            let idx = n;
            w[idx..].copy_from_slice(&c.to_le_bytes());
            w
        };
        let mut bad_magic = wire.clone();
        bad_magic[0] = 0;
        assert_eq!(decode(&refresh(bad_magic)), Err(DecodeError::BadMagic));
        let mut bad_version = wire.clone();
        bad_version[2] = 9;
        assert_eq!(decode(&refresh(bad_version)), Err(DecodeError::BadVersion));
        let mut bad_type = wire.clone();
        bad_type[3] = 200;
        assert_eq!(decode(&refresh(bad_type)), Err(DecodeError::BadType));
    }

    #[test]
    fn rejects_invalid_class_label() {
        let wire = encode(&Message::AbwReply {
            nonce: 1,
            x: 1.0,
            v: vec![0.5],
        })
        .to_vec();
        // Patch x (payload offset 8) to 0.5 and refresh the checksum.
        let mut patched = wire;
        let x_off = HEADER_LEN + 8;
        patched[x_off..x_off + 8].copy_from_slice(&0.5f64.to_le_bytes());
        let n = patched.len() - CHECKSUM_LEN;
        let c = fnv1a(&patched[..n]);
        patched[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode(&patched), Err(DecodeError::BadValue));
    }

    #[test]
    fn rejects_nan_coordinates() {
        let wire = encode(&Message::RttReply {
            nonce: 1,
            u: vec![1.0],
            v: vec![2.0],
        })
        .to_vec();
        // u[0] sits at payload offset 8 (nonce) + 2 (rank).
        let mut patched = wire;
        let off = HEADER_LEN + 10;
        patched[off..off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        let n = patched.len() - CHECKSUM_LEN;
        let c = fnv1a(&patched[..n]);
        patched[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode(&patched), Err(DecodeError::BadValue));
    }

    #[test]
    fn rejects_oversized_rank() {
        let wire = encode(&Message::AbwProbe {
            nonce: 1,
            rate_mbps: 10.0,
            u: vec![1.0],
        })
        .to_vec();
        // Rank field sits at payload offset 8 + 8.
        let mut patched = wire;
        let off = HEADER_LEN + 16;
        patched[off..off + 2].copy_from_slice(&(MAX_RANK as u16 + 1).to_le_bytes());
        let n = patched.len() - CHECKSUM_LEN;
        let c = fnv1a(&patched[..n]);
        patched[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode(&patched), Err(DecodeError::BadRank));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut extended = encode(&Message::RttProbe { nonce: 3 }).to_vec();
        // Append a byte inside the payload region and fix both the
        // length field and the checksum.
        let insert_at = extended.len() - CHECKSUM_LEN;
        extended.insert(insert_at, 0xAB);
        let payload_len = (extended.len() - HEADER_LEN - CHECKSUM_LEN) as u32;
        extended[4..8].copy_from_slice(&payload_len.to_le_bytes());
        let n = extended.len() - CHECKSUM_LEN;
        let c = fnv1a(&extended[..n]);
        extended[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode(&extended), Err(DecodeError::TrailingBytes));
    }

    #[test]
    #[should_panic(expected = "coordinate rank")]
    fn encode_rejects_empty_coords() {
        encode(&Message::RttReply {
            nonce: 1,
            u: vec![],
            v: vec![],
        });
    }

    #[test]
    fn mismatched_uv_ranks_rejected() {
        // Hand-craft a RttReply with rank(u)=1, rank(v)=2.
        let mut payload = BytesMut::new();
        payload.put_u64_le(5);
        payload.put_u16_le(1);
        payload.put_f64_le(1.0);
        payload.put_u16_le(2);
        payload.put_f64_le(2.0);
        payload.put_f64_le(3.0);
        let mut out = BytesMut::new();
        out.put_u16_le(MAGIC);
        out.put_u8(VERSION);
        out.put_u8(2);
        out.put_u32_le(payload.len() as u32);
        out.extend_from_slice(&payload);
        let c = fnv1a(&out);
        out.put_u32_le(c);
        assert_eq!(decode(&out), Err(DecodeError::BadRank));
    }

    // ------------------------------------------------------------ v2

    fn keyframe(seq: u16, coords: Vec<f64>) -> CoordUpdate {
        CoordUpdate {
            seq,
            payload: UpdatePayload::Keyframe {
                coords: crate::delta::quantize_keyframe(&coords),
            },
        }
    }

    fn delta(seq: u16, base_seq: u16, scale: f64, quants: Vec<i8>) -> CoordUpdate {
        CoordUpdate {
            seq,
            payload: UpdatePayload::Delta {
                base_seq,
                scale: f16_to_f64(f16_from_f64(scale)),
                quants,
            },
        }
    }

    fn sample_v2_messages() -> Vec<MessageV2> {
        vec![
            MessageV2::RttProbe {
                nonce: 1,
                ack: None,
            },
            MessageV2::RttProbe {
                nonce: 2,
                ack: Some(Ack {
                    seq: 40_000,
                    want_keyframe: true,
                }),
            },
            MessageV2::RttReply {
                nonce: 3,
                update: keyframe(0, vec![0.1, -0.2, 3.5, 1.0, 2.0, -0.5]),
            },
            MessageV2::RttReply {
                nonce: 4,
                update: delta(9, 7, 0.01, vec![1, -127, 0, 127]),
            },
            MessageV2::AbwProbe {
                nonce: 5,
                rate_mbps: 43.0,
                ack: Some(Ack {
                    seq: 3,
                    want_keyframe: false,
                }),
                update: keyframe(2, vec![0.9; 10]),
            },
            MessageV2::AbwReply {
                nonce: 6,
                x: -1.0,
                ack: None,
                update: delta(3, 2, 0.5, vec![-2, 0]),
            },
        ]
    }

    #[test]
    fn roundtrip_v2_all_kinds() {
        for msg in sample_v2_messages() {
            let wire = encode_v2(&msg);
            let back = decode_v2(&wire).expect("roundtrip");
            // rate_mbps passes through f32; everything else is exact.
            match (&back, &msg) {
                (
                    MessageV2::AbwProbe { rate_mbps: got, .. },
                    MessageV2::AbwProbe {
                        rate_mbps: want, ..
                    },
                ) => assert!((got - want).abs() < 1e-3),
                _ => assert_eq!(back, msg),
            }
            assert_eq!(decode_any(&wire), Ok(WireMessage::V2(back)));
        }
    }

    #[test]
    fn golden_v2_probe_layout() {
        let wire = encode_v2(&MessageV2::RttProbe {
            nonce: 0x0102_0304,
            ack: Some(Ack {
                seq: 0xBEEF,
                want_keyframe: true,
            }),
        });
        assert_eq!(&wire[0..2], &[0xF5, 0xD3]); // magic LE
        assert_eq!(wire[2], VERSION_V2);
        assert_eq!(wire[3], 1); // type
        assert_eq!(&wire[4..6], &7u16.to_le_bytes()); // payload length
        assert_eq!(&wire[6..10], &0x0102_0304u32.to_le_bytes());
        assert_eq!(wire[10], FLAG_HAS_ACK | FLAG_WANT_KEYFRAME);
        assert_eq!(&wire[11..13], &0xBEEFu16.to_le_bytes());
        assert_eq!(wire.len(), HEADER_LEN_V2 + 7 + CHECKSUM_LEN);
    }

    /// Pins the datagram sizes behind the ≥3× bytes-per-cycle claim
    /// (rank 10): a v1 RTT cycle is 204 bytes, a v2 delta cycle 60.
    #[test]
    fn v2_frame_sizes_at_rank_10() {
        let v1_probe = encode(&Message::RttProbe { nonce: 1 });
        let v1_reply = encode(&Message::RttReply {
            nonce: 1,
            u: vec![0.1; 10],
            v: vec![0.2; 10],
        });
        assert_eq!(v1_probe.len() + v1_reply.len(), 20 + 184);

        let ack = Some(Ack {
            seq: 1,
            want_keyframe: false,
        });
        let v2_probe = encode_v2(&MessageV2::RttProbe { nonce: 1, ack });
        let v2_delta = encode_v2(&MessageV2::RttReply {
            nonce: 1,
            update: delta(2, 1, 0.01, vec![3; 20]),
        });
        let v2_key = encode_v2(&MessageV2::RttReply {
            nonce: 1,
            update: keyframe(2, vec![0.1; 20]),
        });
        assert_eq!(v2_probe.len(), 17);
        assert_eq!(v2_delta.len(), 43);
        assert_eq!(v2_key.len(), 59);
        let v1_cycle = (v1_probe.len() + v1_reply.len()) as f64;
        let v2_cycle = (v2_probe.len() + v2_delta.len()) as f64;
        assert!(
            v1_cycle / v2_cycle >= 3.0,
            "delta cycle must be ≥3× smaller"
        );
    }

    #[test]
    fn versions_reject_each_other_cleanly() {
        let v2 = encode_v2(&MessageV2::RttProbe {
            nonce: 9,
            ack: None,
        });
        assert_eq!(decode(&v2), Err(DecodeError::BadVersion));
        let v1 = encode(&Message::RttProbe { nonce: 9 });
        assert_eq!(decode_v2(&v1), Err(DecodeError::BadVersion));
        // decode_any accepts both.
        assert!(matches!(decode_any(&v1), Ok(WireMessage::V1(_))));
        assert!(matches!(decode_any(&v2), Ok(WireMessage::V2(_))));
    }

    #[test]
    fn decode_any_unknown_version() {
        let mut wire = encode_v2(&MessageV2::RttProbe {
            nonce: 9,
            ack: None,
        })
        .to_vec();
        wire[2] = 7;
        let n = wire.len() - CHECKSUM_LEN;
        let c = fnv1a(&wire[..n]);
        wire[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode_any(&wire), Err(DecodeError::BadVersion));
        // Corrupted frames report the checksum, not the version.
        wire[6] ^= 0x40;
        assert_eq!(decode_any(&wire), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn v2_rejects_truncation_at_every_length() {
        for msg in sample_v2_messages() {
            let wire = encode_v2(&msg);
            for len in 0..wire.len() {
                assert!(
                    decode_v2(&wire[..len]).is_err() && decode_any(&wire[..len]).is_err(),
                    "truncation to {len} bytes must fail"
                );
            }
        }
    }

    #[test]
    fn v2_rejects_single_byte_corruption() {
        for msg in sample_v2_messages() {
            let wire = encode_v2(&msg);
            for pos in 0..wire.len() {
                let mut corrupted = wire.to_vec();
                corrupted[pos] ^= 0xFF;
                assert!(
                    decode_any(&corrupted).is_err(),
                    "flipping byte {pos} must be detected"
                );
            }
        }
    }

    #[test]
    fn v2_rejects_undefined_flag_bits() {
        let refresh = |mut w: Vec<u8>| {
            let n = w.len() - CHECKSUM_LEN;
            let c = fnv1a(&w[..n]);
            w[n..].copy_from_slice(&c.to_le_bytes());
            w
        };
        // Message flags byte sits at payload offset 4 (after nonce).
        let wire = encode_v2(&MessageV2::RttProbe {
            nonce: 1,
            ack: None,
        })
        .to_vec();
        let mut bad = wire.clone();
        bad[HEADER_LEN_V2 + 4] = 0b100;
        assert_eq!(decode_v2(&refresh(bad)), Err(DecodeError::BadValue));
        // want_keyframe without an ack is malformed too.
        let mut orphan = wire;
        orphan[HEADER_LEN_V2 + 4] = FLAG_WANT_KEYFRAME;
        assert_eq!(decode_v2(&refresh(orphan)), Err(DecodeError::BadValue));
        // Update flags byte (RttReply: right after the nonce).
        let wire = encode_v2(&MessageV2::RttReply {
            nonce: 1,
            update: keyframe(0, vec![1.0, 2.0]),
        })
        .to_vec();
        let mut bad = wire;
        bad[HEADER_LEN_V2 + 4] |= 0b1000;
        assert_eq!(decode_v2(&refresh(bad)), Err(DecodeError::BadValue));
    }

    #[test]
    fn v2_rejects_odd_rtt_reply_rank() {
        // Odd rank can't split into u ‖ v.
        let wire = encode_v2(&MessageV2::RttReply {
            nonce: 1,
            update: keyframe(0, vec![1.0, 2.0]),
        })
        .to_vec();
        // Keyframe count field: payload offset 4 (nonce) + 1 (flags) +
        // 2 (seq) = 7. Shrink 2 -> 1 and drop the last f16.
        let mut patched = wire;
        patched[HEADER_LEN_V2 + 7..HEADER_LEN_V2 + 9].copy_from_slice(&1u16.to_le_bytes());
        let split = patched.len() - CHECKSUM_LEN - 2;
        patched.drain(split..split + 2);
        let new_len = (patched.len() - HEADER_LEN_V2 - CHECKSUM_LEN) as u16;
        patched[4..6].copy_from_slice(&new_len.to_le_bytes());
        let n = patched.len() - CHECKSUM_LEN;
        let c = fnv1a(&patched[..n]);
        patched[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode_v2(&patched), Err(DecodeError::BadRank));
    }

    #[test]
    fn v2_rejects_non_finite_keyframe_values() {
        let wire = encode_v2(&MessageV2::RttReply {
            nonce: 1,
            update: keyframe(0, vec![1.0, 2.0]),
        })
        .to_vec();
        // First f16 value: payload offset 4 + 1 + 2 + 2 = 9.
        let mut patched = wire;
        let off = HEADER_LEN_V2 + 9;
        patched[off..off + 2].copy_from_slice(&0x7C00u16.to_le_bytes()); // +inf
        let n = patched.len() - CHECKSUM_LEN;
        let c = fnv1a(&patched[..n]);
        patched[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode_v2(&patched), Err(DecodeError::BadValue));
    }

    #[test]
    fn v2_rejects_negative_or_nan_delta_scale() {
        let wire = encode_v2(&MessageV2::RttReply {
            nonce: 1,
            update: delta(5, 4, 0.25, vec![1, -1]),
        })
        .to_vec();
        // Scale f16: payload offset 4 + 1 + 2 + 2 (base_seq) = 9.
        for bad_bits in [0x7E00u16, 0xBC00u16] {
            // NaN, -1.0
            let mut patched = wire.clone();
            let off = HEADER_LEN_V2 + 9;
            patched[off..off + 2].copy_from_slice(&bad_bits.to_le_bytes());
            let n = patched.len() - CHECKSUM_LEN;
            let c = fnv1a(&patched[..n]);
            patched[n..].copy_from_slice(&c.to_le_bytes());
            assert_eq!(decode_v2(&patched), Err(DecodeError::BadValue));
        }
    }

    #[test]
    fn v2_rejects_trailing_bytes() {
        let mut extended = encode_v2(&MessageV2::RttProbe {
            nonce: 3,
            ack: None,
        })
        .to_vec();
        let insert_at = extended.len() - CHECKSUM_LEN;
        extended.insert(insert_at, 0xAB);
        let payload_len = (extended.len() - HEADER_LEN_V2 - CHECKSUM_LEN) as u16;
        extended[4..6].copy_from_slice(&payload_len.to_le_bytes());
        let n = extended.len() - CHECKSUM_LEN;
        let c = fnv1a(&extended[..n]);
        extended[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode_v2(&extended), Err(DecodeError::TrailingBytes));
    }

    #[test]
    #[should_panic(expected = "even rank")]
    fn encode_v2_rejects_odd_rtt_reply() {
        encode_v2(&MessageV2::RttReply {
            nonce: 1,
            update: keyframe(0, vec![1.0, 2.0, 3.0]),
        });
    }
}
