//! Encoding and decoding of protocol messages.
//!
//! Every decode path is total: malformed, truncated, corrupted or
//! hostile datagrams produce a [`DecodeError`], never a panic or an
//! unbounded allocation. This mirrors the fault-injection discipline
//! of production TCP/IP stacks (cf. the smoltcp examples, which ship
//! `--corrupt-chance` switches precisely to exercise these paths).

use crate::message::Message;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protocol magic (little-endian on the wire).
pub const MAGIC: u16 = 0xD3F5;
/// Protocol version this crate speaks.
pub const VERSION: u8 = 1;
/// Upper bound on coordinate rank accepted from the network.
pub const MAX_RANK: usize = 256;
/// Header length in bytes (magic + version + type + payload_len).
pub const HEADER_LEN: usize = 8;
/// Trailing checksum length.
pub const CHECKSUM_LEN: usize = 4;

/// Why a datagram was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Shorter than header + checksum.
    TooShort,
    /// Magic mismatch.
    BadMagic,
    /// Unknown protocol version.
    BadVersion,
    /// Unknown message type tag.
    BadType,
    /// Header length field disagrees with the datagram size.
    LengthMismatch,
    /// FNV-1a checksum mismatch (corruption).
    BadChecksum,
    /// Payload shorter than its own fields claim.
    TruncatedPayload,
    /// Coordinate rank of 0 or above [`MAX_RANK`].
    BadRank,
    /// Non-finite float, or a class label other than ±1.
    BadValue,
    /// Payload longer than its fields account for.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DecodeError::TooShort => "datagram too short",
            DecodeError::BadMagic => "bad magic",
            DecodeError::BadVersion => "unsupported version",
            DecodeError::BadType => "unknown message type",
            DecodeError::LengthMismatch => "length field mismatch",
            DecodeError::BadChecksum => "checksum mismatch",
            DecodeError::TruncatedPayload => "truncated payload",
            DecodeError::BadRank => "coordinate rank out of bounds",
            DecodeError::BadValue => "invalid field value",
            DecodeError::TrailingBytes => "trailing bytes after payload",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a 32-bit over a byte slice.
fn fnv1a(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in data {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn put_coords(buf: &mut BytesMut, coords: &[f64]) {
    buf.put_u16_le(coords.len() as u16);
    for &c in coords {
        buf.put_f64_le(c);
    }
}

/// Encodes a message into a standalone datagram.
///
/// # Panics
/// Panics if a coordinate vector exceeds [`MAX_RANK`] (an internal
/// programming error, not a network condition).
pub fn encode(msg: &Message) -> Bytes {
    let check_rank = |coords: &[f64]| {
        assert!(
            (1..=MAX_RANK).contains(&coords.len()),
            "coordinate rank {} outside 1..={MAX_RANK}",
            coords.len()
        );
    };

    let mut payload = BytesMut::with_capacity(64);
    match msg {
        Message::RttProbe { nonce } => {
            payload.put_u64_le(*nonce);
        }
        Message::RttReply { nonce, u, v } => {
            check_rank(u);
            check_rank(v);
            payload.put_u64_le(*nonce);
            put_coords(&mut payload, u);
            put_coords(&mut payload, v);
        }
        Message::AbwProbe {
            nonce,
            rate_mbps,
            u,
        } => {
            check_rank(u);
            payload.put_u64_le(*nonce);
            payload.put_f64_le(*rate_mbps);
            put_coords(&mut payload, u);
        }
        Message::AbwReply { nonce, x, v } => {
            check_rank(v);
            payload.put_u64_le(*nonce);
            payload.put_f64_le(*x);
            put_coords(&mut payload, v);
        }
    }

    let mut out = BytesMut::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.put_u16_le(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(msg.type_tag());
    out.put_u32_le(payload.len() as u32);
    out.extend_from_slice(&payload);
    let checksum = fnv1a(&out);
    out.put_u32_le(checksum);
    out.freeze()
}

fn get_coords(buf: &mut &[u8]) -> Result<Vec<f64>, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::TruncatedPayload);
    }
    let rank = buf.get_u16_le() as usize;
    if rank == 0 || rank > MAX_RANK {
        return Err(DecodeError::BadRank);
    }
    if buf.remaining() < rank * 8 {
        return Err(DecodeError::TruncatedPayload);
    }
    let mut coords = Vec::with_capacity(rank);
    for _ in 0..rank {
        let value = buf.get_f64_le();
        if !value.is_finite() {
            return Err(DecodeError::BadValue);
        }
        coords.push(value);
    }
    Ok(coords)
}

/// Decodes a datagram.
pub fn decode(datagram: &[u8]) -> Result<Message, DecodeError> {
    if datagram.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(DecodeError::TooShort);
    }
    let (body, checksum_bytes) = datagram.split_at(datagram.len() - CHECKSUM_LEN);
    let mut check = checksum_bytes;
    let expected = check.get_u32_le();
    if fnv1a(body) != expected {
        return Err(DecodeError::BadChecksum);
    }

    let mut header = body;
    let magic = header.get_u16_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = header.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion);
    }
    let type_tag = header.get_u8();
    let payload_len = header.get_u32_le() as usize;
    if payload_len != header.len() {
        return Err(DecodeError::LengthMismatch);
    }
    let mut payload = header;

    let need_u64 = |payload: &mut &[u8]| -> Result<u64, DecodeError> {
        if payload.remaining() < 8 {
            return Err(DecodeError::TruncatedPayload);
        }
        Ok(payload.get_u64_le())
    };
    let need_f64 = |payload: &mut &[u8]| -> Result<f64, DecodeError> {
        if payload.remaining() < 8 {
            return Err(DecodeError::TruncatedPayload);
        }
        let v = payload.get_f64_le();
        if !v.is_finite() {
            return Err(DecodeError::BadValue);
        }
        Ok(v)
    };

    let msg = match type_tag {
        1 => Message::RttProbe {
            nonce: need_u64(&mut payload)?,
        },
        2 => {
            let nonce = need_u64(&mut payload)?;
            let u = get_coords(&mut payload)?;
            let v = get_coords(&mut payload)?;
            if u.len() != v.len() {
                return Err(DecodeError::BadRank);
            }
            Message::RttReply { nonce, u, v }
        }
        3 => {
            let nonce = need_u64(&mut payload)?;
            let rate_mbps = need_f64(&mut payload)?;
            if rate_mbps <= 0.0 {
                return Err(DecodeError::BadValue);
            }
            let u = get_coords(&mut payload)?;
            Message::AbwProbe {
                nonce,
                rate_mbps,
                u,
            }
        }
        4 => {
            let nonce = need_u64(&mut payload)?;
            let x = need_f64(&mut payload)?;
            if x != 1.0 && x != -1.0 {
                return Err(DecodeError::BadValue);
            }
            let v = get_coords(&mut payload)?;
            Message::AbwReply { nonce, x, v }
        }
        _ => return Err(DecodeError::BadType),
    };

    if payload.has_remaining() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::RttProbe { nonce: 42 },
            Message::RttReply {
                nonce: 43,
                u: vec![0.1, -0.2, 3.5],
                v: vec![1.0, 2.0, -0.5],
            },
            Message::AbwProbe {
                nonce: 44,
                rate_mbps: 43.1,
                u: vec![0.9; 10],
            },
            Message::AbwReply {
                nonce: 45,
                x: -1.0,
                v: vec![-2.0, 0.0],
            },
        ]
    }

    #[test]
    fn roundtrip_all_kinds() {
        for msg in sample_messages() {
            let wire = encode(&msg);
            let back = decode(&wire).expect("roundtrip");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn golden_rtt_probe_layout() {
        let wire = encode(&Message::RttProbe {
            nonce: 0x0102_0304_0506_0708,
        });
        // magic LE
        assert_eq!(&wire[0..2], &[0xF5, 0xD3]);
        assert_eq!(wire[2], VERSION);
        assert_eq!(wire[3], 1); // type
        assert_eq!(&wire[4..8], &8u32.to_le_bytes()); // payload length
        assert_eq!(&wire[8..16], &0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(wire.len(), HEADER_LEN + 8 + CHECKSUM_LEN);
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let wire = encode(&Message::RttReply {
            nonce: 7,
            u: vec![1.0, 2.0],
            v: vec![3.0, 4.0],
        });
        for len in 0..wire.len() {
            assert!(
                decode(&wire[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn rejects_single_byte_corruption() {
        let wire = encode(&Message::AbwReply {
            nonce: 9,
            x: 1.0,
            v: vec![0.25, -0.75],
        });
        for pos in 0..wire.len() {
            let mut corrupted = wire.to_vec();
            corrupted[pos] ^= 0xFF;
            let result = decode(&corrupted);
            assert!(
                result.is_err(),
                "flipping byte {pos} must be detected, got {result:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_magic_version_type() {
        let wire = encode(&Message::RttProbe { nonce: 1 }).to_vec();
        let refresh = |mut w: Vec<u8>| {
            let n = w.len() - CHECKSUM_LEN;
            let c = fnv1a(&w[..n]);
            let idx = n;
            w[idx..].copy_from_slice(&c.to_le_bytes());
            w
        };
        let mut bad_magic = wire.clone();
        bad_magic[0] = 0;
        assert_eq!(decode(&refresh(bad_magic)), Err(DecodeError::BadMagic));
        let mut bad_version = wire.clone();
        bad_version[2] = 9;
        assert_eq!(decode(&refresh(bad_version)), Err(DecodeError::BadVersion));
        let mut bad_type = wire.clone();
        bad_type[3] = 200;
        assert_eq!(decode(&refresh(bad_type)), Err(DecodeError::BadType));
    }

    #[test]
    fn rejects_invalid_class_label() {
        let wire = encode(&Message::AbwReply {
            nonce: 1,
            x: 1.0,
            v: vec![0.5],
        })
        .to_vec();
        // Patch x (payload offset 8) to 0.5 and refresh the checksum.
        let mut patched = wire;
        let x_off = HEADER_LEN + 8;
        patched[x_off..x_off + 8].copy_from_slice(&0.5f64.to_le_bytes());
        let n = patched.len() - CHECKSUM_LEN;
        let c = fnv1a(&patched[..n]);
        patched[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode(&patched), Err(DecodeError::BadValue));
    }

    #[test]
    fn rejects_nan_coordinates() {
        let wire = encode(&Message::RttReply {
            nonce: 1,
            u: vec![1.0],
            v: vec![2.0],
        })
        .to_vec();
        // u[0] sits at payload offset 8 (nonce) + 2 (rank).
        let mut patched = wire;
        let off = HEADER_LEN + 10;
        patched[off..off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        let n = patched.len() - CHECKSUM_LEN;
        let c = fnv1a(&patched[..n]);
        patched[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode(&patched), Err(DecodeError::BadValue));
    }

    #[test]
    fn rejects_oversized_rank() {
        let wire = encode(&Message::AbwProbe {
            nonce: 1,
            rate_mbps: 10.0,
            u: vec![1.0],
        })
        .to_vec();
        // Rank field sits at payload offset 8 + 8.
        let mut patched = wire;
        let off = HEADER_LEN + 16;
        patched[off..off + 2].copy_from_slice(&(MAX_RANK as u16 + 1).to_le_bytes());
        let n = patched.len() - CHECKSUM_LEN;
        let c = fnv1a(&patched[..n]);
        patched[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode(&patched), Err(DecodeError::BadRank));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut extended = encode(&Message::RttProbe { nonce: 3 }).to_vec();
        // Append a byte inside the payload region and fix both the
        // length field and the checksum.
        let insert_at = extended.len() - CHECKSUM_LEN;
        extended.insert(insert_at, 0xAB);
        let payload_len = (extended.len() - HEADER_LEN - CHECKSUM_LEN) as u32;
        extended[4..8].copy_from_slice(&payload_len.to_le_bytes());
        let n = extended.len() - CHECKSUM_LEN;
        let c = fnv1a(&extended[..n]);
        extended[n..].copy_from_slice(&c.to_le_bytes());
        assert_eq!(decode(&extended), Err(DecodeError::TrailingBytes));
    }

    #[test]
    #[should_panic(expected = "coordinate rank")]
    fn encode_rejects_empty_coords() {
        encode(&Message::RttReply {
            nonce: 1,
            u: vec![],
            v: vec![],
        });
    }

    #[test]
    fn mismatched_uv_ranks_rejected() {
        // Hand-craft a RttReply with rank(u)=1, rank(v)=2.
        let mut payload = BytesMut::new();
        payload.put_u64_le(5);
        payload.put_u16_le(1);
        payload.put_f64_le(1.0);
        payload.put_u16_le(2);
        payload.put_f64_le(2.0);
        payload.put_f64_le(3.0);
        let mut out = BytesMut::new();
        out.put_u16_le(MAGIC);
        out.put_u8(VERSION);
        out.put_u8(2);
        out.put_u32_le(payload.len() as u32);
        out.extend_from_slice(&payload);
        let c = fnv1a(&out);
        out.put_u32_le(c);
        assert_eq!(decode(&out), Err(DecodeError::BadRank));
    }
}
