//! Protocol messages (the datagrams of Algorithms 1 and 2).

/// A DMFSGD protocol message.
///
/// `nonce` pairs replies with probes (UDP may reorder, duplicate or
/// drop datagrams); coordinates travel as plain f64 vectors.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Algorithm 1, step 1: RTT probe.
    RttProbe {
        /// Correlates the reply with this probe.
        nonce: u64,
    },
    /// Algorithm 1, step 2: the target returns its coordinates.
    RttReply {
        /// Echo of the probe nonce.
        nonce: u64,
        /// `u_j` of the replying node.
        u: Vec<f64>,
        /// `v_j` of the replying node.
        v: Vec<f64>,
    },
    /// Algorithm 2, step 1: ABW probe carrying the prober's `u_i` and
    /// the probe rate (the class threshold `τ`).
    AbwProbe {
        /// Correlates the reply with this probe.
        nonce: u64,
        /// Probe rate in Mbps.
        rate_mbps: f64,
        /// `u_i` of the probing node.
        u: Vec<f64>,
    },
    /// Algorithm 2, step 3: the target returns the measured class and
    /// its pre-update `v_j`.
    AbwReply {
        /// Echo of the probe nonce.
        nonce: u64,
        /// Measured class: `+1.0` or `−1.0`.
        x: f64,
        /// `v_j` snapshot of the replying node.
        v: Vec<f64>,
    },
}

impl Message {
    /// The wire type tag of this message.
    pub fn type_tag(&self) -> u8 {
        match self {
            Message::RttProbe { .. } => 1,
            Message::RttReply { .. } => 2,
            Message::AbwProbe { .. } => 3,
            Message::AbwReply { .. } => 4,
        }
    }

    /// The nonce carried by any message kind.
    pub fn nonce(&self) -> u64 {
        match self {
            Message::RttProbe { nonce }
            | Message::RttReply { nonce, .. }
            | Message::AbwProbe { nonce, .. }
            | Message::AbwReply { nonce, .. } => *nonce,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags_distinct() {
        let msgs = [
            Message::RttProbe { nonce: 1 },
            Message::RttReply {
                nonce: 1,
                u: vec![],
                v: vec![],
            },
            Message::AbwProbe {
                nonce: 1,
                rate_mbps: 1.0,
                u: vec![],
            },
            Message::AbwReply {
                nonce: 1,
                x: 1.0,
                v: vec![],
            },
        ];
        let mut tags: Vec<u8> = msgs.iter().map(|m| m.type_tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 4);
    }

    #[test]
    fn nonce_accessor() {
        assert_eq!(Message::RttProbe { nonce: 99 }.nonce(), 99);
        assert_eq!(
            Message::AbwReply {
                nonce: 7,
                x: -1.0,
                v: vec![1.0]
            }
            .nonce(),
            7
        );
    }
}
