//! Per-peer encoder/decoder contexts for the v2 delta stream.
//!
//! Each *ordered* pair of peers owns one [`EncoderContext`] (sender
//! side) and one [`DecoderContext`] (receiver side). The encoder
//! deltas against the receiver's **last-acknowledged** state — never
//! against unacked in-flight updates — so losing any number of
//! datagrams in between leaves later deltas decodable. When loss does
//! outrun the decoder's short reconstruction ring (or corruption eats
//! the baseline), [`DecoderContext::apply`] reports the gap, flags
//! `want_keyframe` on its next [`Ack`], and the encoder answers with a
//! full-state keyframe; periodic keyframes bound the recovery time
//! even when the acks themselves are lost. Loss degrades to extra
//! bytes, never to wrong coordinates.
//!
//! Sequence numbers are per-stream wrapping `u16`s; a non-contiguous
//! arrival is counted as a detected gap (the alec-codec discipline:
//! verify, then update the context only from what actually decoded).

use crate::delta::{apply_delta, quantize_delta, quantize_keyframe, CoordUpdate, UpdatePayload};
use std::collections::VecDeque;

/// Default number of deltas between unconditional keyframes.
pub const DEFAULT_KEYFRAME_INTERVAL: u16 = 16;

/// How many recently-sent reconstructions the encoder keeps to resolve
/// acks against.
const SENT_RING: usize = 32;

/// How many recently-decoded reconstructions the decoder keeps as
/// candidate delta baselines.
const DECODED_RING: usize = 8;

/// `true` if wrapping sequence number `a` is newer than `b`.
fn seq_newer(a: u16, b: u16) -> bool {
    a.wrapping_sub(b) as i16 > 0
}

/// A cumulative acknowledgement riding on reverse-direction traffic:
/// "my newest decoded update is `seq`" plus an explicit keyframe
/// request when the decoder has lost its baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ack {
    /// Newest sequence number the receiver has decoded.
    pub seq: u16,
    /// Receiver cannot decode deltas and needs a keyframe.
    pub want_keyframe: bool,
}

/// Why a [`DecoderContext`] rejected an otherwise well-formed update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContextError {
    /// Delta references a baseline this decoder no longer (or never)
    /// holds; a keyframe has been requested via [`DecoderContext::ack`].
    StaleBaseline {
        /// The baseline the delta was computed against.
        base_seq: u16,
        /// The update that could not be applied.
        seq: u16,
    },
    /// Delta rank disagrees with the referenced baseline's rank.
    RankMismatch {
        /// Rank of the held baseline.
        expected: usize,
        /// Rank carried by the delta.
        got: usize,
    },
}

impl std::fmt::Display for ContextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContextError::StaleBaseline { base_seq, seq } => {
                write!(f, "update #{seq}: baseline #{base_seq} not held")
            }
            ContextError::RankMismatch { expected, got } => {
                write!(f, "delta rank {got} != baseline rank {expected}")
            }
        }
    }
}

impl std::error::Error for ContextError {}

/// Sender half of a v2 coordinate stream toward one peer.
#[derive(Clone, Debug)]
pub struct EncoderContext {
    next_seq: u16,
    keyframe_interval: u16,
    since_keyframe: u16,
    force_keyframe: bool,
    /// Receiver-confirmed `(seq, reconstruction)` — the only state
    /// deltas are computed against.
    acked: Option<(u16, Vec<f64>)>,
    /// Recently-sent reconstructions, so an incoming ack can be
    /// resolved to the exact bytes-derived state.
    sent: VecDeque<(u16, Vec<f64>)>,
    keyframes_sent: u64,
    deltas_sent: u64,
}

impl Default for EncoderContext {
    fn default() -> Self {
        Self::new()
    }
}

impl EncoderContext {
    /// Context with the [`DEFAULT_KEYFRAME_INTERVAL`].
    pub fn new() -> Self {
        Self::with_keyframe_interval(DEFAULT_KEYFRAME_INTERVAL)
    }

    /// Context sending an unconditional keyframe every `interval`
    /// updates (clamped to ≥ 1).
    pub fn with_keyframe_interval(interval: u16) -> Self {
        EncoderContext {
            next_seq: 0,
            keyframe_interval: interval.max(1),
            since_keyframe: 0,
            force_keyframe: false,
            acked: None,
            sent: VecDeque::new(),
            keyframes_sent: 0,
            deltas_sent: 0,
        }
    }

    /// Encodes the next update for `coords`, advancing the stream.
    ///
    /// Falls back to a keyframe when: no state has been acked yet, the
    /// peer requested one, the periodic interval elapsed, or the rank
    /// changed.
    pub fn encode(&mut self, coords: &[f64]) -> CoordUpdate {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);

        let need_keyframe = self.force_keyframe
            || self.since_keyframe >= self.keyframe_interval
            || match &self.acked {
                None => true,
                Some((_, base)) => base.len() != coords.len(),
            };

        if need_keyframe {
            let quantized = quantize_keyframe(coords);
            self.remember(seq, quantized.clone());
            self.force_keyframe = false;
            self.since_keyframe = 0;
            self.keyframes_sent += 1;
            CoordUpdate {
                seq,
                payload: UpdatePayload::Keyframe { coords: quantized },
            }
        } else {
            let (base_seq, base) = self.acked.as_ref().expect("checked above");
            let (scale, quants) = quantize_delta(base, coords);
            let reconstruction = apply_delta(base, scale, &quants);
            let base_seq = *base_seq;
            self.remember(seq, reconstruction);
            self.since_keyframe += 1;
            self.deltas_sent += 1;
            CoordUpdate {
                seq,
                payload: UpdatePayload::Delta {
                    base_seq,
                    scale,
                    quants,
                },
            }
        }
    }

    /// Feeds back an [`Ack`] from the peer. Advances the delta
    /// baseline when the acked update is still in the sent ring, and
    /// schedules a keyframe when the peer asked for one.
    pub fn on_ack(&mut self, ack: Ack) {
        if ack.want_keyframe {
            self.force_keyframe = true;
        }
        let newer = self
            .acked
            .as_ref()
            .is_none_or(|(current, _)| seq_newer(ack.seq, *current));
        if newer {
            if let Some(state) = self.sent.iter().find(|(s, _)| *s == ack.seq) {
                self.acked = Some(state.clone());
            }
        }
    }

    /// Forces the next [`encode`](Self::encode) to emit a keyframe.
    pub fn force_keyframe(&mut self) {
        self.force_keyframe = true;
    }

    /// Keyframes emitted so far.
    pub fn keyframes_sent(&self) -> u64 {
        self.keyframes_sent
    }

    /// Deltas emitted so far.
    pub fn deltas_sent(&self) -> u64 {
        self.deltas_sent
    }

    fn remember(&mut self, seq: u16, reconstruction: Vec<f64>) {
        self.sent.push_back((seq, reconstruction));
        while self.sent.len() > SENT_RING {
            self.sent.pop_front();
        }
    }
}

/// Receiver half of a v2 coordinate stream from one peer.
#[derive(Clone, Debug, Default)]
pub struct DecoderContext {
    /// Recently-decoded `(seq, reconstruction)` baselines.
    states: VecDeque<(u16, Vec<f64>)>,
    /// Newest decoded sequence number.
    newest: Option<u16>,
    want_keyframe: bool,
    gaps_detected: u64,
    keyframes_accepted: u64,
    deltas_applied: u64,
}

impl DecoderContext {
    /// Fresh context holding no baseline (first decodable update must
    /// be a keyframe — which is exactly what a fresh encoder sends).
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one update, returning the reconstructed coordinates.
    ///
    /// Keyframes always succeed. Deltas succeed iff the referenced
    /// baseline is still held; otherwise the context records the gap,
    /// raises `want_keyframe`, and the caller drops the update —
    /// stale data is never half-applied.
    pub fn apply(&mut self, update: &CoordUpdate) -> Result<Vec<f64>, ContextError> {
        if let Some(newest) = self.newest {
            let jump = update.seq.wrapping_sub(newest);
            if (jump as i16) > 1 {
                self.gaps_detected += u64::from(jump - 1);
            }
        }

        let coords = match &update.payload {
            UpdatePayload::Keyframe { coords } => {
                self.want_keyframe = false;
                self.keyframes_accepted += 1;
                coords.clone()
            }
            UpdatePayload::Delta {
                base_seq,
                scale,
                quants,
            } => {
                let base = match self.states.iter().find(|(s, _)| s == base_seq) {
                    Some((_, base)) => base,
                    None => {
                        self.want_keyframe = true;
                        return Err(ContextError::StaleBaseline {
                            base_seq: *base_seq,
                            seq: update.seq,
                        });
                    }
                };
                if base.len() != quants.len() {
                    self.want_keyframe = true;
                    return Err(ContextError::RankMismatch {
                        expected: base.len(),
                        got: quants.len(),
                    });
                }
                self.deltas_applied += 1;
                apply_delta(base, *scale, quants)
            }
        };

        self.states.push_back((update.seq, coords.clone()));
        while self.states.len() > DECODED_RING {
            self.states.pop_front();
        }
        if self.newest.is_none_or(|n| seq_newer(update.seq, n)) {
            self.newest = Some(update.seq);
        }
        Ok(coords)
    }

    /// The acknowledgement to piggyback on the next reverse-direction
    /// message, or `None` before anything has been decoded.
    pub fn ack(&self) -> Option<Ack> {
        self.newest.map(|seq| Ack {
            seq,
            want_keyframe: self.want_keyframe,
        })
    }

    /// Whether this decoder is waiting for a keyframe.
    pub fn wants_keyframe(&self) -> bool {
        self.want_keyframe
    }

    /// Sequence-number gaps observed (lost or reordered updates).
    pub fn gaps_detected(&self) -> u64 {
        self.gaps_detected
    }

    /// Keyframes successfully applied.
    pub fn keyframes_accepted(&self) -> u64 {
        self.keyframes_accepted
    }

    /// Deltas successfully applied.
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drift(coords: &[f64], step: f64) -> Vec<f64> {
        coords.iter().map(|c| c + step).collect()
    }

    /// Lossless conversation: after the first keyframe, everything is
    /// a delta and both sides agree bit-for-bit.
    #[test]
    fn lossless_stream_stays_in_sync() {
        let mut enc = EncoderContext::with_keyframe_interval(u16::MAX);
        let mut dec = DecoderContext::new();
        let mut coords: Vec<f64> = (0..8).map(|i| i as f64 * 0.25 - 1.0).collect();

        let mut keyframes = 0;
        for round in 0..40 {
            let update = enc.encode(&coords);
            if update.is_keyframe() {
                keyframes += 1;
            }
            let recon = dec.apply(&update).expect("lossless stream decodes");
            // Feed the ack straight back, as the reverse channel would.
            enc.on_ack(dec.ack().expect("decoded at least one update"));
            for (r, c) in recon.iter().zip(&coords) {
                assert!((r - c).abs() < 0.02, "round {round}: {r} vs {c}");
            }
            coords = drift(&coords, 0.003);
        }
        assert_eq!(keyframes, 1, "only the priming update is a keyframe");
        assert_eq!(dec.gaps_detected(), 0);
    }

    /// The pinned gap→keyframe recovery sequence: drop a delta, watch
    /// the decoder detect the gap, then (after baseline loss) request
    /// and accept a keyframe. Fully deterministic.
    #[test]
    fn gap_recovery_regression() {
        let mut enc = EncoderContext::with_keyframe_interval(u16::MAX);
        let mut dec = DecoderContext::new();
        let mut coords = vec![0.5, -0.5, 0.25, -0.25];

        // seq 0: priming keyframe, delivered + acked.
        let update = enc.encode(&coords);
        assert!(update.is_keyframe());
        dec.apply(&update).expect("keyframe");
        enc.on_ack(dec.ack().unwrap());

        // seq 1: delta, LOST — the ack for seq 0 stands.
        coords = drift(&coords, 0.01);
        let lost = enc.encode(&coords);
        assert!(!lost.is_keyframe());

        // seq 2: delta against the still-acked seq 0 — decodes fine,
        // and the decoder has counted exactly one missing update.
        coords = drift(&coords, 0.01);
        let update = enc.encode(&coords);
        assert!(!update.is_keyframe());
        dec.apply(&update).expect("delta against acked base");
        assert_eq!(dec.gaps_detected(), 1);
        assert!(!dec.wants_keyframe());

        // Now simulate total baseline loss (e.g. the peer restarted).
        let mut fresh = DecoderContext::new();
        coords = drift(&coords, 0.01);
        let update = enc.encode(&coords);
        let err = fresh.apply(&update).expect_err("no baseline held");
        assert!(matches!(err, ContextError::StaleBaseline { .. }));
        assert!(fresh.wants_keyframe());

        // The want_keyframe flag travels on the next reverse message;
        // a fresh decoder has no seq yet, so the agent sends seq=0 +
        // want_keyframe via its own path — here we force it directly.
        enc.force_keyframe();
        coords = drift(&coords, 0.01);
        let update = enc.encode(&coords);
        assert!(update.is_keyframe(), "gap must trigger a keyframe");
        let recon = fresh.apply(&update).expect("keyframe always decodes");
        assert!(!fresh.wants_keyframe(), "keyframe clears the request");
        for (r, c) in recon.iter().zip(&coords) {
            assert!((r - c).abs() < 0.02);
        }
    }

    #[test]
    fn want_keyframe_ack_forces_keyframe() {
        let mut enc = EncoderContext::with_keyframe_interval(u16::MAX);
        let coords = vec![1.0, 2.0];
        let first = enc.encode(&coords);
        enc.on_ack(Ack {
            seq: first.seq,
            want_keyframe: false,
        });
        assert!(!enc.encode(&coords).is_keyframe(), "acked → delta");
        enc.on_ack(Ack {
            seq: first.seq,
            want_keyframe: true,
        });
        assert!(enc.encode(&coords).is_keyframe(), "requested → keyframe");
    }

    #[test]
    fn periodic_keyframes_bound_recovery() {
        let mut enc = EncoderContext::with_keyframe_interval(4);
        let coords = vec![0.1, 0.2, 0.3];
        let primed = enc.encode(&coords).seq;
        enc.on_ack(Ack {
            seq: primed,
            want_keyframe: false,
        });
        let mut kinds = Vec::new();
        for _ in 0..8 {
            kinds.push(enc.encode(&coords).is_keyframe());
        }
        // 4 deltas, then the interval forces a keyframe, repeat.
        assert_eq!(
            kinds,
            vec![false, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn rank_change_falls_back_to_keyframe() {
        let mut enc = EncoderContext::new();
        let first = enc.encode(&[1.0, 2.0]);
        enc.on_ack(Ack {
            seq: first.seq,
            want_keyframe: false,
        });
        let update = enc.encode(&[1.0, 2.0, 3.0]);
        assert!(update.is_keyframe(), "rank change cannot be a delta");
    }

    #[test]
    fn duplicate_and_reordered_updates_are_harmless() {
        let mut enc = EncoderContext::with_keyframe_interval(u16::MAX);
        let mut dec = DecoderContext::new();
        let a = enc.encode(&[1.0, 1.0]);
        dec.apply(&a).unwrap();
        enc.on_ack(dec.ack().unwrap());
        let b = enc.encode(&[1.01, 1.01]);
        dec.apply(&b).unwrap();
        // Duplicate of b, then a re-delivery of old a: both decode
        // without advancing the ack or counting gaps.
        dec.apply(&b).unwrap();
        dec.apply(&a).unwrap();
        assert_eq!(dec.ack().unwrap().seq, b.seq);
        assert_eq!(dec.gaps_detected(), 0);
    }

    #[test]
    fn seq_wraparound_stays_ordered() {
        assert!(seq_newer(0, u16::MAX));
        assert!(seq_newer(5, u16::MAX - 5));
        assert!(!seq_newer(u16::MAX, 0));
        assert!(!seq_newer(7, 7));
    }

    #[test]
    fn stale_delta_is_never_half_applied() {
        let mut dec = DecoderContext::new();
        let update = CoordUpdate {
            seq: 9,
            payload: UpdatePayload::Delta {
                base_seq: 3,
                scale: 0.01,
                quants: vec![1, -1],
            },
        };
        assert!(dec.apply(&update).is_err());
        assert!(dec.ack().is_none(), "nothing decoded, nothing acked");
        assert!(dec.wants_keyframe());
    }
}
