//! Mutation fuzzing of the codec: encode a corpus of valid v1/v2
//! frames, then truncate, bit-flip and splice them, asserting every
//! mutant is rejected with a typed `DecodeError` — never a panic,
//! never a silent mis-decode behind a passing checksum.
//!
//! Single-bit flips are *guaranteed* detectable: FNV-1a's state
//! transition is a bijection in the running hash for each input byte
//! (xor, then multiply by an odd constant), so changing exactly one
//! body byte always changes the final hash, and changing a checksum
//! byte changes the expected value while the body hash stands.
//! Splices could in principle forge a frame with a colliding
//! checksum, but at 2⁻³² per attempt the strict assertion below is
//! sound for any realistic number of fuzz cases.
//!
//! The last property exercises the layer above the codec: an
//! encoder/decoder context pair driven through a random loss + ack
//! schedule must stay convergent (reconstructions track the true
//! coordinates) and must recover via keyframe after any gap — the
//! "loss degrades to extra bytes, never wrong coordinates" contract.

use dmf_proto::delta::quantize_keyframe;
use dmf_proto::{
    decode_any, encode, encode_v2, Ack, CoordUpdate, DecoderContext, EncoderContext, Message,
    MessageV2, UpdatePayload,
};
use proptest::prelude::*;

/// A corpus of valid frames spanning both versions, every message
/// kind, and both update payload kinds.
fn corpus() -> Vec<Vec<u8>> {
    let keyframe = |seq: u16, coords: &[f64]| CoordUpdate {
        seq,
        payload: UpdatePayload::Keyframe {
            coords: quantize_keyframe(coords),
        },
    };
    let delta = |seq: u16, base_seq: u16, quants: Vec<i8>| CoordUpdate {
        seq,
        payload: UpdatePayload::Delta {
            base_seq,
            scale: 0.0078125, // exactly representable in binary16
            quants,
        },
    };
    let ack = Some(Ack {
        seq: 7,
        want_keyframe: true,
    });
    vec![
        encode(&Message::RttProbe { nonce: 42 }).to_vec(),
        encode(&Message::RttReply {
            nonce: 43,
            u: vec![0.1, -0.2, 3.5],
            v: vec![1.0, 2.0, -0.5],
        })
        .to_vec(),
        encode(&Message::AbwProbe {
            nonce: 44,
            rate_mbps: 43.1,
            u: vec![0.9; 10],
        })
        .to_vec(),
        encode(&Message::AbwReply {
            nonce: 45,
            x: -1.0,
            v: vec![-2.0, 0.0],
        })
        .to_vec(),
        encode_v2(&MessageV2::RttProbe { nonce: 1, ack }).to_vec(),
        encode_v2(&MessageV2::RttProbe {
            nonce: 2,
            ack: None,
        })
        .to_vec(),
        encode_v2(&MessageV2::RttReply {
            nonce: 3,
            update: keyframe(0, &[0.25, -0.75, 1.5, 2.0]),
        })
        .to_vec(),
        encode_v2(&MessageV2::RttReply {
            nonce: 4,
            update: delta(9, 8, vec![1, -1, 127, -127, 0, 3]),
        })
        .to_vec(),
        encode_v2(&MessageV2::AbwProbe {
            nonce: 5,
            rate_mbps: 43.0,
            ack,
            update: keyframe(2, &[0.9; 10]),
        })
        .to_vec(),
        encode_v2(&MessageV2::AbwReply {
            nonce: 6,
            x: 1.0,
            ack: None,
            update: delta(3, 2, vec![-2, 0]),
        })
        .to_vec(),
    ]
}

fn pick(frames: &[Vec<u8>], seed: usize) -> Vec<u8> {
    frames[seed % frames.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every proper prefix of every frame is rejected.
    #[test]
    fn truncation_always_rejected(frame_seed in any::<usize>(), cut in 1usize..64) {
        let frame = pick(&corpus(), frame_seed);
        let keep = frame.len().saturating_sub(cut);
        prop_assert!(decode_any(&frame[..keep]).is_err());
    }

    /// Every single-bit flip is rejected (see module docs for why
    /// this is strict, not probabilistic).
    #[test]
    fn single_bit_flip_always_rejected(frame_seed in any::<usize>(), bit_seed in any::<usize>()) {
        let mut frame = pick(&corpus(), frame_seed);
        let bit = bit_seed % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decode_any(&frame).is_err(), "flipped bit {bit} must be detected");
    }

    /// Splicing random bytes over a random region (possibly changing
    /// the length) is rejected whenever it changes the frame at all.
    #[test]
    fn splice_always_rejected(
        frame_seed in any::<usize>(),
        at_seed in any::<usize>(),
        cut in 0usize..16,
        replacement in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let frame = pick(&corpus(), frame_seed);
        let at = at_seed % frame.len();
        let end = (at + cut).min(frame.len());
        let mut spliced = frame.clone();
        spliced.splice(at..end, replacement);
        prop_assume!(spliced != frame);
        prop_assert!(decode_any(&spliced).is_err());
    }

    /// Concatenating two frames (a classic framing confusion) is
    /// rejected: the length field no longer matches.
    #[test]
    fn concatenation_rejected(a_seed in any::<usize>(), b_seed in any::<usize>()) {
        let frames = corpus();
        let mut glued = pick(&frames, a_seed);
        glued.extend_from_slice(&pick(&frames, b_seed));
        prop_assert!(decode_any(&glued).is_err());
    }

    /// Context-layer convergence under random loss: whatever updates
    /// survive, every successful reconstruction tracks the true
    /// coordinates, and a forced keyframe always resyncs.
    #[test]
    fn contexts_converge_under_random_loss(
        seed in any::<u64>(),
        drop_pattern in proptest::collection::vec(any::<bool>(), 8..48),
        ack_pattern in proptest::collection::vec(any::<bool>(), 8..48),
    ) {
        let mut enc = EncoderContext::with_keyframe_interval(8);
        let mut dec = DecoderContext::new();
        let mut coords: Vec<f64> =
            (0..6).map(|i| ((seed >> (i * 8)) & 0xFF) as f64 / 256.0 - 0.5).collect();

        for (round, lost) in drop_pattern.iter().enumerate() {
            coords = coords.iter().map(|c| c + 0.004).collect();
            let update = enc.encode(&coords);
            if *lost {
                continue;
            }
            match dec.apply(&update) {
                Ok(recon) => {
                    for (r, c) in recon.iter().zip(&coords) {
                        prop_assert!(
                            (r - c).abs() < 0.05,
                            "round {round}: reconstruction {r} diverged from {c}"
                        );
                    }
                }
                Err(_) => prop_assert!(dec.wants_keyframe()),
            }
            if ack_pattern[round % ack_pattern.len()] {
                if let Some(ack) = dec.ack() {
                    enc.on_ack(ack);
                }
            }
        }

        // Recovery is always one keyframe away.
        enc.force_keyframe();
        let update = enc.encode(&coords);
        let recon = dec.apply(&update).expect("keyframes always decode");
        for (r, c) in recon.iter().zip(&coords) {
            prop_assert!((r - c).abs() < 0.01);
        }
    }
}
