//! Property-based fuzzing of the wire codec (both versions).
//!
//! Adversarial byte-level mutations (truncate / bit-flip / splice)
//! live in `tests/mutation_fuzz.rs`; this file covers roundtrips and
//! structural invariants.

use dmf_proto::delta::quantize_keyframe;
use dmf_proto::{
    decode, decode_any, decode_v2, encode, encode_v2, Ack, CoordUpdate, Message, MessageV2,
    UpdatePayload, WireMessage,
};
use proptest::prelude::*;

fn coords(max_rank: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..=max_rank)
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        any::<u64>().prop_map(|nonce| Message::RttProbe { nonce }),
        (any::<u64>(), coords(32)).prop_map(|(nonce, u)| {
            let v = u.iter().map(|x| x * 0.5 - 1.0).collect();
            Message::RttReply { nonce, u, v }
        }),
        (any::<u64>(), 0.001f64..1e4, coords(32)).prop_map(|(nonce, rate_mbps, u)| {
            Message::AbwProbe {
                nonce,
                rate_mbps,
                u,
            }
        }),
        (any::<u64>(), any::<bool>(), coords(32)).prop_map(|(nonce, good, v)| {
            Message::AbwReply {
                nonce,
                x: if good { 1.0 } else { -1.0 },
                v,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(msg in arb_message()) {
        let wire = encode(&msg);
        prop_assert_eq!(decode(&wire), Ok(msg));
    }

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any result is acceptable; panicking or hanging is not.
        let _ = decode(&bytes);
    }

    #[test]
    fn random_bytes_essentially_never_decode(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        // With a 32-bit checksum and magic, random noise must not parse.
        prop_assert!(decode(&bytes).is_err());
    }

    #[test]
    fn corruption_detected(msg in arb_message(), pos_seed in any::<usize>(), flip in 1u8..=255) {
        let wire = encode(&msg).to_vec();
        let pos = pos_seed % wire.len();
        let mut corrupted = wire.clone();
        corrupted[pos] ^= flip;
        // Either detected as an error — or, astronomically unlikely,
        // decodes to something different; it must never decode to a
        // *wrong equal* message silently.
        match decode(&corrupted) {
            Err(_) => {}
            Ok(m) => prop_assert_ne!(m, decode(&wire).unwrap()),
        }
    }

    #[test]
    fn truncation_detected(msg in arb_message(), cut in 1usize..64) {
        let wire = encode(&msg);
        let keep = wire.len().saturating_sub(cut);
        prop_assert!(decode(&wire[..keep]).is_err());
    }

    #[test]
    fn encoded_size_is_linear_in_rank(rank in 1usize..=64) {
        let msg = Message::AbwReply { nonce: 1, x: 1.0, v: vec![0.5; rank] };
        let wire = encode(&msg);
        // header(8) + nonce(8) + x(8) + rank(2) + 8·rank + checksum(4)
        prop_assert_eq!(wire.len(), 8 + 8 + 8 + 2 + 8 * rank + 4);
    }

    #[test]
    fn roundtrip_v2(msg in arb_message_v2()) {
        let wire = encode_v2(&msg);
        prop_assert_eq!(decode_v2(&wire), Ok(msg.clone()));
        prop_assert_eq!(decode_any(&wire), Ok(WireMessage::V2(msg)));
    }

    #[test]
    fn decode_any_random_bytes_never_panic_or_parse(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        prop_assert!(decode_any(&bytes).is_err());
    }

    #[test]
    fn v2_delta_size_is_linear_in_rank(rank in 1usize..=64) {
        let msg = MessageV2::RttReply {
            nonce: 1,
            update: CoordUpdate {
                seq: 5,
                payload: UpdatePayload::Delta {
                    base_seq: 4,
                    scale: 0.0,
                    quants: vec![0; 2 * rank],
                },
            },
        };
        let wire = encode_v2(&msg);
        // header(6) + nonce(4) + flags(1) + seq(2) + base_seq(2) +
        // scale(2) + count(2) + 2·rank·i8 + checksum(4)
        prop_assert_eq!(wire.len(), 6 + 4 + 1 + 2 + 2 + 2 + 2 + 2 * rank + 4);
        // A v1 reply of the same rank carries 8 bytes per coordinate.
        let v1 = encode(&Message::RttReply { nonce: 1, u: vec![0.5; rank], v: vec![0.5; rank] });
        prop_assert!(v1.len() > 2 * rank * 7);
    }
}

fn arb_ack() -> impl Strategy<Value = Option<Ack>> {
    (any::<bool>(), any::<u16>(), any::<bool>())
        .prop_map(|(present, seq, want_keyframe)| present.then_some(Ack { seq, want_keyframe }))
}

fn arb_update(half_rank: bool) -> impl Strategy<Value = CoordUpdate> {
    let rank = if half_rank { 1usize..=16 } else { 1usize..=32 };
    let mul = if half_rank { 2 } else { 1 };
    prop_oneof![
        (any::<u16>(), rank.clone(), -10.0f64..10.0).prop_map(move |(seq, r, base)| {
            let coords: Vec<f64> = (0..r * mul).map(|i| base + i as f64 * 0.01).collect();
            CoordUpdate {
                seq,
                payload: UpdatePayload::Keyframe {
                    coords: quantize_keyframe(&coords),
                },
            }
        }),
        (any::<u16>(), any::<u16>(), 0u16..0x7C00, rank).prop_map(
            move |(seq, base_seq, scale_bits, r)| {
                CoordUpdate {
                    seq,
                    payload: UpdatePayload::Delta {
                        base_seq,
                        scale: dmf_proto::delta::f16_to_f64(scale_bits),
                        quants: (0..r * mul).map(|i| (i as i8).wrapping_mul(37)).collect(),
                    },
                }
            }
        ),
    ]
}

fn arb_message_v2() -> impl Strategy<Value = MessageV2> {
    prop_oneof![
        (any::<u32>(), arb_ack()).prop_map(|(nonce, ack)| MessageV2::RttProbe { nonce, ack }),
        (any::<u32>(), arb_update(true))
            .prop_map(|(nonce, update)| MessageV2::RttReply { nonce, update }),
        (any::<u32>(), 0.001f32..1e4, arb_ack(), arb_update(false)).prop_map(
            |(nonce, rate, ack, update)| MessageV2::AbwProbe {
                nonce,
                // Choosing the rate among f32 values keeps the f64 →
                // f32 → f64 wire trip exact, so roundtrip can assert
                // full equality.
                rate_mbps: f64::from(rate),
                ack,
                update,
            }
        ),
        (any::<u32>(), any::<bool>(), arb_ack(), arb_update(false)).prop_map(
            |(nonce, good, ack, update)| MessageV2::AbwReply {
                nonce,
                x: if good { 1.0 } else { -1.0 },
                ack,
                update,
            }
        ),
    ]
}
