//! Property-based fuzzing of the wire codec.

use dmf_proto::{decode, encode, Message};
use proptest::prelude::*;

fn coords(max_rank: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..=max_rank)
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        any::<u64>().prop_map(|nonce| Message::RttProbe { nonce }),
        (any::<u64>(), coords(32)).prop_map(|(nonce, u)| {
            let v = u.iter().map(|x| x * 0.5 - 1.0).collect();
            Message::RttReply { nonce, u, v }
        }),
        (any::<u64>(), 0.001f64..1e4, coords(32)).prop_map(|(nonce, rate_mbps, u)| {
            Message::AbwProbe {
                nonce,
                rate_mbps,
                u,
            }
        }),
        (any::<u64>(), any::<bool>(), coords(32)).prop_map(|(nonce, good, v)| {
            Message::AbwReply {
                nonce,
                x: if good { 1.0 } else { -1.0 },
                v,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(msg in arb_message()) {
        let wire = encode(&msg);
        prop_assert_eq!(decode(&wire), Ok(msg));
    }

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any result is acceptable; panicking or hanging is not.
        let _ = decode(&bytes);
    }

    #[test]
    fn random_bytes_essentially_never_decode(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        // With a 32-bit checksum and magic, random noise must not parse.
        prop_assert!(decode(&bytes).is_err());
    }

    #[test]
    fn corruption_detected(msg in arb_message(), pos_seed in any::<usize>(), flip in 1u8..=255) {
        let wire = encode(&msg).to_vec();
        let pos = pos_seed % wire.len();
        let mut corrupted = wire.clone();
        corrupted[pos] ^= flip;
        // Either detected as an error — or, astronomically unlikely,
        // decodes to something different; it must never decode to a
        // *wrong equal* message silently.
        match decode(&corrupted) {
            Err(_) => {}
            Ok(m) => prop_assert_ne!(m, decode(&wire).unwrap()),
        }
    }

    #[test]
    fn truncation_detected(msg in arb_message(), cut in 1usize..64) {
        let wire = encode(&msg);
        let keep = wire.len().saturating_sub(cut);
        prop_assert!(decode(&wire[..keep]).is_err());
    }

    #[test]
    fn encoded_size_is_linear_in_rank(rank in 1usize..=64) {
        let msg = Message::AbwReply { nonce: 1, x: 1.0, v: vec![0.5; rank] };
        let wire = encode(&msg);
        // header(8) + nonce(8) + x(8) + rank(2) + 8·rank + checksum(4)
        prop_assert_eq!(wire.len(), 8 + 8 + 8 + 2 + 8 * rank + 4);
    }
}
