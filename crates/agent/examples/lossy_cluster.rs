//! Live UDP cluster under a configurable fault model.
//!
//! Runs a localhost DMFSGD deployment with every agent's outgoing
//! datagrams routed through the seeded `dmf_proto` fault injector,
//! then prints the recovery counters and the final ranking quality:
//!
//! ```text
//! cargo run --release -p dmf-agent --example lossy_cluster
//! cargo run --release -p dmf-agent --example lossy_cluster -- \
//!     --drop-chance 0.3 --corrupt-chance 0.1 --nodes 32 --millis 4000
//! cargo run --release -p dmf-agent --example lossy_cluster -- --v1
//! ```
//!
//! The chance switches take probabilities in `[0, 1]`; defaults are
//! the CI lossy profile (`FaultSpec::lossy()`: 20% drop plus a spread
//! of corruption, duplication and reordering). `--v1` runs the legacy
//! full-coordinate protocol for comparison — same faults, more bytes,
//! no keyframe recovery.

use dmf_agent::{ClusterConfig, UdpCluster};
use dmf_eval::{collect_scores, roc::auc};
use dmf_proto::{FaultSpec, WireVersion};
use std::time::Duration;

fn flag(args: &[String], name: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} wants a number, got {v:?}"))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes = flag(&args, "--nodes").unwrap_or(24.0) as usize;
    let millis = flag(&args, "--millis").unwrap_or(3000.0) as u64;
    let seed = flag(&args, "--seed").unwrap_or(11.0) as u64;
    let base = FaultSpec::lossy();
    let spec = FaultSpec {
        drop: flag(&args, "--drop-chance").unwrap_or(base.drop),
        truncate: flag(&args, "--truncate-chance").unwrap_or(base.truncate),
        bit_flip: flag(&args, "--corrupt-chance").unwrap_or(base.bit_flip),
        duplicate: flag(&args, "--duplicate-chance").unwrap_or(base.duplicate),
        reorder: flag(&args, "--reorder-chance").unwrap_or(base.reorder),
    };
    let wire = if args.iter().any(|a| a == "--v1") {
        WireVersion::V1
    } else {
        WireVersion::V2
    };

    let dataset = dmf_datasets::rtt::meridian_like(nodes, seed);
    let tau = dataset.median();
    let classes = dataset.classify(tau);

    println!("lossy_cluster: {nodes} nodes, {millis} ms, wire {wire}, faults {spec:?}");
    let outcome = UdpCluster::run(
        dataset,
        tau,
        ClusterConfig {
            duration: Duration::from_millis(millis),
            probe_interval: Duration::from_millis(2),
            wire,
            faults: Some(spec),
            ..ClusterConfig::default()
        },
    )
    .expect("cluster run");

    let sum = |f: fn(&dmf_agent::AgentStats) -> u64| -> u64 { outcome.stats.iter().map(f).sum() };
    println!("  probes sent        {}", sum(|s| s.probes_sent as u64));
    println!("  updates applied    {}", sum(|s| s.updates_applied as u64));
    println!("  retries            {}", sum(|s| s.retries as u64));
    println!(
        "  probes abandoned   {}",
        sum(|s| s.probes_abandoned as u64)
    );
    println!("  evictions          {}", sum(|s| s.evictions as u64));
    println!("  decode errors      {}", sum(|s| s.decode_errors as u64));
    println!("  stale deltas       {}", sum(|s| s.stale_deltas as u64));
    println!("  gaps detected      {}", sum(|s| s.gaps_detected));
    println!("  keyframes sent     {}", sum(|s| s.keyframes_sent));
    println!("  bytes sent         {}", outcome.total_bytes_sent());

    let a = auc(&collect_scores(&classes, &outcome.predicted_scores()));
    println!("  final AUC          {a:.3}");
}
