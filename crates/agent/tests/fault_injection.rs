//! End-to-end fault injection over real UDP sockets.
//!
//! Every agent's outgoing datagrams pass through the seeded
//! `dmf_proto` fault injector — drops, duplicates, reorders,
//! truncations and bit flips — and the cluster must still learn the
//! class structure: on wire v2, loss degrades to sequence gaps and
//! keyframe resyncs, corruption to counted decode errors, and never
//! to wrong coordinates or a panic.

use dmf_agent::{run_agent, AgentHandle, ClusterConfig, MeasurementOracle, UdpCluster};
use dmf_core::{DmfsgdConfig, DmfsgdError, DmfsgdNode, MembershipError};
use dmf_datasets::rtt::meridian_like;
use dmf_eval::{collect_scores, roc::auc};
use dmf_proto::{FaultSpec, WireVersion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// The headline robustness test: a 24-node v2 cluster under the
/// standard lossy fault model still ranks pairs well, while the
/// recovery machinery (gaps → keyframes, corruption → decode errors)
/// is demonstrably exercised.
#[test]
fn lossy_cluster_still_learns() {
    let d = meridian_like(24, 11);
    let tau = d.median();
    let cm = d.classify(tau);
    let outcome = UdpCluster::run(
        d,
        tau,
        ClusterConfig {
            duration: Duration::from_millis(3000),
            probe_interval: Duration::from_millis(2),
            wire: WireVersion::V2,
            faults: Some(FaultSpec::lossy()),
            ..ClusterConfig::default()
        },
    )
    .expect("lossy cluster run");

    let gaps: u64 = outcome.stats.iter().map(|s| s.gaps_detected).sum();
    let keyframes: u64 = outcome.stats.iter().map(|s| s.keyframes_sent).sum();
    let decode_errors: usize = outcome.stats.iter().map(|s| s.decode_errors).sum();
    let retries: usize = outcome.stats.iter().map(|s| s.retries).sum();
    assert!(gaps > 0, "20% drop must surface as sequence gaps");
    assert!(keyframes > 0, "gaps and cadence must trigger keyframes");
    assert!(decode_errors > 0, "bit flips must surface as decode errors");
    assert!(retries > 0, "dropped replies must trigger retransmissions");

    let a = auc(&collect_scores(&cm, &outcome.predicted_scores()));
    assert!(a > 0.8, "lossy v2 cluster AUC {a}");
}

/// Mixed-version cluster: a v1 prober and a v2 prober answering each
/// other. Replies follow the probe's version, so both sides learn.
#[test]
fn v1_and_v2_agents_interoperate() {
    let d = meridian_like(2, 7);
    let tau = d.median();
    let oracle = Arc::new(MeasurementOracle::new(d, tau, 99));
    let config = DmfsgdConfig {
        k: 1,
        ..DmfsgdConfig::paper_defaults()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let stop = Arc::new(AtomicBool::new(false));

    let sockets: Vec<UdpSocket> = (0..2)
        .map(|_| {
            let s = UdpSocket::bind("127.0.0.1:0").expect("bind");
            s.set_read_timeout(Some(Duration::from_millis(2)))
                .expect("timeout");
            s
        })
        .collect();
    let addrs: Vec<_> = sockets.iter().map(|s| s.local_addr().unwrap()).collect();

    let mut handles = Vec::new();
    for (id, socket) in sockets.into_iter().enumerate() {
        let handle = AgentHandle {
            node: DmfsgdNode::new(id, config.rank, &mut rng),
            socket,
            peers: addrs.clone(),
            neighbors: vec![1 - id],
            oracle: Arc::clone(&oracle),
            config,
            stop: Arc::clone(&stop),
            probe_interval: Duration::from_millis(2),
            wire: if id == 0 {
                WireVersion::V1
            } else {
                WireVersion::V2
            },
            probe_timeout: Duration::from_millis(40),
            max_retries: 2,
            metrics: None,
        };
        handles.push(thread::spawn(move || run_agent(handle, 1000 + id as u64)));
    }

    thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);

    for handle in handles {
        let (_, stats) = handle
            .join()
            .expect("agent thread")
            .expect("agent loop result");
        assert!(stats.probes_sent > 0, "both versions must probe");
        assert!(
            stats.updates_applied > 0,
            "both versions must apply updates: {stats:?}"
        );
        assert_eq!(stats.decode_errors, 0, "clean link, no decode errors");
    }
}

/// Satellite of the robustness pass: an empty neighbor set is a typed
/// error, not a panic inside the agent thread.
#[test]
fn no_neighbors_is_a_typed_error() {
    let d = meridian_like(2, 8);
    let tau = d.median();
    let oracle = Arc::new(MeasurementOracle::new(d, tau, 3));
    let config = DmfsgdConfig::paper_defaults();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
    socket
        .set_read_timeout(Some(Duration::from_millis(2)))
        .expect("timeout");
    let addr = socket.local_addr().unwrap();

    let handle = AgentHandle {
        node: DmfsgdNode::new(7, config.rank, &mut rng),
        socket,
        peers: vec![addr],
        neighbors: Vec::new(),
        oracle,
        config,
        stop: Arc::new(AtomicBool::new(false)),
        probe_interval: Duration::from_millis(2),
        wire: WireVersion::V2,
        probe_timeout: Duration::from_millis(40),
        max_retries: 2,
        metrics: None,
    };
    match run_agent(handle, 0) {
        Err(DmfsgdError::Membership(MembershipError::NoNeighbors { id })) => assert_eq!(id, 7),
        other => panic!("expected NoNeighbors, got {other:?}"),
    }
}
