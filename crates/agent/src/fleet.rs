//! Long-running fleet operations: [`Fleet`].
//!
//! [`UdpCluster`](crate::cluster::UdpCluster) is a batch harness — it
//! spawns every agent, sleeps for a fixed budget, and joins them all.
//! An operator's deployment does none of those things on a schedule:
//! agents **join and leave while the rest keep running**, faults come
//! and go, and the fleet must be observable and checkpointable the
//! whole time. `Fleet` is that lifecycle, built from the same pieces
//! (one socket and one OS thread per agent, the shared
//! [`MeasurementOracle`], [`run_agent`]):
//!
//! * [`join`](Fleet::join) / [`leave`](Fleet::leave) — start or stop
//!   one agent slot while the others run; a slot keeps its port and
//!   its trained coordinates across cycles, so a rejoined agent warm
//!   starts and the address book never changes. Misuse is typed:
//!   [`MembershipError::AlreadyRunning`] / [`MembershipError::NotRunning`].
//! * [`metrics`](Fleet::metrics) / [`health`](Fleet::health) — the
//!   live observability surface: per-slot
//!   [`AgentMetricsSlot`] mirrors
//!   summed into fleet-wide counters, a shared rolling-AUC quality
//!   window fed on every applied update, and the declared
//!   [`HealthPolicy`] evaluated over (window fill, rolling AUC,
//!   coordinate staleness).
//! * [`set_faults`](Fleet::set_faults) + [`restart_all`](Fleet::restart_all)
//!   — swap the send-path fault model under a running fleet (a "loss
//!   storm" drill): faults apply to agents (re)joined afterwards, and
//!   a rolling restart re-launches every running agent under the new
//!   model without dropping its coordinates.
//! * [`checkpoint`](Fleet::checkpoint) — a stop-the-world snapshot:
//!   running agents are paused, their coordinates folded into a
//!   [`Session`] and serialized as a portable
//!   [`Snapshot`], then everyone resumes. The
//!   snapshot restores anywhere a session does — including a live
//!   `PredictionService` (`restore_from_snapshot`).
//!
//! `docs/operations.md` is the operator runbook for all of this.

use crate::agent::{run_agent, AgentHandle, AgentStats};
use crate::cluster::{ClusterConfig, ClusterOutcome};
use crate::metrics::{stats_snapshot, AgentMetricsSlot, STAT_METRICS};
use crate::oracle::MeasurementOracle;
use crate::transport::FaultySocket;
use dmf_core::{ConfigError, DmfsgdError, DmfsgdNode, MembershipError, Session, Snapshot};
use dmf_datasets::Dataset;
use dmf_ops::{
    Health, HealthPolicy, HealthSignals, LiveQuality, MetricKind, MetricSample, MetricsSnapshot,
    SampleValue, Unit,
};
use dmf_proto::FaultSpec;
use dmf_simnet::NeighborSets;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Capacity of the fleet's shared quality window (recent update pairs
/// the fleet-wide rolling AUC is computed over).
pub const FLEET_QUALITY_WINDOW: usize = 512;

/// Fleet-level gauge names, in exported order — the fleet's half of
/// the metric contract (agent counters come from
/// [`STAT_METRICS`]). Cross-checked
/// against `docs/operations.md` by the ops-conformance tests.
pub const FLEET_GAUGE_NAMES: [&str; 6] = [
    "dmf_fleet_agents",
    "dmf_fleet_agents_running",
    "dmf_fleet_health_state",
    "dmf_fleet_quality_samples",
    "dmf_fleet_rolling_auc",
    "dmf_fleet_update_staleness_seconds",
];

/// One running agent: its private stop flag and its thread.
struct Running {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<Result<(DmfsgdNode, AgentStats), DmfsgdError>>,
}

/// One fleet slot: a fixed port, the parked node state between runs,
/// accumulated counters, and the live metrics mirror.
struct Slot {
    /// Keeper clone of the bound socket — cloned again on every
    /// rejoin so the slot's address never changes.
    socket: UdpSocket,
    /// The node's coordinates while no agent runs the slot (`None`
    /// while one does — the thread owns them).
    node: Option<DmfsgdNode>,
    /// Counters accumulated by completed runs of this slot.
    total: AgentStats,
    metrics: Arc<AgentMetricsSlot>,
    running: Option<Running>,
}

/// A long-running localhost fleet with live membership, metrics,
/// health and checkpointing (see the [module docs](self)).
pub struct Fleet {
    oracle: Arc<MeasurementOracle>,
    config: ClusterConfig,
    tau: f64,
    neighbor_sets: NeighborSets,
    addrs: Vec<SocketAddr>,
    slots: Vec<Slot>,
    quality: Arc<LiveQuality>,
    policy: HealthPolicy,
}

impl Fleet {
    /// Launches a fleet over `dataset`: binds one socket per node,
    /// seeds fresh random coordinates and neighbor sets (the same
    /// derivations as [`UdpCluster::run`](crate::cluster::UdpCluster::run),
    /// so outcomes are comparable), and joins every agent.
    ///
    /// `config.duration` is ignored — a fleet runs until
    /// [`shutdown`](Self::shutdown). `config.faults` applies to the
    /// agents joined now and on every later (re)join until changed
    /// with [`set_faults`](Self::set_faults).
    pub fn launch(dataset: Dataset, tau: f64, config: ClusterConfig) -> Result<Self, DmfsgdError> {
        config.dmfsgd.try_validate()?;
        ConfigError::check_tau(tau)?;
        let n = dataset.len();
        if n <= config.dmfsgd.k {
            return Err(ConfigError::TooFewNodes {
                n,
                k: config.dmfsgd.k,
            }
            .into());
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.dmfsgd.seed ^ 0x7ea2_0001);
        let nodes: Vec<DmfsgdNode> = (0..n)
            .map(|i| DmfsgdNode::new(i, config.dmfsgd.rank, &mut rng))
            .collect();
        let neighbor_sets = NeighborSets::random(n, config.dmfsgd.k, &mut rng);
        let oracle = Arc::new(MeasurementOracle::new(
            dataset,
            tau,
            config.dmfsgd.seed ^ 0x0c0a_17e5,
        ));

        let io_err = |e: std::io::Error| DmfsgdError::Transport(e.to_string());
        let quality = Arc::new(LiveQuality::new(FLEET_QUALITY_WINDOW));
        let mut slots = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for node in nodes {
            let socket = UdpSocket::bind("127.0.0.1:0").map_err(io_err)?;
            socket
                .set_read_timeout(Some(Duration::from_millis(2)))
                .map_err(io_err)?;
            addrs.push(socket.local_addr().map_err(io_err)?);
            slots.push(Slot {
                socket,
                node: Some(node),
                total: AgentStats::default(),
                metrics: Arc::new(AgentMetricsSlot::new(Arc::clone(&quality))),
                running: None,
            });
        }

        let mut fleet = Self {
            oracle,
            config,
            tau,
            neighbor_sets,
            addrs,
            slots,
            quality,
            policy: HealthPolicy::default(),
        };
        for id in 0..n {
            fleet.join(id)?;
        }
        Ok(fleet)
    }

    /// Number of slots (running or parked).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the fleet has no slots (it never does — a launched
    /// fleet always covers the dataset's population).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether slot `id` currently runs an agent.
    pub fn is_running(&self, id: usize) -> bool {
        self.slots.get(id).is_some_and(|s| s.running.is_some())
    }

    /// Number of slots currently running an agent.
    pub fn running_count(&self) -> usize {
        self.slots.iter().filter(|s| s.running.is_some()).count()
    }

    /// Starts an agent on slot `id`, warm-starting from the slot's
    /// parked coordinates on its original port.
    ///
    /// # Errors
    /// [`MembershipError::UnknownNode`] for an out-of-range id,
    /// [`MembershipError::AlreadyRunning`] if the slot already runs an
    /// agent, [`DmfsgdError::Transport`] if the slot's socket cannot
    /// be cloned.
    pub fn join(&mut self, id: usize) -> Result<(), DmfsgdError> {
        let slots = self.slots.len();
        let slot = self
            .slots
            .get_mut(id)
            .ok_or(MembershipError::UnknownNode { id, slots })?;
        if slot.running.is_some() {
            return Err(MembershipError::AlreadyRunning { id }.into());
        }
        let socket = slot
            .socket
            .try_clone()
            .map_err(|e| DmfsgdError::Transport(e.to_string()))?;
        let node = slot.node.take().expect("parked slot holds its node");
        let stop = Arc::new(AtomicBool::new(false));
        let seed = self.config.dmfsgd.seed ^ ((id as u64) << 8) ^ 0xa9e1;
        // The construction is duplicated across the two arms because
        // `AgentHandle<T>` is generic in its transport (see the same
        // pattern in `UdpCluster::run_with_oracle`).
        macro_rules! spawn_agent {
            ($socket:expr) => {{
                let handle = AgentHandle {
                    node,
                    socket: $socket,
                    peers: self.addrs.clone(),
                    neighbors: self.neighbor_sets.neighbors(id).to_vec(),
                    oracle: Arc::clone(&self.oracle),
                    config: self.config.dmfsgd,
                    stop: Arc::clone(&stop),
                    probe_interval: self.config.probe_interval,
                    wire: self.config.wire,
                    probe_timeout: self.config.probe_timeout,
                    max_retries: self.config.max_retries,
                    metrics: Some(Arc::clone(&slot.metrics)),
                };
                thread::spawn(move || run_agent(handle, seed))
            }};
        }
        let thread = match self.config.faults {
            Some(spec) if !spec.is_none() => {
                let faulty = FaultySocket::new(socket, spec, seed ^ 0xfa17_0000);
                spawn_agent!(faulty)
            }
            _ => spawn_agent!(socket),
        };
        slot.running = Some(Running { stop, thread });
        Ok(())
    }

    /// Stops the agent on slot `id`, parks its trained coordinates
    /// for the next join, folds its counters into the slot's totals,
    /// and returns this run's [`AgentStats`].
    ///
    /// # Errors
    /// [`MembershipError::UnknownNode`] / [`MembershipError::NotRunning`]
    /// for a bad id or an already-parked slot.
    pub fn leave(&mut self, id: usize) -> Result<AgentStats, DmfsgdError> {
        let slots = self.slots.len();
        let slot = self
            .slots
            .get_mut(id)
            .ok_or(MembershipError::UnknownNode { id, slots })?;
        let running = slot
            .running
            .take()
            .ok_or(MembershipError::NotRunning { id })?;
        running.stop.store(true, Ordering::Relaxed);
        let (node, stats) = running.thread.join().expect("agent thread panicked")?;
        slot.node = Some(node);
        slot.total.merge(&stats);
        slot.metrics.absorb(&stats);
        Ok(stats)
    }

    /// Replaces the send-path fault model for agents (re)joined from
    /// now on; running agents keep their current model until
    /// restarted (see [`restart_all`](Self::restart_all)).
    pub fn set_faults(&mut self, faults: Option<FaultSpec>) {
        self.config.faults = faults;
    }

    /// Rolling restart: every running agent leaves and immediately
    /// rejoins (warm start, same port), picking up the current fault
    /// model. Parked slots stay parked.
    pub fn restart_all(&mut self) -> Result<(), DmfsgdError> {
        for id in self.running_ids() {
            self.leave(id)?;
            self.join(id)?;
        }
        Ok(())
    }

    /// Stop-the-world checkpoint: pauses every running agent, folds
    /// the fleet's coordinates into a [`Session`] and serializes it,
    /// then resumes exactly the agents that were running. The
    /// returned [`Snapshot`] restores anywhere a session does — a
    /// cold-started session, or a live `PredictionService`.
    pub fn checkpoint(&mut self) -> Result<Snapshot, DmfsgdError> {
        let paused = self.running_ids();
        for &id in &paused {
            self.leave(id)?;
        }
        let nodes: Vec<DmfsgdNode> = self
            .slots
            .iter()
            .map(|s| s.node.clone().expect("parked slot holds its node"))
            .collect();
        let applied: usize = self.slots.iter().map(|s| s.total.updates_applied).sum();
        let mut session = Session::builder()
            .config(self.config.dmfsgd)
            .nodes(nodes.len())
            .tau(self.tau)
            .build()?;
        session.import_nodes(nodes, applied)?;
        let snapshot = session.snapshot();
        for &id in &paused {
            self.join(id)?;
        }
        Ok(snapshot)
    }

    /// Stops every running agent and returns the final
    /// [`ClusterOutcome`]: trained nodes per slot and each slot's
    /// counters accumulated over all of its runs.
    pub fn shutdown(mut self) -> Result<ClusterOutcome, DmfsgdError> {
        for id in self.running_ids() {
            self.leave(id)?;
        }
        let mut nodes = Vec::with_capacity(self.slots.len());
        let mut stats = Vec::with_capacity(self.slots.len());
        for slot in &mut self.slots {
            nodes.push(slot.node.take().expect("parked slot holds its node"));
            stats.push(slot.total);
        }
        Ok(ClusterOutcome { nodes, stats })
    }

    /// Replaces the health rules (takes effect on the next
    /// [`health`](Self::health) / [`metrics`](Self::metrics) call).
    pub fn set_health_policy(&mut self, policy: HealthPolicy) {
        self.policy = policy;
    }

    /// The fleet's shared quality window.
    pub fn quality(&self) -> &LiveQuality {
        &self.quality
    }

    /// The health signals as observed right now: the shared quality
    /// window, and staleness as seconds since the most recent update
    /// applied *anywhere* in the fleet (`None` before the first).
    /// Rejection rate does not apply to a fleet (no admission queue).
    pub fn signals(&self) -> HealthSignals {
        let staleness_s = self
            .slots
            .iter()
            .filter_map(|s| s.metrics.staleness_s())
            .min_by(|a, b| a.partial_cmp(b).expect("staleness is finite"));
        HealthSignals {
            quality_samples: self.quality.len(),
            rolling_auc: self.quality.auc(),
            staleness_s,
            rejection_rate: None,
        }
    }

    /// Evaluates fleet health under the current policy.
    pub fn health(&self) -> Health {
        self.policy.evaluate(&self.signals())
    }

    /// A deterministic point-in-time snapshot of the fleet: the 12
    /// agent counters summed across all slots (monotonic over
    /// leave/rejoin cycles) plus the [`FLEET_GAUGE_NAMES`] gauges.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut totals = [0u64; STAT_METRICS.len()];
        for slot in &self.slots {
            for (t, v) in totals.iter_mut().zip(slot.metrics.counters()) {
                *t += v;
            }
        }
        let mut samples: Vec<MetricSample> = STAT_METRICS
            .iter()
            .zip(totals)
            .map(|(m, v)| MetricSample {
                name: m.name.to_string(),
                kind: MetricKind::Counter,
                unit: m.unit,
                help: m.help.to_string(),
                labels: Vec::new(),
                value: SampleValue::Counter(v),
            })
            .collect();
        let signals = self.signals();
        let gauge = |name: &str, help: &str, unit: Unit, v: f64| MetricSample {
            name: name.to_string(),
            kind: MetricKind::Gauge,
            unit,
            help: help.to_string(),
            labels: Vec::new(),
            value: SampleValue::Gauge(v),
        };
        samples.push(gauge(
            "dmf_fleet_agents",
            "Slots in the fleet (running or parked).",
            Unit::None,
            self.len() as f64,
        ));
        samples.push(gauge(
            "dmf_fleet_agents_running",
            "Slots currently running an agent.",
            Unit::None,
            self.running_count() as f64,
        ));
        samples.push(gauge(
            "dmf_fleet_health_state",
            "Health verdict: 0 healthy, 1 degraded, 2 unready.",
            Unit::None,
            f64::from(self.policy.evaluate(&signals).code()),
        ));
        samples.push(gauge(
            "dmf_fleet_quality_samples",
            "Pairs currently held in the shared quality window.",
            Unit::Samples,
            signals.quality_samples as f64,
        ));
        samples.push(gauge(
            "dmf_fleet_rolling_auc",
            "Rolling AUC over the shared quality window (NaN while undefined).",
            Unit::Ratio,
            signals.rolling_auc.unwrap_or(f64::NAN),
        ));
        samples.push(gauge(
            "dmf_fleet_update_staleness_seconds",
            "Seconds since the most recent update applied anywhere (NaN before the first).",
            Unit::Seconds,
            signals.staleness_s.unwrap_or(f64::NAN),
        ));
        MetricsSnapshot::from_samples(samples)
    }

    /// [`metrics`](Self::metrics) rendered in the text exposition
    /// format.
    pub fn metrics_text(&self) -> String {
        self.metrics().render_text()
    }

    /// [`metrics`](Self::metrics) rendered in the JSON exposition
    /// format.
    pub fn metrics_json(&self) -> String {
        self.metrics().render_json()
    }

    /// One-shot dump of a single slot's accumulated counters (its
    /// completed runs only; a running agent's in-progress counters
    /// appear in [`metrics`](Self::metrics), not here).
    pub fn slot_stats_snapshot(&self, id: usize) -> Result<MetricsSnapshot, DmfsgdError> {
        let slots = self.slots.len();
        let slot = self
            .slots
            .get(id)
            .ok_or(MembershipError::UnknownNode { id, slots })?;
        Ok(stats_snapshot(&slot.total))
    }

    fn running_ids(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(id, s)| s.running.as_ref().map(|_| id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_core::DmfsgdConfig;
    use dmf_datasets::rtt::meridian_like;

    fn fast_config(seed: u64) -> ClusterConfig {
        ClusterConfig {
            dmfsgd: DmfsgdConfig {
                seed,
                ..DmfsgdConfig::paper_defaults()
            },
            probe_interval: Duration::from_millis(2),
            ..ClusterConfig::default()
        }
    }

    /// Spins until the fleet has applied at least `want` updates (the
    /// live counter, so no agent needs to exit first). Snapshot
    /// samples are sorted by name, so look the counter up by name.
    fn wait_for_updates(fleet: &Fleet, want: u64) {
        for _ in 0..2_000 {
            let snap = fleet.metrics();
            let sample = snap
                .metrics
                .iter()
                .find(|m| m.name == "dmf_agent_updates_applied_total")
                .expect("exported");
            if let SampleValue::Counter(v) = sample.value {
                if v >= want {
                    return;
                }
            }
            thread::sleep(Duration::from_millis(5));
        }
        panic!("fleet never reached {want} applied updates");
    }

    #[test]
    fn fleet_runs_learns_and_reports_live_metrics() {
        let d = meridian_like(16, 21);
        let tau = d.median();
        let fleet = Fleet::launch(d, tau, fast_config(21)).expect("launch");
        assert_eq!(fleet.len(), 16);
        assert_eq!(fleet.running_count(), 16);
        wait_for_updates(&fleet, 200);
        let signals = fleet.signals();
        assert!(signals.quality_samples > 0, "quality window must fill");
        assert!(signals.staleness_s.expect("updates applied") < 30.0);
        let text = fleet.metrics_text();
        assert!(text.starts_with("# dmfsgd-metrics schema 1\n"));
        assert!(text.contains("dmf_fleet_agents_running 16.0"));
        let outcome = fleet.shutdown().expect("shutdown");
        assert!(outcome.total_updates() > 0);
    }

    #[test]
    fn leave_and_rejoin_keep_counters_monotonic_and_ports_stable() {
        let d = meridian_like(12, 22);
        let tau = d.median();
        let mut fleet = Fleet::launch(d, tau, fast_config(22)).expect("launch");
        wait_for_updates(&fleet, 50);

        let before = fleet.addrs.clone();
        let stats = fleet.leave(3).expect("leave");
        assert!(stats.probes_sent > 0, "the run must have probed");
        assert_eq!(fleet.running_count(), 11);
        assert!(!fleet.is_running(3));
        // Typed misuse errors.
        assert!(matches!(
            fleet.leave(3).unwrap_err(),
            DmfsgdError::Membership(MembershipError::NotRunning { id: 3 })
        ));
        assert!(matches!(
            fleet.join(0).unwrap_err(),
            DmfsgdError::Membership(MembershipError::AlreadyRunning { id: 0 })
        ));
        assert!(matches!(
            fleet.join(99).unwrap_err(),
            DmfsgdError::Membership(MembershipError::UnknownNode { id: 99, .. })
        ));

        fleet.join(3).expect("rejoin");
        assert_eq!(fleet.running_count(), 12);
        assert_eq!(fleet.addrs, before, "slot addresses never change");

        // Counters accumulated by the first run survive the rejoin.
        let snap = fleet.metrics();
        let sample = snap
            .metrics
            .iter()
            .find(|m| m.name == "dmf_agent_probes_sent_total")
            .expect("exported");
        let after = match sample.value {
            SampleValue::Counter(v) => v,
            ref v => panic!("counter expected, got {v:?}"),
        };
        assert!(after >= stats.probes_sent as u64);
        fleet.shutdown().expect("shutdown");
    }

    #[test]
    fn checkpoint_restores_into_a_session_with_identical_coordinates() {
        let d = meridian_like(12, 23);
        let tau = d.median();
        let mut fleet = Fleet::launch(d, tau, fast_config(23)).expect("launch");
        wait_for_updates(&fleet, 50);
        let snapshot = fleet.checkpoint().expect("checkpoint");
        assert_eq!(fleet.running_count(), 12, "checkpoint resumes everyone");
        let session = Session::restore(&snapshot).expect("restore");
        assert_eq!(session.len(), 12);
        // The restored coordinates are the fleet's own, bit for bit:
        // a post-checkpoint shutdown can only have moved them forward,
        // but the snapshot itself came from the paused state. Restore
        // twice and compare the two sessions instead.
        let again = Session::restore(&snapshot).expect("restore again");
        for (a, b) in session.nodes().iter().zip(again.nodes()) {
            assert_eq!(a.coords.u.as_slice(), b.coords.u.as_slice());
            assert_eq!(a.coords.v.as_slice(), b.coords.v.as_slice());
        }
        fleet.shutdown().expect("shutdown");
    }

    #[test]
    fn a_loss_storm_degrades_health_and_recovery_restores_it() {
        let d = meridian_like(12, 24);
        let tau = d.median();
        let mut fleet = Fleet::launch(d, tau, fast_config(24)).expect("launch");
        // Tight staleness budget; quality rules off so the verdict is
        // driven by staleness alone (the AUC path has its own seeded
        // test in dmf-ops).
        fleet.set_health_policy(HealthPolicy {
            min_quality_samples: 0,
            auc_floor: None,
            staleness_limit_s: Some(0.5),
            rejection_rate_limit: None,
        });
        wait_for_updates(&fleet, 50);
        assert!(fleet.health().is_healthy(), "updates are flowing");

        // Storm: drop every datagram and roll the fleet onto the
        // faulty transport. No replies -> no updates -> staleness
        // climbs past the limit.
        fleet.set_faults(Some(FaultSpec {
            drop: 1.0,
            ..FaultSpec::none()
        }));
        fleet.restart_all().expect("restart into storm");
        let mut degraded = false;
        for _ in 0..200 {
            if fleet.health().code() == 1 {
                degraded = true;
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        assert!(degraded, "total loss must trip the staleness rule");

        // Recovery: lift the faults, roll again, and updates resume.
        fleet.set_faults(None);
        fleet.restart_all().expect("restart clean");
        let mut healthy = false;
        for _ in 0..200 {
            if fleet.health().is_healthy() {
                healthy = true;
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        assert!(healthy, "clean transport must restore health");
        fleet.shutdown().expect("shutdown");
    }
}
