//! Ground-truth measurement oracle for localhost deployments.
//!
//! On a real network, an RTT probe measures the wire and an ABW probe
//! self-induces congestion. On localhost every path looks identical,
//! so agents consult this oracle instead: it serves the synthetic
//! ground truth through the same noisy instruments the simulator uses
//! (`dmf-simnet` probers). The oracle is shared read-only across agent
//! threads; per-probe randomness comes from a lock-protected RNG so
//! results stay reproducible for a given seed.

use dmf_datasets::{Dataset, Metric};
use dmf_simnet::probe::{PathloadProber, RttProber};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Mutex;

/// Shared measurement oracle.
pub struct MeasurementOracle {
    dataset: Dataset,
    tau: f64,
    rtt_prober: RttProber,
    abw_prober: PathloadProber,
    rng: Mutex<ChaCha8Rng>,
}

impl MeasurementOracle {
    /// Builds an oracle over `dataset`, classifying at `tau`.
    pub fn new(dataset: Dataset, tau: f64, seed: u64) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        Self {
            dataset,
            tau,
            rtt_prober: RttProber::default(),
            abw_prober: PathloadProber::default(),
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed)),
        }
    }

    /// The metric the oracle serves.
    pub fn metric(&self) -> Metric {
        self.dataset.metric
    }

    /// The classification threshold in force.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// True when the oracle covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// The ground-truth dataset (for evaluation only — agents must not
    /// peek at it).
    pub fn ground_truth(&self) -> &Dataset {
        &self.dataset
    }

    /// Measures the RTT class for `i → j` (ping + threshold).
    pub fn rtt_class(&self, i: usize, j: usize) -> Option<f64> {
        let mut rng = self.rng.lock().expect("oracle rng lock poisoned");
        let rtt = self.rtt_prober.measure(&self.dataset, i, j, &mut *rng)?;
        Some(Metric::Rtt.classify(rtt, self.tau))
    }

    /// Measures the ABW class for `i → j` (pathload train at rate
    /// `tau`, inferred at the target).
    pub fn abw_class(&self, i: usize, j: usize) -> Option<f64> {
        let mut rng = self.rng.lock().expect("oracle rng lock poisoned");
        self.abw_prober
            .probe_class(&self.dataset, i, j, self.tau, &mut *rng)
    }

    /// Measures the class with the instrument appropriate to the
    /// metric.
    pub fn measure_class(&self, i: usize, j: usize) -> Option<f64> {
        match self.dataset.metric {
            Metric::Rtt => self.rtt_class(i, j),
            Metric::Abw => self.abw_class(i, j),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::rtt::meridian_like;

    #[test]
    fn rtt_oracle_classifies() {
        let d = meridian_like(20, 1);
        let tau = d.median();
        let oracle = MeasurementOracle::new(d, tau, 7);
        let x = oracle.measure_class(0, 1).unwrap();
        assert!(x == 1.0 || x == -1.0);
        assert_eq!(oracle.metric(), Metric::Rtt);
        assert_eq!(oracle.len(), 20);
    }

    #[test]
    fn abw_oracle_classifies() {
        let d = hps3_like(20, 2);
        let tau = d.median();
        let oracle = MeasurementOracle::new(d, tau, 8);
        let mut seen_good = false;
        let mut seen_bad = false;
        for i in 0..20 {
            for j in 0..20 {
                if i == j {
                    continue;
                }
                match oracle.measure_class(i, j) {
                    Some(1.0) => seen_good = true,
                    Some(-1.0) => seen_bad = true,
                    Some(other) => panic!("bad label {other}"),
                    None => {}
                }
            }
        }
        assert!(seen_good && seen_bad, "median threshold must split classes");
    }

    #[test]
    fn diagonal_unmeasurable() {
        let d = meridian_like(10, 3);
        let tau = d.median();
        let oracle = MeasurementOracle::new(d, tau, 9);
        assert_eq!(oracle.measure_class(4, 4), None);
    }

    #[test]
    fn mostly_agrees_with_truth() {
        let d = meridian_like(30, 4);
        let tau = d.median();
        let truth = d.classify(tau);
        let oracle = MeasurementOracle::new(d, tau, 10);
        let mut agree = 0;
        let mut total = 0;
        for (i, j) in truth.mask.iter_known() {
            if let Some(x) = oracle.measure_class(i, j) {
                total += 1;
                if Some(x) == truth.label(i, j) {
                    agree += 1;
                }
            }
        }
        assert!(agree as f64 / total as f64 > 0.9);
    }
}
