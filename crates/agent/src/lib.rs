//! # dmf-agent
//!
//! Real UDP deployment of DMFSGD: one OS thread and one
//! `std::net::UdpSocket` per agent, speaking the `dmf-proto` wire
//! format. This is the "deploy one such system" step the paper leaves
//! as future work (§7), demonstrated on localhost.
//!
//! What is real here: sockets, datagrams, the codec, concurrency,
//! probe scheduling, loss tolerance (UDP gives no delivery guarantee
//! and the agents don't need one). What is simulated: the *measured
//! value* itself — localhost paths are homogeneous, so probes consult
//! a shared [`oracle::MeasurementOracle`] backed by a synthetic ground
//! truth (see DESIGN.md §4 for the substitution rationale).
//!
//! * [`oracle`] — the ground-truth measurement oracle.
//! * [`agent`] — the per-node event loop (Algorithms 1 and 2 over
//!   datagrams), speaking wire v1 or the loss-hardened delta v2.
//! * [`transport`] — the [`Transport`] abstraction and
//!   [`FaultySocket`], a UDP socket wrapped in `dmf_proto`'s seeded
//!   fault injector (drop / duplicate / reorder / truncate /
//!   bit-flip) for deterministic loss-hardening tests.
//! * [`cluster`] — spawn-N-agents harness used by tests, examples and
//!   benchmarks.
//! * [`fleet`] — [`Fleet`], the long-running operational deployment:
//!   live join/leave of individual agents, a rolling fault-model
//!   swap, stop-the-world checkpoints, and the fleet-wide
//!   metrics/health surface.
//! * [`metrics`] — the agent-side observability surface: the
//!   [`AgentStats`] metric table, a one-shot exposition dump, and the
//!   live per-slot mirror ([`metrics::AgentMetricsSlot`]) feeding the
//!   fleet's counters and shared rolling-AUC quality window.
//! * [`driver`] — [`UdpDriver`], the real-socket implementation of
//!   [`dmf_core::session::Driver`]: one wall-clock cluster burst per
//!   round, coordinates seeded from and written back to a
//!   [`dmf_core::Session`].
//!
//! # Position in the workspace
//!
//! The deployment tip of the DAG: node state machines come from
//! [`dmf_core::node`], the wire format from [`dmf_proto`], probe
//! instruments from [`dmf_simnet::probe`], ground truth from
//! [`dmf_datasets`], outcome scoring from [`dmf_eval`], and the
//! metric/health vocabulary from [`dmf_ops`]. Nothing depends on this
//! crate — it exists to prove the algorithm runs (and can be
//! operated) on real sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod cluster;
#[deny(missing_docs)]
pub mod driver;
#[deny(missing_docs)]
pub mod fleet;
#[deny(missing_docs)]
pub mod metrics;
pub mod oracle;
pub mod transport;

pub use agent::{run_agent, AgentHandle, AgentStats};
pub use cluster::{ClusterConfig, ClusterOutcome, UdpCluster};
pub use driver::UdpDriver;
pub use fleet::{Fleet, FLEET_GAUGE_NAMES, FLEET_QUALITY_WINDOW};
pub use metrics::{stats_snapshot, AgentMetricsSlot, StatMetric, STAT_METRICS};
pub use oracle::MeasurementOracle;
pub use transport::{FaultySocket, Transport};
