//! The real-socket front-end of the [`Driver`] trait.
//!
//! [`UdpDriver`] advances a [`Session`] the same way
//! `dmf_core::session::OracleDriver` and
//! `dmf_core::runner::SimnetDriver` do — but each round is a
//! wall-clock burst of the localhost UDP cluster: one socket and one
//! OS thread per node, real datagrams, real concurrency. The session's
//! current coordinates seed the agents, the agents train over the
//! wire, and the trained coordinates are written back, so a population
//! can be warmed up by matrix replay or simulation, checkpointed, and
//! then *continue learning over real sockets* from exactly where it
//! stopped.
//!
//! Membership note: the UDP front-end is a full-population deployment
//! — every slot (alive or departed) runs as an agent, mirroring how a
//! real fleet has no global membership view. Use the oracle or simnet
//! front-ends for churn experiments.

use crate::cluster::{ClusterConfig, UdpCluster};
use crate::oracle::MeasurementOracle;
use dmf_core::session::{Driver, Session};
use dmf_core::{DmfsgdError, MembershipError};
use dmf_datasets::Dataset;
use std::sync::Arc;

use crate::agent::AgentStats;

/// Drives a [`Session`] over real UDP sockets, one wall-clock burst
/// per [`Driver::round`].
pub struct UdpDriver {
    /// Shared ground-truth oracle, built once — rounds re-ship only
    /// the node states, never the O(n²) ground truth.
    oracle: Arc<MeasurementOracle>,
    cluster: ClusterConfig,
    /// Per-agent statistics of the most recent round.
    last_stats: Vec<AgentStats>,
}

impl std::fmt::Debug for UdpDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpDriver")
            .field("nodes", &self.oracle.len())
            .field("metric", &self.oracle.metric())
            .field("tau", &self.oracle.tau())
            .field("round_duration", &self.cluster.duration)
            .finish_non_exhaustive()
    }
}

impl UdpDriver {
    /// Builds the front-end for `session` over `dataset` (whose
    /// metric decides Algorithm 1 vs 2). `cluster.duration` is the
    /// wall-clock length of one round; `cluster.dmfsgd` supplies the
    /// oracle seed and the rank agents validate against. The
    /// classification threshold comes from the session
    /// (`SessionBuilder::tau`).
    pub fn new(
        session: &Session,
        dataset: Dataset,
        cluster: ClusterConfig,
    ) -> Result<Self, DmfsgdError> {
        let tau = session.tau().ok_or(dmf_core::ConfigError::MissingTau)?;
        if dataset.len() != session.len() {
            return Err(MembershipError::ProviderMismatch {
                provider: dataset.len(),
                session: session.len(),
            }
            .into());
        }
        cluster.dmfsgd.try_validate()?;
        let oracle = Arc::new(MeasurementOracle::new(
            dataset,
            tau,
            cluster.dmfsgd.seed ^ 0x0c0a_17e5,
        ));
        Ok(Self {
            oracle,
            cluster,
            last_stats: Vec::new(),
        })
    }

    /// Per-agent statistics of the most recent round (empty before the
    /// first).
    pub fn last_stats(&self) -> &[AgentStats] {
        &self.last_stats
    }
}

impl Driver for UdpDriver {
    /// One round: spawn every node as a UDP agent seeded with the
    /// session's current coordinates, run for the configured
    /// wall-clock duration, write the trained coordinates back.
    fn round(&mut self, session: &mut Session) -> Result<usize, DmfsgdError> {
        if self.oracle.len() != session.len() {
            return Err(MembershipError::ProviderMismatch {
                provider: self.oracle.len(),
                session: session.len(),
            }
            .into());
        }
        let outcome = UdpCluster::run_with_oracle(
            Arc::clone(&self.oracle),
            self.cluster,
            session.nodes().to_vec(),
            session.neighbors(),
        )?;
        let applied = outcome.total_updates();
        session.import_nodes(outcome.nodes, applied)?;
        self.last_stats = outcome.stats;
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_core::Session;
    use dmf_datasets::rtt::meridian_like;
    use dmf_eval::collect_scores;
    use dmf_eval::roc::auc;
    use std::time::Duration;

    #[test]
    fn udp_driver_advances_a_session_over_real_sockets() {
        let n = 20;
        let d = meridian_like(n, 13);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut session = Session::builder()
            .nodes(n)
            .k(6)
            .seed(13)
            .tau(tau)
            .build()
            .expect("valid");
        let mut driver = UdpDriver::new(
            &session,
            d,
            ClusterConfig {
                duration: Duration::from_millis(1200),
                probe_interval: Duration::from_millis(2),
                ..ClusterConfig::default()
            },
        )
        .expect("valid driver");
        let applied = session.drive(&mut driver, 2).expect("udp rounds");
        assert!(applied > n * 20, "too few updates over UDP: {applied}");
        assert_eq!(applied, session.measurements_used());
        assert_eq!(driver.last_stats().len(), n);
        let a = auc(&collect_scores(&cm, &session.predicted_scores()));
        assert!(a > 0.7, "UDP-driven session AUC {a}");
    }

    #[test]
    fn udp_driver_requires_tau() {
        let d = meridian_like(15, 14);
        let session = Session::builder().nodes(15).k(5).build().expect("valid");
        assert!(matches!(
            UdpDriver::new(&session, d, ClusterConfig::default()).unwrap_err(),
            DmfsgdError::Config(dmf_core::ConfigError::MissingTau)
        ));
    }
}
