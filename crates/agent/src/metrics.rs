//! Agent-side observability: the [`AgentStats`] metric table, the
//! one-shot exposition dump, and [`AgentMetricsSlot`] — the live
//! per-slot mirror a [`Fleet`](crate::fleet::Fleet) reads while its
//! agents are still running.
//!
//! # Two exposure paths
//!
//! * **One-shot dump.** [`stats_snapshot`] converts a finished
//!   agent's [`AgentStats`] (or any sum of them, e.g.
//!   [`ClusterOutcome::merged_stats`](crate::ClusterOutcome::merged_stats)
//!   (crate::cluster::ClusterOutcome::merged_stats)) into a
//!   [`MetricsSnapshot`] renderable in either exposition format.
//!   This is how a batch run exports metrics after the fact.
//! * **Live mirror.** A long-running fleet cannot wait for agents to
//!   exit: [`run_agent`](crate::agent::run_agent) flushes its counters
//!   into an optional [`AgentMetricsSlot`] every probe firing, and
//!   records each applied update's (ground truth, pre-update score)
//!   pair into a shared [`LiveQuality`] window — the fleet-wide
//!   rolling AUC. The slot carries a *base* (counters accumulated by
//!   completed runs of this slot, across leave/rejoin cycles) plus the
//!   running agent's latest flush, so exported counters stay monotonic
//!   over restarts.
//!
//! Every metric name exported here is part of the operator contract
//! documented in `docs/operations.md` and cross-checked by CI.

use crate::agent::AgentStats;
use dmf_ops::{LiveQuality, MetricKind, MetricSample, MetricsSnapshot, SampleValue, Unit};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The exported identity of one [`AgentStats`] counter.
pub struct StatMetric {
    /// Exported metric name.
    pub name: &'static str,
    /// Help line for the exposition formats.
    pub help: &'static str,
    /// Value unit.
    pub unit: Unit,
    /// Reads the counter out of an [`AgentStats`].
    pub read: fn(&AgentStats) -> u64,
}

/// Every [`AgentStats`] counter, in struct-field order. One row per
/// field — adding a field to [`AgentStats`] without a row here is a
/// documentation bug the ops-conformance tests catch.
pub const STAT_METRICS: [StatMetric; 12] = [
    StatMetric {
        name: "dmf_agent_probes_sent_total",
        help: "Probes sent (first transmissions; retries counted separately).",
        unit: Unit::None,
        read: |s| s.probes_sent as u64,
    },
    StatMetric {
        name: "dmf_agent_updates_applied_total",
        help: "SGD updates applied (prober side).",
        unit: Unit::None,
        read: |s| s.updates_applied as u64,
    },
    StatMetric {
        name: "dmf_agent_decode_errors_total",
        help: "Datagrams that failed to decode (or carried a wrong rank).",
        unit: Unit::None,
        read: |s| s.decode_errors as u64,
    },
    StatMetric {
        name: "dmf_agent_unmatched_replies_total",
        help: "Replies that matched no outstanding probe.",
        unit: Unit::None,
        read: |s| s.unmatched_replies as u64,
    },
    StatMetric {
        name: "dmf_agent_retries_total",
        help: "Probe retransmissions after a timeout.",
        unit: Unit::None,
        read: |s| s.retries as u64,
    },
    StatMetric {
        name: "dmf_agent_probes_abandoned_total",
        help: "Probes abandoned after exhausting the retry budget.",
        unit: Unit::None,
        read: |s| s.probes_abandoned as u64,
    },
    StatMetric {
        name: "dmf_agent_evictions_total",
        help: "Outstanding entries evicted oldest-first to bound the table.",
        unit: Unit::None,
        read: |s| s.evictions as u64,
    },
    StatMetric {
        name: "dmf_agent_gaps_detected_total",
        help: "Sequence gaps observed across all per-peer decoder contexts.",
        unit: Unit::None,
        read: |s| s.gaps_detected,
    },
    StatMetric {
        name: "dmf_agent_keyframes_sent_total",
        help: "Keyframes sent across all per-peer encoder contexts.",
        unit: Unit::None,
        read: |s| s.keyframes_sent,
    },
    StatMetric {
        name: "dmf_agent_stale_deltas_total",
        help: "Deltas dropped because their baseline was no longer held.",
        unit: Unit::None,
        read: |s| s.stale_deltas as u64,
    },
    StatMetric {
        name: "dmf_agent_bytes_sent_total",
        help: "Application bytes handed to the transport.",
        unit: Unit::Bytes,
        read: |s| s.bytes_sent,
    },
    StatMetric {
        name: "dmf_agent_bytes_received_total",
        help: "Application bytes received from the transport.",
        unit: Unit::Bytes,
        read: |s| s.bytes_received,
    },
];

/// One-shot exposition dump: converts a finished agent's counters
/// into a [`MetricsSnapshot`] (render with
/// [`render_text`](MetricsSnapshot::render_text) /
/// [`render_json`](MetricsSnapshot::render_json)).
pub fn stats_snapshot(stats: &AgentStats) -> MetricsSnapshot {
    MetricsSnapshot::from_samples(
        STAT_METRICS
            .iter()
            .map(|m| MetricSample {
                name: m.name.to_string(),
                kind: MetricKind::Counter,
                unit: m.unit,
                help: m.help.to_string(),
                labels: Vec::new(),
                value: SampleValue::Counter((m.read)(stats)),
            })
            .collect(),
    )
}

/// The live metrics mirror of one fleet slot (see the [module
/// docs](self)). Shared by `Arc` between the fleet (reader) and the
/// agent thread currently occupying the slot (writer); all fields are
/// atomics or behind the quality window's own lock, so neither side
/// blocks the other.
pub struct AgentMetricsSlot {
    /// Counters accumulated by completed runs of this slot.
    base: [AtomicU64; STAT_METRICS.len()],
    /// `base` plus the running agent's latest flush — what the fleet
    /// exports.
    live: [AtomicU64; STAT_METRICS.len()],
    /// Milliseconds since `epoch` of the last applied update;
    /// `u64::MAX` = no update applied by this slot yet.
    last_update_ms: AtomicU64,
    epoch: Instant,
    quality: Arc<LiveQuality>,
}

impl AgentMetricsSlot {
    /// A fresh slot feeding the given (typically fleet-shared)
    /// quality window.
    pub fn new(quality: Arc<LiveQuality>) -> Self {
        Self {
            base: std::array::from_fn(|_| AtomicU64::new(0)),
            live: std::array::from_fn(|_| AtomicU64::new(0)),
            last_update_ms: AtomicU64::new(u64::MAX),
            epoch: Instant::now(),
            quality,
        }
    }

    /// The quality window this slot records into.
    pub fn quality(&self) -> &LiveQuality {
        &self.quality
    }

    /// Publishes a running agent's current counters: `live = base +
    /// stats`. Called by [`run_agent`](crate::agent::run_agent) every
    /// probe firing and once at exit.
    pub fn flush(&self, stats: &AgentStats) {
        for (i, m) in STAT_METRICS.iter().enumerate() {
            self.live[i].store(
                self.base[i].load(Ordering::Relaxed) + (m.read)(stats),
                Ordering::Relaxed,
            );
        }
    }

    /// Folds a completed run's final counters into the base, so the
    /// next run of this slot continues from monotonic totals.
    pub fn absorb(&self, stats: &AgentStats) {
        for (i, m) in STAT_METRICS.iter().enumerate() {
            let total = self.base[i].load(Ordering::Relaxed) + (m.read)(stats);
            self.base[i].store(total, Ordering::Relaxed);
            self.live[i].store(total, Ordering::Relaxed);
        }
    }

    /// Records one applied update's (ground truth, pre-update score)
    /// pair into the quality window and refreshes the staleness
    /// origin.
    pub fn record_quality(&self, positive: bool, score: f64) {
        self.quality.record(positive, score);
        self.last_update_ms
            .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// The exported counter values, in [`STAT_METRICS`] order.
    pub fn counters(&self) -> [u64; STAT_METRICS.len()] {
        std::array::from_fn(|i| self.live[i].load(Ordering::Relaxed))
    }

    /// Seconds since this slot last applied an update (`None` before
    /// the first).
    pub fn staleness_s(&self) -> Option<f64> {
        match self.last_update_ms.load(Ordering::Relaxed) {
            u64::MAX => None,
            then_ms => {
                let now_ms = self.epoch.elapsed().as_millis() as u64;
                Some(now_ms.saturating_sub(then_ms) as f64 / 1_000.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(probes: usize, bytes: u64) -> AgentStats {
        AgentStats {
            probes_sent: probes,
            bytes_sent: bytes,
            ..AgentStats::default()
        }
    }

    #[test]
    fn the_table_covers_every_agent_stats_field() {
        // Field-order mirror of the struct: a distinct value per field
        // must survive the table round trip, so no extractor reads the
        // wrong field and no field is missing.
        let s = AgentStats {
            probes_sent: 1,
            updates_applied: 2,
            decode_errors: 3,
            unmatched_replies: 4,
            retries: 5,
            probes_abandoned: 6,
            evictions: 7,
            gaps_detected: 8,
            keyframes_sent: 9,
            stale_deltas: 10,
            bytes_sent: 11,
            bytes_received: 12,
        };
        let values: Vec<u64> = STAT_METRICS.iter().map(|m| (m.read)(&s)).collect();
        assert_eq!(values, (1..=12).collect::<Vec<u64>>());
    }

    #[test]
    fn one_shot_dump_renders_the_contract_format() {
        let snap = stats_snapshot(&stats_with(3, 128));
        let text = snap.render_text();
        assert!(text.starts_with("# dmfsgd-metrics schema 1\n"));
        assert!(text.contains("dmf_agent_probes_sent_total 3"));
        assert!(text.contains("dmf_agent_bytes_sent_total 128"));
        let json = snap.render_json();
        assert!(json.contains(
            "\"name\":\"dmf_agent_bytes_sent_total\",\"kind\":\"counter\",\"unit\":\"bytes\""
        ));
    }

    #[test]
    fn flush_and_absorb_keep_counters_monotonic_across_runs() {
        let slot = AgentMetricsSlot::new(Arc::new(LiveQuality::new(8)));
        slot.flush(&stats_with(5, 100));
        assert_eq!(slot.counters()[0], 5);
        // Run ends: its totals fold into the base...
        slot.absorb(&stats_with(5, 100));
        assert_eq!(slot.counters()[0], 5);
        // ...so the next run's fresh counters stack on top.
        slot.flush(&stats_with(2, 40));
        assert_eq!(slot.counters()[0], 7);
        let bytes_idx = STAT_METRICS
            .iter()
            .position(|m| m.name == "dmf_agent_bytes_sent_total")
            .expect("in table");
        assert_eq!(slot.counters()[bytes_idx], 140);
    }

    #[test]
    fn quality_records_refresh_staleness() {
        let slot = AgentMetricsSlot::new(Arc::new(LiveQuality::new(8)));
        assert_eq!(slot.staleness_s(), None);
        slot.record_quality(true, 1.0);
        slot.record_quality(false, -1.0);
        assert!(slot.staleness_s().expect("updated") >= 0.0);
        assert_eq!(slot.quality().len(), 2);
        assert_eq!(slot.quality().auc(), Some(1.0));
    }
}
