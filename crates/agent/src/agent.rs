//! The per-node UDP event loop.
//!
//! Each agent owns one socket and one [`DmfsgdNode`]. The loop
//! alternates between:
//!
//! 1. receiving datagrams (with a short read timeout so the loop stays
//!    responsive) and dispatching them through the Algorithm 1/2
//!    handlers;
//! 2. firing a probe at a random neighbor whenever the probe interval
//!    has elapsed.
//!
//! Datagrams that fail to decode are counted and dropped — a hostile
//! or corrupted packet cannot crash an agent (see the codec's
//! fault-model tests). Replies are matched to probes by nonce;
//! unsolicited or stale replies are ignored, so duplicated or
//! reordered UDP delivery is harmless.

use crate::oracle::MeasurementOracle;
use dmf_core::{DmfsgdConfig, DmfsgdNode};
use dmf_datasets::Metric;
use dmf_proto::{decode, encode, Message};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters reported by an agent after shutdown.
#[derive(Clone, Copy, Debug, Default)]
pub struct AgentStats {
    /// Probes sent.
    pub probes_sent: usize,
    /// SGD updates applied (prober side).
    pub updates_applied: usize,
    /// Datagrams that failed to decode.
    pub decode_errors: usize,
    /// Replies that matched no outstanding probe.
    pub unmatched_replies: usize,
}

/// Everything an agent thread needs to run.
pub struct AgentHandle {
    /// The node this agent embodies — its starting coordinates. A
    /// fresh node for a cold start, or a trained one when the agent
    /// resumes a [`dmf_core::Session`] (see
    /// [`crate::driver::UdpDriver`]).
    pub node: DmfsgdNode,
    /// Bound socket (already non-blocking via read timeout).
    pub socket: UdpSocket,
    /// Peer addresses indexed by node id.
    pub peers: Vec<SocketAddr>,
    /// Ids of this agent's neighbors.
    pub neighbors: Vec<usize>,
    /// Shared measurement oracle.
    pub oracle: Arc<MeasurementOracle>,
    /// Algorithm parameters.
    pub config: DmfsgdConfig,
    /// Cooperative stop flag.
    pub stop: Arc<AtomicBool>,
    /// Wall-clock probe period.
    pub probe_interval: Duration,
}

/// Runs the agent loop until the stop flag rises; returns the trained
/// node and the counters. `rng_seed` drives probe scheduling only —
/// coordinates come in through the handle.
pub fn run_agent(handle: AgentHandle, rng_seed: u64) -> (DmfsgdNode, AgentStats) {
    let AgentHandle {
        mut node,
        socket,
        peers,
        neighbors,
        oracle,
        config,
        stop,
        probe_interval,
    } = handle;
    let id = node.id;
    assert!(!neighbors.is_empty(), "agent {id} has no neighbors");
    let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
    let params = config.sgd;
    let metric = oracle.metric();
    let mut stats = AgentStats::default();

    socket
        .set_read_timeout(Some(Duration::from_millis(2)))
        .expect("set_read_timeout");

    // nonce → probed node id. Bounded: one outstanding probe per
    // target at most (newer probes overwrite older ones).
    let mut outstanding: HashMap<u64, usize> = HashMap::new();
    let mut next_nonce: u64 = (id as u64) << 32;
    let mut last_probe = Instant::now() - probe_interval; // probe immediately
    let mut buf = [0u8; 4096];

    while !stop.load(Ordering::Relaxed) {
        // -- fire a probe when due ------------------------------------
        if last_probe.elapsed() >= probe_interval {
            last_probe = Instant::now();
            let target = neighbors[rng.gen_range(0..neighbors.len())];
            next_nonce += 1;
            let nonce = next_nonce;
            let msg = match metric {
                Metric::Rtt => Message::RttProbe { nonce },
                Metric::Abw => Message::AbwProbe {
                    nonce,
                    rate_mbps: oracle.tau(),
                    u: node.coords.u.to_vec(),
                },
            };
            outstanding.insert(nonce, target);
            // Keep the table bounded even under heavy reply loss.
            if outstanding.len() > 4 * neighbors.len() + 16 {
                outstanding.clear();
            }
            if socket.send_to(&encode(&msg), peers[target]).is_ok() {
                stats.probes_sent += 1;
            }
        }

        // -- receive and dispatch --------------------------------------
        let (len, src) = match socket.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => continue,
        };
        let msg = match decode(&buf[..len]) {
            Ok(m) => m,
            Err(_) => {
                stats.decode_errors += 1;
                continue;
            }
        };
        match msg {
            Message::RttProbe { nonce } => {
                // Algorithm 1 step 2: reply with coordinates.
                let (u, v) = node.rtt_reply();
                let reply = Message::RttReply {
                    nonce,
                    u: u.to_vec(),
                    v: v.to_vec(),
                };
                let _ = socket.send_to(&encode(&reply), src);
            }
            Message::RttReply { nonce, u, v } => {
                // Steps 3–4: measure (via oracle) and update.
                let Some(target) = outstanding.remove(&nonce) else {
                    stats.unmatched_replies += 1;
                    continue;
                };
                if u.len() != config.rank || v.len() != config.rank {
                    stats.decode_errors += 1;
                    continue;
                }
                if let Some(x) = oracle.rtt_class(id, target) {
                    node.on_rtt_measurement(x, &u, &v, &params);
                    stats.updates_applied += 1;
                }
            }
            Message::AbwProbe {
                nonce,
                rate_mbps: _,
                u,
            } => {
                // Algorithm 2 steps 2–4 at the target. The prober's id
                // is recovered from its source address.
                let Some(prober) = peers.iter().position(|&p| p == src) else {
                    continue; // unknown sender
                };
                if u.len() != config.rank {
                    stats.decode_errors += 1;
                    continue;
                }
                let Some(x) = oracle.abw_class(prober, id) else {
                    continue;
                };
                let v = node.on_abw_probe(x, &u, &params);
                let reply = Message::AbwReply {
                    nonce,
                    x,
                    v: v.to_vec(),
                };
                let _ = socket.send_to(&encode(&reply), src);
            }
            Message::AbwReply { nonce, x, v } => {
                // Step 5 at the prober.
                if outstanding.remove(&nonce).is_none() {
                    stats.unmatched_replies += 1;
                    continue;
                }
                if v.len() != config.rank {
                    stats.decode_errors += 1;
                    continue;
                }
                node.on_abw_reply(x, &v, &params);
                stats.updates_applied += 1;
            }
        }
    }

    (node, stats)
}
