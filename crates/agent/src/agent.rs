//! The per-node UDP event loop.
//!
//! Each agent owns one transport endpoint and one [`DmfsgdNode`]. The
//! loop alternates between:
//!
//! 1. receiving datagrams (with a short read timeout so the loop stays
//!    responsive) and dispatching them through the Algorithm 1/2
//!    handlers;
//! 2. firing a probe at a random neighbor whenever the probe interval
//!    has elapsed;
//! 3. retransmitting outstanding probes whose per-probe timeout
//!    expired, with jittered exponential backoff and a bounded retry
//!    budget.
//!
//! Datagrams that fail to decode are counted and dropped — a hostile
//! or corrupted packet cannot crash an agent (see the codec's
//! fault-model tests). Replies are matched to probes by nonce;
//! unsolicited or stale replies are ignored, so duplicated or
//! reordered UDP delivery is harmless.
//!
//! # Wire versions
//!
//! An agent *probes* in its configured [`WireVersion`] but *replies*
//! in whatever version the incoming probe spoke — that single rule is
//! the whole of version negotiation, and it lets v1 and v2 agents
//! coexist in one cluster. On v2, coordinates travel as quantized
//! delta/keyframe updates through per-peer
//! [`EncoderContext`]/[`DecoderContext`] pairs: lost datagrams show up
//! as sequence gaps, stale deltas are dropped (never half-applied),
//! and the decoder's piggybacked ack asks for a keyframe to resync.

use crate::metrics::AgentMetricsSlot;
use crate::oracle::MeasurementOracle;
use crate::transport::Transport;
use dmf_core::coords::dot;
use dmf_core::{DmfsgdConfig, DmfsgdError, DmfsgdNode, MembershipError};
use dmf_datasets::Metric;
use dmf_proto::{
    decode_any, encode, encode_v2, ContextError, DecoderContext, EncoderContext, Message,
    MessageV2, WireMessage, WireVersion,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters reported by an agent after shutdown.
#[derive(Clone, Copy, Debug, Default)]
pub struct AgentStats {
    /// Probes sent (first transmissions; retries counted separately).
    pub probes_sent: usize,
    /// SGD updates applied (prober side).
    pub updates_applied: usize,
    /// Datagrams that failed to decode (or carried a wrong rank).
    pub decode_errors: usize,
    /// Replies that matched no outstanding probe.
    pub unmatched_replies: usize,
    /// Probe retransmissions after a timeout.
    pub retries: usize,
    /// Probes abandoned after exhausting the retry budget.
    pub probes_abandoned: usize,
    /// Outstanding entries evicted oldest-first to bound the table.
    pub evictions: usize,
    /// Sequence gaps observed across all per-peer decoder contexts.
    pub gaps_detected: u64,
    /// Keyframes sent across all per-peer encoder contexts.
    pub keyframes_sent: u64,
    /// Deltas dropped because their baseline was no longer held.
    pub stale_deltas: usize,
    /// Application bytes handed to the transport.
    pub bytes_sent: u64,
    /// Application bytes received from the transport.
    pub bytes_received: u64,
}

impl AgentStats {
    /// Adds another agent's (or run's) counters into this one —
    /// how a fleet slot accumulates totals across leave/rejoin
    /// cycles, and how a cluster folds per-agent stats into one dump.
    pub fn merge(&mut self, other: &Self) {
        self.probes_sent += other.probes_sent;
        self.updates_applied += other.updates_applied;
        self.decode_errors += other.decode_errors;
        self.unmatched_replies += other.unmatched_replies;
        self.retries += other.retries;
        self.probes_abandoned += other.probes_abandoned;
        self.evictions += other.evictions;
        self.gaps_detected += other.gaps_detected;
        self.keyframes_sent += other.keyframes_sent;
        self.stale_deltas += other.stale_deltas;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }
}

/// Everything an agent thread needs to run.
pub struct AgentHandle<T: Transport = std::net::UdpSocket> {
    /// The node this agent embodies — its starting coordinates. A
    /// fresh node for a cold start, or a trained one when the agent
    /// resumes a [`dmf_core::Session`] (see
    /// [`crate::driver::UdpDriver`]).
    pub node: DmfsgdNode,
    /// Bound transport (already non-blocking via a read timeout on
    /// the underlying socket).
    pub socket: T,
    /// Peer addresses indexed by node id.
    pub peers: Vec<SocketAddr>,
    /// Ids of this agent's neighbors.
    pub neighbors: Vec<usize>,
    /// Shared measurement oracle.
    pub oracle: Arc<MeasurementOracle>,
    /// Algorithm parameters.
    pub config: DmfsgdConfig,
    /// Cooperative stop flag.
    pub stop: Arc<AtomicBool>,
    /// Wall-clock probe period.
    pub probe_interval: Duration,
    /// Protocol version this agent probes in (replies always match
    /// the probe's version).
    pub wire: WireVersion,
    /// Per-probe reply timeout before a retransmission.
    pub probe_timeout: Duration,
    /// Retransmissions allowed per probe before it is abandoned.
    pub max_retries: u32,
    /// Optional live metrics mirror: the loop flushes its counters
    /// here every probe firing and records each applied update's
    /// (ground truth, pre-update score) pair into its quality window.
    /// `None` (the batch-cluster default) leaves the hot path
    /// untouched.
    pub metrics: Option<Arc<AgentMetricsSlot>>,
}

/// One in-flight probe awaiting its reply.
struct Outstanding {
    nonce: u64,
    target: usize,
    /// The encoded datagram, kept so a retry resends identical bytes
    /// (same nonce, same sequence state — re-encoding would burn a v2
    /// sequence number on a datagram that may still arrive).
    wire: Vec<u8>,
    first_sent: Instant,
    deadline: Instant,
    attempts: u32,
}

/// Runs the agent loop until the stop flag rises; returns the trained
/// node and the counters. `rng_seed` drives probe scheduling and
/// backoff jitter only — coordinates come in through the handle.
///
/// # Errors
/// Returns [`MembershipError::NoNeighbors`] (as a [`DmfsgdError`])
/// when the handle carries an empty neighbor set; transport failures
/// while probing are tolerated (UDP sends are best-effort), not
/// escalated.
pub fn run_agent<T: Transport>(
    handle: AgentHandle<T>,
    rng_seed: u64,
) -> Result<(DmfsgdNode, AgentStats), DmfsgdError> {
    let AgentHandle {
        mut node,
        socket,
        peers,
        neighbors,
        oracle,
        config,
        stop,
        probe_interval,
        wire,
        probe_timeout,
        max_retries,
        metrics,
    } = handle;
    let id = node.id;
    if neighbors.is_empty() {
        return Err(MembershipError::NoNeighbors { id }.into());
    }
    let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
    let params = config.sgd;
    let metric = oracle.metric();
    let mut stats = AgentStats::default();

    // In-flight probes, bounded by oldest-first eviction.
    let mut outstanding: Vec<Outstanding> = Vec::new();
    let outstanding_cap = 4 * neighbors.len() + 16;
    let mut next_nonce: u64 = (id as u64) << 32;
    let mut last_probe = Instant::now() - probe_interval; // probe immediately
    let mut buf = [0u8; 4096];

    // Per-peer v2 contexts: encoders for coordinate streams this
    // agent sends, decoders for streams it receives.
    let mut enc_ctxs: HashMap<usize, EncoderContext> = HashMap::new();
    let mut dec_ctxs: HashMap<usize, DecoderContext> = HashMap::new();

    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();

        // -- fire a probe when due ------------------------------------
        if now.duration_since(last_probe) >= probe_interval {
            last_probe = now;
            let target = neighbors[rng.gen_range(0..neighbors.len())];
            next_nonce += 1;
            let nonce = next_nonce;
            // v2 nonces are u32 on the wire; the outstanding key must
            // match what the reply will carry back.
            let match_key = match wire {
                WireVersion::V1 => nonce,
                WireVersion::V2 => u64::from(nonce as u32),
            };
            let datagram: Vec<u8> = match (wire, metric) {
                (WireVersion::V1, Metric::Rtt) => encode(&Message::RttProbe { nonce }).to_vec(),
                (WireVersion::V1, Metric::Abw) => encode(&Message::AbwProbe {
                    nonce,
                    rate_mbps: oracle.tau(),
                    u: node.coords.u.to_vec(),
                })
                .to_vec(),
                (WireVersion::V2, Metric::Rtt) => {
                    let ack = dec_ctxs.get(&target).and_then(|d| d.ack());
                    encode_v2(&MessageV2::RttProbe {
                        nonce: nonce as u32,
                        ack,
                    })
                    .to_vec()
                }
                (WireVersion::V2, Metric::Abw) => {
                    let ack = dec_ctxs.get(&target).and_then(|d| d.ack());
                    let update = enc_ctxs
                        .entry(target)
                        .or_default()
                        .encode(&node.coords.u.to_vec());
                    encode_v2(&MessageV2::AbwProbe {
                        nonce: nonce as u32,
                        rate_mbps: oracle.tau(),
                        ack,
                        update,
                    })
                    .to_vec()
                }
            };
            // Keep the table bounded even under heavy reply loss:
            // evict the probe that has been in flight longest.
            if outstanding.len() >= outstanding_cap {
                if let Some(oldest) = outstanding
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, o)| o.first_sent)
                    .map(|(idx, _)| idx)
                {
                    outstanding.swap_remove(oldest);
                    stats.evictions += 1;
                }
            }
            if socket.send_to(&datagram, peers[target]).is_ok() {
                stats.probes_sent += 1;
                stats.bytes_sent += datagram.len() as u64;
            }
            outstanding.push(Outstanding {
                nonce: match_key,
                target,
                wire: datagram,
                first_sent: now,
                deadline: now + probe_timeout,
                attempts: 1,
            });
            // Once per probe period is frequent enough for a live
            // view and cheap enough (a dozen relaxed stores) not to
            // matter; the context counters are folded in so the live
            // mirror sees them without waiting for loop exit.
            if let Some(slot) = &metrics {
                let mut flushed = stats;
                flushed.gaps_detected = dec_ctxs.values().map(|d| d.gaps_detected()).sum();
                flushed.keyframes_sent = enc_ctxs.values().map(|e| e.keyframes_sent()).sum();
                slot.flush(&flushed);
            }
        }

        // -- retransmit expired probes (jittered backoff) -------------
        let mut idx = 0;
        while idx < outstanding.len() {
            if outstanding[idx].deadline > now {
                idx += 1;
                continue;
            }
            if outstanding[idx].attempts > max_retries {
                outstanding.swap_remove(idx);
                stats.probes_abandoned += 1;
                continue;
            }
            let entry = &mut outstanding[idx];
            entry.attempts += 1;
            // Exponential backoff with ±25% jitter so a cluster-wide
            // loss burst does not resynchronize every agent's retries.
            let backoff = probe_timeout.as_secs_f64()
                * f64::from(1u32 << (entry.attempts - 1).min(8))
                * rng.gen_range(0.75..1.25);
            entry.deadline = now + Duration::from_secs_f64(backoff);
            if socket.send_to(&entry.wire, peers[entry.target]).is_ok() {
                stats.retries += 1;
                stats.bytes_sent += entry.wire.len() as u64;
            }
            idx += 1;
        }

        // -- receive and dispatch -------------------------------------
        let (len, src) = match socket.recv_from(&mut buf) {
            Ok(ok) => ok,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => continue,
        };
        stats.bytes_received += len as u64;
        let msg = match decode_any(&buf[..len]) {
            Ok(m) => m,
            Err(_) => {
                stats.decode_errors += 1;
                continue;
            }
        };

        match msg {
            WireMessage::V1(msg) => handle_v1(
                msg,
                &mut node,
                &socket,
                src,
                &peers,
                &oracle,
                &config,
                &params,
                &mut outstanding,
                &mut stats,
                metrics.as_deref(),
            ),
            WireMessage::V2(msg) => handle_v2(
                msg,
                &mut node,
                &socket,
                src,
                &peers,
                &oracle,
                &config,
                &params,
                &mut outstanding,
                &mut enc_ctxs,
                &mut dec_ctxs,
                &mut stats,
                metrics.as_deref(),
            ),
        }
    }

    // Fold per-peer context counters into the agent totals.
    stats.gaps_detected = dec_ctxs.values().map(|d| d.gaps_detected()).sum();
    stats.keyframes_sent = enc_ctxs.values().map(|e| e.keyframes_sent()).sum();
    if let Some(slot) = &metrics {
        slot.flush(&stats);
    }

    Ok((node, stats))
}

fn take_outstanding(outstanding: &mut Vec<Outstanding>, nonce: u64) -> Option<usize> {
    let idx = outstanding.iter().position(|o| o.nonce == nonce)?;
    Some(outstanding.swap_remove(idx).target)
}

/// Algorithm 1/2 dispatch for a v1 datagram. Replies are v1: a peer
/// that probes in v1 is answered in v1.
#[allow(clippy::too_many_arguments)]
fn handle_v1<T: Transport>(
    msg: Message,
    node: &mut DmfsgdNode,
    socket: &T,
    src: SocketAddr,
    peers: &[SocketAddr],
    oracle: &MeasurementOracle,
    config: &DmfsgdConfig,
    params: &dmf_core::SgdParams,
    outstanding: &mut Vec<Outstanding>,
    stats: &mut AgentStats,
    metrics: Option<&AgentMetricsSlot>,
) {
    let id = node.id;
    match msg {
        Message::RttProbe { nonce } => {
            // Algorithm 1 step 2: reply with coordinates.
            let (u, v) = node.rtt_reply();
            let reply = encode(&Message::RttReply {
                nonce,
                u: u.to_vec(),
                v: v.to_vec(),
            });
            if socket.send_to(&reply, src).is_ok() {
                stats.bytes_sent += reply.len() as u64;
            }
        }
        Message::RttReply { nonce, u, v } => {
            // Steps 3–4: measure (via oracle) and update.
            let Some(target) = take_outstanding(outstanding, nonce) else {
                stats.unmatched_replies += 1;
                return;
            };
            if u.len() != config.rank || v.len() != config.rank {
                stats.decode_errors += 1;
                return;
            }
            if let Some(x) = oracle.rtt_class(id, target) {
                if let Some(slot) = metrics {
                    slot.record_quality(x > 0.0, dot(&node.coords.u, &v));
                }
                node.on_rtt_measurement(x, &u, &v, params);
                stats.updates_applied += 1;
            }
        }
        Message::AbwProbe {
            nonce,
            rate_mbps: _,
            u,
        } => {
            // Algorithm 2 steps 2–4 at the target. The prober's id
            // is recovered from its source address.
            let Some(prober) = peers.iter().position(|&p| p == src) else {
                return; // unknown sender
            };
            if u.len() != config.rank {
                stats.decode_errors += 1;
                return;
            }
            let Some(x) = oracle.abw_class(prober, id) else {
                return;
            };
            let v = node.on_abw_probe(x, &u, params);
            let reply = encode(&Message::AbwReply {
                nonce,
                x,
                v: v.to_vec(),
            });
            if socket.send_to(&reply, src).is_ok() {
                stats.bytes_sent += reply.len() as u64;
            }
        }
        Message::AbwReply { nonce, x, v } => {
            // Step 5 at the prober.
            if take_outstanding(outstanding, nonce).is_none() {
                stats.unmatched_replies += 1;
                return;
            }
            if v.len() != config.rank {
                stats.decode_errors += 1;
                return;
            }
            if let Some(slot) = metrics {
                slot.record_quality(x > 0.0, dot(&node.coords.u, &v));
            }
            node.on_abw_reply(x, &v, params);
            stats.updates_applied += 1;
        }
    }
}

/// Algorithm 1/2 dispatch for a v2 datagram: quantized updates
/// through the per-peer contexts, acks fed back to the encoders.
#[allow(clippy::too_many_arguments)]
fn handle_v2<T: Transport>(
    msg: MessageV2,
    node: &mut DmfsgdNode,
    socket: &T,
    src: SocketAddr,
    peers: &[SocketAddr],
    oracle: &MeasurementOracle,
    config: &DmfsgdConfig,
    params: &dmf_core::SgdParams,
    outstanding: &mut Vec<Outstanding>,
    enc_ctxs: &mut HashMap<usize, EncoderContext>,
    dec_ctxs: &mut HashMap<usize, DecoderContext>,
    stats: &mut AgentStats,
    metrics: Option<&AgentMetricsSlot>,
) {
    let id = node.id;
    match msg {
        MessageV2::RttProbe { nonce, ack } => {
            let Some(prober) = peers.iter().position(|&p| p == src) else {
                return; // unknown sender
            };
            let enc = enc_ctxs.entry(prober).or_default();
            if let Some(ack) = ack {
                enc.on_ack(ack);
            }
            // One update block carries u ‖ v under one sequence number.
            let (u, v) = node.rtt_reply();
            let mut coords = u.to_vec();
            coords.extend_from_slice(&v.to_vec());
            let update = enc.encode(&coords);
            let reply = encode_v2(&MessageV2::RttReply { nonce, update });
            if socket.send_to(&reply, src).is_ok() {
                stats.bytes_sent += reply.len() as u64;
            }
        }
        MessageV2::RttReply { nonce, update } => {
            let Some(target) = take_outstanding(outstanding, u64::from(nonce)) else {
                stats.unmatched_replies += 1;
                return;
            };
            let dec = dec_ctxs.entry(target).or_default();
            let coords = match dec.apply(&update) {
                Ok(coords) => coords,
                Err(ContextError::StaleBaseline { .. }) => {
                    // The next probe's ack carries want_keyframe.
                    stats.stale_deltas += 1;
                    return;
                }
                Err(ContextError::RankMismatch { .. }) => {
                    stats.decode_errors += 1;
                    return;
                }
            };
            if coords.len() != 2 * config.rank {
                stats.decode_errors += 1;
                return;
            }
            let (u, v) = coords.split_at(config.rank);
            if let Some(x) = oracle.rtt_class(id, target) {
                if let Some(slot) = metrics {
                    slot.record_quality(x > 0.0, dot(&node.coords.u, v));
                }
                node.on_rtt_measurement(x, u, v, params);
                stats.updates_applied += 1;
            }
        }
        MessageV2::AbwProbe {
            nonce,
            rate_mbps: _,
            ack,
            update,
        } => {
            let Some(prober) = peers.iter().position(|&p| p == src) else {
                return; // unknown sender
            };
            // The probe's ack confirms our v-stream toward the prober.
            if let Some(ack) = ack {
                enc_ctxs.entry(prober).or_default().on_ack(ack);
            }
            let dec = dec_ctxs.entry(prober).or_default();
            let u = match dec.apply(&update) {
                Ok(u) => u,
                Err(ContextError::StaleBaseline { .. }) => {
                    stats.stale_deltas += 1;
                    return;
                }
                Err(ContextError::RankMismatch { .. }) => {
                    stats.decode_errors += 1;
                    return;
                }
            };
            if u.len() != config.rank {
                stats.decode_errors += 1;
                return;
            }
            let reply_ack = dec.ack();
            let Some(x) = oracle.abw_class(prober, id) else {
                return;
            };
            let v = node.on_abw_probe(x, &u, params);
            let update = enc_ctxs.entry(prober).or_default().encode(&v.to_vec());
            let reply = encode_v2(&MessageV2::AbwReply {
                nonce,
                x,
                ack: reply_ack,
                update,
            });
            if socket.send_to(&reply, src).is_ok() {
                stats.bytes_sent += reply.len() as u64;
            }
        }
        MessageV2::AbwReply {
            nonce,
            x,
            ack,
            update,
        } => {
            let Some(target) = take_outstanding(outstanding, u64::from(nonce)) else {
                stats.unmatched_replies += 1;
                return;
            };
            // The reply's ack confirms our u-stream toward the target.
            if let Some(ack) = ack {
                enc_ctxs.entry(target).or_default().on_ack(ack);
            }
            let dec = dec_ctxs.entry(target).or_default();
            let v = match dec.apply(&update) {
                Ok(v) => v,
                Err(ContextError::StaleBaseline { .. }) => {
                    stats.stale_deltas += 1;
                    return;
                }
                Err(ContextError::RankMismatch { .. }) => {
                    stats.decode_errors += 1;
                    return;
                }
            };
            if v.len() != config.rank {
                stats.decode_errors += 1;
                return;
            }
            if let Some(slot) = metrics {
                slot.record_quality(x > 0.0, dot(&node.coords.u, &v));
            }
            node.on_abw_reply(x, &v, params);
            stats.updates_applied += 1;
        }
    }
}
