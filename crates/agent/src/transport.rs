//! Pluggable datagram transport: real UDP sockets, or UDP wrapped in
//! the seeded fault injector from `dmf-proto`.
//!
//! The agent loop is generic over [`Transport`], so the same code
//! that runs over a clean [`UdpSocket`] can be driven through a
//! [`FaultySocket`] applying deterministic drop / duplicate / reorder
//! / truncate / bit-flip faults on the send path — the
//! fault-injection harness behind `crates/agent`'s loss-scenario
//! cluster test and `examples/lossy_cluster.rs`.

use dmf_proto::{FaultCounts, FaultInjector, FaultSpec};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Mutex;

/// A connectionless datagram endpoint, as much of [`UdpSocket`] as
/// the agent loop needs. Read timeouts are configured on the
/// underlying socket before the loop starts.
pub trait Transport: Send {
    /// Sends one datagram toward `addr`.
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize>;
    /// Receives one datagram, honoring the socket's read timeout.
    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)>;
}

impl Transport for UdpSocket {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        UdpSocket::send_to(self, buf, addr)
    }

    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        UdpSocket::recv_from(self, buf)
    }
}

/// A [`UdpSocket`] whose *outgoing* datagrams pass through a seeded
/// [`FaultInjector`]: sends may be dropped, duplicated, held back one
/// datagram, truncated or bit-flipped before reaching the wire.
///
/// Faulting only the send path keeps the model physical (each fault
/// happens once per datagram, in the network) while still exercising
/// every receive-side recovery path of the peers.
pub struct FaultySocket {
    inner: UdpSocket,
    injector: Mutex<FaultInjector>,
}

impl FaultySocket {
    /// Wraps a bound socket with a fault model. Identical
    /// `(spec, seed)` pairs replay the identical fault schedule.
    pub fn new(inner: UdpSocket, spec: FaultSpec, seed: u64) -> Self {
        FaultySocket {
            inner,
            injector: Mutex::new(FaultInjector::new(spec, seed)),
        }
    }

    /// Fault counters accumulated so far.
    pub fn fault_counts(&self) -> FaultCounts {
        self.injector.lock().expect("injector lock").counts()
    }
}

impl Transport for FaultySocket {
    fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
        let mangled = self.injector.lock().expect("injector lock").apply(buf);
        for datagram in mangled {
            self.inner.send_to(&datagram, addr)?;
        }
        // Report the caller's byte count: from the sender's point of
        // view the datagram left the host (a dropped datagram died in
        // the "network", not in the syscall).
        Ok(buf.len())
    }

    fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        self.inner.recv_from(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        b.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let b_addr = b.local_addr().unwrap();
        (a, b, b_addr)
    }

    #[test]
    fn clean_socket_passes_datagrams_through() {
        let (a, b, b_addr) = pair();
        let faulty = FaultySocket::new(a, FaultSpec::none(), 1);
        faulty.send_to(b"hello", b_addr).unwrap();
        let mut buf = [0u8; 16];
        let (len, _) = Transport::recv_from(&b, &mut buf).unwrap();
        assert_eq!(&buf[..len], b"hello");
        assert_eq!(faulty.fault_counts(), FaultCounts::default());
    }

    #[test]
    fn dropping_socket_loses_datagrams() {
        let (a, b, b_addr) = pair();
        let spec = FaultSpec {
            drop: 1.0,
            ..FaultSpec::none()
        };
        let faulty = FaultySocket::new(a, spec, 2);
        for _ in 0..10 {
            faulty.send_to(b"gone", b_addr).unwrap();
        }
        let mut buf = [0u8; 16];
        assert!(Transport::recv_from(&b, &mut buf).is_err(), "all dropped");
        assert_eq!(faulty.fault_counts().drops, 10);
    }

    #[test]
    fn corrupting_socket_mangles_bytes() {
        let (a, b, b_addr) = pair();
        let spec = FaultSpec {
            bit_flip: 1.0,
            ..FaultSpec::none()
        };
        let faulty = FaultySocket::new(a, spec, 3);
        faulty.send_to(&[0u8; 32], b_addr).unwrap();
        let mut buf = [0u8; 64];
        let (len, _) = Transport::recv_from(&b, &mut buf).unwrap();
        assert_eq!(len, 32);
        assert_ne!(&buf[..len], &[0u8; 32], "one bit must differ");
        assert_eq!(faulty.fault_counts().bit_flips, 1);
    }
}
