//! Spawn-N-agents localhost harness.
//!
//! Binds one UDP socket per node on 127.0.0.1 (ephemeral ports),
//! distributes the address book and random neighbor sets, runs every
//! agent on its own OS thread for a wall-clock budget, then joins the
//! threads and returns the trained coordinates for evaluation.
//!
//! The harness can optionally route every agent's outgoing datagrams
//! through a seeded [`FaultSpec`] (drop / duplicate / reorder /
//! truncate / bit-flip), which is how the loss-hardening tests and
//! `examples/lossy_cluster.rs` exercise the v2 recovery machinery
//! end to end over real sockets.

use crate::agent::{run_agent, AgentHandle, AgentStats};
use crate::oracle::MeasurementOracle;
use crate::transport::FaultySocket;
use dmf_core::{ConfigError, DmfsgdConfig, DmfsgdError, DmfsgdNode, MembershipError};
use dmf_datasets::Dataset;
use dmf_linalg::Matrix;
use dmf_proto::{FaultSpec, WireVersion};
use dmf_simnet::NeighborSets;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Cluster-level configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// DMFSGD parameters (rank, η, λ, loss, k, seed).
    pub dmfsgd: DmfsgdConfig,
    /// Wall-clock run duration.
    pub duration: Duration,
    /// Per-agent probe period.
    pub probe_interval: Duration,
    /// Wire protocol version agents probe in (replies always follow
    /// the probe's version, so mixed clusters interoperate).
    pub wire: WireVersion,
    /// Reply timeout before a probe is retransmitted.
    pub probe_timeout: Duration,
    /// Retransmissions allowed per probe before it is abandoned.
    pub max_retries: u32,
    /// Optional send-path fault model applied to every agent's
    /// socket; `None` leaves the sockets untouched.
    pub faults: Option<FaultSpec>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            dmfsgd: DmfsgdConfig::paper_defaults(),
            duration: Duration::from_secs(2),
            probe_interval: Duration::from_millis(5),
            wire: WireVersion::default(),
            probe_timeout: Duration::from_millis(40),
            max_retries: 2,
            faults: None,
        }
    }
}

/// The result of a cluster run.
pub struct ClusterOutcome {
    /// Trained nodes, indexed by node id.
    pub nodes: Vec<DmfsgdNode>,
    /// Per-agent statistics.
    pub stats: Vec<AgentStats>,
}

impl ClusterOutcome {
    /// Raw score `u_i · v_j`.
    pub fn raw_score(&self, i: usize, j: usize) -> f64 {
        self.nodes[i].predict_to(&self.nodes[j])
    }

    /// All pairwise scores (diagonal zeroed).
    pub fn predicted_scores(&self) -> Matrix {
        let n = self.nodes.len();
        Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { self.raw_score(i, j) })
    }

    /// Total SGD updates applied across agents.
    pub fn total_updates(&self) -> usize {
        self.stats.iter().map(|s| s.updates_applied).sum()
    }

    /// Total application bytes sent across agents.
    pub fn total_bytes_sent(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// All per-agent counters folded into one [`AgentStats`].
    pub fn merged_stats(&self) -> AgentStats {
        let mut total = AgentStats::default();
        for s in &self.stats {
            total.merge(s);
        }
        total
    }

    /// One-shot exposition dump of the whole run's merged counters
    /// (see [`crate::metrics::stats_snapshot`]).
    pub fn metrics_snapshot(&self) -> dmf_ops::MetricsSnapshot {
        crate::metrics::stats_snapshot(&self.merged_stats())
    }
}

/// A running (or finished) localhost deployment.
pub struct UdpCluster;

impl UdpCluster {
    /// Runs a full cluster lifecycle: bind, spawn, run, stop, join.
    /// Agents start from fresh random coordinates and randomly drawn
    /// neighbor sets.
    ///
    /// The classification threshold is `tau`; the dataset decides
    /// whether agents speak Algorithm 1 (RTT) or Algorithm 2 (ABW).
    /// Configuration problems and socket failures surface as typed
    /// [`DmfsgdError`]s — nothing panics on caller input.
    pub fn run(
        dataset: Dataset,
        tau: f64,
        config: ClusterConfig,
    ) -> Result<ClusterOutcome, DmfsgdError> {
        config.dmfsgd.try_validate()?;
        let n = dataset.len();
        if n <= config.dmfsgd.k {
            return Err(ConfigError::TooFewNodes {
                n,
                k: config.dmfsgd.k,
            }
            .into());
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.dmfsgd.seed ^ 0x7ea2_0001);
        let nodes: Vec<DmfsgdNode> = (0..n)
            .map(|i| DmfsgdNode::new(i, config.dmfsgd.rank, &mut rng))
            .collect();
        let neighbor_sets = NeighborSets::random(n, config.dmfsgd.k, &mut rng);
        Self::run_with_nodes(dataset, tau, config, nodes, &neighbor_sets)
    }

    /// [`run`](Self::run) starting from explicit node states and
    /// neighbor sets — the warm-start path [`crate::driver::UdpDriver`]
    /// uses to advance an existing `dmf_core::Session` population over
    /// real sockets. `nodes[i].id` must equal `i` and the neighbor
    /// sets must cover exactly the same population.
    pub fn run_with_nodes(
        dataset: Dataset,
        tau: f64,
        config: ClusterConfig,
        nodes: Vec<DmfsgdNode>,
        neighbor_sets: &NeighborSets,
    ) -> Result<ClusterOutcome, DmfsgdError> {
        ConfigError::check_tau(tau)?;
        let oracle = Arc::new(MeasurementOracle::new(
            dataset,
            tau,
            config.dmfsgd.seed ^ 0x0c0a_17e5,
        ));
        Self::run_with_oracle(oracle, config, nodes, neighbor_sets)
    }

    /// [`run_with_nodes`](Self::run_with_nodes) with a pre-built
    /// shared oracle — the repeated-round path
    /// (`crate::driver::UdpDriver`) builds the oracle once and avoids
    /// re-copying the O(n²) ground truth every round.
    pub fn run_with_oracle(
        oracle: Arc<MeasurementOracle>,
        config: ClusterConfig,
        nodes: Vec<DmfsgdNode>,
        neighbor_sets: &NeighborSets,
    ) -> Result<ClusterOutcome, DmfsgdError> {
        config.dmfsgd.try_validate()?;
        let n = nodes.len();
        if oracle.len() != n || neighbor_sets.len() != n {
            return Err(MembershipError::ProviderMismatch {
                provider: oracle.len().min(neighbor_sets.len()),
                session: n,
            }
            .into());
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.id != i {
                return Err(MembershipError::UnknownNode {
                    id: node.id,
                    slots: n,
                }
                .into());
            }
        }
        let io_err = |e: std::io::Error| DmfsgdError::Transport(e.to_string());

        // Bind all sockets first so the address book is complete
        // before any agent starts. The short read timeout is what
        // keeps the agent loop responsive; failing to set it is a
        // typed transport error, not a panic.
        let mut sockets = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let socket = UdpSocket::bind("127.0.0.1:0").map_err(io_err)?;
            socket
                .set_read_timeout(Some(Duration::from_millis(2)))
                .map_err(io_err)?;
            addrs.push(socket.local_addr().map_err(io_err)?);
            sockets.push(socket);
        }

        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::with_capacity(n);
        // The handle construction is duplicated across the two arms
        // because `AgentHandle<T>` is generic in its transport: one
        // arm builds `AgentHandle<FaultySocket>`, the other
        // `AgentHandle<UdpSocket>`.
        macro_rules! spawn_agent {
            ($socket:expr, $node:expr, $id:expr, $seed:expr) => {{
                let handle = AgentHandle {
                    node: $node,
                    socket: $socket,
                    peers: addrs.clone(),
                    neighbors: neighbor_sets.neighbors($id).to_vec(),
                    oracle: Arc::clone(&oracle),
                    config: config.dmfsgd,
                    stop: Arc::clone(&stop),
                    probe_interval: config.probe_interval,
                    wire: config.wire,
                    probe_timeout: config.probe_timeout,
                    max_retries: config.max_retries,
                    metrics: None,
                };
                let seed = $seed;
                thread::spawn(move || run_agent(handle, seed))
            }};
        }
        for (id, (socket, node)) in sockets.into_iter().zip(nodes).enumerate() {
            let seed = config.dmfsgd.seed ^ ((id as u64) << 8) ^ 0xa9e1;
            handles.push(match config.faults {
                Some(spec) if !spec.is_none() => {
                    let faulty = FaultySocket::new(socket, spec, seed ^ 0xfa17_0000);
                    spawn_agent!(faulty, node, id, seed)
                }
                _ => spawn_agent!(socket, node, id, seed),
            });
        }

        thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);

        let mut nodes = Vec::with_capacity(n);
        let mut stats = Vec::with_capacity(n);
        for handle in handles {
            let (node, agent_stats) = handle.join().expect("agent thread panicked")?;
            nodes.push(node);
            stats.push(agent_stats);
        }
        // Threads are joined in spawn order, so ids line up; assert it.
        for (idx, node) in nodes.iter().enumerate() {
            assert_eq!(node.id, idx, "node ids must line up with indices");
        }
        Ok(ClusterOutcome { nodes, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::rtt::meridian_like;
    use dmf_eval::{collect_scores, roc::auc};

    #[test]
    fn rtt_cluster_learns_over_real_udp() {
        let d = meridian_like(24, 1);
        let tau = d.median();
        let cm = d.classify(tau);
        let outcome = UdpCluster::run(
            d,
            tau,
            ClusterConfig {
                duration: Duration::from_millis(2500),
                probe_interval: Duration::from_millis(2),
                ..ClusterConfig::default()
            },
        )
        .expect("cluster run");
        assert!(
            outcome.total_updates() > 24 * 50,
            "too few updates: {}",
            outcome.total_updates()
        );
        let a = auc(&collect_scores(&cm, &outcome.predicted_scores()));
        assert!(a > 0.75, "UDP cluster AUC {a}");
    }

    #[test]
    fn abw_cluster_learns_over_real_udp() {
        let d = hps3_like(24, 2);
        let tau = d.median();
        let cm = d.classify(tau);
        let outcome = UdpCluster::run(
            d,
            tau,
            ClusterConfig {
                duration: Duration::from_millis(2500),
                probe_interval: Duration::from_millis(2),
                ..ClusterConfig::default()
            },
        )
        .expect("cluster run");
        let a = auc(&collect_scores(&cm, &outcome.predicted_scores()));
        assert!(a > 0.7, "ABW UDP cluster AUC {a}");
    }

    #[test]
    fn v1_cluster_still_learns() {
        let d = meridian_like(16, 4);
        let tau = d.median();
        let cm = d.classify(tau);
        let outcome = UdpCluster::run(
            d,
            tau,
            ClusterConfig {
                duration: Duration::from_millis(1500),
                probe_interval: Duration::from_millis(2),
                wire: WireVersion::V1,
                ..ClusterConfig::default()
            },
        )
        .expect("cluster run");
        let a = auc(&collect_scores(&cm, &outcome.predicted_scores()));
        assert!(a > 0.7, "v1 UDP cluster AUC {a}");
    }

    #[test]
    fn agents_report_stats() {
        let d = meridian_like(15, 3);
        let tau = d.median();
        let outcome = UdpCluster::run(
            d,
            tau,
            ClusterConfig {
                duration: Duration::from_millis(600),
                probe_interval: Duration::from_millis(3),
                ..ClusterConfig::default()
            },
        )
        .expect("cluster run");
        assert_eq!(outcome.stats.len(), 15);
        for s in &outcome.stats {
            assert!(s.probes_sent > 0, "every agent must probe");
            assert!(s.bytes_sent > 0, "every agent must send bytes");
            assert!(s.bytes_received > 0, "every agent must receive bytes");
        }
    }

    #[test]
    fn retries_and_eviction_under_total_loss() {
        // Every outgoing datagram is dropped: no replies ever arrive,
        // so probes must time out, retry with backoff, and the
        // outstanding table must stay bounded via oldest-first
        // eviction rather than growing (or being wholesale cleared).
        let d = meridian_like(6, 5);
        let tau = d.median();
        let outcome = UdpCluster::run(
            d,
            tau,
            ClusterConfig {
                // k = 2 keeps the outstanding cap (4·k + 16) small
                // enough for a short run to overflow it.
                dmfsgd: DmfsgdConfig {
                    k: 2,
                    ..DmfsgdConfig::paper_defaults()
                },
                duration: Duration::from_millis(500),
                probe_interval: Duration::from_millis(1),
                probe_timeout: Duration::from_millis(4),
                max_retries: 10,
                faults: Some(FaultSpec {
                    drop: 1.0,
                    ..FaultSpec::none()
                }),
                ..ClusterConfig::default()
            },
        )
        .expect("cluster run");
        let retries: usize = outcome.stats.iter().map(|s| s.retries).sum();
        let evictions: usize = outcome.stats.iter().map(|s| s.evictions).sum();
        assert_eq!(outcome.total_updates(), 0, "nothing can get through");
        assert!(retries > 0, "expected retransmissions under total loss");
        assert!(evictions > 0, "expected oldest-first evictions at cap");
    }

    #[test]
    fn abandoned_probes_are_counted() {
        let d = meridian_like(12, 6);
        let tau = d.median();
        let outcome = UdpCluster::run(
            d,
            tau,
            ClusterConfig {
                duration: Duration::from_millis(300),
                probe_interval: Duration::from_millis(2),
                probe_timeout: Duration::from_millis(4),
                max_retries: 0,
                faults: Some(FaultSpec {
                    drop: 1.0,
                    ..FaultSpec::none()
                }),
                ..ClusterConfig::default()
            },
        )
        .expect("cluster run");
        let abandoned: usize = outcome.stats.iter().map(|s| s.probes_abandoned).sum();
        assert!(abandoned > 0, "zero-retry probes must be abandoned");
    }
}
