//! Property-based tests for the evaluation criteria.

use dmf_eval::pr::pr_curve;
use dmf_eval::roc::{auc_from_curve, auc_mann_whitney, roc_curve};
use dmf_eval::window::{window_stats, RollingAuc};
use dmf_eval::ScoredLabel;
use proptest::prelude::*;

/// A strategy producing sample sets containing both classes.
fn mixed_samples() -> impl Strategy<Value = Vec<ScoredLabel>> {
    (
        proptest::collection::vec(-100.0f64..100.0, 1..40),
        proptest::collection::vec(-100.0f64..100.0, 1..40),
    )
        .prop_map(|(pos, neg)| {
            let mut v: Vec<ScoredLabel> = pos
                .into_iter()
                .map(|score| ScoredLabel {
                    positive: true,
                    score,
                })
                .collect();
            v.extend(neg.into_iter().map(|score| ScoredLabel {
                positive: false,
                score,
            }));
            v
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn auc_in_unit_interval(samples in mixed_samples()) {
        let a = auc_mann_whitney(&samples);
        prop_assert!((0.0..=1.0).contains(&a), "AUC {a}");
    }

    #[test]
    fn trapezoid_matches_mann_whitney(samples in mixed_samples()) {
        let a1 = auc_mann_whitney(&samples);
        let a2 = auc_from_curve(&roc_curve(&samples));
        prop_assert!((a1 - a2).abs() < 1e-9, "mw {a1} vs trapezoid {a2}");
    }

    #[test]
    fn auc_flips_under_score_negation(samples in mixed_samples()) {
        let a = auc_mann_whitney(&samples);
        let negated: Vec<ScoredLabel> = samples
            .iter()
            .map(|s| ScoredLabel { positive: s.positive, score: -s.score })
            .collect();
        let b = auc_mann_whitney(&negated);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }

    #[test]
    fn auc_invariant_under_monotone_transform(samples in mixed_samples()) {
        let a = auc_mann_whitney(&samples);
        let squashed: Vec<ScoredLabel> = samples
            .iter()
            .map(|s| ScoredLabel {
                positive: s.positive,
                // Positive affine map is strictly increasing (and,
                // unlike saturating maps such as tanh, never collapses
                // distinct scores at f64 precision) → ranking preserved.
                score: s.score * 0.5 + 10.0,
            })
            .collect();
        let b = auc_mann_whitney(&squashed);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn roc_curve_is_monotone_staircase(samples in mixed_samples()) {
        let curve = roc_curve(&samples);
        prop_assert!(curve.len() >= 2);
        for w in curve.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr - 1e-12);
            prop_assert!(w[1].tpr >= w[0].tpr - 1e-12);
        }
        let last = curve.last().unwrap();
        prop_assert!((last.fpr - 1.0).abs() < 1e-12);
        prop_assert!((last.tpr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pr_recall_monotone_and_bounded(samples in mixed_samples()) {
        let curve = pr_curve(&samples);
        for w in curve.windows(2) {
            prop_assert!(w[1].recall >= w[0].recall - 1e-12);
        }
        for p in &curve {
            prop_assert!((0.0..=1.0).contains(&p.precision));
            prop_assert!((0.0..=1.0).contains(&p.recall));
        }
    }

    #[test]
    fn confusion_counts_are_exhaustive(samples in mixed_samples(), threshold in -50.0f64..50.0) {
        let cm = dmf_eval::ConfusionMatrix::at_threshold(&samples, threshold);
        prop_assert_eq!(cm.total(), samples.len());
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
    }

    #[test]
    fn rolling_window_over_whole_stream_equals_global(samples in mixed_samples()) {
        // A window large enough to hold the whole stream must agree
        // exactly with the batch evaluation — the rolling machinery
        // may not perturb the statistics it windows.
        let mut w = RollingAuc::new(samples.len());
        for &x in &samples {
            w.push(x);
        }
        let global = window_stats(&samples).expect("mixed stream");
        let rolled = w.stats().expect("mixed stream");
        prop_assert!((rolled.auc - global.auc).abs() < 1e-12);
        prop_assert!((rolled.accuracy - global.accuracy).abs() < 1e-12);
        prop_assert_eq!(rolled.positives, global.positives);
        prop_assert_eq!(rolled.negatives, global.negatives);
        prop_assert!((rolled.auc - auc_mann_whitney(&samples)).abs() < 1e-12);
    }

    #[test]
    fn constant_stream_window_auc_equals_global(
        samples in mixed_samples(),
        reps in 2usize..5,
    ) {
        // A *constant* (periodic) stream: the same sample set arrives
        // over and over. However long the stream runs, a window
        // holding exactly one period sees the same multiset as the
        // global evaluation — AUC and accuracy are set statistics, so
        // windowed == global, regardless of where the window lands in
        // the period (the ring is rotated, the multiset is not).
        let period = samples.len();
        let mut w = RollingAuc::new(period);
        for _ in 0..reps {
            for &x in &samples {
                w.push(x);
            }
        }
        prop_assert_eq!(w.len(), period);
        let global = window_stats(&samples).expect("mixed stream");
        let rolled = w.stats().expect("window covers one full period");
        prop_assert!(
            (rolled.auc - global.auc).abs() < 1e-12,
            "window AUC {} != global AUC {}", rolled.auc, global.auc
        );
        prop_assert!((rolled.accuracy - global.accuracy).abs() < 1e-12);
    }

    #[test]
    fn partial_period_offset_keeps_window_auc_in_bounds(
        samples in mixed_samples(),
        offset in 1usize..20,
    ) {
        // Pushing a partial extra period rotates the ring mid-period;
        // the window still holds `period` of the last samples and the
        // statistics stay well-formed.
        let period = samples.len();
        let mut w = RollingAuc::new(period);
        for &x in &samples {
            w.push(x);
        }
        for &x in samples.iter().cycle().take(offset % period) {
            w.push(x);
        }
        if let Some(stats) = w.stats() {
            prop_assert!((0.0..=1.0).contains(&stats.auc));
            prop_assert!((0.0..=1.0).contains(&stats.accuracy));
            prop_assert_eq!(stats.positives + stats.negatives, period);
        }
    }
}
