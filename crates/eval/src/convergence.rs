//! Convergence tracking (paper Figure 5c).
//!
//! The paper plots AUC against "the average measurement number per
//! node, i.e. the total number of measurements used by all nodes
//! divided by the number of nodes", and observes convergence after no
//! more than `20 × k` measurements per node.

use serde::{Deserialize, Serialize};

/// One convergence sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Average measurements consumed per node so far.
    pub avg_measurements_per_node: f64,
    /// AUC at that point.
    pub auc: f64,
}

/// Accumulates an AUC-vs-measurements series.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ConvergenceTracker {
    points: Vec<ConvergencePoint>,
}

impl ConvergenceTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Samples must arrive in increasing
    /// measurement order.
    pub fn record(&mut self, avg_measurements_per_node: f64, auc: f64) {
        if let Some(last) = self.points.last() {
            assert!(
                avg_measurements_per_node >= last.avg_measurements_per_node,
                "convergence samples must be recorded in measurement order"
            );
        }
        assert!((0.0..=1.0).contains(&auc), "AUC {auc} out of [0,1]");
        self.points.push(ConvergencePoint {
            avg_measurements_per_node,
            auc,
        });
    }

    /// The recorded series.
    pub fn points(&self) -> &[ConvergencePoint] {
        &self.points
    }

    /// The last AUC recorded, if any.
    pub fn final_auc(&self) -> Option<f64> {
        self.points.last().map(|p| p.auc)
    }

    /// The measurement budget at which the AUC first reached `target`
    /// (the paper's "converges after ~20×k" observation).
    pub fn measurements_to_reach(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.auc >= target)
            .map(|p| p.avg_measurements_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries() {
        let mut t = ConvergenceTracker::new();
        t.record(0.0, 0.5);
        t.record(10.0, 0.8);
        t.record(20.0, 0.93);
        assert_eq!(t.points().len(), 3);
        assert_eq!(t.final_auc(), Some(0.93));
        assert_eq!(t.measurements_to_reach(0.8), Some(10.0));
        assert_eq!(t.measurements_to_reach(0.99), None);
    }

    #[test]
    fn empty_tracker() {
        let t = ConvergenceTracker::new();
        assert!(t.points().is_empty());
        assert_eq!(t.final_auc(), None);
        assert_eq!(t.measurements_to_reach(0.5), None);
    }

    #[test]
    #[should_panic(expected = "measurement order")]
    fn out_of_order_rejected() {
        let mut t = ConvergenceTracker::new();
        t.record(10.0, 0.7);
        t.record(5.0, 0.8);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn auc_range_checked() {
        let mut t = ConvergenceTracker::new();
        t.record(0.0, 1.5);
    }
}
