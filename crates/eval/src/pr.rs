//! Precision–recall curves (paper §6.1, Figure 5b).
//!
//! "The precision for a class is the number of true positives divided
//! by the total number of elements labeled as belonging to the
//! positive class, and the recall for a class is equal to the TPR."

use crate::ScoredLabel;
use serde::{Deserialize, Serialize};

/// One precision–recall point at some discrimination threshold.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Recall (true positive rate).
    pub recall: f64,
    /// Precision.
    pub precision: f64,
    /// Threshold that produced the point.
    pub threshold: f64,
}

/// Computes the precision–recall curve by sweeping the threshold from
/// strict to lenient; points are ordered by increasing recall.
///
/// # Panics
/// Panics without positive samples.
pub fn pr_curve(samples: &[ScoredLabel]) -> Vec<PrPoint> {
    let positives = samples.iter().filter(|s| s.positive).count();
    assert!(positives > 0, "PR curve undefined without positive samples");

    let mut sorted: Vec<&ScoredLabel> = samples.iter().collect();
    sorted.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("NaN score"));

    let mut curve = Vec::new();
    let mut tp = 0usize;
    let mut predicted_pos = 0usize;
    let mut idx = 0;
    while idx < sorted.len() {
        let score = sorted[idx].score;
        while idx < sorted.len() && sorted[idx].score == score {
            if sorted[idx].positive {
                tp += 1;
            }
            predicted_pos += 1;
            idx += 1;
        }
        curve.push(PrPoint {
            recall: tp as f64 / positives as f64,
            precision: tp as f64 / predicted_pos as f64,
            threshold: score,
        });
    }
    curve
}

/// Average precision: the PR curve summarized by the precision
/// achieved at each positive sample (the usual AP metric).
pub fn average_precision(samples: &[ScoredLabel]) -> f64 {
    let positives = samples.iter().filter(|s| s.positive).count();
    assert!(positives > 0, "AP undefined without positive samples");
    let mut sorted: Vec<&ScoredLabel> = samples.iter().collect();
    sorted.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("NaN score"));
    let mut tp = 0usize;
    let mut ap = 0.0;
    for (rank0, sample) in sorted.iter().enumerate() {
        if sample.positive {
            tp += 1;
            ap += tp as f64 / (rank0 + 1) as f64;
        }
    }
    ap / positives as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(positive: bool, score: f64) -> ScoredLabel {
        ScoredLabel { positive, score }
    }

    #[test]
    fn perfect_ranking_has_unit_precision() {
        let samples = vec![s(true, 3.0), s(true, 2.0), s(false, 1.0), s(false, 0.5)];
        let curve = pr_curve(&samples);
        // While recall < 1 every predicted positive is a true positive.
        for p in curve
            .iter()
            .filter(|p| p.recall <= 1.0 && p.threshold >= 2.0)
        {
            assert_eq!(p.precision, 1.0);
        }
        assert_eq!(average_precision(&samples), 1.0);
    }

    #[test]
    fn recall_reaches_one() {
        let samples = vec![s(true, 1.0), s(false, 2.0), s(true, 0.0)];
        let curve = pr_curve(&samples);
        assert_eq!(curve.last().unwrap().recall, 1.0);
    }

    #[test]
    fn known_average_precision() {
        // Ranking: pos, neg, pos → AP = (1/1 + 2/3) / 2 = 5/6.
        let samples = vec![s(true, 3.0), s(false, 2.0), s(true, 1.0)];
        assert!((average_precision(&samples) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn precision_in_unit_interval_and_recall_monotone() {
        let samples = vec![
            s(true, 0.8),
            s(false, 0.7),
            s(true, 0.6),
            s(false, 0.5),
            s(true, 0.4),
            s(false, 0.3),
        ];
        let curve = pr_curve(&samples);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
        for p in &curve {
            assert!((0.0..=1.0).contains(&p.precision));
        }
    }

    #[test]
    fn ties_grouped() {
        let samples = vec![s(true, 1.0), s(false, 1.0)];
        let curve = pr_curve(&samples);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].precision, 0.5);
        assert_eq!(curve[0].recall, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive samples")]
    fn no_positives_rejected() {
        pr_curve(&[s(false, 1.0)]);
    }
}
