//! Peer-selection evaluation (paper §6.4, Figure 7).
//!
//! Each node owns a peer set (disjoint from its training neighbors)
//! and must pick one peer to interact with. Two criteria:
//!
//! * **Optimality** — the *stretch* `s_i = x_i• / x_i◦`, where `•` is
//!   the selected peer and `◦` the true best peer of the set; > 1 for
//!   RTT, < 1 for ABW, closer to 1 is better.
//! * **Satisfaction** — the percentage of *unsatisfied* nodes: nodes
//!   that selected a "bad" peer although a "good" peer existed in
//!   their set. Nodes whose peer set contains no good peer are
//!   excluded (no satisfactory choice exists for them).
//!
//! Selection strategies mirror the paper: class-based prediction picks
//! the largest raw score `x̂_ij` ("without taking its sign or
//! thresholding it"); quantity-based prediction picks the best
//! predicted metric value; random picks uniformly.

use dmf_datasets::{Dataset, Metric};
use dmf_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a node picks a peer from its peer set.
#[derive(Clone, Copy, Debug)]
pub enum SelectionStrategy<'a> {
    /// Class-based: highest predictor score `x̂_ij = u_i · v_j`.
    HighestScore(&'a Matrix),
    /// Quantity-based: best predicted quantity under the metric
    /// (smallest for RTT, largest for ABW).
    BestPredictedQuantity(&'a Matrix, Metric),
    /// Uniform random choice (the paper's baseline).
    Random,
}

/// Aggregate outcome of a peer-selection experiment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PeerSelectionOutcome {
    /// Mean stretch over nodes with a usable peer set.
    pub avg_stretch: f64,
    /// Fraction of unsatisfied nodes among nodes that had at least one
    /// good peer available.
    pub unsatisfied_fraction: f64,
    /// Nodes contributing to the stretch average.
    pub stretch_nodes: usize,
    /// Nodes contributing to the satisfaction denominator.
    pub satisfaction_nodes: usize,
}

/// Runs peer selection for every node and aggregates the two criteria.
///
/// `tau` classifies ground-truth quantities into good/bad for the
/// satisfaction criterion. Peers whose ground-truth quantity is
/// unobserved are ignored (they cannot be scored as outcomes).
pub fn evaluate_peer_selection(
    dataset: &Dataset,
    tau: f64,
    peer_sets: &[Vec<usize>],
    strategy: SelectionStrategy<'_>,
    rng: &mut (impl Rng + ?Sized),
) -> PeerSelectionOutcome {
    let n = dataset.len();
    assert_eq!(peer_sets.len(), n, "one peer set per node required");

    let mut stretch_sum = 0.0;
    let mut stretch_nodes = 0usize;
    let mut unsatisfied = 0usize;
    let mut satisfaction_nodes = 0usize;

    for (i, peers) in peer_sets.iter().enumerate() {
        // Keep peers with observed ground truth; selection can only be
        // judged on pairs whose outcome is known.
        let usable: Vec<usize> = peers
            .iter()
            .copied()
            .filter(|&p| p != i && dataset.value(i, p).is_some())
            .collect();
        if usable.is_empty() {
            continue;
        }

        let selected = match strategy {
            SelectionStrategy::HighestScore(scores) => {
                assert_eq!(scores.shape(), (n, n), "score matrix shape mismatch");
                *usable
                    .iter()
                    .max_by(|&&a, &&b| {
                        scores[(i, a)]
                            .partial_cmp(&scores[(i, b)])
                            .expect("NaN score")
                    })
                    .expect("non-empty usable set")
            }
            SelectionStrategy::BestPredictedQuantity(pred, metric) => {
                assert_eq!(pred.shape(), (n, n), "prediction matrix shape mismatch");
                *usable
                    .iter()
                    .max_by(|&&a, &&b| {
                        // "better" quantity wins: invert comparison for RTT.
                        let (x, y) = (pred[(i, a)], pred[(i, b)]);
                        if metric.lower_is_better() {
                            y.partial_cmp(&x).expect("NaN prediction")
                        } else {
                            x.partial_cmp(&y).expect("NaN prediction")
                        }
                    })
                    .expect("non-empty usable set")
            }
            SelectionStrategy::Random => usable[rng.gen_range(0..usable.len())],
        };

        // True best peer under the metric.
        let best = *usable
            .iter()
            .max_by(|&&a, &&b| {
                let (x, y) = (
                    dataset.value(i, a).expect("filtered"),
                    dataset.value(i, b).expect("filtered"),
                );
                if dataset.metric.lower_is_better() {
                    y.partial_cmp(&x).expect("NaN value")
                } else {
                    x.partial_cmp(&y).expect("NaN value")
                }
            })
            .expect("non-empty usable set");

        let x_selected = dataset.value(i, selected).expect("filtered");
        let x_best = dataset.value(i, best).expect("filtered");
        if x_best > 0.0 {
            stretch_sum += x_selected / x_best;
            stretch_nodes += 1;
        }

        // Satisfaction criterion.
        let any_good = usable.iter().any(|&p| {
            dataset
                .metric
                .classify(dataset.value(i, p).expect("filtered"), tau)
                > 0.0
        });
        if any_good {
            satisfaction_nodes += 1;
            let selected_good = dataset.metric.classify(x_selected, tau) > 0.0;
            if !selected_good {
                unsatisfied += 1;
            }
        }
    }

    PeerSelectionOutcome {
        avg_stretch: if stretch_nodes > 0 {
            stretch_sum / stretch_nodes as f64
        } else {
            f64::NAN
        },
        unsatisfied_fraction: if satisfaction_nodes > 0 {
            unsatisfied as f64 / satisfaction_nodes as f64
        } else {
            0.0
        },
        stretch_nodes,
        satisfaction_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::rtt::meridian_like;
    use dmf_linalg::Mask;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Oracle scores: negative RTT, so HighestScore picks the true best.
    fn oracle_scores(d: &Dataset) -> Matrix {
        let n = d.len();
        Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { -d.values[(i, j)] })
    }

    #[test]
    fn oracle_selection_has_unit_stretch_and_full_satisfaction() {
        let d = meridian_like(40, 1);
        let tau = d.median();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let peer_sets: Vec<Vec<usize>> = (0..40)
            .map(|i| (0..40).filter(|&p| p != i).take(10).collect())
            .collect();
        let scores = oracle_scores(&d);
        let out = evaluate_peer_selection(
            &d,
            tau,
            &peer_sets,
            SelectionStrategy::HighestScore(&scores),
            &mut rng,
        );
        assert!((out.avg_stretch - 1.0).abs() < 1e-12);
        assert_eq!(out.unsatisfied_fraction, 0.0);
        assert_eq!(out.stretch_nodes, 40);
    }

    #[test]
    fn random_selection_is_worse_than_oracle() {
        let d = meridian_like(60, 2);
        let tau = d.median();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let peer_sets: Vec<Vec<usize>> = (0..60)
            .map(|i| (0..60).filter(|&p| p != i).take(20).collect())
            .collect();
        let rnd = evaluate_peer_selection(&d, tau, &peer_sets, SelectionStrategy::Random, &mut rng);
        assert!(rnd.avg_stretch > 1.3, "random stretch {}", rnd.avg_stretch);
        assert!(
            rnd.unsatisfied_fraction > 0.2,
            "random unsatisfied {}",
            rnd.unsatisfied_fraction
        );
    }

    #[test]
    fn quantity_oracle_matches_score_oracle() {
        let d = meridian_like(30, 3);
        let tau = d.median();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let peer_sets: Vec<Vec<usize>> = (0..30)
            .map(|i| (0..30).filter(|&p| p != i).take(8).collect())
            .collect();
        let pred = d.values.clone(); // perfect quantity prediction
        let out = evaluate_peer_selection(
            &d,
            tau,
            &peer_sets,
            SelectionStrategy::BestPredictedQuantity(&pred, Metric::Rtt),
            &mut rng,
        );
        assert!((out.avg_stretch - 1.0).abs() < 1e-12);
        assert_eq!(out.unsatisfied_fraction, 0.0);
    }

    #[test]
    fn nodes_without_good_peers_excluded_from_satisfaction() {
        // Two nodes, peer values far above tau → no good peers at all.
        let values = dmf_linalg::Matrix::from_rows(&[
            &[0.0, 500.0, 600.0],
            &[500.0, 0.0, 700.0],
            &[600.0, 700.0, 0.0],
        ]);
        let d = Dataset::new("toy", Metric::Rtt, values, Mask::full_off_diagonal(3));
        let peer_sets = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let out =
            evaluate_peer_selection(&d, 100.0, &peer_sets, SelectionStrategy::Random, &mut rng);
        assert_eq!(out.satisfaction_nodes, 0);
        assert_eq!(out.unsatisfied_fraction, 0.0);
        assert_eq!(out.stretch_nodes, 3); // stretch still defined
    }

    #[test]
    fn unobserved_peers_skipped() {
        let values = dmf_linalg::Matrix::from_rows(&[
            &[0.0, 10.0, 0.0],
            &[10.0, 0.0, 20.0],
            &[0.0, 20.0, 0.0],
        ]);
        let mut mask = Mask::full_off_diagonal(3);
        mask.set(0, 2, false);
        mask.set(2, 0, false);
        let d = Dataset::new("sparse", Metric::Rtt, values, mask);
        // Node 0's peer set contains an unobserved pair (2): only peer 1
        // remains usable, stretch must be 1.
        let peer_sets = vec![vec![1, 2], vec![], vec![]];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let out =
            evaluate_peer_selection(&d, 15.0, &peer_sets, SelectionStrategy::Random, &mut rng);
        assert_eq!(out.stretch_nodes, 1);
        assert!((out.avg_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abw_stretch_below_one() {
        // For ABW the selected/best ratio is ≤ 1.
        let d = dmf_datasets::abw::hps3_like(30, 6);
        let tau = d.median();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let peer_sets: Vec<Vec<usize>> = (0..30)
            .map(|i| (0..30).filter(|&p| p != i).take(10).collect())
            .collect();
        let out = evaluate_peer_selection(&d, tau, &peer_sets, SelectionStrategy::Random, &mut rng);
        assert!(
            out.avg_stretch <= 1.0 + 1e-12,
            "ABW stretch {}",
            out.avg_stretch
        );
        assert!(out.avg_stretch > 0.0);
    }
}
