//! Windowed and rolling quality evaluation.
//!
//! The classic criteria ([`crate::roc`], [`crate::confusion`]) score a
//! predictor once, over everything it has seen — the right lens for
//! the paper's stationary matrices, and a blind one for non-stationary
//! scenarios where quality *during* a congestion epoch or *after* a
//! partition heals is the whole question. This module provides the
//! per-epoch lens:
//!
//! * [`window_stats`] — AUC + sign accuracy of one batch of scored
//!   labels (one evaluation window), tolerant of single-class windows
//!   (AUC is undefined there, so the result is `None` instead of a
//!   panic — a window of a quiet scenario can easily be all-good);
//! * [`RollingAuc`] — a fixed-capacity ring of the most recent scored
//!   labels for streaming consumers (trace replay, live agents) that
//!   cannot batch by simulated time. Pushes are O(1); each quality
//!   query recomputes over the current window (O(w log w) for a
//!   window of `w`), so query at window cadence, not per sample.
//!
//! Both report through [`WindowStats`], the per-window record the
//! scenario suite serializes into `QUALITY.json`.

use crate::roc::auc_mann_whitney;
use crate::ScoredLabel;
use serde::{Deserialize, Serialize};

/// Quality of one evaluation window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Area under the ROC curve over the window's samples.
    pub auc: f64,
    /// Sign accuracy: fraction of samples where `score >= 0` matches
    /// the label.
    pub accuracy: f64,
    /// Positive ("good") samples in the window.
    pub positives: usize,
    /// Negative ("bad") samples in the window.
    pub negatives: usize,
}

/// Sign accuracy of a batch: `score >= 0` predicts the positive
/// class. `None` for an empty batch.
pub fn sign_accuracy(samples: &[ScoredLabel]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let ok = samples
        .iter()
        .filter(|s| (s.score >= 0.0) == s.positive)
        .count();
    Some(ok as f64 / samples.len() as f64)
}

/// Evaluates one window of scored labels. Returns `None` when either
/// class is absent (AUC is undefined for a single-class window).
pub fn window_stats(samples: &[ScoredLabel]) -> Option<WindowStats> {
    let positives = samples.iter().filter(|s| s.positive).count();
    let negatives = samples.len() - positives;
    if positives == 0 || negatives == 0 {
        return None;
    }
    Some(WindowStats {
        auc: auc_mann_whitney(samples),
        accuracy: sign_accuracy(samples).expect("non-empty window"),
        positives,
        negatives,
    })
}

/// A rolling window over the most recent scored labels: a
/// fixed-capacity ring buffer with AUC/accuracy queries over its
/// current content. Queries recompute from the ring (`O(w log w)` per
/// call, not incremental) — intended usage is many pushes per query.
///
/// Every quality query is order-invariant (AUC and accuracy are set
/// statistics), so a full ring containing one period of a periodic
/// stream reports exactly the stream's global quality — the property
/// the `dmf-eval` proptests pin.
#[derive(Clone, Debug)]
pub struct RollingAuc {
    capacity: usize,
    /// Ring storage; once full, `next` is the oldest slot.
    buf: Vec<ScoredLabel>,
    next: usize,
}

impl RollingAuc {
    /// An empty window keeping the `capacity` most recent samples.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "rolling window needs capacity >= 1");
        Self {
            capacity,
            buf: Vec::with_capacity(capacity),
            next: 0,
        }
    }

    /// Maximum samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently held (`<= capacity`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no samples have been pushed (or since the last
    /// [`clear`](Self::clear)).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pushes a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: ScoredLabel) {
        if self.buf.len() < self.capacity {
            self.buf.push(sample);
        } else {
            self.buf[self.next] = sample;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Records a labeled score (convenience over
    /// [`push`](Self::push)).
    pub fn record(&mut self, positive: bool, score: f64) {
        self.push(ScoredLabel { positive, score });
    }

    /// Drops every sample, keeping the capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }

    /// AUC over the current window; `None` while the window holds
    /// only one class.
    pub fn auc(&self) -> Option<f64> {
        self.stats().map(|s| s.auc)
    }

    /// Sign accuracy over the current window; `None` while empty.
    pub fn accuracy(&self) -> Option<f64> {
        sign_accuracy(&self.buf)
    }

    /// Full window statistics; `None` while the window holds only one
    /// class.
    pub fn stats(&self) -> Option<WindowStats> {
        window_stats(&self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(positive: bool, score: f64) -> ScoredLabel {
        ScoredLabel { positive, score }
    }

    #[test]
    fn window_stats_match_roc_auc() {
        let samples = vec![s(true, 0.9), s(false, 0.2), s(true, -0.1), s(false, -0.8)];
        let stats = window_stats(&samples).expect("both classes present");
        assert_eq!(stats.auc, auc_mann_whitney(&samples));
        assert_eq!(stats.accuracy, 0.5); // 0.2 negative and −0.1 positive missed
        assert_eq!((stats.positives, stats.negatives), (2, 2));
    }

    #[test]
    fn single_class_window_is_none_not_panic() {
        assert_eq!(window_stats(&[s(true, 1.0), s(true, 2.0)]), None);
        assert_eq!(window_stats(&[]), None);
        assert_eq!(sign_accuracy(&[]), None);
        // Accuracy alone is still defined for one class.
        assert_eq!(sign_accuracy(&[s(true, 1.0), s(true, -1.0)]), Some(0.5));
    }

    #[test]
    fn rolling_fills_then_evicts_oldest() {
        let mut w = RollingAuc::new(3);
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 3);
        w.record(true, 1.0);
        assert_eq!(w.auc(), None, "one class only");
        assert_eq!(w.accuracy(), Some(1.0));
        w.record(false, -1.0);
        w.record(true, 2.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.auc(), Some(1.0));
        // Push a 4th: evicts the first (true, 1.0). A perfect negative
        // keeps AUC at 1; then flood with inverted samples.
        w.record(false, -2.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.auc(), Some(1.0));
        for _ in 0..3 {
            w.record(false, 5.0);
            w.record(true, -5.0);
        }
        assert_eq!(w.auc(), Some(0.0), "window forgot the good old days");
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.accuracy(), None);
    }

    #[test]
    fn rolling_equals_global_when_capacity_covers_stream() {
        let stream = vec![
            s(true, 0.9),
            s(false, 0.8),
            s(true, 0.7),
            s(false, 0.3),
            s(true, -0.2),
        ];
        let mut w = RollingAuc::new(stream.len());
        for &x in &stream {
            w.push(x);
        }
        let global = window_stats(&stream).expect("mixed stream");
        assert_eq!(w.stats(), Some(global));
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        RollingAuc::new(0);
    }
}
