//! Confusion matrices and accuracy (paper Table 2).
//!
//! "Table 2 shows the accuracy rates, i.e., the percentage of the
//! correct predictions, and the confusion matrices, computed by taking
//! the sign of x̂_ij's and then comparing with the corresponding
//! x_ij's."

use crate::ScoredLabel;
use serde::{Deserialize, Serialize};

/// A binary confusion matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Actual good, predicted good.
    pub true_positive: usize,
    /// Actual good, predicted bad.
    pub false_negative: usize,
    /// Actual bad, predicted good.
    pub false_positive: usize,
    /// Actual bad, predicted bad.
    pub true_negative: usize,
}

impl ConfusionMatrix {
    /// Builds the confusion matrix at a given score threshold
    /// (`score > threshold` ⇒ predicted good). The paper's Table 2
    /// uses `threshold = 0` (the sign of `x̂`).
    pub fn at_threshold(samples: &[ScoredLabel], threshold: f64) -> Self {
        let mut cm = Self::default();
        for s in samples {
            let predicted_good = s.score > threshold;
            match (s.positive, predicted_good) {
                (true, true) => cm.true_positive += 1,
                (true, false) => cm.false_negative += 1,
                (false, true) => cm.false_positive += 1,
                (false, false) => cm.true_negative += 1,
            }
        }
        cm
    }

    /// Builds the confusion matrix at the sign threshold (Table 2).
    pub fn at_sign(samples: &[ScoredLabel]) -> Self {
        Self::at_threshold(samples, 0.0)
    }

    /// Total samples counted.
    pub fn total(&self) -> usize {
        self.true_positive + self.false_negative + self.false_positive + self.true_negative
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positive + self.true_negative) as f64 / self.total() as f64
    }

    /// P(predicted good | actual good) — the top-left percentage of the
    /// paper's per-dataset tables.
    pub fn good_recall(&self) -> f64 {
        let actual_good = self.true_positive + self.false_negative;
        if actual_good == 0 {
            return 0.0;
        }
        self.true_positive as f64 / actual_good as f64
    }

    /// P(predicted bad | actual bad).
    pub fn bad_recall(&self) -> f64 {
        let actual_bad = self.false_positive + self.true_negative;
        if actual_bad == 0 {
            return 0.0;
        }
        self.true_negative as f64 / actual_bad as f64
    }

    /// Precision of the good class.
    pub fn good_precision(&self) -> f64 {
        let predicted_good = self.true_positive + self.false_positive;
        if predicted_good == 0 {
            return 0.0;
        }
        self.true_positive as f64 / predicted_good as f64
    }

    /// Renders the paper's Table-2 row layout:
    /// `[[P(G|G), P(B|G)], [P(G|B), P(B|B)]]` as percentages.
    pub fn as_percentages(&self) -> [[f64; 2]; 2] {
        [
            [
                self.good_recall() * 100.0,
                (1.0 - self.good_recall()) * 100.0,
            ],
            [(1.0 - self.bad_recall()) * 100.0, self.bad_recall() * 100.0],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(positive: bool, score: f64) -> ScoredLabel {
        ScoredLabel { positive, score }
    }

    #[test]
    fn counts_all_quadrants() {
        let samples = vec![
            s(true, 1.0),   // TP
            s(true, -1.0),  // FN
            s(false, 1.0),  // FP
            s(false, -1.0), // TN
        ];
        let cm = ConfusionMatrix::at_sign(&samples);
        assert_eq!(cm.true_positive, 1);
        assert_eq!(cm.false_negative, 1);
        assert_eq!(cm.false_positive, 1);
        assert_eq!(cm.true_negative, 1);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.accuracy(), 0.5);
    }

    #[test]
    fn perfect_prediction() {
        let samples = vec![s(true, 0.5), s(false, -0.5), s(true, 2.0)];
        let cm = ConfusionMatrix::at_sign(&samples);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.good_recall(), 1.0);
        assert_eq!(cm.bad_recall(), 1.0);
        assert_eq!(cm.good_precision(), 1.0);
    }

    #[test]
    fn zero_score_counts_as_bad() {
        // The paper takes sign(x̂); we resolve sign(0) to "bad", i.e. a
        // strictly-positive score is needed to call a path good.
        let samples = vec![s(true, 0.0)];
        let cm = ConfusionMatrix::at_sign(&samples);
        assert_eq!(cm.false_negative, 1);
    }

    #[test]
    fn threshold_shifts_decisions() {
        let samples = vec![s(true, 0.4), s(false, 0.2)];
        let strict = ConfusionMatrix::at_threshold(&samples, 0.5);
        assert_eq!(strict.true_positive, 0);
        let lenient = ConfusionMatrix::at_threshold(&samples, 0.1);
        assert_eq!(lenient.true_positive, 1);
        assert_eq!(lenient.false_positive, 1);
    }

    #[test]
    fn percentages_layout() {
        let samples = vec![s(true, 1.0), s(true, 1.0), s(true, -1.0), s(false, -1.0)];
        let p = ConfusionMatrix::at_sign(&samples).as_percentages();
        assert!((p[0][0] - 200.0 / 3.0).abs() < 1e-9); // P(G|G)
        assert!((p[0][1] - 100.0 / 3.0).abs() < 1e-9); // P(B|G)
        assert_eq!(p[1][0], 0.0); // P(G|B)
        assert_eq!(p[1][1], 100.0); // P(B|B)
    }

    #[test]
    fn empty_is_zeroes() {
        let cm = ConfusionMatrix::at_sign(&[]);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.good_recall(), 0.0);
    }
}
