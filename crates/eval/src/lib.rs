//! # dmf-eval
//!
//! Evaluation criteria for performance-class prediction (paper §6.1
//! and §6.4):
//!
//! * [`roc`] — ROC curves and AUC, computed by sweeping the
//!   discrimination threshold `τ_c` over all prediction scores; AUC is
//!   implemented twice (trapezoid integration and the Mann–Whitney
//!   rank statistic) and the two are cross-checked by property tests.
//! * [`pr`] — precision–recall curves.
//! * [`confusion`] — confusion matrices and accuracy at the sign
//!   threshold (paper Table 2).
//! * [`convergence`] — AUC as a function of measurements consumed
//!   (paper Figure 5c).
//! * [`window`] — windowed and rolling AUC/accuracy for
//!   non-stationary scenarios, where quality per epoch (during a
//!   congestion storm, after a partition heals) is the question the
//!   end-of-run number cannot answer.
//! * [`peersel`] — the peer-selection criteria of §6.4: *stretch*
//!   (optimality) and the *unsatisfied-node percentage*
//!   (satisfaction).
//!
//! All functions take plain score/label pairs, so they evaluate any
//! predictor — DMFSGD, the baselines, or an oracle.
//!
//! # Position in the workspace
//!
//! Depends only on [`dmf_linalg`] (score matrices) and
//! [`dmf_datasets`] (class matrices): [`collect_scores`] pairs a
//! [`dmf_datasets::ClassMatrix`] with a predictor's
//! [`dmf_linalg::Matrix`] of scores into the [`ScoredLabel`]s every
//! criterion consumes. `dmf-baselines`, `dmf-agent` and `dmf-bench`
//! all report through this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusion;
pub mod convergence;
pub mod peersel;
pub mod pr;
pub mod roc;
// Per-window quality is service surface (the scenario suite and the
// CI quality gate consume it): undocumented public items are hard
// errors, and tools/check_doc_guards.sh keeps the attribute in place.
#[deny(missing_docs)]
pub mod window;

pub use confusion::ConfusionMatrix;
pub use convergence::ConvergenceTracker;
pub use roc::{auc_from_curve, auc_mann_whitney, roc_curve, RocPoint};
pub use window::{window_stats, RollingAuc, WindowStats};

/// A labeled prediction: the ground-truth class and the real-valued
/// score the predictor assigned (higher = more likely "good").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredLabel {
    /// Ground truth: `true` = positive class ("good").
    pub positive: bool,
    /// Predictor score (e.g. `u_i · v_j`).
    pub score: f64,
}

/// Collects scored labels for all observed pairs of a class matrix
/// against a score matrix.
pub fn collect_scores(
    class: &dmf_datasets::ClassMatrix,
    scores: &dmf_linalg::Matrix,
) -> Vec<ScoredLabel> {
    assert_eq!(
        (class.len(), class.len()),
        scores.shape(),
        "class/score shape mismatch"
    );
    class
        .mask
        .iter_known()
        .map(|(i, j)| ScoredLabel {
            positive: class.labels[(i, j)] > 0.0,
            score: scores[(i, j)],
        })
        .collect()
}
