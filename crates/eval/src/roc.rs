//! ROC curves and AUC.
//!
//! "The ROC and Precision-Recall curves are obtained by varying a
//! discrimination threshold τ_c when deciding the classes from x̂_ij's"
//! (paper §6.1). The curve below is the exact empirical ROC: one point
//! per distinct score value (ties handled jointly), from (0,0) to
//! (1,1).

use crate::ScoredLabel;
use serde::{Deserialize, Serialize};

/// One ROC point at some discrimination threshold.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// False positive rate.
    pub fpr: f64,
    /// True positive rate (= recall).
    pub tpr: f64,
    /// The threshold that produced this point (`x̂ > threshold` ⇒
    /// predicted good). `-inf` for the all-positive corner.
    pub threshold: f64,
}

/// Computes the empirical ROC curve by sweeping `τ_c` from +∞ to −∞.
///
/// Returns points ordered from (0, 0) to (1, 1).
///
/// # Panics
/// Panics when either class is absent (ROC is undefined).
pub fn roc_curve(samples: &[ScoredLabel]) -> Vec<RocPoint> {
    let positives = samples.iter().filter(|s| s.positive).count();
    let negatives = samples.len() - positives;
    assert!(positives > 0, "ROC undefined without positive samples");
    assert!(negatives > 0, "ROC undefined without negative samples");

    let mut sorted: Vec<&ScoredLabel> = samples.iter().collect();
    // Descending by score: thresholds sweep from strict to lenient.
    sorted.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("NaN score"));

    let mut curve = vec![RocPoint {
        fpr: 0.0,
        tpr: 0.0,
        threshold: f64::INFINITY,
    }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut idx = 0;
    while idx < sorted.len() {
        // Consume all samples tied at this score together.
        let score = sorted[idx].score;
        while idx < sorted.len() && sorted[idx].score == score {
            if sorted[idx].positive {
                tp += 1;
            } else {
                fp += 1;
            }
            idx += 1;
        }
        curve.push(RocPoint {
            fpr: fp as f64 / negatives as f64,
            tpr: tp as f64 / positives as f64,
            threshold: score,
        });
    }
    curve
}

/// AUC by trapezoid integration of a ROC curve.
pub fn auc_from_curve(curve: &[RocPoint]) -> f64 {
    let mut auc = 0.0;
    for w in curve.windows(2) {
        auc += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
    }
    auc
}

/// AUC via the Mann–Whitney U statistic: the probability that a random
/// positive outscores a random negative (ties count ½). Equal to the
/// trapezoid AUC on the same data; both are exposed so tests can
/// cross-validate the implementations.
pub fn auc_mann_whitney(samples: &[ScoredLabel]) -> f64 {
    let positives = samples.iter().filter(|s| s.positive).count();
    let negatives = samples.len() - positives;
    assert!(
        positives > 0 && negatives > 0,
        "AUC undefined for one class"
    );

    // Rank-based computation: O(n log n).
    let mut sorted: Vec<&ScoredLabel> = samples.iter().collect();
    sorted.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("NaN score"));

    // Assign average ranks to ties.
    let n = sorted.len();
    let mut rank_sum_pos = 0.0;
    let mut idx = 0;
    while idx < n {
        let score = sorted[idx].score;
        let start = idx;
        while idx < n && sorted[idx].score == score {
            idx += 1;
        }
        // Ranks are 1-based; tied block [start, idx) shares the mean rank.
        let avg_rank = (start + 1 + idx) as f64 / 2.0;
        for s in &sorted[start..idx] {
            if s.positive {
                rank_sum_pos += avg_rank;
            }
        }
    }
    let p = positives as f64;
    let m = negatives as f64;
    (rank_sum_pos - p * (p + 1.0) / 2.0) / (p * m)
}

/// Convenience: AUC of scored labels (Mann–Whitney).
pub fn auc(samples: &[ScoredLabel]) -> f64 {
    auc_mann_whitney(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(positive: bool, score: f64) -> ScoredLabel {
        ScoredLabel { positive, score }
    }

    #[test]
    fn perfect_classifier_auc_one() {
        let samples = vec![s(true, 2.0), s(true, 1.5), s(false, -1.0), s(false, -2.0)];
        assert_eq!(auc_mann_whitney(&samples), 1.0);
        let curve = roc_curve(&samples);
        assert!((auc_from_curve(&curve) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_classifier_auc_zero() {
        let samples = vec![s(true, -2.0), s(false, 1.0)];
        assert_eq!(auc_mann_whitney(&samples), 0.0);
    }

    #[test]
    fn random_ties_auc_half() {
        let samples = vec![s(true, 0.0), s(false, 0.0), s(true, 0.0), s(false, 0.0)];
        assert!((auc_mann_whitney(&samples) - 0.5).abs() < 1e-12);
        let curve = roc_curve(&samples);
        assert!((auc_from_curve(&curve) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_small_case() {
        // scores: pos {3, 1}, neg {2, 0}.
        // Pairs: (3>2), (3>0), (1<2), (1>0) → 3/4.
        let samples = vec![s(true, 3.0), s(true, 1.0), s(false, 2.0), s(false, 0.0)];
        assert!((auc_mann_whitney(&samples) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn curve_endpoints_and_monotonicity() {
        let samples = vec![
            s(true, 0.9),
            s(false, 0.8),
            s(true, 0.7),
            s(false, 0.3),
            s(true, 0.2),
        ];
        let curve = roc_curve(&samples);
        assert_eq!(curve.first().map(|p| (p.fpr, p.tpr)), Some((0.0, 0.0)));
        assert_eq!(curve.last().map(|p| (p.fpr, p.tpr)), Some((1.0, 1.0)));
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].threshold <= w[0].threshold);
        }
    }

    #[test]
    fn trapezoid_equals_mann_whitney() {
        let samples = vec![
            s(true, 0.9),
            s(false, 0.9),
            s(true, 0.5),
            s(false, 0.4),
            s(true, 0.4),
            s(false, 0.1),
            s(true, -0.3),
        ];
        let a1 = auc_mann_whitney(&samples);
        let a2 = auc_from_curve(&roc_curve(&samples));
        assert!((a1 - a2).abs() < 1e-12, "{a1} vs {a2}");
    }

    #[test]
    #[should_panic(expected = "positive samples")]
    fn single_class_rejected() {
        roc_curve(&[s(false, 1.0), s(false, 2.0)]);
    }
}
