//! Composable non-stationary network scenarios.
//!
//! The paper's evaluation is essentially stationary: static matrices
//! plus one passively-probed replay. Real deployments are not — RTTs
//! drift as routes re-embed, cluster pairs congest and recover,
//! routing changes step the ground truth, probes get lost, segments
//! partition, and nodes churn. A [`ScenarioSpec`] declares such a
//! regime as a list of [`Condition`]s composed over a timeline, and
//! [`Scenario::realize`] turns it into a deterministic engine that
//! answers three questions for any simulated time `t`:
//!
//! * what is the ground-truth RTT matrix *right now*
//!   ([`Scenario::ground_truth_at`])?
//! * which transport impairments are active — probe loss, partitions,
//!   stragglers ([`Scenario::impairments_at`])?
//! * which membership events are due
//!   ([`Scenario::membership_events`])?
//!
//! The split keeps layers honest: this module owns *what the network
//! is doing* (pure data, seedable, serde-serializable), the simnet
//! layer owns *how messages experience it* (delay tables, drop
//! filters), and the harness in `dmf-bench` stitches the two together
//! window by window to measure prediction quality under each regime.
//!
//! Ground truth is derived from the same two-tier [`Topology`] the
//! static generators use: drift moves node positions in the delay
//! plane (a re-embedding), congestion and routing changes multiply
//! selected pairs, and the per-pair log-normal noise and median
//! calibration of [`crate::rtt`] are preserved — so a scenario with no
//! conditions reproduces a calibrated stationary dataset.

use crate::rtt::RttDatasetConfig;
use crate::topology::Topology;
use crate::{Dataset, Metric};
use dmf_linalg::stats::log_normal_sample;
use dmf_linalg::{Mask, Matrix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One network condition composed onto the scenario timeline.
///
/// Epoch-style conditions are active for `start_s <= t < end_s`; step
/// conditions apply from their trigger time onward. Conditions
/// compose: factors multiply, loss probabilities take the maximum,
/// partitions union.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Condition {
    /// Continuous RTT drift: a fraction of nodes migrate linearly to
    /// new positions in the delay plane between `start_s` and `end_s`
    /// (the topology re-embeds itself, as when routes shift under
    /// load-balancing).
    Drift {
        /// Drift epoch start (seconds).
        start_s: f64,
        /// Drift epoch end; positions stay at their target afterwards.
        end_s: f64,
        /// Fraction of nodes that move (0–1).
        node_fraction: f64,
        /// Maximum per-axis displacement in ms of one-way delay.
        max_shift_ms: f64,
    },
    /// Flash congestion: all paths between the chosen number of
    /// cluster pairs see their RTT multiplied by `factor` for the
    /// duration of the epoch, then recover.
    FlashCongestion {
        /// Congestion epoch start (seconds).
        start_s: f64,
        /// Congestion epoch end (seconds).
        end_s: f64,
        /// How many distinct cluster pairs congest.
        cluster_pairs: usize,
        /// RTT multiplier on affected paths (> 1 = congestion).
        factor: f64,
    },
    /// Routing change: a step function at `at_s` that permanently
    /// multiplies a random fraction of pairs by `factor` (detours via
    /// a longer path after a route withdrawal).
    RoutingShift {
        /// When the routing table changes (seconds).
        at_s: f64,
        /// Fraction of unordered pairs affected (0–1).
        pair_fraction: f64,
        /// RTT multiplier on affected pairs from `at_s` onward.
        factor: f64,
    },
    /// Lossy control plane: probe messages drop with the given
    /// probability during the epoch (injected at the simnet layer).
    ProbeLoss {
        /// Loss epoch start (seconds).
        start_s: f64,
        /// Loss epoch end (seconds).
        end_s: f64,
        /// Per-message drop probability (0–1).
        probability: f64,
    },
    /// Network partition: a fraction of nodes form an island that
    /// cannot exchange messages with the mainland for the epoch
    /// (island-internal traffic still flows). Ground truth is
    /// unchanged — the paths exist, the messages don't.
    Partition {
        /// Partition start (seconds).
        start_s: f64,
        /// Partition heal time (seconds).
        end_s: f64,
        /// Fraction of nodes isolated into the island (0–1).
        node_fraction: f64,
    },
    /// Straggler nodes: a fraction of nodes whose message legs are
    /// slowed by `delay_factor` for the whole run (overloaded hosts,
    /// not slow paths — ground truth is unchanged).
    Straggler {
        /// Fraction of nodes that straggle (0–1).
        node_fraction: f64,
        /// Multiplier on every message leg touching a straggler.
        delay_factor: f64,
    },
    /// Membership churn: a fraction of nodes leave at `leave_at_s` and
    /// the same number rejoin at `rejoin_at_s` (driven through the
    /// `Session::join`/`leave` API by the harness).
    Churn {
        /// When the group departs (seconds).
        leave_at_s: f64,
        /// When replacements rejoin (seconds).
        rejoin_at_s: f64,
        /// Fraction of nodes that churn (0–1).
        node_fraction: f64,
    },
}

/// A declarative, seedable description of a non-stationary scenario:
/// the stationary substrate (an [`RttDatasetConfig`]) plus a timeline
/// of [`Condition`]s and an evaluation window size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (registry key, reported in `QUALITY.json`).
    pub name: String,
    /// Master seed: topology, noise, and every condition realization
    /// derive from it, so a spec realizes identically every time.
    pub seed: u64,
    /// The stationary substrate (node count, clusters, calibration).
    pub rtt: RttDatasetConfig,
    /// Total simulated duration in seconds.
    pub duration_s: f64,
    /// Evaluation window length in seconds (quality is measured per
    /// window, not only at the end).
    pub window_s: f64,
    /// The conditions composed onto the timeline.
    pub conditions: Vec<Condition>,
}

impl ScenarioSpec {
    /// A stationary scenario (no conditions) over the given substrate.
    pub fn stationary(
        name: impl Into<String>,
        rtt: RttDatasetConfig,
        seed: u64,
        duration_s: f64,
        window_s: f64,
    ) -> Self {
        Self {
            name: name.into(),
            seed,
            rtt,
            duration_s,
            window_s,
            conditions: Vec::new(),
        }
    }

    /// Adds a condition (builder-style).
    pub fn with(mut self, condition: Condition) -> Self {
        self.conditions.push(condition);
        self
    }
}

/// Transport impairments active at one instant, as pure data: the
/// harness forwards them to the simnet layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Impairments {
    /// Probe drop probability (maximum over active
    /// [`Condition::ProbeLoss`] epochs; 0 when none).
    pub loss_probability: f64,
    /// Active partition islands, one (sorted) node set per active
    /// [`Condition::Partition`]. Each island is cut from everything
    /// outside it *independently* — two concurrent partitions do not
    /// merge into one island (their members are mutually cut too,
    /// each being outside the other's island).
    pub islands: Vec<Vec<usize>>,
    /// Per-node message delay multipliers from
    /// [`Condition::Straggler`] (static for the run).
    pub stragglers: Vec<(usize, f64)>,
}

impl Impairments {
    /// Per-node partition classes over a population of `n` nodes: two
    /// nodes can exchange messages iff their classes are equal. Each
    /// active island contributes one membership bit, so every cut
    /// applies independently. Empty when no partition is active
    /// (= fully connected).
    ///
    /// # Panics
    /// Panics when an island id is out of range or more than 32
    /// partitions are concurrently active (the class space is a
    /// `u32` bitmask).
    pub fn partition_classes(&self, n: usize) -> Vec<u32> {
        if self.islands.is_empty() {
            return Vec::new();
        }
        assert!(
            self.islands.len() <= 32,
            "at most 32 concurrent partitions supported, got {}",
            self.islands.len()
        );
        let mut classes = vec![0u32; n];
        for (k, island) in self.islands.iter().enumerate() {
            for &i in island {
                assert!(i < n, "island node id {i} out of range for {n} nodes");
                classes[i] |= 1 << k;
            }
        }
        classes
    }
}

/// A membership change the harness must apply at
/// [`MembershipEvent::at_s`].
#[derive(Clone, Debug, PartialEq)]
pub struct MembershipEvent {
    /// When the event is due (seconds).
    pub at_s: f64,
    /// What happens.
    pub kind: MembershipEventKind,
}

/// The kind of a [`MembershipEvent`].
#[derive(Clone, Debug, PartialEq)]
pub enum MembershipEventKind {
    /// These nodes leave the session.
    Leave(Vec<usize>),
    /// This many nodes rejoin (the session re-admits into the freed
    /// slots).
    Rejoin(usize),
}

/// One realized condition: the random draws (which nodes move, which
/// cluster pairs congest, …) are fixed at realization time so every
/// query is pure.
#[derive(Clone, Debug)]
enum Effect {
    Drift {
        start_s: f64,
        end_s: f64,
        /// `shift[i]` is node `i`'s total displacement over the
        /// epoch, when it drifts. Stored as a displacement (not an
        /// absolute target) so stacked drift conditions compose
        /// additively instead of a later epoch reverting an earlier
        /// one.
        shift: Vec<Option<(f64, f64)>>,
    },
    FlashCongestion {
        start_s: f64,
        end_s: f64,
        /// Congested cluster pairs, stored as `(min, max)`.
        pairs: Vec<(usize, usize)>,
        factor: f64,
    },
    RoutingShift {
        at_s: f64,
        /// Affected pairs (symmetric mask).
        affected: Mask,
        factor: f64,
    },
    ProbeLoss {
        start_s: f64,
        end_s: f64,
        probability: f64,
    },
    Partition {
        start_s: f64,
        end_s: f64,
        isolated: Vec<usize>,
    },
    Straggler {
        nodes: Vec<usize>,
        delay_factor: f64,
    },
    Churn {
        leave_at_s: f64,
        rejoin_at_s: f64,
        leavers: Vec<usize>,
    },
}

/// A realized scenario: topology, per-pair noise, calibration and
/// every condition's random draws are fixed, so all queries are pure
/// functions of simulated time.
#[derive(Clone, Debug)]
pub struct Scenario {
    spec: ScenarioSpec,
    topology: Topology,
    /// Per-pair multiplicative log-normal noise (symmetric, unit
    /// diagonal) — the idiosyncratic component of [`crate::topology`].
    noise: Matrix,
    /// Global factor calibrating the stationary median to
    /// `spec.rtt.target_median_ms`.
    calibration: f64,
    effects: Vec<Effect>,
}

/// Samples `count` distinct values from `0..n` by partial
/// Fisher–Yates (deterministic in `rng`).
fn sample_distinct(rng: &mut ChaCha8Rng, n: usize, count: usize) -> Vec<usize> {
    debug_assert!(count <= n);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..count {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

/// Rounds a fraction of `n` to a node count, clamped to `1..=n` for
/// positive fractions (a declared condition always touches someone).
fn fraction_count(n: usize, fraction: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction {fraction} out of [0, 1]"
    );
    if fraction == 0.0 {
        0
    } else {
        ((fraction * n as f64).round() as usize).clamp(1, n)
    }
}

fn check_epoch(start_s: f64, end_s: f64, duration_s: f64) {
    assert!(
        start_s >= 0.0 && end_s > start_s && start_s < duration_s,
        "epoch [{start_s}, {end_s}) must be non-empty and start within \
         the {duration_s}s scenario"
    );
}

impl Scenario {
    /// Realizes a spec: generates the topology, draws every
    /// condition's random choices, and calibrates the stationary
    /// median — all from `spec.seed`, so equal specs realize
    /// identically.
    ///
    /// # Panics
    /// Panics when the spec is malformed (non-positive durations,
    /// fractions outside `[0, 1]`, empty epochs, factors that are not
    /// positive and finite).
    pub fn realize(spec: ScenarioSpec) -> Self {
        assert!(
            spec.duration_s.is_finite() && spec.duration_s > 0.0,
            "scenario duration must be positive"
        );
        assert!(
            spec.window_s.is_finite() && spec.window_s > 0.0 && spec.window_s <= spec.duration_s,
            "window must be positive and no longer than the scenario"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        let topology = Topology::generate(spec.rtt.topology.clone(), &mut rng);
        let n = topology.len();
        assert!(n >= 2, "scenario needs at least two nodes");

        // Per-pair noise, exactly as the static generator draws it.
        let sigma = spec.rtt.topology.pair_noise_sigma;
        let mut noise = Matrix::zeros(n, n);
        for i in 0..n {
            noise[(i, i)] = 1.0;
            for j in (i + 1)..n {
                let f = log_normal_sample(&mut rng, 0.0, sigma);
                noise[(i, j)] = f;
                noise[(j, i)] = f;
            }
        }

        // Calibrate the *stationary* substrate (no conditions) to the
        // target median; conditions then perturb the calibrated truth.
        let mut stationary: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                stationary.push(topology.base_rtt(i, j) * noise[(i, j)]);
            }
        }
        let median = dmf_linalg::stats::median(&stationary);
        assert!(median > 0.0, "degenerate topology: zero median RTT");
        let calibration = spec.rtt.target_median_ms / median;

        let effects = spec
            .conditions
            .iter()
            .map(|c| Self::realize_condition(c, &topology, spec.duration_s, &mut rng))
            .collect();

        Self {
            spec,
            topology,
            noise,
            calibration,
            effects,
        }
    }

    fn realize_condition(
        condition: &Condition,
        topology: &Topology,
        duration_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> Effect {
        let n = topology.len();
        match *condition {
            Condition::Drift {
                start_s,
                end_s,
                node_fraction,
                max_shift_ms,
            } => {
                check_epoch(start_s, end_s, duration_s);
                assert!(
                    max_shift_ms.is_finite() && max_shift_ms > 0.0,
                    "drift shift must be positive"
                );
                let movers = sample_distinct(rng, n, fraction_count(n, node_fraction));
                let mut shift = vec![None; n];
                for &i in &movers {
                    // Uniform displacement in the ±max_shift square.
                    let dx = (2.0 * rng.gen::<f64>() - 1.0) * max_shift_ms;
                    let dy = (2.0 * rng.gen::<f64>() - 1.0) * max_shift_ms;
                    shift[i] = Some((dx, dy));
                }
                Effect::Drift {
                    start_s,
                    end_s,
                    shift,
                }
            }
            Condition::FlashCongestion {
                start_s,
                end_s,
                cluster_pairs,
                factor,
            } => {
                check_epoch(start_s, end_s, duration_s);
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "congestion factor must be positive"
                );
                let clusters = topology.cluster_pos.len();
                let mut all: Vec<(usize, usize)> = Vec::new();
                for a in 0..clusters {
                    for b in (a + 1)..clusters {
                        all.push((a, b));
                    }
                }
                let count = cluster_pairs.min(all.len());
                let picks = sample_distinct(rng, all.len(), count);
                let pairs = picks.into_iter().map(|k| all[k]).collect();
                Effect::FlashCongestion {
                    start_s,
                    end_s,
                    pairs,
                    factor,
                }
            }
            Condition::RoutingShift {
                at_s,
                pair_fraction,
                factor,
            } => {
                assert!(
                    (0.0..duration_s).contains(&at_s),
                    "routing shift at {at_s}s outside the {duration_s}s scenario"
                );
                assert!(
                    (0.0..=1.0).contains(&pair_fraction),
                    "pair fraction {pair_fraction} out of [0, 1]"
                );
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "routing factor must be positive"
                );
                let mut affected = Mask::none(n, n);
                for i in 0..n {
                    for j in (i + 1)..n {
                        if rng.gen::<f64>() < pair_fraction {
                            affected.set(i, j, true);
                            affected.set(j, i, true);
                        }
                    }
                }
                Effect::RoutingShift {
                    at_s,
                    affected,
                    factor,
                }
            }
            Condition::ProbeLoss {
                start_s,
                end_s,
                probability,
            } => {
                check_epoch(start_s, end_s, duration_s);
                assert!(
                    (0.0..=1.0).contains(&probability),
                    "loss probability {probability} out of [0, 1]"
                );
                Effect::ProbeLoss {
                    start_s,
                    end_s,
                    probability,
                }
            }
            Condition::Partition {
                start_s,
                end_s,
                node_fraction,
            } => {
                check_epoch(start_s, end_s, duration_s);
                let count = fraction_count(n, node_fraction);
                // An island holding every node cuts nothing (the cut
                // is between island and mainland), silently inverting
                // the spec's intent — reject it loudly instead.
                assert!(
                    count < n,
                    "partition island must be a strict subset of the population \
                     (node_fraction {node_fraction} isolates all {n} nodes)"
                );
                let isolated = sample_distinct(rng, n, count);
                Effect::Partition {
                    start_s,
                    end_s,
                    isolated,
                }
            }
            Condition::Straggler {
                node_fraction,
                delay_factor,
            } => {
                assert!(
                    delay_factor.is_finite() && delay_factor > 0.0,
                    "straggler factor must be positive"
                );
                let nodes = sample_distinct(rng, n, fraction_count(n, node_fraction));
                Effect::Straggler {
                    nodes,
                    delay_factor,
                }
            }
            Condition::Churn {
                leave_at_s,
                rejoin_at_s,
                node_fraction,
            } => {
                assert!(
                    (0.0..duration_s).contains(&leave_at_s) && rejoin_at_s > leave_at_s,
                    "churn must leave within the scenario and rejoin after leaving"
                );
                let count = fraction_count(n, node_fraction);
                // Leaving everyone can never be applied (survivors
                // must sustain their neighbor sets) — fail at realize
                // time, not as a mid-run harness panic.
                assert!(
                    count < n,
                    "churn group must be a strict subset of the population \
                     (node_fraction {node_fraction} churns all {n} nodes)"
                );
                let leavers = sample_distinct(rng, n, count);
                Effect::Churn {
                    leave_at_s,
                    rejoin_at_s,
                    leavers,
                }
            }
        }
    }

    // ---- introspection ----------------------------------------------

    /// The spec this scenario was realized from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The realized topology (cluster membership, initial positions).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.topology.len()
    }

    /// Number of evaluation windows (the last one may be shorter when
    /// the duration is not a multiple of the window).
    pub fn window_count(&self) -> usize {
        // The epsilon absorbs float-division residue: a ratio landing
        // a few ulps above an integer (5.7 / 1.9 = 3.0000000000000004)
        // must not fabricate a phantom empty final window.
        ((self.spec.duration_s / self.spec.window_s - 1e-9).ceil() as usize).max(1)
    }

    /// `(start, end)` of window `w` in seconds.
    ///
    /// # Panics
    /// Panics when `w >= window_count()`.
    pub fn window_bounds(&self, w: usize) -> (f64, f64) {
        assert!(w < self.window_count(), "window {w} out of range");
        let start = w as f64 * self.spec.window_s;
        let end = (start + self.spec.window_s).min(self.spec.duration_s);
        (start, end)
    }

    /// Every instant in `(0, duration)` where some condition starts,
    /// ends or triggers — sorted and deduplicated. The harness cuts
    /// its simulation segments at these times (plus window bounds) so
    /// piecewise-constant approximations never straddle a transition.
    pub fn transition_times(&self) -> Vec<f64> {
        let mut times = Vec::new();
        for e in &self.effects {
            match *e {
                Effect::Drift { start_s, end_s, .. }
                | Effect::FlashCongestion { start_s, end_s, .. }
                | Effect::ProbeLoss { start_s, end_s, .. }
                | Effect::Partition { start_s, end_s, .. } => {
                    times.push(start_s);
                    times.push(end_s);
                }
                Effect::RoutingShift { at_s, .. } => times.push(at_s),
                Effect::Churn {
                    leave_at_s,
                    rejoin_at_s,
                    ..
                } => {
                    times.push(leave_at_s);
                    times.push(rejoin_at_s);
                }
                Effect::Straggler { .. } => {}
            }
        }
        times.retain(|&t| t > 0.0 && t < self.spec.duration_s);
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times.dedup();
        times
    }

    /// True when the ground truth at `t1` may differ from the truth
    /// at `t0` (`t0 <= t1`): some drift progresses, or a congestion
    /// epoch or routing step begins/ends, inside the interval.
    /// Conservative in the cheap direction (a `true` only costs a
    /// recomputation); harnesses use it to skip delay re-embeddings
    /// across segments where nothing moved.
    pub fn truth_changes_between(&self, t0: f64, t1: f64) -> bool {
        debug_assert!(t0 <= t1);
        self.effects.iter().any(|e| match *e {
            // Drift progress moves strictly inside (start, end).
            Effect::Drift { start_s, end_s, .. } => t1 > start_s && t0 < end_s,
            // Epoch factors change exactly at the boundary crossings.
            Effect::FlashCongestion { start_s, end_s, .. } => {
                (t0 < start_s && t1 >= start_s) || (t0 < end_s && t1 >= end_s)
            }
            Effect::RoutingShift { at_s, .. } => t0 < at_s && t1 >= at_s,
            Effect::ProbeLoss { .. } | Effect::Partition { .. } => false,
            Effect::Straggler { .. } | Effect::Churn { .. } => false,
        })
    }

    // ---- ground truth -----------------------------------------------

    /// Node `i`'s position in the delay plane at time `t` (initial
    /// position, drifting linearly to its target during drift epochs).
    pub fn node_pos_at(&self, i: usize, t: f64) -> (f64, f64) {
        let mut pos = self.topology.node_pos[i];
        // Displacements add: each drift epoch contributes its own
        // progress-scaled shift, so stacked drifts accumulate instead
        // of a later epoch pulling the node back toward its origin.
        for e in &self.effects {
            if let Effect::Drift {
                start_s,
                end_s,
                shift,
            } = e
            {
                if let Some((dx, dy)) = shift[i] {
                    let progress = ((t - start_s) / (end_s - start_s)).clamp(0.0, 1.0);
                    pos = (pos.0 + progress * dx, pos.1 + progress * dy);
                }
            }
        }
        pos
    }

    /// The multiplicative condition factor on pair `(i, j)` at `t`
    /// (flash congestion on the pair's clusters, routing shifts).
    fn pair_factor(&self, i: usize, j: usize, t: f64) -> f64 {
        let ci = self.topology.cluster_of[i].min(self.topology.cluster_of[j]);
        let cj = self.topology.cluster_of[i].max(self.topology.cluster_of[j]);
        let mut factor = 1.0;
        for e in &self.effects {
            match e {
                Effect::FlashCongestion {
                    start_s,
                    end_s,
                    pairs,
                    factor: f,
                } if t >= *start_s && t < *end_s && pairs.contains(&(ci, cj)) => {
                    factor *= f;
                }
                Effect::RoutingShift {
                    at_s,
                    affected,
                    factor: f,
                } if t >= *at_s && affected.is_known(i, j) => {
                    factor *= f;
                }
                _ => {}
            }
        }
        factor
    }

    /// The ground-truth RTT of the ordered pair `(i, j)` at time `t`
    /// (symmetric in `(i, j)`; zero on the diagonal).
    pub fn rtt_at(&self, i: usize, j: usize, t: f64) -> f64 {
        self.rtt_from_positions(i, j, self.node_pos_at(i, t), self.node_pos_at(j, t), t)
    }

    /// [`rtt_at`](Self::rtt_at) with both positions already computed —
    /// the one formula (`base · noise · calibration · factors`) shared
    /// with the batched [`ground_truth_at`](Self::ground_truth_at).
    fn rtt_from_positions(
        &self,
        i: usize,
        j: usize,
        pi: (f64, f64),
        pj: (f64, f64),
        t: f64,
    ) -> f64 {
        if i == j {
            return 0.0;
        }
        self.topology.rtt_at_positions(i, j, pi, pj)
            * self.noise[(i, j)]
            * self.calibration
            * self.pair_factor(i, j, t)
    }

    /// The complete ground-truth RTT dataset at time `t` (symmetric,
    /// full off-diagonal mask, in ms). At `t = 0` with no conditions
    /// triggering at zero this is a calibrated stationary dataset with
    /// median `spec.rtt.target_median_ms`.
    pub fn ground_truth_at(&self, t: f64) -> Dataset {
        let n = self.nodes();
        // One drifted position per node, not one per pair.
        let pos: Vec<(f64, f64)> = (0..n).map(|i| self.node_pos_at(i, t)).collect();
        let mut values = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let rtt = self.rtt_from_positions(i, j, pos[i], pos[j], t);
                values[(i, j)] = rtt;
                values[(j, i)] = rtt;
            }
        }
        Dataset::new(
            format!("{}@{t:.0}s", self.spec.name),
            Metric::Rtt,
            values,
            Mask::full_off_diagonal(n),
        )
    }

    // ---- impairments and membership ---------------------------------

    /// The transport impairments active at time `t`.
    pub fn impairments_at(&self, t: f64) -> Impairments {
        let mut imp = Impairments::default();
        for e in &self.effects {
            match e {
                Effect::ProbeLoss {
                    start_s,
                    end_s,
                    probability,
                } if t >= *start_s && t < *end_s => {
                    imp.loss_probability = imp.loss_probability.max(*probability);
                }
                Effect::Partition {
                    start_s,
                    end_s,
                    isolated,
                } if t >= *start_s && t < *end_s => {
                    let mut island = isolated.clone();
                    island.sort_unstable();
                    imp.islands.push(island);
                }
                Effect::Straggler {
                    nodes,
                    delay_factor,
                } => {
                    imp.stragglers
                        .extend(nodes.iter().map(|&i| (i, *delay_factor)));
                }
                _ => {}
            }
        }
        // Factors multiply (the module's composition rule): a node
        // named by several straggler conditions gets one entry with
        // the product, so consumers can apply entries by assignment.
        imp.stragglers.sort_unstable_by_key(|&(i, _)| i);
        imp.stragglers.dedup_by(|later, first| {
            if later.0 == first.0 {
                first.1 *= later.1;
                true
            } else {
                false
            }
        });
        imp
    }

    /// Membership events due over the whole run, sorted by time.
    pub fn membership_events(&self) -> Vec<MembershipEvent> {
        let mut events = Vec::new();
        for e in &self.effects {
            if let Effect::Churn {
                leave_at_s,
                rejoin_at_s,
                leavers,
            } = e
            {
                events.push(MembershipEvent {
                    at_s: *leave_at_s,
                    kind: MembershipEventKind::Leave(leavers.clone()),
                });
                if *rejoin_at_s < self.spec.duration_s {
                    events.push(MembershipEvent {
                        at_s: *rejoin_at_s,
                        kind: MembershipEventKind::Rejoin(leavers.len()),
                    });
                }
            }
        }
        events.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite times"));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_rtt(nodes: usize) -> RttDatasetConfig {
        RttDatasetConfig::meridian(nodes)
    }

    fn base_spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec::stationary("test", small_rtt(40), seed, 300.0, 30.0)
    }

    #[test]
    fn stationary_scenario_is_calibrated_and_constant() {
        let s = Scenario::realize(base_spec(1));
        let d0 = s.ground_truth_at(0.0);
        assert!((d0.median() - 56.4).abs() < 1e-6, "median {}", d0.median());
        let d_late = s.ground_truth_at(299.0);
        assert_eq!(d0.values, d_late.values, "no conditions, no change");
        for i in 0..40 {
            assert_eq!(s.rtt_at(i, i, 100.0), 0.0);
            for j in 0..40 {
                assert!((s.rtt_at(i, j, 50.0) - s.rtt_at(j, i, 50.0)).abs() < 1e-12);
                if i != j {
                    assert!(s.rtt_at(i, j, 50.0) > 0.0);
                }
            }
        }
    }

    #[test]
    fn realization_deterministic_per_seed() {
        let spec = base_spec(7).with(Condition::Drift {
            start_s: 60.0,
            end_s: 240.0,
            node_fraction: 0.3,
            max_shift_ms: 30.0,
        });
        let a = Scenario::realize(spec.clone());
        let b = Scenario::realize(spec);
        assert_eq!(
            a.ground_truth_at(150.0).values,
            b.ground_truth_at(150.0).values
        );
        let mut other = base_spec(8).with(Condition::Drift {
            start_s: 60.0,
            end_s: 240.0,
            node_fraction: 0.3,
            max_shift_ms: 30.0,
        });
        other.name = "test".into();
        let c = Scenario::realize(other);
        assert_ne!(
            a.ground_truth_at(150.0).values,
            c.ground_truth_at(150.0).values
        );
    }

    #[test]
    fn drift_moves_only_after_start_and_settles() {
        let spec = base_spec(2).with(Condition::Drift {
            start_s: 100.0,
            end_s: 200.0,
            node_fraction: 0.25,
            max_shift_ms: 25.0,
        });
        let s = Scenario::realize(spec);
        let before = s.ground_truth_at(0.0);
        assert_eq!(
            before.values,
            s.ground_truth_at(99.9).values,
            "nothing moves before the epoch"
        );
        let mid = s.ground_truth_at(150.0);
        let after = s.ground_truth_at(200.0);
        assert_ne!(before.values, mid.values, "drift must change the truth");
        assert_eq!(
            after.values,
            s.ground_truth_at(299.0).values,
            "positions settle at the drift target"
        );
        // Some node moved, and no node teleported beyond the shift box.
        let mut moved = 0;
        for i in 0..s.nodes() {
            let (x0, y0) = s.node_pos_at(i, 0.0);
            let (x1, y1) = s.node_pos_at(i, 250.0);
            let (dx, dy) = ((x1 - x0).abs(), (y1 - y0).abs());
            if dx > 0.0 || dy > 0.0 {
                moved += 1;
            }
            assert!(dx <= 25.0 + 1e-9 && dy <= 25.0 + 1e-9, "node {i} jumped");
        }
        assert_eq!(moved, 10, "25% of 40 nodes drift");
    }

    #[test]
    fn stacked_drifts_accumulate_displacement() {
        // Two sequential full-population drifts: the second epoch must
        // build on where the first one settled, not revert it.
        let spec = base_spec(14)
            .with(Condition::Drift {
                start_s: 20.0,
                end_s: 80.0,
                node_fraction: 1.0,
                max_shift_ms: 15.0,
            })
            .with(Condition::Drift {
                start_s: 120.0,
                end_s: 180.0,
                node_fraction: 1.0,
                max_shift_ms: 15.0,
            });
        let s = Scenario::realize(spec);
        for i in 0..s.nodes() {
            let p0 = s.node_pos_at(i, 0.0);
            let after_first = s.node_pos_at(i, 100.0);
            let d1 = (after_first.0 - p0.0, after_first.1 - p0.1);
            let settled = s.node_pos_at(i, 200.0);
            let d_total = (settled.0 - p0.0, settled.1 - p0.1);
            let d2 = (d_total.0 - d1.0, d_total.1 - d1.1);
            assert!(
                d1.0.abs() > 0.0 || d1.1.abs() > 0.0,
                "node {i} never moved in epoch 1"
            );
            assert!(
                d2.0.abs() > 1e-12 || d2.1.abs() > 1e-12,
                "node {i}'s second epoch must add displacement on top of the first \
                 (total {d_total:?} vs first {d1:?})"
            );
            assert!(d2.0.abs() <= 15.0 + 1e-9 && d2.1.abs() <= 15.0 + 1e-9);
        }
    }

    #[test]
    fn flash_congestion_multiplies_epoch_only() {
        let spec = base_spec(3).with(Condition::FlashCongestion {
            start_s: 120.0,
            end_s: 180.0,
            cluster_pairs: 2,
            factor: 4.0,
        });
        let s = Scenario::realize(spec);
        let congested: Vec<(usize, usize)> = match &s.effects[0] {
            Effect::FlashCongestion { pairs, .. } => pairs.clone(),
            other => panic!("unexpected effect {other:?}"),
        };
        assert_eq!(congested.len(), 2);
        let mut hit = 0;
        for i in 0..s.nodes() {
            for j in (i + 1)..s.nodes() {
                let (ci, cj) = (s.topology.cluster_of[i], s.topology.cluster_of[j]);
                let key = (ci.min(cj), ci.max(cj));
                let quiet = s.rtt_at(i, j, 60.0);
                let busy = s.rtt_at(i, j, 150.0);
                let after = s.rtt_at(i, j, 180.0);
                if congested.contains(&key) {
                    hit += 1;
                    assert!((busy - 4.0 * quiet).abs() < 1e-9, "epoch multiplies RTT");
                } else {
                    assert_eq!(quiet, busy, "uncongested pair changed");
                }
                assert_eq!(quiet, after, "congestion must fully recover");
            }
        }
        assert!(hit > 0, "some node pair sits on a congested cluster pair");
    }

    #[test]
    fn routing_shift_is_a_persistent_step() {
        let spec = base_spec(4).with(Condition::RoutingShift {
            at_s: 150.0,
            pair_fraction: 0.2,
            factor: 2.0,
        });
        let s = Scenario::realize(spec);
        let before = s.ground_truth_at(149.0);
        let after = s.ground_truth_at(150.0);
        let end = s.ground_truth_at(299.9);
        assert_eq!(after.values, end.values, "step persists to the end");
        let mut shifted = 0;
        let mut unshifted = 0;
        for i in 0..s.nodes() {
            for j in (i + 1)..s.nodes() {
                let (b, a) = (before.values[(i, j)], after.values[(i, j)]);
                if (a - 2.0 * b).abs() < 1e-9 {
                    shifted += 1;
                } else {
                    assert_eq!(a, b, "pair neither shifted nor unchanged");
                    unshifted += 1;
                }
            }
        }
        let total = (shifted + unshifted) as f64;
        let frac = shifted as f64 / total;
        assert!(
            (0.1..=0.3).contains(&frac),
            "{shifted}/{total} pairs shifted (expected ≈ 20%)"
        );
    }

    #[test]
    fn impairments_compose_over_epochs() {
        let spec = base_spec(5)
            .with(Condition::ProbeLoss {
                start_s: 50.0,
                end_s: 150.0,
                probability: 0.2,
            })
            .with(Condition::ProbeLoss {
                start_s: 100.0,
                end_s: 200.0,
                probability: 0.4,
            })
            .with(Condition::Partition {
                start_s: 100.0,
                end_s: 160.0,
                node_fraction: 0.25,
            })
            .with(Condition::Straggler {
                node_fraction: 0.1,
                delay_factor: 3.0,
            });
        let s = Scenario::realize(spec);
        let quiet = s.impairments_at(10.0);
        assert_eq!(quiet.loss_probability, 0.0);
        assert!(quiet.islands.is_empty());
        assert_eq!(quiet.stragglers.len(), 4, "stragglers are static");

        let one = s.impairments_at(60.0);
        assert_eq!(one.loss_probability, 0.2);
        let overlap = s.impairments_at(120.0);
        assert_eq!(overlap.loss_probability, 0.4, "overlap takes the max");
        assert_eq!(overlap.islands.len(), 1);
        assert_eq!(overlap.islands[0].len(), 10, "25% of 40 isolated");
        assert!(overlap.islands[0].windows(2).all(|w| w[0] < w[1]));
        let healed = s.impairments_at(250.0);
        assert_eq!(healed.loss_probability, 0.0);
        assert!(healed.islands.is_empty());
    }

    #[test]
    fn concurrent_partitions_stay_mutually_cut() {
        // Two overlapping partition epochs: each island must be cut
        // from everything outside itself, including the other island —
        // not merged into one big island whose members intercommunicate.
        let spec = base_spec(16)
            .with(Condition::Partition {
                start_s: 100.0,
                end_s: 300.0,
                node_fraction: 0.2,
            })
            .with(Condition::Partition {
                start_s: 150.0,
                end_s: 250.0,
                node_fraction: 0.2,
            });
        let s = Scenario::realize(spec);
        let imp = s.impairments_at(200.0);
        assert_eq!(imp.islands.len(), 2);
        let classes = imp.partition_classes(40);
        assert_eq!(classes.len(), 40);
        for (k, island) in imp.islands.iter().enumerate() {
            for &i in island {
                assert_ne!(classes[i] & (1 << k), 0, "island member lost its bit");
            }
        }
        // Nodes in exactly one island carry distinct classes from
        // nodes in exactly the other island and from the mainland.
        let only = |k: usize| {
            imp.islands[k]
                .iter()
                .copied()
                .find(|i| !imp.islands[1 - k].contains(i))
        };
        if let (Some(a), Some(b)) = (only(0), only(1)) {
            assert_ne!(classes[a], classes[b], "two islands must be mutually cut");
            assert_ne!(classes[a], 0, "island cut from the mainland");
        }
        // One epoch over: a single island remains.
        let late = s.impairments_at(280.0);
        assert_eq!(late.islands.len(), 1);
        assert!(s.impairments_at(320.0).islands.is_empty());
        assert!(s.impairments_at(320.0).partition_classes(40).is_empty());
    }

    #[test]
    fn overlapping_straggler_factors_multiply() {
        let spec = base_spec(12)
            .with(Condition::Straggler {
                node_fraction: 1.0,
                delay_factor: 2.0,
            })
            .with(Condition::Straggler {
                node_fraction: 1.0,
                delay_factor: 3.0,
            });
        let s = Scenario::realize(spec);
        let imp = s.impairments_at(0.0);
        assert_eq!(imp.stragglers.len(), 40, "one entry per node");
        assert!(
            imp.stragglers.iter().all(|&(_, f)| f == 6.0),
            "factors compose multiplicatively: {:?}",
            &imp.stragglers[..3]
        );
    }

    #[test]
    fn membership_events_sorted_and_sized() {
        let spec = base_spec(6).with(Condition::Churn {
            leave_at_s: 90.0,
            rejoin_at_s: 210.0,
            node_fraction: 0.1,
        });
        let s = Scenario::realize(spec);
        let events = s.membership_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_s, 90.0);
        match &events[0].kind {
            MembershipEventKind::Leave(ids) => {
                assert_eq!(ids.len(), 4);
                assert!(ids.iter().all(|&i| i < 40));
            }
            other => panic!("expected leave, got {other:?}"),
        }
        assert_eq!(events[1].at_s, 210.0);
        assert_eq!(events[1].kind, MembershipEventKind::Rejoin(4));
    }

    #[test]
    fn transition_times_sorted_within_run() {
        let spec = base_spec(7)
            .with(Condition::FlashCongestion {
                start_s: 120.0,
                end_s: 180.0,
                cluster_pairs: 1,
                factor: 3.0,
            })
            .with(Condition::RoutingShift {
                at_s: 60.0,
                pair_fraction: 0.1,
                factor: 1.5,
            })
            .with(Condition::Churn {
                leave_at_s: 120.0,
                rejoin_at_s: 400.0, // beyond the run: no rejoin event
                node_fraction: 0.1,
            });
        let s = Scenario::realize(spec);
        assert_eq!(s.transition_times(), vec![60.0, 120.0, 180.0]);
        assert_eq!(s.membership_events().len(), 1, "rejoin beyond the run");
    }

    #[test]
    fn truth_changes_only_where_conditions_move_it() {
        let spec = base_spec(13)
            .with(Condition::Drift {
                start_s: 100.0,
                end_s: 200.0,
                node_fraction: 0.2,
                max_shift_ms: 20.0,
            })
            .with(Condition::RoutingShift {
                at_s: 250.0,
                pair_fraction: 0.1,
                factor: 1.5,
            })
            .with(Condition::Partition {
                start_s: 40.0,
                end_s: 80.0,
                node_fraction: 0.3,
            });
        let s = Scenario::realize(spec);
        // Partitions never move the truth.
        assert!(!s.truth_changes_between(40.0, 80.0));
        assert!(!s.truth_changes_between(0.0, 100.0), "before the drift");
        assert!(s.truth_changes_between(100.0, 130.0), "drift in progress");
        assert!(s.truth_changes_between(190.0, 210.0), "drift tail");
        assert!(!s.truth_changes_between(200.0, 249.0), "settled gap");
        assert!(s.truth_changes_between(240.0, 250.0), "routing step");
        assert!(!s.truth_changes_between(250.0, 299.0), "after the step");
        // The claim it backs: equal truths across a quiet interval.
        assert_eq!(
            s.ground_truth_at(200.0).values,
            s.ground_truth_at(249.0).values
        );
    }

    #[test]
    fn windows_tile_the_duration() {
        let mut spec = base_spec(8);
        spec.duration_s = 100.0;
        spec.window_s = 30.0;
        let s = Scenario::realize(spec);
        assert_eq!(s.window_count(), 4);
        assert_eq!(s.window_bounds(0), (0.0, 30.0));
        assert_eq!(s.window_bounds(3), (90.0, 100.0), "last window clamps");

        // Float-division residue must not fabricate an empty phantom
        // window: 5.7 / 1.9 is 3.0000000000000004 in f64.
        let mut odd = base_spec(9);
        odd.duration_s = 5.7;
        odd.window_s = 1.9;
        let s = Scenario::realize(odd);
        assert_eq!(s.window_count(), 3);
        let (start, end) = s.window_bounds(2);
        assert!(end > start, "last window must be non-empty");
        assert!((end - 5.7).abs() < 1e-9, "last window ends at the duration");
    }

    #[test]
    fn spec_json_roundtrip() {
        let spec = base_spec(9)
            .with(Condition::Partition {
                start_s: 10.0,
                end_s: 20.0,
                node_fraction: 0.5,
            })
            .with(Condition::Straggler {
                node_fraction: 0.2,
                delay_factor: 2.5,
            });
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: ScenarioSpec = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.name, spec.name);
        assert_eq!(back.conditions.len(), 2);
        let a = Scenario::realize(spec);
        let b = Scenario::realize(back);
        assert_eq!(
            a.ground_truth_at(15.0).values,
            b.ground_truth_at(15.0).values,
            "a spec surviving serde realizes identically"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_epoch_rejected() {
        Scenario::realize(base_spec(10).with(Condition::ProbeLoss {
            start_s: 50.0,
            end_s: 50.0,
            probability: 0.1,
        }));
    }

    #[test]
    #[should_panic(expected = "strict subset")]
    fn full_population_partition_rejected() {
        Scenario::realize(base_spec(15).with(Condition::Partition {
            start_s: 10.0,
            end_s: 20.0,
            node_fraction: 1.0,
        }));
    }

    #[test]
    #[should_panic(expected = "strict subset")]
    fn full_population_churn_rejected() {
        Scenario::realize(base_spec(17).with(Condition::Churn {
            leave_at_s: 10.0,
            rejoin_at_s: 20.0,
            node_fraction: 1.0,
        }));
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn fraction_out_of_range_rejected() {
        Scenario::realize(base_spec(11).with(Condition::Partition {
            start_s: 10.0,
            end_s: 20.0,
            node_fraction: 1.5,
        }));
    }
}
