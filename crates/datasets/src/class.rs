//! Binary class matrices (`+1` good / `−1` bad).
//!
//! Thresholding a quantity matrix at `τ` produces the input of the
//! class-based matrix-completion problem (paper §3.2 and Figure 2).
//! [`ClassMatrix`] keeps the labels together with the mask and the
//! threshold that produced them, and offers the Table-1 style summary
//! of class balance.

use crate::{Dataset, Metric};
use dmf_linalg::{Mask, Matrix};
use serde::{Deserialize, Serialize};

/// A ±1 class matrix with its observation mask.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassMatrix {
    /// The metric the classes were derived from.
    pub metric: Metric,
    /// The threshold `τ` used.
    pub tau: f64,
    /// Labels: `+1.0` good, `−1.0` bad; unknown entries are 0.0 and
    /// excluded by the mask.
    pub labels: Matrix,
    /// Observation mask.
    pub mask: Mask,
}

impl ClassMatrix {
    /// Thresholds a dataset at `tau`.
    pub fn from_dataset(dataset: &Dataset, tau: f64) -> Self {
        let n = dataset.len();
        let mut labels = Matrix::zeros(n, n);
        for (i, j) in dataset.mask.iter_known() {
            labels[(i, j)] = dataset.metric.classify(dataset.values[(i, j)], tau);
        }
        Self {
            metric: dataset.metric,
            tau,
            labels,
            mask: dataset.mask.clone(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.rows()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The label of a pair, if observed.
    pub fn label(&self, i: usize, j: usize) -> Option<f64> {
        if self.mask.is_known(i, j) {
            Some(self.labels[(i, j)])
        } else {
            None
        }
    }

    /// Sets a label (used by error-injection; the value must be ±1).
    pub fn set_label(&mut self, i: usize, j: usize, label: f64) {
        assert!(
            label == 1.0 || label == -1.0,
            "class label must be +1 or -1, got {label}"
        );
        assert!(self.mask.is_known(i, j), "cannot label an unobserved entry");
        self.labels[(i, j)] = label;
    }

    /// Fraction of observed entries labeled "good".
    pub fn good_fraction(&self) -> f64 {
        let mut good = 0usize;
        let mut total = 0usize;
        for (i, j) in self.mask.iter_known() {
            total += 1;
            if self.labels[(i, j)] > 0.0 {
                good += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            good as f64 / total as f64
        }
    }

    /// Count of observed (good, bad) labels.
    pub fn class_counts(&self) -> (usize, usize) {
        let mut good = 0;
        let mut bad = 0;
        for (i, j) in self.mask.iter_known() {
            if self.labels[(i, j)] > 0.0 {
                good += 1;
            } else {
                bad += 1;
            }
        }
        (good, bad)
    }

    /// Number of labels that differ from `other` on commonly-observed
    /// entries (used to verify error-injection levels).
    pub fn disagreement_count(&self, other: &ClassMatrix) -> usize {
        assert_eq!(self.len(), other.len(), "class matrix size mismatch");
        let mut diff = 0;
        for (i, j) in self.mask.iter_known() {
            if other.mask.is_known(i, j) && self.labels[(i, j)] != other.labels[(i, j)] {
                diff += 1;
            }
        }
        diff
    }
}

/// One row of the paper's Table 1: a good-portion target and the τ that
/// achieves it on a dataset.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TauPortionRow {
    /// Requested fraction of good paths (0.10, 0.25, …).
    pub portion: f64,
    /// Threshold achieving it.
    pub tau: f64,
    /// Fraction actually achieved (sanity check; equals `portion` up to
    /// ties in the value distribution).
    pub achieved: f64,
}

/// Computes Table 1 for a dataset over the paper's portion grid.
pub fn tau_portion_table(dataset: &Dataset, portions: &[f64]) -> Vec<TauPortionRow> {
    portions
        .iter()
        .map(|&portion| {
            let tau = dataset.tau_for_good_portion(portion);
            TauPortionRow {
                portion,
                tau,
                achieved: dataset.good_fraction(tau),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_linalg::Mask;

    fn toy_dataset() -> Dataset {
        let values = Matrix::from_rows(&[
            &[0.0, 10.0, 20.0, 40.0],
            &[10.0, 0.0, 30.0, 50.0],
            &[20.0, 30.0, 0.0, 60.0],
            &[40.0, 50.0, 60.0, 0.0],
        ]);
        Dataset::new("toy", Metric::Rtt, values, Mask::full_off_diagonal(4))
    }

    #[test]
    fn labels_follow_threshold() {
        let cm = toy_dataset().classify(25.0);
        assert_eq!(cm.label(0, 1), Some(1.0)); // 10 <= 25
        assert_eq!(cm.label(0, 3), Some(-1.0)); // 40 > 25
        assert_eq!(cm.label(1, 1), None);
    }

    #[test]
    fn good_fraction_and_counts() {
        let cm = toy_dataset().classify(25.0);
        // good values: 10,10,20,20 → 4 of 12.
        assert!((cm.good_fraction() - 4.0 / 12.0).abs() < 1e-9);
        assert_eq!(cm.class_counts(), (4, 8));
    }

    #[test]
    fn set_label_validated() {
        let mut cm = toy_dataset().classify(25.0);
        cm.set_label(0, 1, -1.0);
        assert_eq!(cm.label(0, 1), Some(-1.0));
    }

    #[test]
    #[should_panic(expected = "must be +1 or -1")]
    fn set_label_rejects_other_values() {
        let mut cm = toy_dataset().classify(25.0);
        cm.set_label(0, 1, 0.5);
    }

    #[test]
    #[should_panic(expected = "unobserved entry")]
    fn set_label_rejects_unobserved() {
        let mut cm = toy_dataset().classify(25.0);
        cm.set_label(1, 1, 1.0);
    }

    #[test]
    fn disagreement_counts_flips() {
        let base = toy_dataset().classify(25.0);
        let mut flipped = base.clone();
        flipped.set_label(0, 1, -1.0);
        flipped.set_label(2, 3, 1.0);
        assert_eq!(base.disagreement_count(&flipped), 2);
        assert_eq!(base.disagreement_count(&base), 0);
    }

    #[test]
    fn tau_portion_table_monotone_for_rtt() {
        let d = toy_dataset();
        let rows = tau_portion_table(&d, &[0.10, 0.25, 0.50, 0.75, 0.90]);
        for w in rows.windows(2) {
            assert!(
                w[0].tau <= w[1].tau,
                "τ must grow with good-portion for RTT"
            );
        }
        // Achieved fraction should be near the requested portion.
        for row in &rows {
            assert!(
                (row.achieved - row.portion).abs() < 0.2,
                "achieved {} too far from requested {}",
                row.achieved,
                row.portion
            );
        }
    }
}
