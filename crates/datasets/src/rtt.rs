//! Synthetic RTT datasets calibrated to the paper's corpora.
//!
//! * [`meridian_like`] — a static 2500-node matrix mirroring the
//!   Meridian dataset (median ≈ 56.4 ms, symmetric, fully observed
//!   off-diagonal).
//! * [`harvard_like_static`] — the static face of the Harvard dataset
//!   (226 nodes, median ≈ 131.6 ms, heavier tail: application-level
//!   RTTs measured between Azureus clients behind access links). The
//!   *dynamic* Harvard trace lives in [`crate::dynamic`].
//!
//! Both generators produce a two-tier topology (see
//! [`crate::topology`]) and then rescale all values so the observed
//! median matches the published median exactly — the experiments'
//! thresholds (`τ`) are percentile-based, so matching location and
//! shape is what matters.

use crate::topology::{Topology, TopologyConfig};
use crate::{Dataset, Metric};
use dmf_linalg::Mask;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic RTT dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RttDatasetConfig {
    /// Dataset name.
    pub name: String,
    /// Topology parameters (node count lives here).
    pub topology: TopologyConfig,
    /// Median the observed values are calibrated to (ms).
    pub target_median_ms: f64,
}

impl RttDatasetConfig {
    /// Meridian-like defaults at a custom size (the paper's matrix is
    /// 2500 × 2500; tests use smaller instances).
    pub fn meridian(nodes: usize) -> Self {
        Self {
            name: "meridian-like".into(),
            topology: TopologyConfig {
                nodes,
                clusters: (nodes / 100).clamp(8, 25),
                plane_size_ms: 70.0,
                access_mu: 1.6, // infrastructure nodes: small access delay
                access_sigma: 0.6,
                cluster_jitter_ms: 2.0,
                pair_noise_sigma: 0.08,
            },
            target_median_ms: 56.4,
        }
    }

    /// Harvard-like defaults at a custom size (paper: 226 nodes).
    /// Azureus clients sit behind residential access links: larger and
    /// more dispersed access delays, heavier pair noise.
    pub fn harvard(nodes: usize) -> Self {
        Self {
            name: "harvard-like".into(),
            topology: TopologyConfig {
                nodes,
                clusters: (nodes / 20).clamp(6, 16),
                plane_size_ms: 90.0,
                access_mu: 3.3, // median ≈ 27 ms of access delay per side
                access_sigma: 0.9,
                cluster_jitter_ms: 4.0,
                pair_noise_sigma: 0.15,
            },
            target_median_ms: 131.6,
        }
    }
}

/// Generates an RTT dataset plus the topology it came from.
pub fn generate_rtt_dataset(config: &RttDatasetConfig, seed: u64) -> (Topology, Dataset) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let topology = Topology::generate(config.topology.clone(), &mut rng);
    let values = topology.rtt_matrix(&mut rng);
    let mask = Mask::full_off_diagonal(topology.len());
    let mut dataset = Dataset::new(config.name.clone(), Metric::Rtt, values, mask);
    let median = dataset.median();
    assert!(median > 0.0, "degenerate topology produced zero median RTT");
    dataset.scale_values(config.target_median_ms / median);
    (topology, dataset)
}

/// Meridian-like static RTT dataset (paper size: 2500 nodes,
/// median 56.4 ms).
pub fn meridian_like(nodes: usize, seed: u64) -> Dataset {
    generate_rtt_dataset(&RttDatasetConfig::meridian(nodes), seed).1
}

/// Harvard-like *static* RTT dataset (the per-pair medians; paper size:
/// 226 nodes, median 131.6 ms). For the timestamped dynamic stream use
/// [`crate::dynamic::harvard_like`].
pub fn harvard_like_static(nodes: usize, seed: u64) -> Dataset {
    generate_rtt_dataset(&RttDatasetConfig::harvard(nodes), seed).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meridian_median_calibrated() {
        let d = meridian_like(150, 1);
        assert!((d.median() - 56.4).abs() < 1e-6, "median {}", d.median());
        assert_eq!(d.len(), 150);
        assert_eq!(d.metric, Metric::Rtt);
    }

    #[test]
    fn harvard_median_calibrated() {
        let d = harvard_like_static(120, 2);
        assert!((d.median() - 131.6).abs() < 1e-6, "median {}", d.median());
    }

    #[test]
    fn values_positive_and_symmetric() {
        let d = meridian_like(80, 3);
        for i in 0..80 {
            for j in 0..80 {
                if i != j {
                    assert!(d.values[(i, j)] > 0.0);
                    assert!((d.values[(i, j)] - d.values[(j, i)]).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn harvard_has_heavier_tail_than_meridian() {
        let h = harvard_like_static(150, 4);
        let m = meridian_like(150, 4);
        // Compare tail weight via p90/p50 after identical calibration.
        let h_obs = h.observed_values();
        let m_obs = m.observed_values();
        let h_ratio = dmf_linalg::stats::percentile(&h_obs, 90.0) / h.median();
        let m_ratio = dmf_linalg::stats::percentile(&m_obs, 90.0) / m.median();
        assert!(
            h_ratio > m_ratio * 0.95,
            "harvard p90/p50 {h_ratio} should not be lighter than meridian {m_ratio}"
        );
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let a = meridian_like(60, 7);
        let b = meridian_like(60, 7);
        let c = meridian_like(60, 8);
        assert_eq!(a.values, b.values);
        assert_ne!(a.values, c.values);
    }

    #[test]
    fn table1_style_portions_bracket_median() {
        let d = meridian_like(200, 9);
        let t10 = d.tau_for_good_portion(0.10);
        let t50 = d.tau_for_good_portion(0.50);
        let t90 = d.tau_for_good_portion(0.90);
        assert!(t10 < t50 && t50 < t90);
        assert!((t50 - d.median()).abs() < 1e-9);
    }
}
