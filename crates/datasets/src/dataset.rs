//! The [`Dataset`] container: a ground-truth pairwise measurement
//! matrix plus its observation mask and metric identity.

use crate::class::ClassMatrix;
use crate::Metric;
use dmf_linalg::stats::{percentile, Summary};
use dmf_linalg::{Mask, Matrix};
use serde::{Deserialize, Serialize};

/// A pairwise performance dataset over `n` nodes.
///
/// `values[(i, j)]` is the ground-truth quantity from node `i` to node
/// `j` (ms for RTT, Mbps for ABW); only entries with `mask.is_known`
/// are meaningful. The diagonal is never observed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable name (e.g. `"meridian-like"`).
    pub name: String,
    /// Which metric the values measure.
    pub metric: Metric,
    /// Ground-truth quantities.
    pub values: Matrix,
    /// Observation mask (true = entry exists in the dataset).
    pub mask: Mask,
}

impl Dataset {
    /// Builds a dataset, validating shapes.
    ///
    /// # Panics
    /// Panics if the mask shape differs from the value shape, or if the
    /// matrix is not square.
    pub fn new(name: impl Into<String>, metric: Metric, values: Matrix, mask: Mask) -> Self {
        assert!(values.is_square(), "pairwise dataset must be square");
        assert_eq!(
            (mask.rows(), mask.cols()),
            values.shape(),
            "mask/value shape mismatch"
        );
        Self {
            name: name.into(),
            metric,
            values,
            mask,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.values.rows()
    }

    /// True when the dataset has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All observed values, in row-major order.
    pub fn observed_values(&self) -> Vec<f64> {
        self.mask
            .iter_known()
            .map(|(i, j)| self.values[(i, j)])
            .collect()
    }

    /// The ground-truth quantity for a pair, if observed.
    pub fn value(&self, i: usize, j: usize) -> Option<f64> {
        if self.mask.is_known(i, j) {
            Some(self.values[(i, j)])
        } else {
            None
        }
    }

    /// Median of the observed values — the paper's default `τ`.
    pub fn median(&self) -> f64 {
        dmf_linalg::stats::median(&self.observed_values())
    }

    /// `τ` that makes the requested fraction of observed paths "good"
    /// (Table 1's percentile sweep).
    pub fn tau_for_good_portion(&self, portion: f64) -> f64 {
        let p = self.metric.percentile_for_good_portion(portion);
        percentile(&self.observed_values(), p)
    }

    /// Summary statistics of observed values (used for calibration
    /// checks and harness output).
    pub fn summary(&self) -> Summary {
        Summary::of(&self.observed_values())
    }

    /// Thresholds the dataset into a ±1 class matrix at `tau`.
    pub fn classify(&self, tau: f64) -> ClassMatrix {
        ClassMatrix::from_dataset(self, tau)
    }

    /// Fraction of observed paths that are "good" at `tau`.
    pub fn good_fraction(&self, tau: f64) -> f64 {
        let obs = self.observed_values();
        if obs.is_empty() {
            return 0.0;
        }
        let good = obs
            .iter()
            .filter(|&&v| self.metric.classify(v, tau) > 0.0)
            .count();
        good as f64 / obs.len() as f64
    }

    /// Rescales all values by `factor` (calibration helper).
    pub fn scale_values(&mut self, factor: f64) {
        assert!(factor > 0.0, "scale factor must be positive");
        self.values = self.values.scale(factor);
    }

    /// Restricts the dataset to its first `n` nodes (used to cut the
    /// Figure-1 submatrices, e.g. 2255 of 2500 Meridian nodes).
    pub fn head(&self, n: usize) -> Dataset {
        assert!(
            n <= self.len(),
            "head({n}) larger than dataset ({})",
            self.len()
        );
        let values = self.values.submatrix(n, n);
        let mut mask = Mask::none(n, n);
        for (i, j) in self.mask.iter_known() {
            if i < n && j < n {
                mask.set(i, j, true);
            }
        }
        Dataset::new(format!("{}[0..{n}]", self.name), self.metric, values, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_rtt() -> Dataset {
        // 3 nodes; values 10, 20, 30 observed off-diagonal (symmetric).
        let values =
            Matrix::from_rows(&[&[0.0, 10.0, 20.0], &[10.0, 0.0, 30.0], &[20.0, 30.0, 0.0]]);
        Dataset::new("toy", Metric::Rtt, values, Mask::full_off_diagonal(3))
    }

    #[test]
    fn observed_values_skip_diagonal() {
        let d = toy_rtt();
        let mut obs = d.observed_values();
        obs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(obs, vec![10.0, 10.0, 20.0, 20.0, 30.0, 30.0]);
    }

    #[test]
    fn median_and_tau() {
        let d = toy_rtt();
        assert_eq!(d.median(), 20.0);
        // 50% good for RTT is the median.
        assert!((d.tau_for_good_portion(0.5) - 20.0).abs() < 1e-9);
        // Small portions give small tau for RTT.
        assert!(d.tau_for_good_portion(0.1) < d.tau_for_good_portion(0.9));
    }

    #[test]
    fn good_fraction_tracks_tau() {
        let d = toy_rtt();
        assert!((d.good_fraction(10.0) - 2.0 / 6.0).abs() < 1e-9);
        assert!((d.good_fraction(30.0) - 1.0).abs() < 1e-9);
        assert_eq!(d.good_fraction(5.0), 0.0);
    }

    #[test]
    fn value_respects_mask() {
        let d = toy_rtt();
        assert_eq!(d.value(0, 1), Some(10.0));
        assert_eq!(d.value(1, 1), None);
    }

    #[test]
    fn scale_values_rescales_median() {
        let mut d = toy_rtt();
        d.scale_values(2.0);
        assert_eq!(d.median(), 40.0);
    }

    #[test]
    fn head_restricts() {
        let d = toy_rtt();
        let h = d.head(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.value(0, 1), Some(10.0));
        assert_eq!(h.value(1, 0), Some(10.0));
        assert_eq!(h.mask.count_known(), 2);
    }

    #[test]
    #[should_panic(expected = "must be square")]
    fn non_square_rejected() {
        let values = Matrix::zeros(2, 3);
        let mask = Mask::none(2, 3);
        Dataset::new("bad", Metric::Rtt, values, mask);
    }

    #[test]
    fn abw_good_fraction_orientation() {
        let values = Matrix::from_rows(&[&[0.0, 100.0], &[5.0, 0.0]]);
        let d = Dataset::new("abw", Metric::Abw, values, Mask::full_off_diagonal(2));
        // tau = 50: only the 100 path is good.
        assert!((d.good_fraction(50.0) - 0.5).abs() < 1e-9);
    }
}
