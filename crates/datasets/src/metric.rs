//! Performance metrics and their orientation.
//!
//! The paper treats RTT and ABW uniformly *after* classification, but
//! the two metrics point in opposite directions: a path is "good" when
//! its RTT is **below** the threshold `τ`, or when its ABW is **above**
//! it. [`Metric`] carries that orientation (plus the measurement
//! symmetry, which drives the choice between Algorithm 1 and
//! Algorithm 2) so the rest of the workspace never hard-codes a
//! direction.

use serde::{Deserialize, Serialize};

/// An end-to-end performance metric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Metric {
    /// Round-trip time in milliseconds. Lower is better; measurements
    /// are symmetric and inferred by the *sender* (paper §3.1.1).
    Rtt,
    /// Available bandwidth in Mbps. Higher is better; measurements are
    /// asymmetric and inferred by the *target* (paper §3.1.2).
    Abw,
}

impl Metric {
    /// True when smaller values mean better performance.
    pub fn lower_is_better(self) -> bool {
        matches!(self, Metric::Rtt)
    }

    /// True when pairwise measurements can be treated as symmetric
    /// (`x_ij = x_ji`), which enables the RTT update rules (eqs. 9–10).
    pub fn is_symmetric(self) -> bool {
        matches!(self, Metric::Rtt)
    }

    /// Classifies a raw quantity against threshold `tau`:
    /// `+1.0` ("good") or `-1.0` ("bad").
    ///
    /// Values exactly at `tau` count as good for both metrics, matching
    /// the "is the performance good *enough*" framing.
    pub fn classify(self, value: f64, tau: f64) -> f64 {
        let good = match self {
            Metric::Rtt => value <= tau,
            Metric::Abw => value >= tau,
        };
        if good {
            1.0
        } else {
            -1.0
        }
    }

    /// The percentile of the value distribution whose threshold yields
    /// the requested fraction of "good" paths.
    ///
    /// For RTT, a 10 % good-portion needs the 10th percentile (only the
    /// fastest tenth is good); for ABW it needs the 90th percentile
    /// (only the highest tenth is good). This is exactly how the
    /// paper's Table 1 maps portions to `τ` values.
    pub fn percentile_for_good_portion(self, portion: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&portion),
            "good portion must be in [0,1], got {portion}"
        );
        match self {
            Metric::Rtt => portion * 100.0,
            Metric::Abw => (1.0 - portion) * 100.0,
        }
    }

    /// Is `candidate` strictly better than `reference` under this metric?
    pub fn better(self, candidate: f64, reference: f64) -> bool {
        match self {
            Metric::Rtt => candidate < reference,
            Metric::Abw => candidate > reference,
        }
    }

    /// Unit label used in harness output (`ms` / `Mbps`).
    pub fn unit(self) -> &'static str {
        match self {
            Metric::Rtt => "ms",
            Metric::Abw => "Mbps",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation() {
        assert!(Metric::Rtt.lower_is_better());
        assert!(!Metric::Abw.lower_is_better());
        assert!(Metric::Rtt.is_symmetric());
        assert!(!Metric::Abw.is_symmetric());
    }

    #[test]
    fn classify_rtt() {
        assert_eq!(Metric::Rtt.classify(50.0, 100.0), 1.0);
        assert_eq!(Metric::Rtt.classify(150.0, 100.0), -1.0);
        assert_eq!(Metric::Rtt.classify(100.0, 100.0), 1.0);
    }

    #[test]
    fn classify_abw() {
        assert_eq!(Metric::Abw.classify(50.0, 10.0), 1.0);
        assert_eq!(Metric::Abw.classify(5.0, 10.0), -1.0);
        assert_eq!(Metric::Abw.classify(10.0, 10.0), 1.0);
    }

    #[test]
    fn percentile_mapping_matches_table1_convention() {
        // 10% good RTT → 10th percentile; 10% good ABW → 90th percentile.
        assert_eq!(Metric::Rtt.percentile_for_good_portion(0.10), 10.0);
        assert_eq!(Metric::Abw.percentile_for_good_portion(0.10), 90.0);
        assert_eq!(Metric::Rtt.percentile_for_good_portion(0.50), 50.0);
        assert_eq!(Metric::Abw.percentile_for_good_portion(0.50), 50.0);
    }

    #[test]
    fn better_is_strict() {
        assert!(Metric::Rtt.better(10.0, 20.0));
        assert!(!Metric::Rtt.better(20.0, 10.0));
        assert!(!Metric::Rtt.better(10.0, 10.0));
        assert!(Metric::Abw.better(20.0, 10.0));
        assert!(!Metric::Abw.better(10.0, 20.0));
    }

    #[test]
    #[should_panic(expected = "good portion")]
    fn portion_validated() {
        Metric::Rtt.percentile_for_good_portion(1.2);
    }
}
