//! Persistence for datasets and traces.
//!
//! Two formats:
//!
//! * **JSON** ([`save_dataset_json`] / [`load_dataset_json`], and the
//!   trace equivalents) — lossless, self-describing, used by the
//!   experiment harness to record inputs next to results.
//! * **Matrix text** ([`write_matrix_text`] / [`read_matrix_text`]) —
//!   the whitespace-separated square-matrix layout used by the public
//!   p2psim/Meridian matrix dumps, with `nan` marking missing entries.
//!   This is the drop-in path for users who have the paper's real
//!   datasets on disk.

use crate::{Dataset, DynamicTrace, Metric};
use dmf_linalg::{Mask, Matrix};
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Saves a dataset as JSON.
pub fn save_dataset_json(dataset: &Dataset, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string(dataset).map_err(io::Error::other)?;
    fs::write(path, json)
}

/// Loads a dataset from JSON.
pub fn load_dataset_json(path: &Path) -> io::Result<Dataset> {
    let text = fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(io::Error::other)
}

/// Saves a dynamic trace as JSON.
pub fn save_trace_json(trace: &DynamicTrace, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string(trace).map_err(io::Error::other)?;
    fs::write(path, json)
}

/// Loads a dynamic trace from JSON, validating time ordering.
pub fn load_trace_json(path: &Path) -> io::Result<DynamicTrace> {
    let text = fs::read_to_string(path)?;
    let trace: DynamicTrace = serde_json::from_str(&text).map_err(io::Error::other)?;
    if !trace.is_time_ordered() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trace measurements are not time-ordered",
        ));
    }
    Ok(trace)
}

/// Writes a square matrix in whitespace text form; unobserved entries
/// become `nan`.
pub fn write_matrix_text(dataset: &Dataset, path: &Path) -> io::Result<()> {
    let n = dataset.len();
    let mut out = fs::File::create(path)?;
    for i in 0..n {
        let mut row = String::new();
        for j in 0..n {
            if j > 0 {
                row.push(' ');
            }
            match dataset.value(i, j) {
                Some(v) => row.push_str(&format!("{v}")),
                None => row.push_str("nan"),
            }
        }
        row.push('\n');
        out.write_all(row.as_bytes())?;
    }
    Ok(())
}

/// Reads a square whitespace matrix; `nan` (case-insensitive) and
/// negative values are treated as missing (public RTT dumps use both
/// conventions).
pub fn read_matrix_text(path: &Path, name: &str, metric: Metric) -> io::Result<Dataset> {
    let text = fs::read_to_string(path)?;
    let mut rows: Vec<Vec<Option<f64>>> = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for tok in line.split_whitespace() {
            if tok.eq_ignore_ascii_case("nan") {
                row.push(None);
                continue;
            }
            let v: f64 = tok.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad number {tok:?}: {e}", line_no + 1),
                )
            })?;
            row.push(if v < 0.0 { None } else { Some(v) });
        }
        rows.push(row);
    }
    let n = rows.len();
    if rows.iter().any(|r| r.len() != n) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "matrix text is not square",
        ));
    }
    let mut values = Matrix::zeros(n, n);
    let mut mask = Mask::none(n, n);
    for (i, row) in rows.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            if let Some(v) = cell {
                if i != j {
                    values[(i, j)] = *v;
                    mask.set(i, j, true);
                }
            }
        }
    }
    Ok(Dataset::new(name, metric, values, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtt::meridian_like;
    use std::env;

    fn tmp(name: &str) -> std::path::PathBuf {
        env::temp_dir().join(format!("dmf-datasets-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn dataset_json_roundtrip() {
        let d = meridian_like(20, 1);
        let path = tmp("ds.json");
        save_dataset_json(&d, &path).unwrap();
        let back = load_dataset_json(&path).unwrap();
        assert_eq!(back.values, d.values);
        assert_eq!(back.mask, d.mask);
        assert_eq!(back.metric, d.metric);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_json_roundtrip() {
        let cfg = crate::dynamic::HarvardConfig::new(10, 500);
        let (trace, _) = crate::dynamic::harvard_like(&cfg, 2);
        let path = tmp("trace.json");
        save_trace_json(&trace, &path).unwrap();
        let back = load_trace_json(&path).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.measurements[0], trace.measurements[0]);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_json_rejects_unordered() {
        let trace = DynamicTrace {
            name: "bad".into(),
            metric: Metric::Rtt,
            nodes: 2,
            measurements: vec![
                crate::Measurement {
                    time_s: 5.0,
                    from: 0,
                    to: 1,
                    value: 1.0,
                },
                crate::Measurement {
                    time_s: 1.0,
                    from: 1,
                    to: 0,
                    value: 1.0,
                },
            ],
        };
        let path = tmp("unordered.json");
        save_trace_json(&trace, &path).unwrap();
        assert!(load_trace_json(&path).is_err());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_text_roundtrip() {
        let d = meridian_like(12, 3);
        let path = tmp("matrix.txt");
        write_matrix_text(&d, &path).unwrap();
        let back = read_matrix_text(&path, "roundtrip", Metric::Rtt).unwrap();
        assert_eq!(back.len(), 12);
        for (i, j) in d.mask.iter_known() {
            let a = d.values[(i, j)];
            let b = back.values[(i, j)];
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
        }
        // Diagonal must be masked on read.
        assert_eq!(back.value(0, 0), None);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_text_negative_is_missing() {
        let path = tmp("neg.txt");
        fs::write(&path, "nan 5\n-1 nan\n").unwrap();
        let d = read_matrix_text(&path, "neg", Metric::Rtt).unwrap();
        assert_eq!(d.value(0, 1), Some(5.0));
        assert_eq!(d.value(1, 0), None);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_text_rejects_ragged() {
        let path = tmp("ragged.txt");
        fs::write(&path, "1 2 3\n4 5\n").unwrap();
        assert!(read_matrix_text(&path, "ragged", Metric::Rtt).is_err());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn matrix_text_rejects_garbage() {
        let path = tmp("garbage.txt");
        fs::write(&path, "1 x\n2 3\n").unwrap();
        assert!(read_matrix_text(&path, "garbage", Metric::Rtt).is_err());
        fs::remove_file(&path).ok();
    }
}
