//! # dmf-datasets
//!
//! Dataset substrate for the DMFSGD reproduction.
//!
//! The paper evaluates on three datasets that are not redistributable
//! here (Harvard/Azureus dynamic RTTs, Meridian static RTTs, HP-S3
//! pathChirp ABW). This crate builds **calibrated synthetic
//! equivalents** — generators that reproduce the properties DMFSGD
//! actually depends on:
//!
//! * low *effective rank* of the pairwise matrix (paper Figure 1),
//!   obtained from a two-tier Internet-like topology
//!   ([`topology`]): shared cluster-to-cluster paths plus per-node
//!   access links;
//! * the published scale of each dataset (node counts; median RTT
//!   ≈ 132 ms for Harvard, ≈ 56 ms for Meridian, median ABW ≈ 43 Mbps
//!   for HP-S3), enforced by exact median re-calibration;
//! * asymmetry and missing entries for ABW (HP-S3 has 4 % missing);
//! * timestamped, unevenly-sampled dynamic measurement streams for
//!   Harvard ([`dynamic`]);
//! * declarative *non-stationary scenarios* ([`scenario`]): drift,
//!   flash congestion, routing changes, probe loss, partitions,
//!   stragglers and churn composed over a timeline, with time-varying
//!   ground truth derived from the same topology model.
//!
//! The substitution rationale is documented in `DESIGN.md` §4. Loaders
//! for on-disk matrices/traces ([`io`]) accept the same representation,
//! so the real datasets can be dropped in when available.
//!
//! # Position in the workspace
//!
//! Builds directly on [`dmf_linalg`]: a [`Dataset`] is a
//! [`dmf_linalg::Matrix`] of quantities plus a [`dmf_linalg::Mask`]
//! of observed pairs and a [`Metric`]. Downstream, `dmf-simnet`
//! probes these datasets, `dmf-core` trains on them, and `dmf-eval`
//! scores predictions against a [`ClassMatrix`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abw;
pub mod class;
pub mod dataset;
pub mod dynamic;
pub mod io;
pub mod metric;
pub mod rtt;
// The scenario spec is service surface (the quality suite and CI gate
// build on it): undocumented public items are hard errors, and
// tools/check_doc_guards.sh keeps the attribute from being dropped.
#[deny(missing_docs)]
pub mod scenario;
pub mod topology;

pub use class::ClassMatrix;
pub use dataset::Dataset;
pub use dynamic::{DynamicTrace, Measurement};
pub use metric::Metric;
pub use scenario::{Condition, Scenario, ScenarioSpec};
