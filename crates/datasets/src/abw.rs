//! Synthetic available-bandwidth datasets calibrated to HP-S3.
//!
//! The HP-S3 dataset measured ABW between 459 PlanetLab-style nodes
//! with pathChirp; the paper extracts a dense 231-node matrix with 4 %
//! missing entries and a ≈ 43 Mbps median. What DMFSGD relies on:
//!
//! * **asymmetry** — `x_ij ≠ x_ji` (uplinks and downlinks differ);
//! * **low effective rank** — the bottleneck of most paths is one of
//!   the two access links, so the matrix is approximately
//!   `min(up_i, down_j)`, whose class-thresholded version is strongly
//!   structured; a minority of paths bottleneck in congested core
//!   links shared per cluster pair;
//! * **multi-modal values** — capacities cluster around technology
//!   tiers (DSL/Ethernet/fast-Ethernet…), not a smooth distribution;
//! * **missing entries** — 4 % of pairs unobserved.
//!
//! All four are reproduced here, then the median is calibrated exactly.

use crate::topology::{Topology, TopologyConfig};
use crate::{Dataset, Metric};
use dmf_linalg::stats::log_normal_sample;
use dmf_linalg::{Mask, Matrix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a synthetic ABW dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AbwDatasetConfig {
    /// Dataset name.
    pub name: String,
    /// Cluster layout (reuses the RTT topology machinery; only cluster
    /// membership matters for ABW).
    pub topology: TopologyConfig,
    /// Access-capacity tiers as `(capacity_mbps, weight)` pairs.
    pub tiers: Vec<(f64, f64)>,
    /// Core capacity for uncongested cluster pairs (Mbps).
    pub core_capacity_mbps: f64,
    /// Fraction of ordered cluster pairs whose core link is congested.
    pub congested_pair_fraction: f64,
    /// Congested core links have capacity scaled into this range.
    pub congestion_factor: (f64, f64),
    /// Log-normal sigma of per-direction access-capacity variation
    /// (same node, up vs down).
    pub asymmetry_sigma: f64,
    /// Log-normal sigma of per-pair cross-traffic noise.
    pub cross_traffic_sigma: f64,
    /// Fraction of off-diagonal entries hidden from the dataset.
    pub missing_fraction: f64,
    /// Median the observed values are calibrated to (Mbps).
    pub target_median_mbps: f64,
}

impl AbwDatasetConfig {
    /// HP-S3-like defaults at a custom size (the paper's dense matrix
    /// is 231 × 231 with 4 % missing and median 43.1 Mbps).
    pub fn hps3(nodes: usize) -> Self {
        Self {
            name: "hps3-like".into(),
            topology: TopologyConfig {
                nodes,
                clusters: (nodes / 20).clamp(6, 14),
                ..TopologyConfig::default()
            },
            // Capacity tiers loosely matching research-network hosts:
            // throttled DSL-ish, 10/45/100 Mbps Ethernet classes, and a
            // well-provisioned GigE-ish tail.
            tiers: vec![
                (8.0, 0.10),
                (20.0, 0.20),
                (45.0, 0.25),
                (80.0, 0.25),
                (150.0, 0.15),
                (400.0, 0.05),
            ],
            core_capacity_mbps: 300.0,
            congested_pair_fraction: 0.15,
            congestion_factor: (0.1, 0.5),
            asymmetry_sigma: 0.25,
            cross_traffic_sigma: 0.18,
            missing_fraction: 0.04,
            target_median_mbps: 43.1,
        }
    }
}

/// Samples a capacity tier by weight.
fn sample_tier(tiers: &[(f64, f64)], rng: &mut impl Rng) -> f64 {
    let total: f64 = tiers.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen::<f64>() * total;
    for &(cap, w) in tiers {
        if pick < w {
            return cap;
        }
        pick -= w;
    }
    tiers.last().expect("tier list must be non-empty").0
}

/// Generates an ABW dataset plus the topology it came from.
pub fn generate_abw_dataset(config: &AbwDatasetConfig, seed: u64) -> (Topology, Dataset) {
    assert!(!config.tiers.is_empty(), "ABW config needs capacity tiers");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let topology = Topology::generate(config.topology.clone(), &mut rng);
    let n = topology.len();
    let clusters = config.topology.clusters;

    // Per-node base tier, then asymmetric up/down capacities.
    let mut up = Vec::with_capacity(n);
    let mut down = Vec::with_capacity(n);
    for _ in 0..n {
        let base = sample_tier(&config.tiers, &mut rng);
        up.push(base * log_normal_sample(&mut rng, 0.0, config.asymmetry_sigma));
        down.push(base * log_normal_sample(&mut rng, 0.0, config.asymmetry_sigma));
    }

    // Core capacity per ordered cluster pair.
    let mut core = vec![config.core_capacity_mbps; clusters * clusters];
    for entry in core.iter_mut() {
        if rng.gen::<f64>() < config.congested_pair_fraction {
            let (lo, hi) = config.congestion_factor;
            *entry *= lo + rng.gen::<f64>() * (hi - lo);
        }
    }

    let mut values = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let core_cap = core[topology.cluster_of[i] * clusters + topology.cluster_of[j]];
            let path = up[i].min(down[j]).min(core_cap);
            values[(i, j)] = path * log_normal_sample(&mut rng, 0.0, config.cross_traffic_sigma);
        }
    }

    let mut mask = Mask::full_off_diagonal(n);
    mask.drop_random(config.missing_fraction, &mut rng);

    let mut dataset = Dataset::new(config.name.clone(), Metric::Abw, values, mask);
    let median = dataset.median();
    assert!(median > 0.0, "degenerate ABW dataset");
    dataset.scale_values(config.target_median_mbps / median);
    (topology, dataset)
}

/// HP-S3-like ABW dataset (paper size: 231 nodes, median 43.1 Mbps,
/// 4 % missing).
pub fn hps3_like(nodes: usize, seed: u64) -> Dataset {
    generate_abw_dataset(&AbwDatasetConfig::hps3(nodes), seed).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_linalg::decomp::effective_rank;
    use dmf_linalg::svd::randomized_top_k;

    #[test]
    fn median_calibrated() {
        let d = hps3_like(120, 1);
        assert!((d.median() - 43.1).abs() < 1e-6, "median {}", d.median());
        assert_eq!(d.metric, Metric::Abw);
    }

    #[test]
    fn values_positive() {
        let d = hps3_like(60, 2);
        for (i, j) in d.mask.iter_known() {
            assert!(d.values[(i, j)] > 0.0);
        }
    }

    #[test]
    fn missing_fraction_near_four_percent() {
        let d = hps3_like(150, 3);
        let density = d.mask.off_diagonal_density();
        assert!(
            (density - 0.96).abs() < 0.02,
            "observed density {density}, expected ≈0.96"
        );
    }

    #[test]
    fn asymmetric_in_general() {
        let d = hps3_like(60, 4);
        let mut asym = 0usize;
        let mut total = 0usize;
        for i in 0..60 {
            for j in (i + 1)..60 {
                if d.mask.is_known(i, j) && d.mask.is_known(j, i) {
                    total += 1;
                    if (d.values[(i, j)] - d.values[(j, i)]).abs() > 1e-9 {
                        asym += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            asym as f64 / total as f64 > 0.95,
            "ABW should be essentially always asymmetric"
        );
    }

    #[test]
    fn class_matrix_low_effective_rank() {
        // The thresholded ±1 matrix must be low-rank for matrix
        // completion to work (paper Figure 1, 'ABW class' curve).
        let d = hps3_like(120, 5);
        let cm = d.classify(d.median());
        let svd = randomized_top_k(&cm.labels, 30, 8, 3, 11);
        let er = effective_rank(&svd.singular_values, 0.9);
        assert!(er <= 20, "effective rank {er} of ABW class matrix too high");
    }

    #[test]
    fn tier_sampler_respects_weights() {
        let tiers = vec![(1.0, 0.9), (100.0, 0.1)];
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let lows = (0..5000)
            .filter(|_| sample_tier(&tiers, &mut rng) == 1.0)
            .count();
        assert!(
            (lows as f64 / 5000.0 - 0.9).abs() < 0.03,
            "tier weight not respected: {lows}/5000 low"
        );
    }

    #[test]
    fn abw_tau_orientation() {
        // For ABW a *smaller* good-portion needs a *larger* τ.
        let d = hps3_like(100, 7);
        let t10 = d.tau_for_good_portion(0.10);
        let t90 = d.tau_for_good_portion(0.90);
        assert!(t10 > t90, "τ(10%)={t10} must exceed τ(90%)={t90} for ABW");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = hps3_like(50, 8);
        let b = hps3_like(50, 8);
        assert_eq!(a.values, b.values);
        assert_eq!(a.mask, b.mask);
    }
}
