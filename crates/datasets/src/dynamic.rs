//! Dynamic (timestamped) measurement traces — the Harvard workload.
//!
//! The Harvard dataset is a 4-hour stream of ~2.5 M application-level
//! RTT measurements between 226 Azureus clients, probed *passively*
//! with very uneven per-pair frequencies. The paper replays it in
//! timestamp order and builds the static ground truth by taking the
//! per-pair **median** of each measurement stream.
//!
//! [`harvard_like`] reproduces that workload: a Zipf-weighted pair
//! sampler (a few hot pairs, a long tail, some pairs never measured),
//! log-normal jitter around the topological base RTT, occasional
//! congestion spikes, and the same median-based ground-truth
//! construction.

use crate::rtt::RttDatasetConfig;
use crate::topology::Topology;
use crate::{Dataset, Metric};
use dmf_linalg::stats::log_normal_sample;
use dmf_linalg::{Mask, Matrix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One timestamped measurement.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Seconds since trace start.
    pub time_s: f64,
    /// Probing node.
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// Measured quantity (ms for RTT).
    pub value: f64,
}

/// A time-ordered stream of measurements over `n` nodes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DynamicTrace {
    /// Trace name.
    pub name: String,
    /// Metric measured.
    pub metric: Metric,
    /// Number of nodes.
    pub nodes: usize,
    /// Measurements sorted by `time_s`.
    pub measurements: Vec<Measurement>,
}

impl DynamicTrace {
    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// Builds the static ground truth the paper uses: per-pair median
    /// of the measurement stream; pairs never measured stay unknown.
    pub fn ground_truth_median(&self) -> Dataset {
        let n = self.nodes;
        let mut streams: Vec<Vec<f64>> = vec![Vec::new(); n * n];
        for m in &self.measurements {
            streams[m.from * n + m.to].push(m.value);
        }
        let mut values = Matrix::zeros(n, n);
        let mut mask = Mask::none(n, n);
        for i in 0..n {
            for j in 0..n {
                let s = &mut streams[i * n + j];
                if i != j && !s.is_empty() {
                    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN measurement"));
                    values[(i, j)] = dmf_linalg::stats::percentile_of_sorted(s, 50.0);
                    mask.set(i, j, true);
                }
            }
        }
        Dataset::new(format!("{}-median", self.name), self.metric, values, mask)
    }

    /// Scales every measurement value by `factor` (calibration).
    pub fn scale_values(&mut self, factor: f64) {
        assert!(factor > 0.0, "scale factor must be positive");
        for m in &mut self.measurements {
            m.value *= factor;
        }
    }

    /// Verifies the time ordering invariant (used by tests and after
    /// deserializing external traces).
    pub fn is_time_ordered(&self) -> bool {
        self.measurements
            .windows(2)
            .all(|w| w[0].time_s <= w[1].time_s)
    }
}

/// Configuration of the Harvard-like dynamic workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HarvardConfig {
    /// Underlying static RTT dataset configuration (node count etc.).
    pub rtt: RttDatasetConfig,
    /// Trace duration in seconds (paper: 4 hours).
    pub duration_s: f64,
    /// Total number of measurements to generate (paper: ~2.5 M; the
    /// default is smaller so tests and experiments stay fast — the
    /// workload's *shape* is what matters).
    pub total_measurements: usize,
    /// Zipf exponent of per-pair probe frequencies (1.0 ≈ classic
    /// popularity skew; 0 = uniform).
    pub pair_zipf_exponent: f64,
    /// Log-normal sigma of per-measurement jitter around the base RTT.
    pub jitter_sigma: f64,
    /// Probability that a measurement is a congestion spike.
    pub spike_probability: f64,
    /// Multiplier applied to spiked measurements.
    pub spike_factor: f64,
}

impl HarvardConfig {
    /// Paper-shaped defaults at a custom node count (paper: 226).
    pub fn new(nodes: usize, total_measurements: usize) -> Self {
        Self {
            rtt: RttDatasetConfig::harvard(nodes),
            duration_s: 4.0 * 3600.0,
            total_measurements,
            pair_zipf_exponent: 1.0,
            jitter_sigma: 0.12,
            spike_probability: 0.02,
            spike_factor: 3.0,
        }
    }
}

/// Generates a Harvard-like dynamic trace and its median ground truth
/// (calibrated so the ground-truth median hits the configured target).
pub fn harvard_like(config: &HarvardConfig, seed: u64) -> (DynamicTrace, Dataset) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let topology = Topology::generate(config.rtt.topology.clone(), &mut rng);
    let n = topology.len();
    assert!(n >= 2, "dynamic trace needs at least two nodes");

    // Zipf-ish weights over ordered pairs: weight of the pair with
    // popularity rank k is 1/k^s. Ranks are assigned by random
    // permutation so hot pairs are scattered across the matrix.
    let pair_count = n * (n - 1);
    let mut ranks: Vec<usize> = (0..pair_count).collect();
    // Fisher–Yates shuffle.
    for i in (1..pair_count).rev() {
        let j = rng.gen_range(0..=i);
        ranks.swap(i, j);
    }
    let weights: Vec<f64> = ranks
        .iter()
        .map(|&rank| 1.0 / ((rank + 1) as f64).powf(config.pair_zipf_exponent))
        .collect();
    // Cumulative distribution for sampling.
    let mut cdf = Vec::with_capacity(pair_count);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let total_w = acc;

    // Ordered-pair index → (from, to) skipping the diagonal.
    let pair_of = |idx: usize| -> (usize, usize) {
        let from = idx / (n - 1);
        let rem = idx % (n - 1);
        let to = if rem >= from { rem + 1 } else { rem };
        (from, to)
    };

    let mut measurements = Vec::with_capacity(config.total_measurements);
    for _ in 0..config.total_measurements {
        let pick = rng.gen::<f64>() * total_w;
        let idx = match cdf.binary_search_by(|probe| probe.partial_cmp(&pick).expect("NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(pair_count - 1),
        };
        let (from, to) = pair_of(idx);
        let base = topology.base_rtt(from, to);
        let mut value = base * log_normal_sample(&mut rng, 0.0, config.jitter_sigma);
        if rng.gen::<f64>() < config.spike_probability {
            value *= config.spike_factor;
        }
        measurements.push(Measurement {
            time_s: rng.gen::<f64>() * config.duration_s,
            from,
            to,
            value,
        });
    }
    measurements.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("NaN timestamp"));

    let mut trace = DynamicTrace {
        name: config.rtt.name.clone(),
        metric: Metric::Rtt,
        nodes: n,
        measurements,
    };

    // Calibrate the *ground truth* median to the target, scaling the
    // raw measurements by the same factor so they stay consistent.
    let gt = trace.ground_truth_median();
    let factor = config.rtt.target_median_ms / gt.median();
    trace.scale_values(factor);
    let mut ground_truth = gt;
    ground_truth.scale_values(factor);

    (trace, ground_truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> HarvardConfig {
        HarvardConfig::new(40, 30_000)
    }

    #[test]
    fn trace_is_time_ordered() {
        let (trace, _) = harvard_like(&small_config(), 1);
        assert!(trace.is_time_ordered());
        assert_eq!(trace.len(), 30_000);
        assert!(!trace.is_empty());
    }

    #[test]
    fn ground_truth_median_calibrated() {
        let (_, gt) = harvard_like(&small_config(), 2);
        assert!(
            (gt.median() - 131.6).abs() < 1e-6,
            "ground truth median {}",
            gt.median()
        );
    }

    #[test]
    fn measurements_within_duration_and_bounds() {
        let cfg = small_config();
        let (trace, _) = harvard_like(&cfg, 3);
        for m in &trace.measurements {
            assert!(m.time_s >= 0.0 && m.time_s <= cfg.duration_s);
            assert!(m.from < 40 && m.to < 40 && m.from != m.to);
            assert!(m.value > 0.0);
        }
    }

    #[test]
    fn pair_frequencies_are_skewed() {
        let (trace, _) = harvard_like(&small_config(), 4);
        let n = trace.nodes;
        let mut counts = vec![0usize; n * n];
        for m in &trace.measurements {
            counts[m.from * n + m.to] += 1;
        }
        let mut nonzero: Vec<usize> = counts.into_iter().filter(|&c| c > 0).collect();
        nonzero.sort_unstable_by(|a, b| b.cmp(a));
        // Hot pairs must dominate: top pair far above the median pair.
        let top = nonzero[0];
        let med = nonzero[nonzero.len() / 2];
        assert!(
            top as f64 > 8.0 * med.max(1) as f64,
            "expected skew, got top={top} median={med}"
        );
    }

    #[test]
    fn ground_truth_masks_unmeasured_pairs() {
        // With Zipf skew and a limited measurement budget some pairs
        // are never probed — exactly like the passive Harvard trace.
        let mut cfg = small_config();
        cfg.total_measurements = 2_000;
        let (trace, gt) = harvard_like(&cfg, 5);
        let measured = gt.mask.count_known();
        assert!(measured > 0);
        assert!(
            measured < trace.nodes * (trace.nodes - 1),
            "every pair measured despite skewed sampling"
        );
    }

    #[test]
    fn median_robust_to_spikes() {
        // Ground truth uses medians, so occasional spikes must not
        // drag pair values to the spike level.
        let mut cfg = small_config();
        cfg.spike_probability = 0.05;
        let (trace, gt) = harvard_like(&cfg, 6);
        let n = trace.nodes;
        // Find a well-measured pair.
        let mut counts = vec![0usize; n * n];
        for m in &trace.measurements {
            counts[m.from * n + m.to] += 1;
        }
        let (idx, _) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .expect("non-empty counts");
        let (i, j) = (idx / n, idx % n);
        let stream: Vec<f64> = trace
            .measurements
            .iter()
            .filter(|m| m.from == i && m.to == j)
            .map(|m| m.value)
            .collect();
        let med = gt.value(i, j).expect("pair must be observed");
        let max = stream.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(med < max, "median {med} must be below spike max {max}");
    }

    #[test]
    fn ground_truth_roundtrip_of_manual_trace() {
        let trace = DynamicTrace {
            name: "manual".into(),
            metric: Metric::Rtt,
            nodes: 3,
            measurements: vec![
                Measurement {
                    time_s: 0.0,
                    from: 0,
                    to: 1,
                    value: 10.0,
                },
                Measurement {
                    time_s: 1.0,
                    from: 0,
                    to: 1,
                    value: 20.0,
                },
                Measurement {
                    time_s: 2.0,
                    from: 0,
                    to: 1,
                    value: 30.0,
                },
                Measurement {
                    time_s: 3.0,
                    from: 2,
                    to: 1,
                    value: 7.0,
                },
            ],
        };
        let gt = trace.ground_truth_median();
        assert_eq!(gt.value(0, 1), Some(20.0));
        assert_eq!(gt.value(2, 1), Some(7.0));
        assert_eq!(gt.value(1, 0), None);
        assert_eq!(gt.mask.count_known(), 2);
    }
}
