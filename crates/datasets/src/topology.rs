//! Two-tier synthetic Internet topology.
//!
//! The generator models what makes real pairwise performance matrices
//! low-rank (the property Figure 1 of the paper demonstrates): paths
//! between nearby nodes share infrastructure. Concretely:
//!
//! * *clusters* (PoPs/ASes) are placed in a 2-D delay plane; the
//!   backbone delay between two nodes is the Euclidean distance between
//!   their (jittered) positions — a structured, approximately-low-rank
//!   component shared by all co-located pairs;
//! * every node adds its private *access delay* on each path it is an
//!   endpoint of — an exactly rank-2 component (`a_i + a_j`);
//! * per-pair multiplicative noise models everything idiosyncratic
//!   (routing detours, queueing), keeping the matrix full-rank in the
//!   strict sense but with a fast-decaying spectrum, just like measured
//!   datasets.
//!
//! The same topology also carries per-node capacities used by the ABW
//! generator ([`crate::abw`]): bottlenecks sit at access links (node
//! tiers) or occasionally in the core (congested cluster pairs).

use dmf_linalg::stats::{log_normal_sample, normal_sample};
use dmf_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Number of end nodes.
    pub nodes: usize,
    /// Number of clusters (PoPs). More clusters → higher effective rank.
    pub clusters: usize,
    /// Side length of the square delay plane, in milliseconds of
    /// one-way backbone delay.
    pub plane_size_ms: f64,
    /// Log-normal `mu` of per-node access delay (ms); the median access
    /// delay is `exp(mu)`.
    pub access_mu: f64,
    /// Log-normal `sigma` of per-node access delay.
    pub access_sigma: f64,
    /// Std-dev of the node position jitter around its cluster center (ms).
    pub cluster_jitter_ms: f64,
    /// Relative per-pair noise (log-normal sigma) applied to each RTT.
    pub pair_noise_sigma: f64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            nodes: 200,
            clusters: 12,
            plane_size_ms: 80.0,
            access_mu: 2.0, // median ≈ 7.4 ms access delay
            access_sigma: 0.7,
            cluster_jitter_ms: 2.5,
            pair_noise_sigma: 0.08,
        }
    }
}

/// A realized topology: node placement plus access delays.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    /// Configuration it was generated from.
    pub config: TopologyConfig,
    /// Cluster id of each node.
    pub cluster_of: Vec<usize>,
    /// Cluster center positions in the delay plane.
    pub cluster_pos: Vec<(f64, f64)>,
    /// Node positions (cluster center + jitter).
    pub node_pos: Vec<(f64, f64)>,
    /// Per-node access delay in ms (added on both path endpoints).
    pub access_delay: Vec<f64>,
}

impl Topology {
    /// Generates a topology from `config` using `rng`.
    ///
    /// # Panics
    /// Panics when `nodes` or `clusters` is zero.
    pub fn generate(config: TopologyConfig, rng: &mut impl Rng) -> Self {
        assert!(config.nodes > 0, "topology needs at least one node");
        assert!(config.clusters > 0, "topology needs at least one cluster");
        let cluster_pos: Vec<(f64, f64)> = (0..config.clusters)
            .map(|_| {
                (
                    rng.gen::<f64>() * config.plane_size_ms,
                    rng.gen::<f64>() * config.plane_size_ms,
                )
            })
            .collect();
        // Cluster sizes are skewed (popular PoPs host more nodes),
        // mirroring how PlanetLab/Azureus populations concentrate.
        let weights: Vec<f64> = (0..config.clusters)
            .map(|_| rng.gen::<f64>().powi(2) + 0.05)
            .collect();
        let total_w: f64 = weights.iter().sum();

        let mut cluster_of = Vec::with_capacity(config.nodes);
        let mut node_pos = Vec::with_capacity(config.nodes);
        let mut access_delay = Vec::with_capacity(config.nodes);
        for _ in 0..config.nodes {
            let mut pick = rng.gen::<f64>() * total_w;
            let mut c = 0;
            for (idx, w) in weights.iter().enumerate() {
                if pick < *w {
                    c = idx;
                    break;
                }
                pick -= w;
                c = idx;
            }
            cluster_of.push(c);
            let (cx, cy) = cluster_pos[c];
            node_pos.push((
                cx + normal_sample(rng, 0.0, config.cluster_jitter_ms),
                cy + normal_sample(rng, 0.0, config.cluster_jitter_ms),
            ));
            access_delay.push(log_normal_sample(
                rng,
                config.access_mu,
                config.access_sigma,
            ));
        }

        Self {
            config,
            cluster_of,
            cluster_pos,
            node_pos,
            access_delay,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.cluster_of.len()
    }

    /// True when the topology has no nodes (never happens for generated
    /// topologies; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cluster_of.is_empty()
    }

    /// Backbone delay between two plane positions in ms (the one
    /// distance formula behind every RTT below).
    fn backbone_between((xi, yi): (f64, f64), (xj, yj): (f64, f64)) -> f64 {
        ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
    }

    /// Backbone (position) distance between two nodes in ms.
    pub fn backbone_delay(&self, i: usize, j: usize) -> f64 {
        Self::backbone_between(self.node_pos[i], self.node_pos[j])
    }

    /// The noise-free RTT between two nodes:
    /// `access_i + access_j + backbone(i, j)`, and 0 on the diagonal.
    pub fn base_rtt(&self, i: usize, j: usize) -> f64 {
        self.rtt_at_positions(i, j, self.node_pos[i], self.node_pos[j])
    }

    /// [`base_rtt`](Self::base_rtt) with the two nodes sitting at
    /// explicit plane positions instead of their realized ones. The
    /// single formula behind both the static generators and the
    /// time-varying scenario ground truth ([`crate::scenario`] moves
    /// positions during drift) — extend the RTT model here and both
    /// stay in lockstep.
    pub fn rtt_at_positions(&self, i: usize, j: usize, pi: (f64, f64), pj: (f64, f64)) -> f64 {
        if i == j {
            return 0.0;
        }
        self.access_delay[i] + self.access_delay[j] + Self::backbone_between(pi, pj)
    }

    /// Builds the full symmetric RTT matrix with per-pair log-normal
    /// noise (`pair_noise_sigma`), zero diagonal.
    pub fn rtt_matrix(&self, rng: &mut impl Rng) -> Matrix {
        let n = self.len();
        let sigma = self.config.pair_noise_sigma;
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let noise = log_normal_sample(rng, 0.0, sigma);
                let rtt = self.base_rtt(i, j) * noise;
                m[(i, j)] = rtt;
                m[(j, i)] = rtt;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_linalg::decomp::effective_rank;
    use dmf_linalg::svd::randomized_top_k;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_topology(seed: u64) -> Topology {
        let cfg = TopologyConfig {
            nodes: 80,
            clusters: 8,
            ..TopologyConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Topology::generate(cfg, &mut rng)
    }

    #[test]
    fn generate_respects_sizes() {
        let t = small_topology(1);
        assert_eq!(t.len(), 80);
        assert_eq!(t.cluster_pos.len(), 8);
        assert!(t.cluster_of.iter().all(|&c| c < 8));
        assert!(!t.is_empty());
    }

    #[test]
    fn access_delays_positive() {
        let t = small_topology(2);
        assert!(t.access_delay.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn base_rtt_symmetric_zero_diagonal() {
        let t = small_topology(3);
        assert_eq!(t.base_rtt(5, 5), 0.0);
        assert!((t.base_rtt(1, 7) - t.base_rtt(7, 1)).abs() < 1e-12);
        assert!(t.base_rtt(1, 7) > 0.0);
    }

    #[test]
    fn rtt_matrix_properties() {
        let t = small_topology(4);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let m = t.rtt_matrix(&mut rng);
        assert_eq!(m.shape(), (80, 80));
        for i in 0..80 {
            assert_eq!(m[(i, i)], 0.0);
            for j in 0..80 {
                assert!(
                    (m[(i, j)] - m[(j, i)]).abs() < 1e-12,
                    "RTT must be symmetric"
                );
                if i != j {
                    assert!(m[(i, j)] > 0.0);
                }
            }
        }
    }

    #[test]
    fn intra_cluster_pairs_are_closer_on_average() {
        let t = small_topology(5);
        let mut rng = ChaCha8Rng::seed_from_u64(100);
        let m = t.rtt_matrix(&mut rng);
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..t.len() {
            for j in (i + 1)..t.len() {
                if t.cluster_of[i] == t.cluster_of[j] {
                    intra.push(m[(i, j)]);
                } else {
                    inter.push(m[(i, j)]);
                }
            }
        }
        let intra_mean = dmf_linalg::stats::mean(&intra);
        let inter_mean = dmf_linalg::stats::mean(&inter);
        assert!(
            intra_mean < inter_mean,
            "intra-cluster mean {intra_mean} should be below inter-cluster {inter_mean}"
        );
    }

    #[test]
    fn rtt_matrix_has_low_effective_rank() {
        // The core claim the generator must reproduce (paper Figure 1):
        // 95% of the spectral energy concentrated in few components.
        let t = small_topology(6);
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let m = t.rtt_matrix(&mut rng);
        let svd = randomized_top_k(&m, 30, 8, 3, 7);
        let er = effective_rank(&svd.singular_values, 0.95);
        assert!(
            er <= 12,
            "effective rank {er} too high for a clustered topology"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let cfg = TopologyConfig {
            nodes: 0,
            ..TopologyConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        Topology::generate(cfg, &mut rng);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = small_topology(42);
        let b = small_topology(42);
        assert_eq!(a.access_delay, b.access_delay);
        assert_eq!(a.cluster_of, b.cluster_of);
    }
}
