//! Property-based tests for dataset generation and classification.

use dmf_datasets::class::tau_portion_table;
use dmf_datasets::rtt::meridian_like;
use dmf_datasets::Metric;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn classify_is_sign_consistent(value in 0.1f64..1e4, tau in 0.1f64..1e4) {
        let rtt = Metric::Rtt.classify(value, tau);
        let abw = Metric::Abw.classify(value, tau);
        prop_assert!(rtt == 1.0 || rtt == -1.0);
        prop_assert!(abw == 1.0 || abw == -1.0);
        if value != tau {
            // RTT and ABW orientations are exact opposites off the
            // threshold.
            prop_assert_eq!(rtt, -abw);
        }
    }

    #[test]
    fn good_fraction_monotone_in_tau_for_rtt(seed in 0u64..50, n in 20usize..50) {
        let d = meridian_like(n, seed);
        let lo = d.good_fraction(d.tau_for_good_portion(0.2));
        let hi = d.good_fraction(d.tau_for_good_portion(0.8));
        prop_assert!(lo <= hi + 1e-9);
    }

    #[test]
    fn tau_portion_table_achieves_requested(seed in 0u64..20) {
        let d = meridian_like(60, seed);
        for row in tau_portion_table(&d, &[0.1, 0.25, 0.5, 0.75, 0.9]) {
            prop_assert!(
                (row.achieved - row.portion).abs() < 0.05,
                "portion {} achieved {}", row.portion, row.achieved
            );
        }
    }

    #[test]
    fn class_matrix_balance_matches_good_fraction(seed in 0u64..20) {
        let d = meridian_like(40, seed);
        let tau = d.median();
        let cm = d.classify(tau);
        let (good, bad) = cm.class_counts();
        prop_assert_eq!(good + bad, cm.mask.count_known());
        prop_assert!((cm.good_fraction() - d.good_fraction(tau)).abs() < 1e-12);
    }

    #[test]
    fn head_preserves_values(seed in 0u64..20, keep in 5usize..20) {
        let d = meridian_like(30, seed);
        let h = d.head(keep);
        for (i, j) in h.mask.iter_known() {
            prop_assert_eq!(h.values[(i, j)], d.values[(i, j)]);
        }
    }
}
