//! Seeded, deterministic health-transition conformance.
//!
//! One synthetic quality stream drives the full health state machine
//! through its documented lifecycle: a cold window is `Unready`, a
//! well-separated score stream warms it to `Healthy` the moment the
//! sample floor is reached, an inverted stream drags the rolling AUC
//! through the floor into `Degraded` (quality reason), and a second
//! well-separated phase washes the window clean again. The stream is
//! ChaCha8-seeded, so the transition *indices* are a pure function of
//! the seed — the test pins the whole trajectory and replays it to
//! prove byte determinism.

use dmf_ops::{DegradedReason, Health, HealthPolicy, HealthSignals, LiveQuality};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const WINDOW: usize = 64;
const PHASE: usize = 200;

fn policy() -> HealthPolicy {
    HealthPolicy {
        min_quality_samples: 32,
        auc_floor: Some(0.75),
        staleness_limit_s: None,
        rejection_rate_limit: None,
    }
}

/// Evaluates health after every recorded pair and returns the state
/// trajectory as `(index, state code)` transition points.
fn run_stream(seed: u64) -> Vec<(usize, u8)> {
    let quality = LiveQuality::new(WINDOW);
    let policy = policy();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut transitions = Vec::new();
    let mut last_code = None;

    for step in 0..3 * PHASE {
        // Alternate ground-truth classes deterministically; phase 2
        // inverts the score sign so the window's AUC collapses.
        let positive = step % 2 == 0;
        let separation: f64 = if positive { 1.0 } else { -1.0 };
        let inverted = (PHASE..2 * PHASE).contains(&step);
        let score = separation * if inverted { -1.0 } else { 1.0 } + rng.gen_range(-0.3..0.3);
        quality.record(positive, score);

        let signals = HealthSignals {
            quality_samples: quality.len(),
            rolling_auc: quality.auc(),
            staleness_s: None,
            rejection_rate: None,
        };
        let code = policy.evaluate(&signals).code();
        if last_code != Some(code) {
            transitions.push((step, code));
            last_code = Some(code);
        }
    }
    transitions
}

#[test]
fn the_lifecycle_visits_unready_healthy_degraded_healthy_in_order() {
    let transitions = run_stream(42);
    let codes: Vec<u8> = transitions.iter().map(|&(_, c)| c).collect();
    assert_eq!(
        codes,
        vec![2, 0, 1, 0],
        "lifecycle must be unready -> healthy -> degraded -> healthy, got {transitions:?}"
    );

    // Warm-up ends exactly when the sample floor is reached: the
    // stream is well-separated, so the first mixed-class window
    // already clears the AUC floor.
    assert_eq!(transitions[0], (0, 2), "cold window starts unready");
    assert_eq!(
        transitions[1].0, 31,
        "healthy the moment min_quality_samples (32) is reached"
    );
    // Degradation happens while the inverted phase floods the window,
    // and recovery after the clean phase starts.
    let (degraded_at, _) = transitions[2];
    assert!(
        (PHASE..2 * PHASE).contains(&degraded_at),
        "degraded during the inverted phase, got {degraded_at}"
    );
    let (recovered_at, _) = transitions[3];
    assert!(
        (2 * PHASE..3 * PHASE).contains(&recovered_at),
        "recovered during the second clean phase, got {recovered_at}"
    );
}

#[test]
fn transition_indices_are_byte_deterministic() {
    assert_eq!(
        run_stream(42),
        run_stream(42),
        "same seed must reproduce the exact transition trajectory"
    );
    assert_ne!(
        run_stream(42),
        run_stream(43),
        "the trajectory is a function of the seed (noise moves the indices)"
    );
}

#[test]
fn the_degraded_verdict_names_the_quality_reason_with_observed_values() {
    // Reproduce the degraded window directly and check the typed
    // reason carries the observed AUC and the floor.
    let quality = LiveQuality::new(WINDOW);
    for i in 0..WINDOW {
        let positive = i % 2 == 0;
        // Inverted separation: positives score low.
        quality.record(positive, if positive { -1.0 } else { 1.0 });
    }
    let signals = HealthSignals {
        quality_samples: quality.len(),
        rolling_auc: quality.auc(),
        staleness_s: None,
        rejection_rate: None,
    };
    match policy().evaluate(&signals) {
        Health::Degraded { reasons } => {
            assert_eq!(reasons.len(), 1);
            match reasons[0] {
                DegradedReason::QualityBelowFloor { auc, floor } => {
                    assert_eq!(auc, 0.0, "fully inverted window has AUC 0");
                    assert_eq!(floor, 0.75);
                }
                ref other => panic!("expected the quality reason, got {other:?}"),
            }
        }
        other => panic!("expected degraded, got {other:?}"),
    }
}
