//! Golden-file pin of the exposition contract.
//!
//! The text and JSON renderings of a [`MetricsSnapshot`] are a public
//! contract (scrapers parse them; `docs/operations.md` documents
//! them). This test renders one registry exercising every feature of
//! the format — plain and labeled counters, integral / fractional /
//! NaN gauges, a histogram — and compares the bytes against
//! `tests/golden/metrics.{txt,json}`.
//!
//! To change the format intentionally: bump
//! [`dmf_ops::SCHEMA_VERSION`], run the suite once with
//! `DMF_UPDATE_GOLDEN=1` to regenerate the files, and update the
//! runbook in the same commit.

use dmf_ops::{MetricDesc, MetricsSnapshot, Registry, Unit};
use std::path::PathBuf;

/// A registry whose snapshot exercises every exposition feature with
/// fixed, hand-picked values.
fn golden_snapshot() -> MetricsSnapshot {
    let registry = Registry::new();

    for (kind, count) in [("predict", 7u64), ("update", 3)] {
        let c = registry.counter(MetricDesc::labeled(
            "dmf_demo_requests_total",
            "Requests executed, by request type.",
            Unit::None,
            "type",
            kind,
        ));
        c.add(count);
    }
    registry.counter(MetricDesc::plain(
        "dmf_demo_restarts_total",
        "Agent restarts (never incremented here: zero renders too).",
        Unit::None,
    ));
    let bytes = registry.counter(MetricDesc::plain(
        "dmf_demo_bytes_sent_total",
        "Application bytes handed to the transport.",
        Unit::Bytes,
    ));
    bytes.add(4096);

    let auc = registry.gauge(MetricDesc::plain(
        "dmf_demo_rolling_auc",
        "Rolling AUC over the live quality window (NaN while undefined).",
        Unit::Ratio,
    ));
    auc.set(0.875);
    let staleness = registry.gauge(MetricDesc::plain(
        "dmf_demo_staleness_seconds",
        "Seconds since the last applied update (NaN before the first).",
        Unit::Seconds,
    ));
    staleness.set(f64::NAN);
    let in_flight = registry.gauge(MetricDesc::plain(
        "dmf_demo_in_flight",
        "Integral gauges render with a decimal point.",
        Unit::None,
    ));
    in_flight.set(3.0);

    let latency = registry.histogram(
        MetricDesc::plain(
            "dmf_demo_latency_us",
            "Per-request execution latency in microseconds.",
            Unit::Micros,
        ),
        &[100, 1_000, 10_000],
    );
    for v in [40u64, 150, 5_000, 20_000] {
        latency.observe(v);
    }

    registry.snapshot()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `got` against the named golden file byte for byte;
/// `DMF_UPDATE_GOLDEN=1` rewrites the file instead (and still
/// asserts, so a stale regeneration can never pass silently).
fn assert_matches_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("DMF_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, got).expect("write golden");
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {} (regenerate with DMF_UPDATE_GOLDEN=1): {e}", name));
    assert_eq!(
        got, want,
        "{name} drifted from the exposition contract; if intentional, bump \
         SCHEMA_VERSION and regenerate with DMF_UPDATE_GOLDEN=1"
    );
}

#[test]
fn text_exposition_matches_the_golden_file() {
    assert_matches_golden("metrics.txt", &golden_snapshot().render_text());
}

#[test]
fn json_exposition_matches_the_golden_file() {
    assert_matches_golden("metrics.json", &golden_snapshot().render_json());
}

#[test]
fn json_golden_is_valid_schema_1_json() {
    use serde::Value;
    let value: Value = serde_json::from_str(&golden_snapshot().render_json()).expect("valid JSON");
    assert_eq!(value.get("schema"), Some(&Value::Number(1.0)));
    let Some(Value::Array(metrics)) = value.get("metrics") else {
        panic!("metrics array missing");
    };
    assert_eq!(metrics.len(), golden_snapshot().metrics.len());
    for m in metrics {
        for field in ["name", "kind", "help"] {
            assert!(
                matches!(m.get(field), Some(Value::String(_))),
                "metric lacks string field {field}: {m:?}"
            );
        }
        // A NaN gauge must export as null, never as a bare NaN token.
        if m.get("name") == Some(&Value::String("dmf_demo_staleness_seconds".into())) {
            assert_eq!(m.get("value"), Some(&Value::Null));
        }
    }
}
