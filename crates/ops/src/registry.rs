//! Typed metric handles and the [`Registry`] that owns them.
//!
//! A registry is the write side of the observability layer: a process
//! registers every metric it will ever emit up front — each
//! registration returns a cheap cloneable handle — and hot paths
//! update the handles with single atomic operations. No locks are
//! taken after registration (the registry's own mutex guards only
//! registration and snapshotting), so instrumentation is safe to
//! leave enabled on the training and serving hot paths.
//!
//! Three metric types cover the fleet surface, mirroring the usual
//! exposition vocabulary:
//!
//! * [`Counter`] — a monotonically increasing `u64` (events, bytes).
//!   Counters may also be `store`d absolutely, which is how
//!   aggregators (the fleet exporter summing per-agent slots) publish
//!   totals they compute elsewhere; the stored sequence must still be
//!   monotonic for scrapers to rate() it meaningfully.
//! * [`Gauge`] — an `f64` that goes up and down (rolling AUC,
//!   admission-window depth, staleness seconds).
//! * [`Histogram`] — fixed integer bucket bounds chosen at
//!   registration (latency in microseconds); observation is a bucket
//!   scan over ≤ a few dozen bounds plus two atomic adds.
//!
//! The exported names, types and semantics are a **documented public
//! contract**: every metric registered by the in-tree surfaces is
//! listed in `docs/operations.md`, and the cross-check test in the
//! workspace root fails CI when the two drift apart.

use crate::export::{MetricKind, MetricSample, MetricsSnapshot, SampleValue};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The unit of a metric's value, carried into the exporters and the
/// reference documentation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Dimensionless (event counts, depths).
    None,
    /// Bytes.
    Bytes,
    /// Microseconds.
    Micros,
    /// Seconds.
    Seconds,
    /// A ratio in `[0, 1]` (AUC, rejection rate).
    Ratio,
    /// Samples currently held in a window.
    Samples,
}

impl Unit {
    /// The unit's name in the JSON exposition (`""` for
    /// [`Unit::None`]).
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::None => "",
            Unit::Bytes => "bytes",
            Unit::Micros => "us",
            Unit::Seconds => "s",
            Unit::Ratio => "ratio",
            Unit::Samples => "samples",
        }
    }
}

/// The static description of one metric: name, help line, unit and
/// fixed labels. Registration validates the name (lowercase
/// `[a-z0-9_]`, starting with a letter) and rejects duplicate
/// `(name, labels)` pairs.
#[derive(Clone, Debug)]
pub struct MetricDesc {
    /// Exported metric name (e.g. `dmf_agent_probes_sent_total`).
    pub name: &'static str,
    /// One-line meaning, exported as the `# HELP` line.
    pub help: &'static str,
    /// Value unit.
    pub unit: Unit,
    /// Fixed label pairs attached to every sample of this series
    /// (e.g. `[("shard", "3")]`).
    pub labels: Vec<(&'static str, String)>,
}

impl MetricDesc {
    /// A label-free descriptor.
    pub fn plain(name: &'static str, help: &'static str, unit: Unit) -> Self {
        Self {
            name,
            help,
            unit,
            labels: Vec::new(),
        }
    }

    /// A descriptor with one label pair.
    pub fn labeled(
        name: &'static str,
        help: &'static str,
        unit: Unit,
        key: &'static str,
        value: impl Into<String>,
    ) -> Self {
        Self {
            name,
            help,
            unit,
            labels: vec![(key, value.into())],
        }
    }

    fn validate(&self) {
        let mut chars = self.name.chars();
        let head_ok = chars.next().is_some_and(|c| c.is_ascii_lowercase());
        let tail_ok = self
            .name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        assert!(
            head_ok && tail_ok,
            "metric name {:?} must match [a-z][a-z0-9_]*",
            self.name
        );
        for (k, _) in &self.labels {
            let head_ok = k.chars().next().is_some_and(|c| c.is_ascii_lowercase());
            let tail_ok = k
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
            assert!(
                head_ok && tail_ok,
                "label key {k:?} must match [a-z][a-z0-9_]*"
            );
        }
        assert!(
            !self.help.is_empty(),
            "metric {:?} needs help text",
            self.name
        );
    }
}

/// A monotonically increasing counter handle. Cloning shares the
/// underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Stores an absolute value (aggregator path — the stored
    /// sequence must stay monotonic).
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A floating-point gauge handle (bit-cast through an atomic `u64`).
/// Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Stores a value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram handle over non-negative integer values
/// (the service uses microseconds). `bounds` are inclusive upper
/// bucket bounds in strictly increasing order; one implicit overflow
/// bucket catches everything larger. Cloning shares the cells.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Arc<Vec<u64>>,
    /// One slot per bound plus the overflow slot.
    counts: Arc<Vec<AtomicU64>>,
    sum: Arc<AtomicU64>,
}

impl Histogram {
    fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must strictly increase"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: Arc::new(bounds),
            counts: Arc::new(counts),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The configured bucket bounds (without the overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    fn sample(&self) -> SampleValue {
        SampleValue::Histogram {
            bounds: self.bounds.to_vec(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
        }
    }
}

enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    desc: MetricDesc,
    handle: Handle,
}

/// The metric registry: owns every registered series and produces
/// point-in-time [`MetricsSnapshot`]s for the exporters.
///
/// # Panics
///
/// Registration panics on an invalid name, empty help text, or a
/// duplicate `(name, labels)` pair — all programmer errors caught at
/// process start, never at scrape or update time. Updates and
/// snapshots never panic.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, desc: MetricDesc, handle: Handle) {
        desc.validate();
        let mut entries = self.entries.lock().expect("registry lock");
        assert!(
            !entries
                .iter()
                .any(|e| e.desc.name == desc.name && e.desc.labels == desc.labels),
            "metric {:?} with labels {:?} registered twice",
            desc.name,
            desc.labels
        );
        if let Some(prior) = entries.iter().find(|e| e.desc.name == desc.name) {
            assert!(
                std::mem::discriminant(&prior.handle) == std::mem::discriminant(&handle),
                "metric {:?} registered with two different types",
                desc.name
            );
        }
        entries.push(Entry { desc, handle });
    }

    /// Registers a counter series and returns its handle.
    pub fn counter(&self, desc: MetricDesc) -> Counter {
        let c = Counter::default();
        self.register(desc, Handle::Counter(c.clone()));
        c
    }

    /// Registers a gauge series and returns its handle.
    pub fn gauge(&self, desc: MetricDesc) -> Gauge {
        let g = Gauge::default();
        self.register(desc, Handle::Gauge(g.clone()));
        g
    }

    /// Registers a histogram series with the given inclusive upper
    /// bucket bounds (strictly increasing; an overflow bucket is
    /// implicit) and returns its handle.
    pub fn histogram(&self, desc: MetricDesc, bounds: &[u64]) -> Histogram {
        let h = Histogram::new(bounds.to_vec());
        self.register(desc, Handle::Histogram(h.clone()));
        h
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry lock").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time snapshot of every registered series, sorted by
    /// `(name, labels)` — the deterministic order both exporters and
    /// the golden-file test rely on.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("registry lock");
        let metrics = entries
            .iter()
            .map(|e| MetricSample {
                name: e.desc.name.to_string(),
                kind: match e.handle {
                    Handle::Counter(_) => MetricKind::Counter,
                    Handle::Gauge(_) => MetricKind::Gauge,
                    Handle::Histogram(_) => MetricKind::Histogram,
                },
                unit: e.desc.unit,
                help: e.desc.help.to_string(),
                labels: e
                    .desc
                    .labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                value: match &e.handle {
                    Handle::Counter(c) => SampleValue::Counter(c.get()),
                    Handle::Gauge(g) => SampleValue::Gauge(g.get()),
                    Handle::Histogram(h) => h.sample(),
                },
            })
            .collect();
        MetricsSnapshot::from_samples(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip_through_a_snapshot() {
        let r = Registry::new();
        let c = r.counter(MetricDesc::plain("events_total", "Events.", Unit::None));
        let g = r.gauge(MetricDesc::plain("depth", "Depth.", Unit::None));
        let h = r.histogram(
            MetricDesc::plain("latency_us", "Latency.", Unit::Micros),
            &[10, 100],
        );
        c.add(3);
        c.inc();
        g.set(2.5);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        assert_eq!(c.get(), 4);
        assert_eq!(g.get(), 2.5);
        assert_eq!((h.count(), h.sum()), (3, 5055));

        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 3);
        // Sorted by name: depth, events_total, latency_us.
        assert_eq!(snap.metrics[0].name, "depth");
        assert_eq!(snap.metrics[1].value, SampleValue::Counter(4));
        match &snap.metrics[2].value {
            SampleValue::Histogram {
                bounds,
                counts,
                sum,
            } => {
                assert_eq!(bounds, &[10, 100]);
                assert_eq!(counts, &[1, 1, 1]);
                assert_eq!(*sum, 5055);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn labeled_series_share_a_name_and_sort_by_label() {
        let r = Registry::new();
        let b = r.counter(MetricDesc::labeled(
            "requests_total",
            "Requests by type.",
            Unit::None,
            "type",
            "b",
        ));
        let a = r.counter(MetricDesc::labeled(
            "requests_total",
            "Requests by type.",
            Unit::None,
            "type",
            "a",
        ));
        a.add(1);
        b.add(2);
        let snap = r.snapshot();
        assert_eq!(snap.metrics[0].labels, vec![("type".into(), "a".into())]);
        assert_eq!(snap.metrics[0].value, SampleValue::Counter(1));
        assert_eq!(snap.metrics[1].value, SampleValue::Counter(2));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_is_a_programmer_error() {
        let r = Registry::new();
        let _ = r.counter(MetricDesc::plain("x_total", "X.", Unit::None));
        let _ = r.counter(MetricDesc::plain("x_total", "X.", Unit::None));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn invalid_names_are_rejected_at_registration() {
        let r = Registry::new();
        let _ = r.counter(MetricDesc::plain("Bad-Name", "X.", Unit::None));
    }

    #[test]
    #[should_panic(expected = "two different types")]
    fn one_name_cannot_mix_metric_types() {
        let r = Registry::new();
        let _ = r.counter(MetricDesc::labeled("x_total", "X.", Unit::None, "a", "1"));
        let _ = r.gauge(MetricDesc::labeled("x_total", "X.", Unit::None, "a", "2"));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn histogram_bounds_must_increase() {
        let r = Registry::new();
        let _ = r.histogram(MetricDesc::plain("h_us", "H.", Unit::Micros), &[10, 10]);
    }
}
