//! The live quality window: a shareable, thread-safe wrapper over
//! [`dmf_eval::window::RollingAuc`].
//!
//! Instrumented surfaces record `(measurement class, raw score)`
//! pairs as they observe them — the agent when a probe reply arrives
//! (scored against its coordinates *before* applying the update), the
//! service when an `Update` request carries ground truth. The health
//! layer then reads the window's AUC as the live quality signal.
//! Because the window is the exact `RollingAuc` the offline
//! evaluation uses, the live gauge and an offline windowed AUC over
//! the same pair stream agree bit-for-bit — the property the
//! live-vs-offline agreement test pins.
//!
//! Recording takes a mutex, not an atomic — quality pairs arrive at
//! measurement cadence (per probe round / per update request), orders
//! of magnitude below the counter hot paths, and the guarded work is
//! a ring-slot write.

use dmf_eval::window::{RollingAuc, WindowStats};
use std::sync::Mutex;

/// A shared live quality window. Clone-free by design: share it via
/// `Arc<LiveQuality>`.
#[derive(Debug)]
pub struct LiveQuality {
    ring: Mutex<RollingAuc>,
}

impl LiveQuality {
    /// An empty window over the `capacity` most recent pairs.
    ///
    /// # Panics
    /// Panics when `capacity` is zero (same contract as
    /// [`RollingAuc::new`]).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(RollingAuc::new(capacity)),
        }
    }

    /// Records one observed pair: was the link actually in the
    /// positive class, and what raw score did the model give it.
    pub fn record(&self, positive: bool, score: f64) {
        self.ring
            .lock()
            .expect("quality lock")
            .record(positive, score);
    }

    /// Pairs currently held (`<= capacity`).
    pub fn len(&self) -> usize {
        self.ring.lock().expect("quality lock").len()
    }

    /// True when no pairs are held.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().expect("quality lock").is_empty()
    }

    /// Maximum pairs retained.
    pub fn capacity(&self) -> usize {
        self.ring.lock().expect("quality lock").capacity()
    }

    /// Rolling AUC; `None` while the window holds only one class.
    pub fn auc(&self) -> Option<f64> {
        self.ring.lock().expect("quality lock").auc()
    }

    /// Sign accuracy; `None` while empty.
    pub fn accuracy(&self) -> Option<f64> {
        self.ring.lock().expect("quality lock").accuracy()
    }

    /// Full window statistics; `None` while the window holds only one
    /// class.
    pub fn stats(&self) -> Option<WindowStats> {
        self.ring.lock().expect("quality lock").stats()
    }

    /// Drops every pair (e.g. after a restore, so stale pairs cannot
    /// vouch for fresh coordinates). The member goes `Unready` until
    /// the window warms back up.
    pub fn clear(&self) {
        self.ring.lock().expect("quality lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_eval::window::window_stats;
    use dmf_eval::ScoredLabel;
    use std::sync::Arc;

    #[test]
    fn matches_the_underlying_rolling_window_exactly() {
        let stream = [
            (true, 0.9),
            (false, 0.4),
            (true, 0.6),
            (false, -0.2),
            (true, -0.5),
        ];
        let live = LiveQuality::new(4);
        let mut offline = RollingAuc::new(4);
        for &(p, s) in &stream {
            live.record(p, s);
            offline.record(p, s);
        }
        assert_eq!(live.stats(), offline.stats());
        assert_eq!(live.len(), 4);
        assert_eq!(live.capacity(), 4);
    }

    #[test]
    fn full_window_equals_offline_batch_stats() {
        let stream = [(true, 1.0), (false, 0.5), (true, 0.8), (false, -0.1)];
        let live = LiveQuality::new(stream.len());
        for &(p, s) in &stream {
            live.record(p, s);
        }
        let batch: Vec<ScoredLabel> = stream
            .iter()
            .map(|&(positive, score)| ScoredLabel { positive, score })
            .collect();
        assert_eq!(live.stats(), window_stats(&batch));
    }

    #[test]
    fn shared_across_threads() {
        let live = Arc::new(LiveQuality::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let live = Arc::clone(&live);
                std::thread::spawn(move || {
                    for i in 0..8 {
                        live.record(i % 2 == 0, (t * 8 + i) as f64 - 16.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread");
        }
        assert_eq!(live.len(), 32);
        assert!(live.auc().is_some());
    }

    #[test]
    fn clear_empties_the_window() {
        let live = LiveQuality::new(8);
        live.record(true, 1.0);
        live.record(false, -1.0);
        assert!(!live.is_empty());
        live.clear();
        assert!(live.is_empty());
        assert_eq!(live.auc(), None);
    }
}
