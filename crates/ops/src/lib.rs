//! # dmf-ops
//!
//! Fleet observability for DMFSGD deployments: the layer that turns
//! "simulation passes CI" into "service you could page someone for".
//! ROADMAP item 5; the operator-facing contract lives in
//! `docs/operations.md`.
//!
//! * [`registry`] — typed metric handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) behind a [`Registry`]. Updates are single relaxed
//!   atomics, safe to leave enabled on the training and serving hot
//!   paths; the registry mutex is touched only at registration and
//!   snapshot time.
//! * [`export`] — deterministic point-in-time [`MetricsSnapshot`]s
//!   rendered as Prometheus-style text and schema-versioned JSON.
//!   Both formats are a documented public contract pinned
//!   byte-for-byte by golden-file tests.
//! * [`health`] — `Healthy` / `Degraded(reasons)` / `Unready`
//!   verdicts computed as a pure function of declared rules
//!   ([`HealthPolicy`]) over observed signals ([`HealthSignals`]):
//!   rolling AUC below floor, stale coordinates, high rejection rate.
//! * [`quality`] — [`LiveQuality`], a shareable wrapper over
//!   [`dmf_eval::window::RollingAuc`] feeding the live quality gauge
//!   from recently observed (measurement, prediction) pairs.
//!
//! # Position in the workspace
//!
//! Depends only on [`dmf_eval`] (the rolling quality window), so both
//! `dmf-agent` and `dmf-service` can instrument themselves without a
//! dependency cycle. The service serves these snapshots over its
//! framed protocol (`Metrics`/`Health` request types); agents dump
//! them one-shot and aggregate them per fleet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The ops surface is operator-facing contract (docs/operations.md is
// cross-checked against it by CI): undocumented public items are hard
// errors, and tools/check_doc_guards.sh keeps the attributes in place.
#[deny(missing_docs)]
pub mod export;
#[deny(missing_docs)]
pub mod health;
#[deny(missing_docs)]
pub mod quality;
#[deny(missing_docs)]
pub mod registry;

pub use export::{MetricKind, MetricSample, MetricsSnapshot, SampleValue, SCHEMA_VERSION};
pub use health::{DegradedReason, Health, HealthPolicy, HealthSignals};
pub use quality::LiveQuality;
pub use registry::{Counter, Gauge, Histogram, MetricDesc, Registry, Unit};
