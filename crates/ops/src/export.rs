//! Point-in-time metric snapshots and the two exposition formats.
//!
//! Both renderers consume a [`MetricsSnapshot`] — the immutable,
//! deterministically sorted value produced by
//! [`Registry::snapshot`](crate::registry::Registry::snapshot) — so
//! text and JSON views of one scrape can never disagree with each
//! other.
//!
//! # The exposition contract
//!
//! The output of [`render_text`](MetricsSnapshot::render_text) and
//! [`render_json`](MetricsSnapshot::render_json) is a **public
//! contract**, documented metric-by-metric in `docs/operations.md`
//! and pinned byte-for-byte by the golden-file test in
//! `crates/ops/tests/golden_exporter.rs`. Changing either format is a
//! breaking change to downstream scrapers: bump [`SCHEMA_VERSION`],
//! regenerate the golden files, and update the runbook in the same
//! commit.
//!
//! The text format follows the Prometheus exposition style (`# HELP`
//! and `# TYPE` comment lines followed by `name{labels} value`
//! samples, histograms expanded to cumulative `_bucket` series plus
//! `_sum`/`_count`), prefixed with one schema banner line. The JSON
//! format is a single object `{"schema": N, "metrics": [...]}` with
//! histogram buckets kept as parallel numeric arrays so consumers
//! never have to parse `+Inf`.

use crate::registry::Unit;
use std::fmt::Write as _;

/// Version stamped into both exposition formats. Bumped when the
/// rendered shape changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// What kind of series a sample came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic `u64` counter.
    Counter,
    /// `f64` gauge.
    Gauge,
    /// Fixed-bucket integer histogram.
    Histogram,
}

impl MetricKind {
    /// The kind's name in both exposition formats.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One series' value at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state: inclusive upper `bounds`, per-bucket `counts`
    /// (one longer than `bounds` — the last slot is the overflow
    /// bucket), and the `sum` of all observations.
    Histogram {
        /// Inclusive upper bucket bounds, strictly increasing.
        bounds: Vec<u64>,
        /// Non-cumulative per-bucket counts; `counts.len() ==
        /// bounds.len() + 1`.
        counts: Vec<u64>,
        /// Sum of all observed values.
        sum: u64,
    },
}

/// One metric series at snapshot time: identity, metadata and value.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// Exported name.
    pub name: String,
    /// Series kind.
    pub kind: MetricKind,
    /// Value unit.
    pub unit: Unit,
    /// Help line.
    pub help: String,
    /// Fixed label pairs.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: SampleValue,
}

/// A deterministic point-in-time view of a registry, sorted by
/// `(name, labels)`.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// The samples, in exposition order.
    pub metrics: Vec<MetricSample>,
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral gauges free of scientific notation and stamp
        // them as floats, so the golden format is stable however the
        // value was computed.
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// `labels` plus one extra pair appended (used for `le` on histogram
/// buckets).
fn label_block_with(labels: &[(String, String)], key: &str, value: &str) -> String {
    let mut all: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    all.push(format!("{key}=\"{value}\""));
    format!("{{{}}}", all.join(","))
}

impl MetricsSnapshot {
    /// Builds a snapshot from raw samples, sorting them into
    /// exposition order.
    pub fn from_samples(mut metrics: Vec<MetricSample>) -> Self {
        metrics.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        Self { metrics }
    }

    /// Renders the Prometheus-style text exposition. See the module
    /// docs for the stability contract.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# dmfsgd-metrics schema {SCHEMA_VERSION}");
        let mut last_name: Option<&str> = None;
        for m in &self.metrics {
            if last_name != Some(m.name.as_str()) {
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind.as_str());
                last_name = Some(m.name.as_str());
            }
            match &m.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", m.name, label_block(&m.labels));
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, label_block(&m.labels), fmt_f64(*v));
                }
                SampleValue::Histogram {
                    bounds,
                    counts,
                    sum,
                } => {
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        let le = if i < bounds.len() {
                            bounds[i].to_string()
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            m.name,
                            label_block_with(&m.labels, "le", &le)
                        );
                    }
                    let _ = writeln!(out, "{}_sum{} {sum}", m.name, label_block(&m.labels));
                    let _ = writeln!(out, "{}_count{} {cum}", m.name, label_block(&m.labels));
                }
            }
        }
        out
    }

    /// Renders the schema-versioned JSON exposition. Deterministic:
    /// same snapshot, same bytes. See the module docs for the
    /// stability contract.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"schema\":{SCHEMA_VERSION},\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"unit\":\"{}\",\"help\":\"{}\"",
                json_escape(&m.name),
                m.kind.as_str(),
                m.unit.as_str(),
                json_escape(&m.help)
            );
            if !m.labels.is_empty() {
                out.push_str(",\"labels\":{");
                for (j, (k, v)) in m.labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
                }
                out.push('}');
            }
            match &m.value {
                SampleValue::Counter(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                SampleValue::Gauge(v) => {
                    let _ = write!(out, ",\"value\":{}", json_f64(*v));
                }
                SampleValue::Histogram {
                    bounds,
                    counts,
                    sum,
                } => {
                    let _ = write!(
                        out,
                        ",\"bounds\":{},\"counts\":{},\"sum\":{sum}",
                        json_u64_array(bounds),
                        json_u64_array(counts)
                    );
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            _ => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    // JSON has no NaN/Inf literals; a gauge with no defined value yet
    // (e.g. rolling AUC before any mixed-class window) exports null.
    if v.is_finite() {
        fmt_f64(v)
    } else {
        "null".to_string()
    }
}

fn json_u64_array(xs: &[u64]) -> String {
    let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot::from_samples(vec![
            MetricSample {
                name: "requests_total".into(),
                kind: MetricKind::Counter,
                unit: Unit::None,
                help: "Requests by type.".into(),
                labels: vec![("type".into(), "predict".into())],
                value: SampleValue::Counter(7),
            },
            MetricSample {
                name: "auc".into(),
                kind: MetricKind::Gauge,
                unit: Unit::Ratio,
                help: "Rolling AUC.".into(),
                labels: vec![],
                value: SampleValue::Gauge(0.875),
            },
            MetricSample {
                name: "latency_us".into(),
                kind: MetricKind::Histogram,
                unit: Unit::Micros,
                help: "Latency.".into(),
                labels: vec![],
                value: SampleValue::Histogram {
                    bounds: vec![100, 1000],
                    counts: vec![2, 1, 1],
                    sum: 2500,
                },
            },
        ])
    }

    #[test]
    fn text_exposition_shape() {
        let text = sample_snapshot().render_text();
        let expected = "\
# dmfsgd-metrics schema 1
# HELP auc Rolling AUC.
# TYPE auc gauge
auc 0.875
# HELP latency_us Latency.
# TYPE latency_us histogram
latency_us_bucket{le=\"100\"} 2
latency_us_bucket{le=\"1000\"} 3
latency_us_bucket{le=\"+Inf\"} 4
latency_us_sum 2500
latency_us_count 4
# HELP requests_total Requests by type.
# TYPE requests_total counter
requests_total{type=\"predict\"} 7
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_exposition_shape() {
        let json = sample_snapshot().render_json();
        let expected = concat!(
            "{\"schema\":1,\"metrics\":[",
            "{\"name\":\"auc\",\"kind\":\"gauge\",\"unit\":\"ratio\",\"help\":\"Rolling AUC.\",\"value\":0.875},",
            "{\"name\":\"latency_us\",\"kind\":\"histogram\",\"unit\":\"us\",\"help\":\"Latency.\",\"bounds\":[100,1000],\"counts\":[2,1,1],\"sum\":2500},",
            "{\"name\":\"requests_total\",\"kind\":\"counter\",\"unit\":\"\",\"help\":\"Requests by type.\",\"labels\":{\"type\":\"predict\"},\"value\":7}",
            "]}"
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn integral_gauges_render_with_a_decimal_point() {
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
    }

    #[test]
    fn non_finite_gauges_export_null_json() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            label_block(&[("k".into(), "a\"b\\c".into())]),
            "{k=\"a\\\"b\\\\c\"}"
        );
        assert_eq!(json_escape("a\"b\nc"), "a\\\"b\\nc");
    }
}
