//! Health and readiness semantics for fleet members.
//!
//! Health is computed as a **pure function** of observed signals: the
//! caller gathers a [`HealthSignals`] (rolling-AUC window state,
//! coordinate staleness, rejection rate), declares its thresholds in
//! a [`HealthPolicy`], and [`HealthPolicy::evaluate`] maps one to a
//! [`Health`] verdict. Nothing here reads a clock or any global
//! state, which is what makes the health-transition tests
//! byte-deterministic and the rules documentable as a contract.
//!
//! # The state machine
//!
//! * [`Health::Unready`] — the quality window has fewer than
//!   `min_quality_samples` observations. A member that has just
//!   joined (or been restored) reports `Unready` until its window
//!   warms up; no degradation rules are evaluated in this state.
//! * [`Health::Healthy`] — warm, and no rule trips.
//! * [`Health::Degraded`] — warm, and at least one rule trips. Every
//!   tripped rule is reported, in the fixed order *quality →
//!   staleness → rejection*, so operators (and the golden tests) see
//!   a stable reason list.
//!
//! Recovery is implicit: the next evaluation with passing signals
//! returns [`Health::Healthy`]. The full operator-facing description
//! of each rule, with triage steps, lives in `docs/operations.md`.

use std::fmt;

/// Why a warm member is degraded. All payloads are the observed value
/// alongside the configured limit, so a report is actionable without
/// a second lookup.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DegradedReason {
    /// The rolling AUC over the live quality window fell to or below
    /// the configured floor.
    QualityBelowFloor {
        /// Observed rolling AUC.
        auc: f64,
        /// Configured floor.
        floor: f64,
    },
    /// No coordinate update has been applied for longer than the
    /// configured staleness limit.
    StaleCoordinates {
        /// Seconds since the last applied update.
        staleness_s: f64,
        /// Configured limit in seconds.
        limit_s: f64,
    },
    /// The service is shedding too large a fraction of requests at
    /// admission.
    HighRejectionRate {
        /// Observed rejected/total ratio.
        rate: f64,
        /// Configured limit.
        limit: f64,
    },
}

impl fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradedReason::QualityBelowFloor { auc, floor } => {
                write!(f, "quality below floor: rolling AUC {auc:.4} <= {floor:.4}")
            }
            DegradedReason::StaleCoordinates {
                staleness_s,
                limit_s,
            } => write!(
                f,
                "stale coordinates: {staleness_s:.1}s since last update > {limit_s:.1}s"
            ),
            DegradedReason::HighRejectionRate { rate, limit } => {
                write!(f, "high rejection rate: {rate:.4} > {limit:.4}")
            }
        }
    }
}

/// A member's health verdict. Ordering of the enum is not meaningful;
/// use [`Health::code`] for the numeric gauge encoding.
#[derive(Clone, Debug, PartialEq)]
pub enum Health {
    /// Warm and within every configured limit.
    Healthy,
    /// Warm but at least one rule tripped; reasons are in the fixed
    /// order quality → staleness → rejection.
    Degraded {
        /// Every tripped rule.
        reasons: Vec<DegradedReason>,
    },
    /// Not serving a quality verdict yet (window still warming up).
    Unready {
        /// Human-readable why (e.g. `"quality window 3/50 samples"`).
        reason: String,
    },
}

impl Health {
    /// Numeric encoding used by the `*_health_state` gauges and the
    /// wire protocol: 0 = healthy, 1 = degraded, 2 = unready.
    pub fn code(&self) -> u8 {
        match self {
            Health::Healthy => 0,
            Health::Degraded { .. } => 1,
            Health::Unready { .. } => 2,
        }
    }

    /// True when the verdict is [`Health::Healthy`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, Health::Healthy)
    }
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Health::Healthy => write!(f, "healthy"),
            Health::Degraded { reasons } => {
                write!(f, "degraded: ")?;
                for (i, r) in reasons.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
            Health::Unready { reason } => write!(f, "unready: {reason}"),
        }
    }
}

/// The observed signals health is computed from. `None` means "not
/// measured here" — the corresponding rule is skipped, never tripped.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HealthSignals {
    /// Observations currently in the live quality window.
    pub quality_samples: usize,
    /// Rolling AUC over that window; `None` while the window holds a
    /// single class (AUC undefined).
    pub rolling_auc: Option<f64>,
    /// Seconds since the last applied coordinate update; `None` if no
    /// update has ever been applied or the emitter does not track it.
    pub staleness_s: Option<f64>,
    /// Rejected/total request ratio; `None` where admission control
    /// does not apply (agents).
    pub rejection_rate: Option<f64>,
}

/// Declared health rules. Each `Option` threshold is independent:
/// `None` disables that rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthPolicy {
    /// Quality-window observations required before the member is
    /// considered warm. Below this, health is [`Health::Unready`].
    pub min_quality_samples: usize,
    /// Degrade when rolling AUC is at or below this floor.
    pub auc_floor: Option<f64>,
    /// Degrade when coordinate staleness exceeds this many seconds.
    pub staleness_limit_s: Option<f64>,
    /// Degrade when the rejection ratio exceeds this.
    pub rejection_rate_limit: Option<f64>,
}

impl Default for HealthPolicy {
    /// The defaults documented in `docs/operations.md`: warm after 50
    /// quality samples, AUC floor 0.75, staleness limit 30 s,
    /// rejection limit 10 %.
    fn default() -> Self {
        Self {
            min_quality_samples: 50,
            auc_floor: Some(0.75),
            staleness_limit_s: Some(30.0),
            rejection_rate_limit: Some(0.10),
        }
    }
}

impl HealthPolicy {
    /// A policy with every rule disabled (always `Healthy` once
    /// `min_quality_samples` is met, which defaults to 0 here).
    pub fn permissive() -> Self {
        Self {
            min_quality_samples: 0,
            auc_floor: None,
            staleness_limit_s: None,
            rejection_rate_limit: None,
        }
    }

    /// Maps observed signals to a verdict. Pure: no clocks, no global
    /// state. See the module docs for the state machine.
    pub fn evaluate(&self, s: &HealthSignals) -> Health {
        if s.quality_samples < self.min_quality_samples {
            return Health::Unready {
                reason: format!(
                    "quality window {}/{} samples",
                    s.quality_samples, self.min_quality_samples
                ),
            };
        }
        let mut reasons = Vec::new();
        if let (Some(floor), Some(auc)) = (self.auc_floor, s.rolling_auc) {
            if auc <= floor {
                reasons.push(DegradedReason::QualityBelowFloor { auc, floor });
            }
        }
        if let (Some(limit_s), Some(staleness_s)) = (self.staleness_limit_s, s.staleness_s) {
            if staleness_s > limit_s {
                reasons.push(DegradedReason::StaleCoordinates {
                    staleness_s,
                    limit_s,
                });
            }
        }
        if let (Some(limit), Some(rate)) = (self.rejection_rate_limit, s.rejection_rate) {
            if rate > limit {
                reasons.push(DegradedReason::HighRejectionRate { rate, limit });
            }
        }
        if reasons.is_empty() {
            Health::Healthy
        } else {
            Health::Degraded { reasons }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_window_is_unready_regardless_of_other_signals() {
        let p = HealthPolicy::default();
        let h = p.evaluate(&HealthSignals {
            quality_samples: 10,
            rolling_auc: Some(0.1), // would degrade if warm
            staleness_s: Some(1e9), // would degrade if warm
            rejection_rate: None,
        });
        assert_eq!(h.code(), 2);
        assert_eq!(h.to_string(), "unready: quality window 10/50 samples");
    }

    #[test]
    fn warm_and_passing_is_healthy() {
        let p = HealthPolicy::default();
        let h = p.evaluate(&HealthSignals {
            quality_samples: 50,
            rolling_auc: Some(0.9),
            staleness_s: Some(2.0),
            rejection_rate: Some(0.01),
        });
        assert!(h.is_healthy());
        assert_eq!(h.code(), 0);
    }

    #[test]
    fn tripped_rules_report_in_fixed_order() {
        let p = HealthPolicy::default();
        let h = p.evaluate(&HealthSignals {
            quality_samples: 100,
            rolling_auc: Some(0.5),
            staleness_s: Some(100.0),
            rejection_rate: Some(0.5),
        });
        match &h {
            Health::Degraded { reasons } => {
                assert_eq!(reasons.len(), 3);
                assert!(matches!(
                    reasons[0],
                    DegradedReason::QualityBelowFloor { .. }
                ));
                assert!(matches!(
                    reasons[1],
                    DegradedReason::StaleCoordinates { .. }
                ));
                assert!(matches!(
                    reasons[2],
                    DegradedReason::HighRejectionRate { .. }
                ));
            }
            other => panic!("expected degraded, got {other:?}"),
        }
        assert_eq!(h.code(), 1);
    }

    #[test]
    fn unmeasured_signals_skip_their_rules() {
        let p = HealthPolicy::default();
        // Warm window but single-class (no AUC), nothing else
        // measured: healthy, not degraded.
        let h = p.evaluate(&HealthSignals {
            quality_samples: 50,
            rolling_auc: None,
            staleness_s: None,
            rejection_rate: None,
        });
        assert!(h.is_healthy());
    }

    #[test]
    fn disabled_rules_never_trip() {
        let p = HealthPolicy::permissive();
        let h = p.evaluate(&HealthSignals {
            quality_samples: 0,
            rolling_auc: Some(0.0),
            staleness_s: Some(1e9),
            rejection_rate: Some(1.0),
        });
        assert!(h.is_healthy());
    }

    #[test]
    fn floor_is_inclusive_and_limits_are_exclusive() {
        let p = HealthPolicy {
            min_quality_samples: 0,
            auc_floor: Some(0.75),
            staleness_limit_s: Some(30.0),
            rejection_rate_limit: Some(0.10),
        };
        // AUC exactly at the floor trips (<=) …
        let h = p.evaluate(&HealthSignals {
            quality_samples: 1,
            rolling_auc: Some(0.75),
            ..HealthSignals::default()
        });
        assert_eq!(h.code(), 1);
        // … while staleness and rejection exactly at the limit do not
        // (>).
        let h = p.evaluate(&HealthSignals {
            quality_samples: 1,
            staleness_s: Some(30.0),
            rejection_rate: Some(0.10),
            ..HealthSignals::default()
        });
        assert!(h.is_healthy());
    }

    #[test]
    fn display_is_operator_readable() {
        let h = Health::Degraded {
            reasons: vec![
                DegradedReason::QualityBelowFloor {
                    auc: 0.5,
                    floor: 0.75,
                },
                DegradedReason::HighRejectionRate {
                    rate: 0.25,
                    limit: 0.1,
                },
            ],
        };
        assert_eq!(
            h.to_string(),
            "degraded: quality below floor: rolling AUC 0.5000 <= 0.7500; \
             high rejection rate: 0.2500 > 0.1000"
        );
    }
}
