//! Legacy population driver, now a thin shim over
//! [`crate::session::Session`].
//!
//! [`DmfsgdSystem`] was the original one-shot batch harness: construct
//! with [`new`](DmfsgdSystem::new) (which panics on bad input), train
//! with [`run`](DmfsgdSystem::run), evaluate. The service-grade
//! replacement is the [`Session`] API — panic-free construction via
//! [`SessionBuilder`], typed errors,
//! dynamic membership, snapshots — and every method here simply
//! delegates to an owned `Session`, preserving the historical
//! semantics bit for bit (including the panicking error handling,
//! which formats the underlying [`crate::error::DmfsgdError`]s into the original
//! assertion messages).
//!
//! New code should use [`Session`] directly; this type exists so
//! downstream users migrate on their own schedule.

use crate::config::{DmfsgdConfig, PredictionMode};
use crate::node::DmfsgdNode;
use crate::provider::MeasurementProvider;
use crate::session::{Session, SessionBuilder};
use dmf_datasets::{DynamicTrace, Metric};
use dmf_linalg::Matrix;
use dmf_simnet::NeighborSets;

/// A running DMFSGD population (legacy shim; prefer [`Session`]).
pub struct DmfsgdSystem {
    session: Session,
}

impl DmfsgdSystem {
    /// Creates `n` nodes with random coordinates and random neighbor
    /// sets of size `config.k`.
    ///
    /// # Panics
    /// Panics on any invalid knob; [`SessionBuilder::build`] returns
    /// the same conditions as typed [`crate::error::ConfigError`]s.
    #[deprecated(
        since = "0.2.0",
        note = "use the panic-free builder: `Session::builder().config(config).nodes(n).build()`"
    )]
    pub fn new(n: usize, config: DmfsgdConfig) -> Self {
        match SessionBuilder::from_config(config).nodes(n).build() {
            Ok(session) => Self { session },
            Err(e) => panic!("{e}"),
        }
    }

    /// The session behind this shim.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the session behind this shim.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Unwraps into the underlying [`Session`].
    pub fn into_session(self) -> Session {
        self.session
    }

    /// The configuration in force.
    pub fn config(&self) -> &DmfsgdConfig {
        self.session.config()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.session.len()
    }

    /// True when the system has no nodes.
    pub fn is_empty(&self) -> bool {
        self.session.is_empty()
    }

    /// Immutable view of a node.
    pub fn node(&self, i: usize) -> &DmfsgdNode {
        &self.session.nodes()[i]
    }

    /// The neighbor sets in force.
    pub fn neighbors(&self) -> &NeighborSets {
        self.session.neighbors()
    }

    /// Total measurements processed so far.
    pub fn measurements_used(&self) -> usize {
        self.session.measurements_used()
    }

    /// Average measurements per node — the x-axis of the paper's
    /// convergence plot (Figure 5c).
    pub fn avg_measurements_per_node(&self) -> f64 {
        self.session.avg_measurements_per_node()
    }

    /// Raw predictor output `u_i · v_j` (the score whose sign is the
    /// predicted class; peer selection ranks this directly).
    pub fn raw_score(&self, i: usize, j: usize) -> f64 {
        self.session.raw_score_unchecked(i, j)
    }

    /// Predicted measure in natural units: for class mode this is the
    /// raw score; for quantity mode the score is scaled back to
    /// ms/Mbps.
    pub fn predict(&self, i: usize, j: usize) -> f64 {
        match self.session.config().mode {
            PredictionMode::Class => self.raw_score(i, j),
            PredictionMode::Quantity { value_scale } => self.raw_score(i, j) * value_scale,
        }
    }

    /// Materializes all pairwise raw scores (diagonal zeroed) for
    /// evaluation, batched as one `U·Vᵀ` product over contiguously
    /// packed coordinate rows. Bitwise-identical to calling
    /// [`raw_score`](Self::raw_score) per pair.
    pub fn predicted_scores(&self) -> Matrix {
        self.session.predicted_scores()
    }

    /// [`predicted_scores`](Self::predicted_scores) into an existing
    /// matrix, reusing its allocation across repeated evaluations.
    pub fn predicted_scores_into(&self, out: &mut Matrix) {
        self.session.predicted_scores_into(out);
    }

    /// Reference implementation of
    /// [`predicted_scores`](Self::predicted_scores): one per-pair dot
    /// at a time. Kept for the equivalence property tests.
    pub fn predicted_scores_naive(&self) -> Matrix {
        self.session.predicted_scores_naive()
    }

    /// Processes one measurement for the ordered pair `(i, j)` through
    /// the proper algorithm. Returns false when the pair could not be
    /// measured.
    ///
    /// # Panics
    /// Panics on out-of-range ids or the self-pair;
    /// [`Session::process_pair`] returns those as typed errors.
    pub fn process_pair(
        &mut self,
        i: usize,
        j: usize,
        provider: &mut dyn MeasurementProvider,
    ) -> bool {
        match self.session.process_pair(i, j, provider) {
            Ok(measured) => measured,
            Err(e) => panic!("{e}"),
        }
    }

    /// Applies an already-obtained measurement value (used by the
    /// trace replay and by external transports that measure on their
    /// own).
    ///
    /// # Panics
    /// Panics on out-of-range ids or the self-pair.
    pub fn apply_measurement(&mut self, i: usize, j: usize, x: f64, metric: Metric) {
        if let Err(e) = self.session.apply_measurement(i, j, x, metric) {
            panic!("{e}");
        }
    }

    /// One protocol tick: a random node probes a random neighbor.
    /// Returns false when the drawn pair was unmeasurable.
    pub fn tick(&mut self, provider: &mut dyn MeasurementProvider) -> bool {
        match self.session.tick(provider) {
            Ok(measured) => measured,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs `count` ticks (unmeasurable draws still consume a tick, as
    /// a failed probe consumes a probing slot in practice).
    ///
    /// # Panics
    /// Panics when the provider covers a different population;
    /// [`Session::run`] reports that as a typed error.
    #[deprecated(
        since = "0.2.0",
        note = "use `Session::run` (or drive the session through a `Driver`)"
    )]
    pub fn run(&mut self, count: usize, provider: &mut dyn MeasurementProvider) {
        if let Err(e) = self.session.run(count, provider) {
            panic!("{e}");
        }
    }

    /// Replays a dynamic trace in timestamp order (the Harvard
    /// protocol): each measurement `(t, i, j, value)` is classified at
    /// `tau` (class mode) or scaled (quantity mode) and applied at
    /// node `i` via Algorithm 1.
    ///
    /// # Panics
    /// Panics on a size mismatch or an unordered trace.
    pub fn run_trace(&mut self, trace: &DynamicTrace, tau: f64) {
        if let Err(e) = self.session.run_trace(trace, tau) {
            panic!("{e}");
        }
    }
}

impl From<Session> for DmfsgdSystem {
    fn from(session: Session) -> Self {
        Self { session }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::provider::{ClassLabelProvider, QuantityProvider};
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::dynamic::{harvard_like, HarvardConfig};
    use dmf_datasets::rtt::meridian_like;

    /// Fraction of observed pairs whose predicted sign matches the
    /// label (a cheap stand-in for AUC inside unit tests).
    fn sign_accuracy(system: &DmfsgdSystem, class: &dmf_datasets::ClassMatrix) -> f64 {
        let mut ok = 0usize;
        let mut total = 0usize;
        for (i, j) in class.mask.iter_known() {
            total += 1;
            let predicted = if system.raw_score(i, j) >= 0.0 {
                1.0
            } else {
                -1.0
            };
            if Some(predicted) == class.label(i, j) {
                ok += 1;
            }
        }
        ok as f64 / total as f64
    }

    #[test]
    fn rtt_class_training_beats_chance_quickly() {
        let d = meridian_like(60, 1);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm.clone());
        let mut sys = DmfsgdSystem::new(60, DmfsgdConfig::paper_defaults());
        sys.run(60 * 200, &mut provider);
        let acc = sign_accuracy(&sys, &cm);
        assert!(acc > 0.75, "accuracy {acc} too low after training");
    }

    #[test]
    fn abw_class_training_beats_chance_quickly() {
        let d = hps3_like(60, 2);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm.clone());
        let mut sys = DmfsgdSystem::new(60, DmfsgdConfig::paper_defaults());
        sys.run(60 * 200, &mut provider);
        let acc = sign_accuracy(&sys, &cm);
        assert!(acc > 0.7, "accuracy {acc} too low after ABW training");
    }

    #[test]
    fn training_improves_over_initialization() {
        let d = meridian_like(50, 3);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm.clone());
        let mut sys = DmfsgdSystem::new(50, DmfsgdConfig::paper_defaults());
        let before = sign_accuracy(&sys, &cm);
        sys.run(50 * 150, &mut provider);
        let after = sign_accuracy(&sys, &cm);
        assert!(after > before + 0.1, "no improvement: {before} → {after}");
    }

    #[test]
    fn quantity_mode_orders_pairs() {
        // Regression mode must rank close pairs below far pairs
        // (Spearman-ish check on a handful of extremes).
        let d = meridian_like(50, 4);
        let median = d.median();
        let values = d.values.clone();
        let mut provider = QuantityProvider::new(d, median);
        let cfg = DmfsgdConfig::paper_defaults().quantity(median);
        let mut sys = DmfsgdSystem::new(50, cfg);
        sys.run(50 * 300, &mut provider);
        // Correlation between predicted and true values over observed pairs.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..50 {
            for j in 0..50 {
                if i != j {
                    xs.push(values[(i, j)]);
                    ys.push(sys.predict(i, j));
                }
            }
        }
        let mx = dmf_linalg::stats::mean(&xs);
        let my = dmf_linalg::stats::mean(&ys);
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (x, y) in xs.iter().zip(ys.iter()) {
            cov += (x - mx) * (y - my);
            vx += (x - mx) * (x - mx);
            vy += (y - my) * (y - my);
        }
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr > 0.5, "regression correlation {corr} too weak");
    }

    #[test]
    fn trace_replay_trains_in_time_order() {
        let cfg = HarvardConfig::new(40, 40_000);
        let (trace, gt) = harvard_like(&cfg, 5);
        let tau = gt.median();
        let cm = gt.classify(tau);
        let mut sys = DmfsgdSystem::new(40, DmfsgdConfig::paper_defaults());
        sys.run_trace(&trace, tau);
        assert_eq!(sys.measurements_used(), trace.len());
        let acc = sign_accuracy(&sys, &cm);
        assert!(acc > 0.7, "trace-trained accuracy {acc}");
    }

    #[test]
    fn measurement_counting() {
        let d = meridian_like(30, 6);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm);
        let mut sys = DmfsgdSystem::new(30, DmfsgdConfig::paper_defaults());
        sys.run(90, &mut provider);
        assert_eq!(sys.measurements_used(), 90);
        assert!((sys.avg_measurements_per_node() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn predicted_scores_shape_and_diagonal() {
        let sys = DmfsgdSystem::new(12, DmfsgdConfig::paper_defaults());
        let scores = sys.predicted_scores();
        assert_eq!(scores.shape(), (12, 12));
        for i in 0..12 {
            assert_eq!(scores[(i, i)], 0.0);
        }
        assert_eq!(scores[(0, 1)], sys.raw_score(0, 1));
    }

    #[test]
    fn batched_scores_match_naive_per_pair() {
        let d = meridian_like(35, 9);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm);
        let mut sys = DmfsgdSystem::new(35, DmfsgdConfig::paper_defaults());
        sys.run(2000, &mut provider);
        assert_eq!(sys.predicted_scores(), sys.predicted_scores_naive());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = meridian_like(30, 7);
        let cm = d.classify(d.median());
        let run = || {
            let mut provider = ClassLabelProvider::new(cm.clone());
            let mut sys = DmfsgdSystem::new(30, DmfsgdConfig::paper_defaults());
            sys.run(500, &mut provider);
            sys.predicted_scores()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shim_and_session_train_bit_identically() {
        // The shim must be a pure delegation layer: same seed, same
        // draws, same coordinates.
        let d = meridian_like(30, 12);
        let cm = d.classify(d.median());
        let mut p1 = ClassLabelProvider::new(cm.clone());
        let mut p2 = ClassLabelProvider::new(cm);
        let mut shim = DmfsgdSystem::new(30, DmfsgdConfig::paper_defaults());
        let mut session = Session::builder().nodes(30).build().expect("valid");
        shim.run(700, &mut p1);
        session.run(700, &mut p2).expect("run");
        assert_eq!(shim.predicted_scores(), session.predicted_scores());
    }

    #[test]
    #[should_panic(expected = "more nodes than neighbors")]
    fn k_too_large_rejected() {
        DmfsgdSystem::new(5, DmfsgdConfig::paper_defaults());
    }

    #[test]
    #[should_panic(expected = "self-pair")]
    fn self_pair_rejected() {
        let d = meridian_like(20, 8);
        let mut provider = ClassLabelProvider::new(d.classify(d.median()));
        let mut sys = DmfsgdSystem::new(20, DmfsgdConfig::paper_defaults());
        sys.process_pair(3, 3, &mut provider);
    }

    #[test]
    #[should_panic(expected = "provider covers")]
    fn provider_mismatch_rejected() {
        let d = meridian_like(20, 8);
        let mut provider = ClassLabelProvider::new(d.classify(d.median()));
        let mut sys = DmfsgdSystem::new(30, DmfsgdConfig::paper_defaults());
        sys.run(10, &mut provider);
    }
}
