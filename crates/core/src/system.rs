//! Population-level driver: the paper's evaluation protocol.
//!
//! "Each node randomly and independently chooses a neighbor set of k
//! nodes as references and randomly probes one of its neighbors at
//! each time" (§5.3). [`DmfsgdSystem`] replays exactly that schedule —
//! either as random pair draws (Meridian, HP-S3 "used in random
//! order") or following the timestamps of a dynamic trace (Harvard,
//! "used in time order").
//!
//! For the same node logic driven through real message passing with
//! latency and loss, see [`crate::runner`].
//!
//! The driver calls the node handlers of [`crate::node`]; it never
//! builds a matrix for training. `predicted_scores` materializes the
//! estimate matrix only for *evaluation*, mirroring how the paper's
//! simulations compute ROC/AUC after the fact.

use crate::config::{DmfsgdConfig, PredictionMode};
use crate::node::DmfsgdNode;
use crate::provider::MeasurementProvider;
use dmf_datasets::{DynamicTrace, Metric};
use dmf_linalg::Matrix;
use dmf_simnet::NeighborSets;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A running DMFSGD population.
pub struct DmfsgdSystem {
    config: DmfsgdConfig,
    nodes: Vec<DmfsgdNode>,
    neighbors: NeighborSets,
    rng: ChaCha8Rng,
    measurements: usize,
}

impl DmfsgdSystem {
    /// Creates `n` nodes with random coordinates and random neighbor
    /// sets of size `config.k`.
    pub fn new(n: usize, config: DmfsgdConfig) -> Self {
        config.validate();
        assert!(
            n > config.k,
            "need more nodes than neighbors (n={n}, k={})",
            config.k
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let nodes = (0..n)
            .map(|i| DmfsgdNode::new(i, config.rank, &mut rng))
            .collect();
        let neighbors = NeighborSets::random(n, config.k, &mut rng);
        Self {
            config,
            nodes,
            neighbors,
            rng,
            measurements: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DmfsgdConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the system has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable view of a node.
    pub fn node(&self, i: usize) -> &DmfsgdNode {
        &self.nodes[i]
    }

    /// The neighbor sets in force.
    pub fn neighbors(&self) -> &NeighborSets {
        &self.neighbors
    }

    /// Total measurements processed so far.
    pub fn measurements_used(&self) -> usize {
        self.measurements
    }

    /// Average measurements per node — the x-axis of the paper's
    /// convergence plot (Figure 5c).
    pub fn avg_measurements_per_node(&self) -> f64 {
        self.measurements as f64 / self.nodes.len() as f64
    }

    /// Raw predictor output `u_i · v_j` (the score whose sign is the
    /// predicted class; peer selection ranks this directly).
    pub fn raw_score(&self, i: usize, j: usize) -> f64 {
        self.nodes[i].predict_to(&self.nodes[j])
    }

    /// Predicted measure in natural units: for class mode this is the
    /// raw score; for quantity mode the score is scaled back to
    /// ms/Mbps.
    pub fn predict(&self, i: usize, j: usize) -> f64 {
        match self.config.mode {
            PredictionMode::Class => self.raw_score(i, j),
            PredictionMode::Quantity { value_scale } => self.raw_score(i, j) * value_scale,
        }
    }

    /// Materializes all pairwise raw scores (diagonal zeroed) for
    /// evaluation, batched as one `U·Vᵀ` product over contiguously
    /// packed coordinate rows. Bitwise-identical to calling
    /// [`raw_score`](Self::raw_score) per pair.
    pub fn predicted_scores(&self) -> Matrix {
        crate::runner::batched_scores(&self.nodes)
    }

    /// [`predicted_scores`](Self::predicted_scores) into an existing
    /// matrix, reusing its allocation across repeated evaluations.
    pub fn predicted_scores_into(&self, out: &mut Matrix) {
        crate::runner::batched_scores_into(&self.nodes, out);
    }

    /// Reference implementation of
    /// [`predicted_scores`](Self::predicted_scores): one per-pair dot
    /// at a time. Kept for the equivalence property tests.
    pub fn predicted_scores_naive(&self) -> Matrix {
        let n = self.len();
        Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { self.raw_score(i, j) })
    }

    /// Processes one measurement for the ordered pair `(i, j)` through
    /// the proper algorithm. Returns false when the pair could not be
    /// measured.
    pub fn process_pair(
        &mut self,
        i: usize,
        j: usize,
        provider: &mut dyn MeasurementProvider,
    ) -> bool {
        assert!(i < self.len() && j < self.len(), "node id out of range");
        assert_ne!(i, j, "cannot measure the self-pair");
        let Some(x) = provider.measure(i, j, &mut self.rng) else {
            return false;
        };
        self.apply_measurement(i, j, x, provider.metric());
        true
    }

    /// Applies an already-obtained measurement value (used by the
    /// trace replay and by the simnet/UDP runners, which measure
    /// through their own transport).
    pub fn apply_measurement(&mut self, i: usize, j: usize, x: f64, metric: Metric) {
        let params = self.config.sgd;
        if metric.is_symmetric() {
            // Algorithm 1: the reply carries (u_j, v_j); node i updates.
            let (u_j, v_j) = self.nodes[j].rtt_reply();
            self.nodes[i].on_rtt_measurement(x, &u_j, &v_j, &params);
        } else {
            // Algorithm 2: node j infers x and updates v_j, node i
            // updates u_i with the pre-update v_j snapshot.
            let u_i = self.nodes[i].coords.u.clone();
            let v_snapshot = self.nodes[j].on_abw_probe(x, &u_i, &params);
            self.nodes[i].on_abw_reply(x, &v_snapshot, &params);
        }
        self.measurements += 1;
    }

    /// One protocol tick: a random node probes a random neighbor.
    /// Returns false when the drawn pair was unmeasurable.
    pub fn tick(&mut self, provider: &mut dyn MeasurementProvider) -> bool {
        let i = self.rng.gen_range(0..self.len());
        let j = self.neighbors.sample_neighbor(i, &mut self.rng);
        self.process_pair(i, j, provider)
    }

    /// Runs `count` ticks (unmeasurable draws still consume a tick, as
    /// a failed probe consumes a probing slot in practice).
    pub fn run(&mut self, count: usize, provider: &mut dyn MeasurementProvider) {
        assert_eq!(
            provider.len(),
            self.len(),
            "provider covers {} nodes, system has {}",
            provider.len(),
            self.len()
        );
        for _ in 0..count {
            self.tick(provider);
        }
    }

    /// Replays a dynamic trace in timestamp order (the Harvard
    /// protocol): each measurement `(t, i, j, value)` is classified at
    /// `tau` (class mode) or scaled (quantity mode) and applied at
    /// node `i` via Algorithm 1.
    pub fn run_trace(&mut self, trace: &DynamicTrace, tau: f64) {
        assert_eq!(trace.nodes, self.len(), "trace/system size mismatch");
        assert!(trace.is_time_ordered(), "trace must be time-ordered");
        for m in &trace.measurements {
            let x = match self.config.mode {
                PredictionMode::Class => trace.metric.classify(m.value, tau),
                PredictionMode::Quantity { value_scale } => m.value / value_scale,
            };
            self.apply_measurement(m.from, m.to, x, trace.metric);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{ClassLabelProvider, QuantityProvider};
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::dynamic::{harvard_like, HarvardConfig};
    use dmf_datasets::rtt::meridian_like;

    /// Fraction of observed pairs whose predicted sign matches the
    /// label (a cheap stand-in for AUC inside unit tests).
    fn sign_accuracy(system: &DmfsgdSystem, class: &dmf_datasets::ClassMatrix) -> f64 {
        let mut ok = 0usize;
        let mut total = 0usize;
        for (i, j) in class.mask.iter_known() {
            total += 1;
            let predicted = if system.raw_score(i, j) >= 0.0 {
                1.0
            } else {
                -1.0
            };
            if Some(predicted) == class.label(i, j) {
                ok += 1;
            }
        }
        ok as f64 / total as f64
    }

    #[test]
    fn rtt_class_training_beats_chance_quickly() {
        let d = meridian_like(60, 1);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm.clone());
        let mut sys = DmfsgdSystem::new(60, DmfsgdConfig::paper_defaults());
        sys.run(60 * 200, &mut provider);
        let acc = sign_accuracy(&sys, &cm);
        assert!(acc > 0.75, "accuracy {acc} too low after training");
    }

    #[test]
    fn abw_class_training_beats_chance_quickly() {
        let d = hps3_like(60, 2);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm.clone());
        let mut sys = DmfsgdSystem::new(60, DmfsgdConfig::paper_defaults());
        sys.run(60 * 200, &mut provider);
        let acc = sign_accuracy(&sys, &cm);
        assert!(acc > 0.7, "accuracy {acc} too low after ABW training");
    }

    #[test]
    fn training_improves_over_initialization() {
        let d = meridian_like(50, 3);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm.clone());
        let mut sys = DmfsgdSystem::new(50, DmfsgdConfig::paper_defaults());
        let before = sign_accuracy(&sys, &cm);
        sys.run(50 * 150, &mut provider);
        let after = sign_accuracy(&sys, &cm);
        assert!(after > before + 0.1, "no improvement: {before} → {after}");
    }

    #[test]
    fn quantity_mode_orders_pairs() {
        // Regression mode must rank close pairs below far pairs
        // (Spearman-ish check on a handful of extremes).
        let d = meridian_like(50, 4);
        let median = d.median();
        let values = d.values.clone();
        let mut provider = QuantityProvider::new(d, median);
        let cfg = DmfsgdConfig::paper_defaults().quantity(median);
        let mut sys = DmfsgdSystem::new(50, cfg);
        sys.run(50 * 300, &mut provider);
        // Correlation between predicted and true values over observed pairs.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..50 {
            for j in 0..50 {
                if i != j {
                    xs.push(values[(i, j)]);
                    ys.push(sys.predict(i, j));
                }
            }
        }
        let mx = dmf_linalg::stats::mean(&xs);
        let my = dmf_linalg::stats::mean(&ys);
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (x, y) in xs.iter().zip(ys.iter()) {
            cov += (x - mx) * (y - my);
            vx += (x - mx) * (x - mx);
            vy += (y - my) * (y - my);
        }
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr > 0.5, "regression correlation {corr} too weak");
    }

    #[test]
    fn trace_replay_trains_in_time_order() {
        let cfg = HarvardConfig::new(40, 40_000);
        let (trace, gt) = harvard_like(&cfg, 5);
        let tau = gt.median();
        let cm = gt.classify(tau);
        let mut sys = DmfsgdSystem::new(40, DmfsgdConfig::paper_defaults());
        sys.run_trace(&trace, tau);
        assert_eq!(sys.measurements_used(), trace.len());
        let acc = sign_accuracy(&sys, &cm);
        assert!(acc > 0.7, "trace-trained accuracy {acc}");
    }

    #[test]
    fn measurement_counting() {
        let d = meridian_like(30, 6);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm);
        let mut sys = DmfsgdSystem::new(30, DmfsgdConfig::paper_defaults());
        sys.run(90, &mut provider);
        assert_eq!(sys.measurements_used(), 90);
        assert!((sys.avg_measurements_per_node() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn predicted_scores_shape_and_diagonal() {
        let sys = DmfsgdSystem::new(12, DmfsgdConfig::paper_defaults());
        let scores = sys.predicted_scores();
        assert_eq!(scores.shape(), (12, 12));
        for i in 0..12 {
            assert_eq!(scores[(i, i)], 0.0);
        }
        assert_eq!(scores[(0, 1)], sys.raw_score(0, 1));
    }

    #[test]
    fn batched_scores_match_naive_per_pair() {
        let d = meridian_like(35, 9);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm);
        let mut sys = DmfsgdSystem::new(35, DmfsgdConfig::paper_defaults());
        sys.run(2000, &mut provider);
        assert_eq!(sys.predicted_scores(), sys.predicted_scores_naive());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = meridian_like(30, 7);
        let cm = d.classify(d.median());
        let run = || {
            let mut provider = ClassLabelProvider::new(cm.clone());
            let mut sys = DmfsgdSystem::new(30, DmfsgdConfig::paper_defaults());
            sys.run(500, &mut provider);
            sys.predicted_scores()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "more nodes than neighbors")]
    fn k_too_large_rejected() {
        DmfsgdSystem::new(5, DmfsgdConfig::paper_defaults());
    }

    #[test]
    #[should_panic(expected = "self-pair")]
    fn self_pair_rejected() {
        let d = meridian_like(20, 8);
        let mut provider = ClassLabelProvider::new(d.classify(d.median()));
        let mut sys = DmfsgdSystem::new(20, DmfsgdConfig::paper_defaults());
        sys.process_pair(3, 3, &mut provider);
    }
}
