//! Node coordinates.
//!
//! Each node stores one row of `U` and one row of `V` (paper §5.2):
//! "ui and vi will be called the coordinates of node i". Coordinates
//! are initialized with random numbers uniformly distributed between 0
//! and 1 (§5.3) — the algorithms are empirically insensitive to this
//! initialization.
//!
//! Storage is the inline [`CoordVec`]: for the paper-scale ranks
//! (`r ≤ 16`) both factors live inside the node itself, so a node is
//! one contiguous block of memory and snapshotting coordinates for a
//! protocol message is a copy, not an allocation.

use dmf_linalg::kernels;
pub use dmf_linalg::CoordVec;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The rank-`r` coordinate pair `(u_i, v_i)` of a node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Coordinates {
    /// Row of `U`: the node's "outgoing" factor.
    pub u: CoordVec,
    /// Row of `V`: the node's "incoming" factor.
    pub v: CoordVec,
}

impl Coordinates {
    /// Random initialization, uniform in `[0, 1)` (paper §5.3).
    ///
    /// Draws `u` first, then `v`, one element at a time — the same RNG
    /// consumption order as the historical `Vec`-backed initializer.
    pub fn random(rank: usize, rng: &mut impl Rng) -> Self {
        assert!(rank >= 1, "rank must be at least 1");
        Self {
            u: CoordVec::from_fn(rank, |_| rng.gen::<f64>()),
            v: CoordVec::from_fn(rank, |_| rng.gen::<f64>()),
        }
    }

    /// Builds coordinates from explicit vectors (tests, deserialized
    /// protocol messages).
    pub fn from_parts(u: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(u.len(), v.len(), "u/v rank mismatch");
        assert!(!u.is_empty(), "rank must be at least 1");
        Self {
            u: u.into(),
            v: v.into(),
        }
    }

    /// Coordinate rank `r`.
    pub fn rank(&self) -> usize {
        self.u.len()
    }

    /// Predicted measure from `self` to `other`:
    /// `x̂_ij = u_i · v_j` (paper eq. 2).
    pub fn predict_to(&self, other: &Coordinates) -> f64 {
        dot(&self.u, &other.v)
    }

    /// Squared L2 norms `(‖u‖², ‖v‖²)` — the regularization terms.
    pub fn norms_sq(&self) -> (f64, f64) {
        (dot(&self.u, &self.u), dot(&self.v, &self.v))
    }
}

/// Dot product helper shared with the update rules (re-exported from
/// [`dmf_linalg::kernels::dot`]).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    kernels::dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_init_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = Coordinates::random(10, &mut rng);
        assert_eq!(c.rank(), 10);
        assert!(c
            .u
            .iter()
            .chain(c.v.iter())
            .all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn paper_rank_stays_inline() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let c = Coordinates::random(10, &mut rng);
        assert!(c.u.is_inline() && c.v.is_inline());
        // Figure-4 rank sweep goes to 100: must spill, not panic.
        let big = Coordinates::random(100, &mut rng);
        assert_eq!(big.rank(), 100);
        assert!(!big.u.is_inline());
    }

    #[test]
    fn predict_is_u_dot_v() {
        let a = Coordinates::from_parts(vec![1.0, 2.0], vec![0.0, 0.0]);
        let b = Coordinates::from_parts(vec![9.0, 9.0], vec![3.0, 4.0]);
        assert_eq!(a.predict_to(&b), 1.0 * 3.0 + 2.0 * 4.0);
        // Prediction is directional: b → a uses u_b · v_a.
        assert_eq!(b.predict_to(&a), 0.0);
    }

    #[test]
    fn norms_sq() {
        let c = Coordinates::from_parts(vec![3.0, 4.0], vec![1.0, 1.0]);
        assert_eq!(c.norms_sq(), (25.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn mismatched_ranks_rejected() {
        Coordinates::from_parts(vec![1.0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn predict_checks_rank() {
        let a = Coordinates::from_parts(vec![1.0], vec![1.0]);
        let b = Coordinates::from_parts(vec![1.0, 2.0], vec![1.0, 2.0]);
        let _ = a.predict_to(&b);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(
            Coordinates::random(8, &mut r1),
            Coordinates::random(8, &mut r2)
        );
    }
}
