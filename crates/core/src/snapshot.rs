//! Serializable checkpoints of a [`Session`].
//!
//! A [`Snapshot`] pins the *complete* deterministic state of a
//! session: configuration, every node's coordinates, the neighbor
//! sets, the membership bookkeeping (alive order and departed slots —
//! both decide which node a given RNG draw selects) and the exact
//! ChaCha keystream position. Restoring and continuing is therefore
//! bit-identical to never having stopped, which is what makes warm
//! restarts and checkpointed long runs trustworthy: a resumed
//! experiment reproduces the uninterrupted one to the last bit (the
//! property tests pin this).
//!
//! Snapshots serialize to JSON ([`Snapshot::to_json`] /
//! [`Snapshot::from_json`]); floating-point fields use
//! shortest-roundtrip printing, so the JSON detour is lossless.
//! [`Session::restore`] re-validates everything — a corrupt or
//! hand-edited snapshot yields a [`SnapshotError`], never a panic.

use crate::error::{DmfsgdError, NodeId, SnapshotError};
use crate::node::DmfsgdNode;
use crate::session::Session;
use crate::DmfsgdConfig;
use dmf_simnet::NeighborSets;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Bump when the snapshot layout changes incompatibly.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Exact ChaCha8 generator state. The 64-bit block counter is split
/// into 32-bit halves so the JSON number representation (f64) stays
/// exact for every possible value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct RngState {
    key: [u32; 8],
    counter_hi: u32,
    counter_lo: u32,
    index: u32,
}

impl RngState {
    fn capture(rng: &ChaCha8Rng) -> Self {
        let (key, counter, index) = rng.dump_state();
        Self {
            key,
            counter_hi: (counter >> 32) as u32,
            counter_lo: counter as u32,
            index: index as u32,
        }
    }

    fn rebuild(&self) -> Result<ChaCha8Rng, SnapshotError> {
        let counter = (u64::from(self.counter_hi) << 32) | u64::from(self.counter_lo);
        ChaCha8Rng::from_state(self.key, counter, self.index as usize).ok_or_else(|| {
            SnapshotError::Corrupt(format!("impossible RNG word index {}", self.index))
        })
    }
}

/// A complete, serializable checkpoint of a [`Session`].
///
/// Obtain one with [`Session::snapshot`]; turn it back into a live
/// session with [`Session::restore`]. The JSON form is stable across
/// process restarts (schema-versioned).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    schema_version: u32,
    config: DmfsgdConfig,
    tau: Option<f64>,
    nodes: Vec<DmfsgdNode>,
    neighbors: NeighborSets,
    alive: Vec<NodeId>,
    free: Vec<NodeId>,
    rng: RngState,
    measurements: usize,
}

impl Snapshot {
    /// Captures the full deterministic state of `session`.
    pub(crate) fn capture(session: &Session) -> Self {
        Self {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            config: session.config,
            tau: session.tau,
            nodes: session.nodes.clone(),
            neighbors: session.neighbors.clone(),
            alive: session.alive_list.clone(),
            free: session.free.clone(),
            rng: RngState::capture(&session.rng),
            measurements: session.measurements,
        }
    }

    /// The schema version this snapshot was written with.
    pub fn schema_version(&self) -> u32 {
        self.schema_version
    }

    /// The configuration frozen into this snapshot.
    pub fn config(&self) -> &DmfsgdConfig {
        &self.config
    }

    /// Number of node slots captured.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the snapshot holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Serializes to compact JSON (lossless: floats print in
    /// shortest-roundtrip form).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot fields are always JSON-encodable")
    }

    /// Parses a snapshot from JSON. Syntactic damage surfaces here as
    /// [`SnapshotError::Parse`]; semantic damage is caught by
    /// [`Session::restore`].
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        serde_json::from_str(text).map_err(|e| SnapshotError::Parse(e.to_string()))
    }

    fn corrupt(msg: impl Into<String>) -> DmfsgdError {
        SnapshotError::Corrupt(msg.into()).into()
    }

    /// Validates every cross-field invariant and rebuilds the live
    /// session.
    pub(crate) fn rebuild(&self) -> Result<Session, DmfsgdError> {
        if self.schema_version != SNAPSHOT_SCHEMA_VERSION {
            return Err(SnapshotError::SchemaVersion {
                found: self.schema_version,
                supported: SNAPSHOT_SCHEMA_VERSION,
            }
            .into());
        }
        self.config.try_validate()?;
        if let Some(tau) = self.tau {
            crate::error::ConfigError::check_tau(tau)?;
        }
        let n = self.nodes.len();
        crate::session::validate_node_array(&self.nodes, self.config.rank)
            .map_err(Self::corrupt)?;
        if self.neighbors.len() != n {
            return Err(Self::corrupt(format!(
                "neighbor table covers {} nodes, snapshot has {n}",
                self.neighbors.len()
            )));
        }
        // alive ∪ free must partition 0..n with no duplicates.
        if self.alive.len() + self.free.len() != n {
            return Err(Self::corrupt(format!(
                "alive ({}) + departed ({}) does not cover {n} slots",
                self.alive.len(),
                self.free.len()
            )));
        }
        let mut slot_pos: Vec<Option<u32>> = vec![None; n];
        let mut seen = vec![false; n];
        for (pos, &id) in self.alive.iter().enumerate() {
            if id >= n || seen[id] {
                return Err(Self::corrupt(format!("alive list entry {id} invalid")));
            }
            seen[id] = true;
            slot_pos[id] = Some(pos as u32);
        }
        for &id in &self.free {
            if id >= n || seen[id] {
                return Err(Self::corrupt(format!("departed list entry {id} invalid")));
            }
            seen[id] = true;
        }
        if self.alive.len() < self.config.k + 1 {
            return Err(Self::corrupt(format!(
                "{} alive nodes cannot sustain neighbor sets of k={}",
                self.alive.len(),
                self.config.k
            )));
        }
        // Alive rows must be k distinct alive non-self references.
        for &i in &self.alive {
            let row = self.neighbors.neighbors(i);
            if row.len() != self.config.k {
                return Err(Self::corrupt(format!(
                    "node {i} has {} neighbors, config says k={}",
                    row.len(),
                    self.config.k
                )));
            }
            let mut sorted = row.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != row.len() {
                return Err(Self::corrupt(format!("node {i} has duplicate neighbors")));
            }
            for &j in row {
                if j == i {
                    return Err(Self::corrupt(format!("node {i} references itself")));
                }
                if j >= n || slot_pos[j].is_none() {
                    return Err(Self::corrupt(format!(
                        "node {i} references non-alive neighbor {j}"
                    )));
                }
            }
        }
        let rng = self.rng.rebuild()?;
        Ok(Session {
            config: self.config,
            tau: self.tau,
            nodes: self.nodes.clone(),
            neighbors: self.neighbors.clone(),
            alive_list: self.alive.clone(),
            slot_pos,
            free: self.free.clone(),
            rng,
            measurements: self.measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::ClassLabelProvider;
    use dmf_datasets::rtt::meridian_like;

    fn trained_session() -> Session {
        let d = meridian_like(25, 11);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm);
        let mut session = Session::builder().nodes(25).k(6).seed(11).build().unwrap();
        session.run(25 * 40, &mut provider).unwrap();
        session
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let session = trained_session();
        let snap = session.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("parse");
        assert_eq!(snap, back);
        assert_eq!(back.schema_version(), SNAPSHOT_SCHEMA_VERSION);
        assert_eq!(back.len(), 25);
        assert_eq!(back.config(), session.config());
    }

    #[test]
    fn future_schema_version_is_rejected() {
        let session = trained_session();
        let mut snap = session.snapshot();
        snap.schema_version = 999;
        assert_eq!(
            Session::restore(&snap).unwrap_err(),
            DmfsgdError::Snapshot(SnapshotError::SchemaVersion {
                found: 999,
                supported: SNAPSHOT_SCHEMA_VERSION
            })
        );
    }

    #[test]
    fn every_corruption_axis_is_detected() {
        let session = trained_session();
        let snap = session.snapshot();

        let mut bad = snap.clone();
        bad.nodes[3].id = 9;
        assert!(Session::restore(&bad).is_err(), "node id mismatch");

        let mut bad = snap.clone();
        bad.config.rank = 5;
        assert!(Session::restore(&bad).is_err(), "rank mismatch");

        let mut bad = snap.clone();
        bad.config.rank = 0;
        assert!(
            matches!(Session::restore(&bad).unwrap_err(), DmfsgdError::Config(_)),
            "invalid config must surface as ConfigError"
        );

        let mut bad = snap.clone();
        bad.nodes[0].coords.u[0] = f64::NAN;
        assert!(Session::restore(&bad).is_err(), "non-finite coordinate");

        let mut bad = snap.clone();
        bad.alive[0] = 4096;
        assert!(Session::restore(&bad).is_err(), "dangling alive id");

        let mut bad = snap.clone();
        bad.alive[1] = bad.alive[0];
        assert!(Session::restore(&bad).is_err(), "duplicate alive id");

        let mut bad = snap.clone();
        bad.free.push(0);
        assert!(
            Session::restore(&bad).is_err(),
            "slot both alive and departed"
        );

        let mut bad = snap.clone();
        bad.rng.index = 42;
        assert!(Session::restore(&bad).is_err(), "impossible RNG index");
    }

    #[test]
    fn rng_state_split_counter_is_exact() {
        let state = RngState {
            key: [1, 2, 3, 4, 5, 6, 7, 8],
            counter_hi: 0xDEAD_BEEF,
            counter_lo: 0xFFFF_FFFF,
            index: 16,
        };
        let rng = state.rebuild().expect("valid");
        let (_, counter, _) = rng.dump_state();
        assert_eq!(counter, 0xDEAD_BEEF_FFFF_FFFF);
    }
}
