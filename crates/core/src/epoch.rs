//! Lock-free published coordinates: [`EpochView`].
//!
//! A [`CoordView`](crate::CoordView) answers queries bit-identically
//! to the session it was published from, but sharing one between
//! reader threads and a republishing writer needs a lock — and under
//! serving traffic that lock is exactly where shards stop scaling
//! (the reader/writer convoy on the view `RwLock` was the dominant
//! cost in the sharded service's tail).
//!
//! `EpochView` is the same published snapshot laid out as a flat
//! array of atomic words with a per-slot *seqlock*, so the query
//! methods ([`raw_score`](EpochView::raw_score),
//! [`predict`](EpochView::predict),
//! [`rank_neighbors_into`](EpochView::rank_neighbors_into) and the
//! slot reads underneath them) never take a lock, never block a
//! writer, and never observe a torn slot. A writer republishing slot
//! `i` bumps the slot's sequence word to an odd value, stores the new
//! coordinates, then bumps it back to even; readers retry the
//! handful of loads whenever the sequence was odd or changed under
//! them. On top of the per-slot words sits a global *epoch* counter,
//! bumped once per publication batch, so consumers can cheaply detect
//! "anything changed since I last looked".
//!
//! # Consistency model
//!
//! Every individual slot read is atomic: a reader sees some complete
//! previously-published `(u, v, alive)` triple, never a mix of two
//! publications. Reads of *different* slots (a prediction touches
//! two, a rank query touches a row's worth) may span publication
//! epochs — slot `i` from before a concurrent batch and slot `j`
//! from after it. That relaxation is what buys lock-freedom; with no
//! concurrent writer (e.g. the single-threaded conformance suites)
//! queries are bit-identical to the equivalent
//! [`CoordView`](crate::CoordView) queries.
//!
//! # Writer contract
//!
//! The publication methods ([`publish_slot`](EpochView::publish_slot),
//! [`publish_from`](EpochView::publish_from),
//! [`publish_all`](EpochView::publish_all),
//! [`bump_epoch`](EpochView::bump_epoch)) take `&self` — they are
//! built from atomics and are memory-safe under any interleaving —
//! but they assume **externally serialized writers** (one writer at a
//! time per view). Two unserialized writers racing on one slot could
//! interleave their sequence bumps so that a reader validates a mix
//! of their payloads. The sharded service serializes publication
//! behind a per-shard publish lock; single-writer embedders get the
//! guarantee for free.

use crate::config::PredictionMode;
use crate::coords::Coordinates;
use crate::error::{DmfsgdError, MembershipError, NodeId};
use crate::session::{rank_scored, Session};
use dmf_linalg::CoordVec;
use dmf_simnet::NeighborSets;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Words per slot in front of the coordinate payload: the sequence
/// word and the alive flag.
const SLOT_HEADER: usize = 2;

/// A lock-free, torn-read-free published snapshot of a session's
/// coordinates — the concurrent counterpart of
/// [`CoordView`](crate::CoordView) (see the [module docs](self) for
/// the consistency model and the single-writer contract).
pub struct EpochView {
    rank: usize,
    mode: PredictionMode,
    neighbors: NeighborSets,
    /// `len` slots of `SLOT_HEADER + 2 * rank` words each:
    /// `[seq, alive, u[0..rank], v[0..rank]]`. Sequence words are even
    /// between publications, odd while one is in flight.
    words: Vec<AtomicU64>,
    len: usize,
    epoch: AtomicU64,
}

impl EpochView {
    /// Captures a query-ready view of `session`'s current
    /// coordinates, membership and neighbor rows — the lock-free
    /// analogue of [`Session::publish`].
    pub fn capture(session: &Session) -> Self {
        let rank = session.config().rank;
        let len = session.len();
        let stride = SLOT_HEADER + 2 * rank;
        let mut words = Vec::with_capacity(len * stride);
        for id in 0..len {
            let node = session.node(id).expect("id < len");
            words.push(AtomicU64::new(0)); // seq: even, no write in flight
            words.push(AtomicU64::new(u64::from(session.is_alive(id))));
            words.extend(node.coords.u.iter().map(|c| AtomicU64::new(c.to_bits())));
            words.extend(node.coords.v.iter().map(|c| AtomicU64::new(c.to_bits())));
        }
        Self {
            rank,
            mode: session.config().mode,
            neighbors: session.neighbors().clone(),
            words,
            len,
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of node slots covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view covers no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Coordinate rank of every slot.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The session's prediction mode at capture time.
    pub fn mode(&self) -> PredictionMode {
        self.mode
    }

    /// The neighbor rows as of capture time.
    pub fn neighbors(&self) -> &NeighborSets {
        &self.neighbors
    }

    /// The publication epoch: bumped by
    /// [`bump_epoch`](Self::bump_epoch) once per publication batch.
    /// Monotone; equal epochs mean no batch completed in between.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Marks a publication batch complete and returns the new epoch.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    fn stride(&self) -> usize {
        SLOT_HEADER + 2 * self.rank
    }

    /// One consistent `(alive, u?, v?)` read of slot `id` into
    /// caller buffers (either may be `None` when that half isn't
    /// needed); `None` when `id` is out of range. Retries while a
    /// publication of the slot is in flight — readers never block and
    /// never observe a torn slot.
    fn read_slot(
        &self,
        id: NodeId,
        mut u: Option<&mut [f64]>,
        mut v: Option<&mut [f64]>,
    ) -> Option<bool> {
        if id >= self.len {
            return None;
        }
        let base = id * self.stride();
        let w = &self.words;
        loop {
            let s1 = w[base].load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let alive = w[base + 1].load(Ordering::Relaxed) != 0;
            if let Some(u) = u.as_deref_mut() {
                for (k, slot) in u.iter_mut().enumerate().take(self.rank) {
                    *slot = f64::from_bits(w[base + SLOT_HEADER + k].load(Ordering::Relaxed));
                }
            }
            if let Some(v) = v.as_deref_mut() {
                for (k, slot) in v.iter_mut().enumerate().take(self.rank) {
                    *slot = f64::from_bits(
                        w[base + SLOT_HEADER + self.rank + k].load(Ordering::Relaxed),
                    );
                }
            }
            // Order the data loads before the re-read of the sequence
            // word: if it still matches the even value we started
            // from, no publication overlapped the loads.
            fence(Ordering::Acquire);
            if w[base].load(Ordering::Relaxed) == s1 {
                return Some(alive);
            }
            std::hint::spin_loop();
        }
    }

    /// Consistent read of slot `id`'s full `(u, v)` pair; returns the
    /// alive flag from the same publication, `None` out of range.
    /// Both buffers must hold at least [`rank`](Self::rank) elements.
    pub fn read_into(&self, id: NodeId, u: &mut [f64], v: &mut [f64]) -> Option<bool> {
        debug_assert!(u.len() >= self.rank && v.len() >= self.rank);
        self.read_slot(id, Some(u), Some(v))
    }

    /// Consistent read of slot `id`'s outgoing coordinates `u_i`
    /// alone; returns the alive flag from the same publication,
    /// `None` out of range. The buffer must hold at least
    /// [`rank`](Self::rank) elements.
    pub fn read_u_into(&self, id: NodeId, u: &mut [f64]) -> Option<bool> {
        debug_assert!(u.len() >= self.rank);
        self.read_slot(id, Some(u), None)
    }

    /// Consistent read of slot `id`'s incoming coordinates `v_i`
    /// alone; returns the alive flag from the same publication,
    /// `None` out of range. The buffer must hold at least
    /// [`rank`](Self::rank) elements.
    pub fn read_v_into(&self, id: NodeId, v: &mut [f64]) -> Option<bool> {
        debug_assert!(v.len() >= self.rank);
        self.read_slot(id, None, Some(v))
    }

    /// The alive flag of slot `id` (`None` out of range), consistent
    /// with some publication.
    pub fn is_alive(&self, id: NodeId) -> Option<bool> {
        self.read_slot(id, None, None)
    }

    /// Membership check mirroring the session's error order and
    /// payloads exactly (the parity suites pin this).
    pub fn check_alive(&self, id: NodeId) -> Result<(), MembershipError> {
        match self.is_alive(id) {
            None => Err(MembershipError::UnknownNode {
                id,
                slots: self.len,
            }),
            Some(false) => Err(MembershipError::Departed { id }),
            Some(true) => Ok(()),
        }
    }

    /// The full pair check in the session's order: `i`'s membership,
    /// then `j`'s, then the self-pair rejection.
    pub fn check_pair(&self, i: NodeId, j: NodeId) -> Result<(), MembershipError> {
        self.check_alive(i)?;
        self.check_alive(j)?;
        if i == j {
            return Err(MembershipError::SelfPair { id: i });
        }
        Ok(())
    }

    /// Publishes new coordinates (and alive flag) into slot `id` —
    /// the lock-free analogue of
    /// [`CoordView::republish_node`](crate::CoordView::republish_node),
    /// taking the already-copied slot payload so no session lock need
    /// be held while publishing (the short-critical-section rule).
    /// Fails (leaving the slot untouched) when `id` is out of range
    /// or `coords` has the wrong rank. Writers must be externally
    /// serialized (see the [module docs](self)).
    pub fn publish_slot(
        &self,
        id: NodeId,
        coords: &Coordinates,
        alive: bool,
    ) -> Result<(), DmfsgdError> {
        if id >= self.len || coords.rank() != self.rank {
            return Err(DmfsgdError::Import(format!(
                "republish of node {id} does not fit the published view \
                 ({} slots, rank {})",
                self.len, self.rank
            )));
        }
        let base = id * self.stride();
        let w = &self.words;
        // Seqlock write: odd sequence opens the critical section,
        // the Release fence orders it before the payload stores, and
        // the final even store publishes the payload to any reader
        // that observes it.
        let s = w[base].load(Ordering::Relaxed);
        debug_assert_eq!(
            s & 1,
            0,
            "publication already in flight (unserialized writer)"
        );
        w[base].store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        w[base + 1].store(u64::from(alive), Ordering::Relaxed);
        for (k, c) in coords.u.iter().enumerate() {
            w[base + SLOT_HEADER + k].store(c.to_bits(), Ordering::Relaxed);
        }
        for (k, c) in coords.v.iter().enumerate() {
            w[base + SLOT_HEADER + self.rank + k].store(c.to_bits(), Ordering::Relaxed);
        }
        w[base].store(s.wrapping_add(2), Ordering::Release);
        Ok(())
    }

    /// Publishes node `id`'s current slot straight from `session` —
    /// [`publish_slot`](Self::publish_slot) with the copy done here.
    /// Errors mirror [`CoordView::republish_node`](crate::CoordView::republish_node).
    pub fn publish_from(&self, session: &Session, id: NodeId) -> Result<(), DmfsgdError> {
        let Some(node) = session.node(id) else {
            return Err(MembershipError::UnknownNode {
                id,
                slots: session.len(),
            }
            .into());
        };
        self.publish_slot(id, &node.coords, session.is_alive(id))
    }

    /// Republishes every slot from `session` (a restore/rollback is
    /// the expected caller) and bumps the epoch. The population size
    /// and rank must match the captured layout.
    pub fn publish_all(&self, session: &Session) -> Result<(), DmfsgdError> {
        if session.len() != self.len || session.config().rank != self.rank {
            return Err(DmfsgdError::Import(format!(
                "republish of a {}-node rank-{} session into a \
                 {}-slot rank-{} view",
                session.len(),
                session.config().rank,
                self.len,
                self.rank
            )));
        }
        for id in 0..self.len {
            self.publish_from(session, id)?;
        }
        self.bump_epoch();
        Ok(())
    }

    /// Raw predictor output `u_i · v_j` — bit-identical to
    /// [`CoordView::raw_score`](crate::CoordView::raw_score) (same
    /// dot kernel), reading each slot atomically.
    pub fn raw_score(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        let mut u_i = CoordVec::zeros(self.rank);
        let mut v_j = CoordVec::zeros(self.rank);
        self.raw_score_into(i, j, &mut u_i, &mut v_j)
    }

    /// [`raw_score`](Self::raw_score) with caller-owned scratch
    /// buffers (each at least [`rank`](Self::rank) long) — the
    /// allocation-free serving form.
    pub fn raw_score_into(
        &self,
        i: NodeId,
        j: NodeId,
        u_i: &mut [f64],
        v_j: &mut [f64],
    ) -> Result<f64, DmfsgdError> {
        match self.read_slot(i, Some(u_i), None) {
            None => {
                return Err(MembershipError::UnknownNode {
                    id: i,
                    slots: self.len,
                }
                .into())
            }
            Some(false) => return Err(MembershipError::Departed { id: i }.into()),
            Some(true) => {}
        }
        match self.read_slot(j, None, Some(v_j)) {
            None => {
                return Err(MembershipError::UnknownNode {
                    id: j,
                    slots: self.len,
                }
                .into())
            }
            Some(false) => return Err(MembershipError::Departed { id: j }.into()),
            Some(true) => {}
        }
        if i == j {
            return Err(MembershipError::SelfPair { id: i }.into());
        }
        Ok(crate::coords::dot(&u_i[..self.rank], &v_j[..self.rank]))
    }

    /// Predicted measure in natural units (see [`Session::predict`]).
    pub fn predict(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        let raw = self.raw_score(i, j)?;
        Ok(match self.mode {
            PredictionMode::Class => raw,
            PredictionMode::Quantity { value_scale } => raw * value_scale,
        })
    }

    /// Predicted class of the path `i → j`: `+1.0` when the raw score
    /// is non-negative, `-1.0` otherwise.
    pub fn predict_class(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        let raw = self.raw_score(i, j)?;
        Ok(if raw >= 0.0 { 1.0 } else { -1.0 })
    }

    /// Node `i`'s neighbors ranked by predicted score into a
    /// caller-owned buffer — [`CoordView::rank_neighbors_into`](crate::CoordView::rank_neighbors_into)
    /// semantics (same tie-break, departed neighbors included), each
    /// slot read atomically.
    pub fn rank_neighbors_into(
        &self,
        i: NodeId,
        top_k: usize,
        out: &mut Vec<(NodeId, f64)>,
    ) -> Result<(), DmfsgdError> {
        out.clear();
        self.check_alive(i)?;
        let mut u_i = CoordVec::zeros(self.rank);
        let mut v_j = CoordVec::zeros(self.rank);
        self.read_slot(i, Some(&mut u_i), None);
        for &j in self.neighbors.neighbors(i) {
            self.read_slot(j, None, Some(&mut v_j));
            out.push((j, crate::coords::dot(&u_i, &v_j)));
        }
        rank_scored(out, top_k);
        Ok(())
    }

    /// Allocating convenience form of
    /// [`rank_neighbors_into`](Self::rank_neighbors_into).
    pub fn rank_neighbors(
        &self,
        i: NodeId,
        top_k: usize,
    ) -> Result<Vec<(NodeId, f64)>, DmfsgdError> {
        let mut out = Vec::new();
        self.rank_neighbors_into(i, top_k, &mut out)?;
        Ok(out)
    }
}

impl std::fmt::Debug for EpochView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochView")
            .field("len", &self.len)
            .field("rank", &self.rank)
            .field("mode", &self.mode)
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SessionBuilder;
    use std::sync::Arc;

    fn session(n: usize, seed: u64) -> Session {
        SessionBuilder::new()
            .nodes(n)
            .k(n.saturating_sub(1).min(10))
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn capture_answers_bit_identically_to_the_coord_view() {
        let mut s = session(20, 41);
        for step in 0..150usize {
            let i = step % 20;
            let j = (i + 1 + step % 19) % 20;
            let x = if step % 3 == 0 { -1.0 } else { 1.0 };
            s.apply_measurement(i, j, x, dmf_datasets::Metric::Rtt)
                .unwrap();
        }
        let view = s.publish();
        let epoch = EpochView::capture(&s);
        assert_eq!(epoch.len(), 20);
        assert_eq!(epoch.rank(), view.rank());
        for i in 0..20 {
            for j in 0..20 {
                match (view.raw_score(i, j), epoch.raw_score(i, j)) {
                    (Ok(a), Ok(b)) => assert!(a == b, "({i},{j}): {a} != {b}"),
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!("({i},{j}): {a:?} vs {b:?}"),
                }
                assert_eq!(view.predict(i, j).ok(), epoch.predict(i, j).ok());
                assert_eq!(
                    view.predict_class(i, j).ok(),
                    epoch.predict_class(i, j).ok()
                );
            }
            assert_eq!(
                view.rank_neighbors(i, 8).unwrap(),
                epoch.rank_neighbors(i, 8).unwrap()
            );
        }
    }

    #[test]
    fn membership_errors_mirror_the_session_surface() {
        let s = session(8, 5);
        let epoch = EpochView::capture(&s);
        assert_eq!(
            epoch.raw_score(3, 3).unwrap_err(),
            s.raw_score(3, 3).unwrap_err()
        );
        assert_eq!(
            epoch.raw_score(0, 99).unwrap_err(),
            s.raw_score(0, 99).unwrap_err()
        );
        assert_eq!(
            epoch.raw_score(99, 0).unwrap_err(),
            s.raw_score(99, 0).unwrap_err()
        );
        assert_eq!(
            epoch.rank_neighbors(99, 4).unwrap_err(),
            s.rank_neighbors(99, 4).unwrap_err()
        );
    }

    #[test]
    fn publish_slot_is_visible_and_validated() {
        let mut s = session(10, 6);
        let epoch = EpochView::capture(&s);
        let before = epoch.raw_score(0, 1).unwrap();
        s.apply_measurement(0, 1, 1.0, dmf_datasets::Metric::Rtt)
            .unwrap();
        // Not yet published: still the captured coordinates.
        assert_eq!(epoch.raw_score(0, 1).unwrap(), before);
        let e0 = epoch.epoch();
        epoch.publish_from(&s, 0).unwrap();
        epoch.bump_epoch();
        assert_eq!(epoch.epoch(), e0 + 1);
        assert_eq!(epoch.raw_score(0, 1).unwrap(), s.raw_score(0, 1).unwrap());
        // Out-of-range and wrong-rank publications are rejected.
        assert!(matches!(
            epoch
                .publish_slot(99, &s.node(0).unwrap().coords, true)
                .unwrap_err(),
            DmfsgdError::Import(_)
        ));
        let skinny = Coordinates {
            u: CoordVec::zeros(1),
            v: CoordVec::zeros(1),
        };
        assert!(matches!(
            epoch.publish_slot(0, &skinny, true).unwrap_err(),
            DmfsgdError::Import(_)
        ));
    }

    #[test]
    fn publish_all_rolls_the_whole_view_forward() {
        let mut s = session(12, 7);
        let epoch = EpochView::capture(&s);
        for step in 0..60usize {
            let i = step % 12;
            let j = (i + 1 + step % 11) % 12;
            s.apply_measurement(i, j, 1.0, dmf_datasets::Metric::Rtt)
                .unwrap();
        }
        epoch.publish_all(&s).unwrap();
        let view = s.publish();
        for i in 0..12 {
            for j in 0..12 {
                assert_eq!(epoch.raw_score(i, j).ok(), view.raw_score(i, j).ok());
            }
        }
        let other = session(5, 1);
        assert!(matches!(
            epoch.publish_all(&other).unwrap_err(),
            DmfsgdError::Import(_)
        ));
    }

    /// The seqlock's torn-read guarantee, hammered directly: a writer
    /// publishes recognizable all-equal patterns into one slot while
    /// readers assert every observed vector is one of the published
    /// patterns — uniform within a slot, with `u` and `v` from the
    /// same publication.
    #[test]
    fn concurrent_readers_never_observe_a_torn_slot() {
        let s = session(4, 9);
        let rank = s.config().rank;
        let epoch = Arc::new(EpochView::capture(&s));
        let writer = {
            let epoch = Arc::clone(&epoch);
            std::thread::spawn(move || {
                for round in 1..=2_000u64 {
                    let k = round as f64;
                    let coords = Coordinates {
                        u: CoordVec::from_fn(rank, |_| k),
                        v: CoordVec::from_fn(rank, |_| -k),
                    };
                    epoch.publish_slot(0, &coords, true).unwrap();
                    epoch.bump_epoch();
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let epoch = Arc::clone(&epoch);
                std::thread::spawn(move || {
                    let mut u = vec![0.0; rank];
                    let mut v = vec![0.0; rank];
                    let mut observed = 0u64;
                    while observed < 4_000 {
                        let alive = epoch.read_into(0, &mut u, &mut v).unwrap();
                        assert!(alive);
                        let k = u[0];
                        assert!(
                            u.iter().all(|&c| c == k) && v.iter().all(|&c| c == -k),
                            "torn slot: u={u:?} v={v:?}"
                        );
                        observed += 1;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        // The final publication is the visible one.
        let mut u = vec![0.0; rank];
        let mut v = vec![0.0; rank];
        epoch.read_into(0, &mut u, &mut v).unwrap();
        assert_eq!(u[0], 2_000.0);
        assert_eq!(epoch.epoch(), 2_000);
    }
}
