//! Fully decentralized execution over the simulated network.
//!
//! [`SimnetRunner`] drives the same [`DmfsgdNode`] state machines as
//! [`crate::system`], but every protocol step is an actual message
//! with latency (and optionally loss) through [`dmf_simnet::SimNet`]:
//!
//! * **RTT (Algorithm 1)** — node `i` timestamps its probe; the RTT is
//!   *inferred from the simulated round-trip itself* (reply arrival −
//!   probe departure), exactly as ping infers it, then thresholded at
//!   `τ`.
//! * **ABW (Algorithm 2)** — the probe carries `u_i`; the *target*
//!   runs the pathload-style train against ground truth, updates
//!   `v_j`, and replies with `(x_ij, v_j)`.
//!
//! A probe timer per node fires every `probe_interval_s` (plus jitter)
//! and picks a uniform random neighbor — the Vivaldi-style schedule of
//! §5.3. Losing a reply simply loses one training opportunity; the
//! algorithm needs no reliability from the transport.

use crate::config::DmfsgdConfig;
use crate::node::DmfsgdNode;
use crate::system::DmfsgdSystem;
use dmf_datasets::{Dataset, Metric};
use dmf_linalg::Matrix;
use dmf_simnet::probe::PathloadProber;
use dmf_simnet::{NeighborSets, NetConfig, SimNet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Protocol messages exchanged by DMFSGD nodes.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// RTT probe (Algorithm 1, step 1).
    RttProbe,
    /// RTT reply carrying the target's coordinates (step 2).
    RttReply {
        /// `u_j` of the replying node.
        u: Vec<f64>,
        /// `v_j` of the replying node.
        v: Vec<f64>,
    },
    /// ABW probe carrying the prober's `u_i` and the probe rate
    /// (Algorithm 2, step 1).
    AbwProbe {
        /// `u_i` of the probing node.
        u: Vec<f64>,
    },
    /// ABW reply carrying the measured class and the target's
    /// pre-update `v_j` (step 3).
    AbwReply {
        /// The class label inferred at the target.
        x: f64,
        /// `v_j` snapshot.
        v: Vec<f64>,
    },
    /// Per-node probe timer.
    ProbeTick,
}

/// Statistics of a simulated run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunnerStats {
    /// Probes sent.
    pub probes_sent: usize,
    /// Measurements completed (SGD updates at the prober side).
    pub measurements_completed: usize,
}

/// A DMFSGD deployment over the simulated network.
pub struct SimnetRunner {
    config: DmfsgdConfig,
    nodes: Vec<DmfsgdNode>,
    neighbors: NeighborSets,
    net: SimNet<Msg>,
    dataset: Dataset,
    tau: f64,
    /// Outstanding RTT probes: `pending[i][j] = send time` (seconds).
    pending_rtt: Vec<Vec<Option<f64>>>,
    abw_prober: PathloadProber,
    probe_interval_s: f64,
    rng: ChaCha8Rng,
    stats: RunnerStats,
}

impl SimnetRunner {
    /// Builds a runner over `dataset` (RTT or ABW decides the
    /// algorithm), classifying at `tau`.
    pub fn new(dataset: Dataset, tau: f64, config: DmfsgdConfig, net_config: NetConfig) -> Self {
        config.validate();
        assert!(tau > 0.0, "tau must be positive");
        let n = dataset.len();
        assert!(n > config.k, "need more nodes than neighbors");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5117_babe);
        let nodes: Vec<DmfsgdNode> = (0..n)
            .map(|i| DmfsgdNode::new(i, config.rank, &mut rng))
            .collect();
        let neighbors = NeighborSets::random(n, config.k, &mut rng);
        // Message delays always need an RTT-like latency model; for ABW
        // datasets use a uniform control-plane delay instead.
        let net = if dataset.metric == Metric::Rtt {
            SimNet::from_rtt_dataset(&dataset, net_config)
        } else {
            SimNet::uniform(n, 0.04, net_config)
        };
        Self {
            config,
            nodes,
            neighbors,
            net,
            dataset,
            tau,
            pending_rtt: vec![vec![None; n]; n],
            abw_prober: PathloadProber::default(),
            probe_interval_s: 1.0,
            rng,
            stats: RunnerStats::default(),
        }
    }

    /// Sets the probe timer period (default 1 s).
    pub fn with_probe_interval(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "probe interval must be positive");
        self.probe_interval_s = seconds;
        self
    }

    /// Immutable access to the nodes.
    pub fn nodes(&self) -> &[DmfsgdNode] {
        &self.nodes
    }

    /// Run statistics.
    pub fn stats(&self) -> RunnerStats {
        self.stats
    }

    /// Raw predictor score `u_i · v_j`.
    pub fn raw_score(&self, i: usize, j: usize) -> f64 {
        self.nodes[i].predict_to(&self.nodes[j])
    }

    /// Materializes all pairwise scores for evaluation.
    pub fn predicted_scores(&self) -> Matrix {
        let n = self.nodes.len();
        Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { self.raw_score(i, j) })
    }

    /// Runs the protocol until simulated time `duration_s`, starting
    /// all probe timers at jittered offsets.
    pub fn run_for(&mut self, duration_s: f64) {
        assert!(duration_s > 0.0, "duration must be positive");
        let n = self.nodes.len();
        for i in 0..n {
            let offset = self.rng.gen::<f64>() * self.probe_interval_s;
            self.net.set_timer(i, offset, Msg::ProbeTick);
        }
        while let Some(t) = self.peek_time() {
            if t > duration_s {
                break;
            }
            let (now, delivery) = self.net.next_delivery().expect("peeked event vanished");
            self.handle(now, delivery.from, delivery.to, delivery.msg);
        }
    }

    fn peek_time(&mut self) -> Option<f64> {
        // SimNet lacks peek; emulate via pending count + next_delivery
        // would consume. Instead expose through pending(): if nothing
        // pending, stop.
        if self.net.pending() == 0 {
            None
        } else {
            Some(self.net.now())
        }
    }

    fn handle(&mut self, now: f64, from: usize, to: usize, msg: Msg) {
        match msg {
            Msg::ProbeTick => {
                let i = to;
                let j = self.neighbors.sample_neighbor(i, &mut self.rng);
                self.stats.probes_sent += 1;
                match self.dataset.metric {
                    Metric::Rtt => {
                        self.pending_rtt[i][j] = Some(now);
                        self.net.send(i, j, Msg::RttProbe);
                    }
                    Metric::Abw => {
                        let u = self.nodes[i].coords.u.clone();
                        self.net.send(i, j, Msg::AbwProbe { u });
                    }
                }
                // Re-arm the timer.
                let jitter = 0.9 + 0.2 * self.rng.gen::<f64>();
                self.net
                    .set_timer(i, self.probe_interval_s * jitter, Msg::ProbeTick);
            }
            Msg::RttProbe => {
                // Step 2 at node j: reply with coordinates.
                let (u, v) = self.nodes[to].rtt_reply();
                self.net.send(to, from, Msg::RttReply { u, v });
            }
            Msg::RttReply { u, v } => {
                // Steps 3–4 at node i: infer the RTT from the measured
                // round-trip time of this very exchange.
                let i = to;
                let j = from;
                let Some(sent_at) = self.pending_rtt[i][j].take() else {
                    return; // duplicate or stale reply
                };
                let rtt_ms = (now - sent_at) * 1000.0;
                let x = Metric::Rtt.classify(rtt_ms, self.tau);
                let params = self.config.sgd;
                self.nodes[i].on_rtt_measurement(x, &u, &v, &params);
                self.stats.measurements_completed += 1;
            }
            Msg::AbwProbe { u } => {
                // Steps 2–4 at target j: measure, snapshot v_j, update.
                let j = to;
                let i = from;
                let Some(x) =
                    self.abw_prober
                        .probe_class(&self.dataset, i, j, self.tau, &mut self.rng)
                else {
                    return; // pair not in ground truth
                };
                let params = self.config.sgd;
                let v = self.nodes[j].on_abw_probe(x, &u, &params);
                self.net.send(j, i, Msg::AbwReply { x, v });
            }
            Msg::AbwReply { x, v } => {
                // Step 5 at node i.
                let params = self.config.sgd;
                self.nodes[to].on_abw_reply(x, &v, &params);
                self.stats.measurements_completed += 1;
            }
        }
    }

    /// Consumes the runner and returns an equivalent [`DmfsgdSystem`]
    /// snapshot is not provided: evaluation works on
    /// [`predicted_scores`](Self::predicted_scores) directly.
    pub fn into_nodes(self) -> Vec<DmfsgdNode> {
        self.nodes
    }
}

/// Convenience: checks that oracle-driven and simnet-driven training
/// agree in distribution (used by integration tests; exposed so the
/// harness can report it).
pub fn sign_agreement(system: &DmfsgdSystem, runner: &SimnetRunner) -> f64 {
    let n = system.len().min(runner.nodes().len());
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            total += 1;
            if (system.raw_score(i, j) >= 0.0) == (runner.raw_score(i, j) >= 0.0) {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::rtt::meridian_like;

    fn sign_accuracy(runner: &SimnetRunner, class: &dmf_datasets::ClassMatrix) -> f64 {
        let mut ok = 0usize;
        let mut total = 0usize;
        for (i, j) in class.mask.iter_known() {
            total += 1;
            let predicted = if runner.raw_score(i, j) >= 0.0 {
                1.0
            } else {
                -1.0
            };
            if Some(predicted) == class.label(i, j) {
                ok += 1;
            }
        }
        ok as f64 / total as f64
    }

    #[test]
    fn rtt_protocol_learns_over_messages() {
        let d = meridian_like(40, 1);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .with_probe_interval(0.5);
        runner.run_for(150.0);
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.7, "message-driven accuracy {acc}");
        assert!(runner.stats().measurements_completed > 1000);
    }

    #[test]
    fn abw_protocol_learns_over_messages() {
        let d = hps3_like(40, 2);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .with_probe_interval(0.5);
        runner.run_for(150.0);
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.65, "ABW message-driven accuracy {acc}");
    }

    #[test]
    fn survives_heavy_message_loss() {
        // Fault injection: 30% loss must slow, not break, convergence.
        let d = meridian_like(30, 3);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner = SimnetRunner::new(
            d,
            tau,
            DmfsgdConfig::paper_defaults(),
            NetConfig {
                loss_probability: 0.3,
                ..NetConfig::default()
            },
        )
        .with_probe_interval(0.5);
        runner.run_for(200.0);
        let stats = runner.stats();
        assert!(
            stats.measurements_completed < stats.probes_sent,
            "loss must cost some measurements"
        );
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.65, "lossy accuracy {acc}");
    }

    #[test]
    fn measured_rtt_comes_from_simulated_latency() {
        // With zero jitter, inferring RTT from message timing must
        // classify exactly like the ground truth.
        let d = meridian_like(25, 4);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner = SimnetRunner::new(
            d,
            tau,
            DmfsgdConfig::paper_defaults(),
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        )
        .with_probe_interval(0.3);
        runner.run_for(120.0);
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.75, "noise-free timing accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let d = meridian_like(20, 5);
            let tau = d.median();
            let mut r =
                SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default());
            r.run_for(30.0);
            r.predicted_scores()
        };
        assert_eq!(build(), build());
    }
}
