//! Fully decentralized execution over the simulated network.
//!
//! [`SimnetRunner`] drives the same [`DmfsgdNode`] state machines as
//! [`crate::system`], but every protocol step is an actual message
//! with latency (and optionally loss) through [`dmf_simnet::SimNet`]:
//!
//! * **RTT (Algorithm 1)** — node `i` timestamps its probe; the RTT is
//!   *inferred from the simulated round-trip itself* (reply arrival −
//!   probe departure), exactly as ping infers it, then thresholded at
//!   `τ`.
//! * **ABW (Algorithm 2)** — the probe carries `u_i`; the *target*
//!   runs the pathload-style train against ground truth, updates
//!   `v_j`, and replies with `(x_ij, v_j)`.
//!
//! A probe timer per node fires every `probe_interval_s` (plus jitter)
//! and picks a uniform random neighbor — the Vivaldi-style schedule of
//! §5.3. Losing a reply simply loses one training opportunity; the
//! algorithm needs no reliability from the transport.
//!
//! # Hot-path layout
//!
//! A probe/reply cycle is allocation-free after warmup: coordinate
//! snapshots ride the [`Msg`] enum as inline [`CoordVec`]s (rank ≤ 16
//! never touches the heap), outstanding RTT probes live in small
//! per-node scratch lists whose capacity is reused, and the event
//! queue recycles its payload slots. Outstanding-probe bookkeeping is
//! O(probes actually in flight) per node, not O(n²) in the population.

use crate::config::DmfsgdConfig;
use crate::coords::CoordVec;
use crate::node::DmfsgdNode;
use crate::system::DmfsgdSystem;
use dmf_datasets::{Dataset, Metric};
use dmf_linalg::Matrix;
use dmf_simnet::probe::PathloadProber;
use dmf_simnet::{NeighborSets, NetConfig, SimNet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Protocol messages exchanged by DMFSGD nodes.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// RTT probe (Algorithm 1, step 1).
    RttProbe,
    /// RTT reply carrying the target's coordinates (step 2).
    RttReply {
        /// `u_j` of the replying node.
        u: CoordVec,
        /// `v_j` of the replying node.
        v: CoordVec,
    },
    /// ABW probe carrying the prober's `u_i` and the probe rate
    /// (Algorithm 2, step 1).
    AbwProbe {
        /// `u_i` of the probing node.
        u: CoordVec,
    },
    /// ABW reply carrying the measured class and the target's
    /// pre-update `v_j` (step 3).
    AbwReply {
        /// The class label inferred at the target.
        x: f64,
        /// `v_j` snapshot.
        v: CoordVec,
    },
    /// Event-collapsed RTT round trip ([`ExchangeFidelity::Fused`]):
    /// delivered back at the prober when the reply would have arrived,
    /// carrying only the probe departure time.
    RttExchange {
        /// Simulated send time of the probe (seconds).
        sent_at: f64,
    },
    /// Per-node probe timer.
    ProbeTick,
}

/// How the runner executes an RTT probe/reply exchange.
///
/// The two modes train on the same measurement stream — an RTT
/// inferred from two jittered, lossy one-way delays, classified at τ —
/// and differ only in event mechanics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExchangeFidelity {
    /// Every protocol message is its own queue delivery (three events
    /// per probe cycle; the reply carries the target's coordinate
    /// snapshot taken at probe arrival). This is the
    /// maximum-fidelity mode the ABW protocol always uses — there the
    /// *target* trains on probe arrival, so the intermediate delivery
    /// is observable.
    PerMessage,
    /// One completion event per round trip (default for RTT). Valid
    /// because an RTT probe has no observable effect at the target —
    /// node `j` only echoes its coordinates, it does not learn — so
    /// the probe leg needs no event of its own. The coordinates are
    /// read at exchange completion (one reply-flight-time fresher
    /// than in per-message mode, ~tens of simulated milliseconds;
    /// statistically indistinguishable, see the fidelity tests).
    /// Roughly 2× faster: two events per cycle instead of three and
    /// no coordinate payloads through the queue.
    #[default]
    Fused,
}

/// Statistics of a simulated run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunnerStats {
    /// Probes sent.
    pub probes_sent: usize,
    /// Measurements completed (SGD updates at the prober side).
    pub measurements_completed: usize,
}

/// A DMFSGD deployment over the simulated network.
pub struct SimnetRunner {
    config: DmfsgdConfig,
    nodes: Vec<DmfsgdNode>,
    neighbors: NeighborSets,
    net: SimNet<Msg>,
    dataset: Dataset,
    tau: f64,
    /// Outstanding RTT probes per probing node: `(target, send time)`,
    /// at most one entry per target — a re-probe overwrites the
    /// timestamp, so a lost reply can never pair a stale entry with a
    /// fresh exchange. Sized by what is actually in flight (typically
    /// 0–2 entries, ≤ k under heavy loss), capacity reused for the
    /// whole run.
    pending_rtt: Vec<Vec<(usize, f64)>>,
    abw_prober: PathloadProber,
    probe_interval_s: f64,
    fidelity: ExchangeFidelity,
    /// Whether the per-node probe timers have been seeded (first
    /// `run_for` call only — the chains re-arm themselves after that).
    timers_seeded: bool,
    rng: ChaCha8Rng,
    stats: RunnerStats,
}

impl SimnetRunner {
    /// Builds a runner over `dataset` (RTT or ABW decides the
    /// algorithm), classifying at `tau`.
    pub fn new(dataset: Dataset, tau: f64, config: DmfsgdConfig, net_config: NetConfig) -> Self {
        config.validate();
        assert!(tau > 0.0, "tau must be positive");
        let n = dataset.len();
        assert!(n > config.k, "need more nodes than neighbors");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5117_babe);
        let nodes: Vec<DmfsgdNode> = (0..n)
            .map(|i| DmfsgdNode::new(i, config.rank, &mut rng))
            .collect();
        let neighbors = NeighborSets::random(n, config.k, &mut rng);
        // Message delays always need an RTT-like latency model; for ABW
        // datasets use a uniform control-plane delay instead.
        let net = if dataset.metric == Metric::Rtt {
            SimNet::from_rtt_dataset(&dataset, net_config)
        } else {
            SimNet::uniform(n, 0.04, net_config)
        };
        Self {
            config,
            nodes,
            neighbors,
            net,
            dataset,
            tau,
            pending_rtt: (0..n).map(|_| Vec::with_capacity(4)).collect(),
            abw_prober: PathloadProber::default(),
            probe_interval_s: 1.0,
            fidelity: ExchangeFidelity::default(),
            timers_seeded: false,
            rng,
            stats: RunnerStats::default(),
        }
    }

    /// Sets the probe timer period (default 1 s).
    pub fn with_probe_interval(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "probe interval must be positive");
        self.probe_interval_s = seconds;
        self
    }

    /// Selects how RTT exchanges execute (default
    /// [`ExchangeFidelity::Fused`]; ABW always runs per-message).
    pub fn with_exchange_fidelity(mut self, fidelity: ExchangeFidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Immutable access to the nodes.
    pub fn nodes(&self) -> &[DmfsgdNode] {
        &self.nodes
    }

    /// Run statistics.
    pub fn stats(&self) -> RunnerStats {
        self.stats
    }

    /// Current simulated time (the timestamp of the last delivered
    /// event; 0 before the first).
    pub fn now(&self) -> f64 {
        self.net.now()
    }

    /// Raw predictor score `u_i · v_j`.
    pub fn raw_score(&self, i: usize, j: usize) -> f64 {
        self.nodes[i].predict_to(&self.nodes[j])
    }

    /// Materializes all pairwise scores for evaluation as one batched
    /// `U·Vᵀ` product (bitwise-identical to evaluating
    /// [`raw_score`](Self::raw_score) per pair, orders of magnitude
    /// faster at population scale).
    pub fn predicted_scores(&self) -> Matrix {
        batched_scores(&self.nodes)
    }

    /// [`predicted_scores`](Self::predicted_scores) into an existing
    /// matrix, reusing its allocation across repeated evaluations.
    pub fn predicted_scores_into(&self, out: &mut Matrix) {
        batched_scores_into(&self.nodes, out);
    }

    /// Reference implementation of [`predicted_scores`]: one virtual
    /// per-pair dot at a time. Kept for the equivalence property tests
    /// and as documentation of the semantics.
    ///
    /// [`predicted_scores`]: Self::predicted_scores
    pub fn predicted_scores_naive(&self) -> Matrix {
        let n = self.nodes.len();
        Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { self.raw_score(i, j) })
    }

    /// Runs the protocol until simulated time `duration_s`, starting
    /// all probe timers at jittered offsets.
    ///
    /// Events scheduled past `duration_s` stay queued: the simulated
    /// clock never overshoots the deadline, and a later `run_for` with
    /// a larger deadline picks up exactly where this one stopped.
    pub fn run_for(&mut self, duration_s: f64) {
        assert!(duration_s > 0.0, "duration must be positive");
        // Seed one probe timer per node on the first call only: every
        // timer chain re-arms itself, so a resumed run keeps the
        // configured probe rate instead of stacking a second chain.
        if !self.timers_seeded {
            self.timers_seeded = true;
            let n = self.nodes.len();
            for i in 0..n {
                let offset = self.rng.gen::<f64>() * self.probe_interval_s;
                self.net.set_timer(i, offset, Msg::ProbeTick);
            }
        }
        while let Some((now, delivery)) = self.net.next_delivery_before(duration_s) {
            self.handle(now, delivery.from, delivery.to, delivery.msg);
        }
    }

    /// Fused-mode probe departing node `i` at (current or future) time
    /// `tick_at`: draws the neighbor and schedules the round trip. A
    /// lost exchange would break the probe chain, so it falls back to
    /// a bare timer that keeps the probe clock ticking.
    fn fire_fused_probe(&mut self, i: usize, tick_at: f64) {
        let j = self.neighbors.sample_neighbor(i, &mut self.rng);
        self.stats.probes_sent += 1;
        if !self
            .net
            .roundtrip_at(i, j, tick_at, Msg::RttExchange { sent_at: tick_at })
        {
            let jitter = 0.9 + 0.2 * self.rng.gen::<f64>();
            self.net
                .set_timer_at(i, tick_at + self.probe_interval_s * jitter, Msg::ProbeTick);
        }
    }

    fn handle(&mut self, now: f64, from: usize, to: usize, msg: Msg) {
        match msg {
            Msg::ProbeTick => {
                let i = to;
                if self.dataset.metric == Metric::Rtt && self.fidelity == ExchangeFidelity::Fused {
                    // The whole round trip is one future event (no
                    // outstanding-probe bookkeeping; the completion
                    // handler chains the next probe itself).
                    self.fire_fused_probe(i, now);
                    return;
                }
                let j = self.neighbors.sample_neighbor(i, &mut self.rng);
                self.stats.probes_sent += 1;
                match self.dataset.metric {
                    Metric::Rtt => {
                        // One slot per target: re-probing a neighbor
                        // whose reply is still pending (or was lost)
                        // restarts its timestamp, so a stale entry can
                        // never pair with a fresh reply.
                        let pending = &mut self.pending_rtt[i];
                        match pending.iter_mut().find(|(target, _)| *target == j) {
                            Some(entry) => entry.1 = now,
                            None => pending.push((j, now)),
                        }
                        self.net.send(i, j, Msg::RttProbe);
                    }
                    Metric::Abw => {
                        let u = self.nodes[i].coords.u.clone();
                        self.net.send(i, j, Msg::AbwProbe { u });
                    }
                }
                // Re-arm the timer.
                let jitter = 0.9 + 0.2 * self.rng.gen::<f64>();
                self.net
                    .set_timer(i, self.probe_interval_s * jitter, Msg::ProbeTick);
            }
            Msg::RttProbe => {
                // Step 2 at node j: reply with coordinates.
                let (u, v) = self.nodes[to].rtt_reply();
                self.net.send(to, from, Msg::RttReply { u, v });
            }
            Msg::RttExchange { sent_at } => {
                // Fused steps 2–4 at node i: the round trip just
                // completed; classify its duration and train against
                // the target's (live) coordinates.
                let i = to;
                let j = from;
                let rtt_ms = (now - sent_at) * 1000.0;
                let x = Metric::Rtt.classify(rtt_ms, self.tau);
                let params = self.config.sgd;
                // Disjoint borrows of prober and target (i ≠ j by the
                // neighbor-set invariant) avoid snapshot copies.
                let (prober, target) = if i < j {
                    let (lo, hi) = self.nodes.split_at_mut(j);
                    (&mut lo[i], &hi[0])
                } else {
                    let (lo, hi) = self.nodes.split_at_mut(i);
                    (&mut hi[0], &lo[j])
                };
                prober.on_rtt_measurement(x, &target.coords.u, &target.coords.v, &params);
                self.stats.measurements_completed += 1;
                // Chain node i's next probe directly: one event per
                // probe cycle instead of a separate timer tick. The
                // next tick nominally fires at `sent_at + interval`,
                // which lies beyond this completion whenever the probe
                // interval exceeds one RTT (the Vivaldi-style regime);
                // if a pathological config makes it land in the past,
                // fall back to an immediate timer so the schedule only
                // ever slips, never panics.
                let jitter = 0.9 + 0.2 * self.rng.gen::<f64>();
                let t_next = sent_at + self.probe_interval_s * jitter;
                if t_next > now {
                    self.fire_fused_probe(i, t_next);
                } else {
                    self.net.set_timer(i, 0.0, Msg::ProbeTick);
                }
            }
            Msg::RttReply { u, v } => {
                // Steps 3–4 at node i: infer the RTT from the measured
                // round-trip time of this very exchange.
                let i = to;
                let j = from;
                let pending = &mut self.pending_rtt[i];
                let Some(pos) = pending.iter().position(|&(target, _)| target == j) else {
                    return; // duplicate or stale reply
                };
                let (_, sent_at) = pending.swap_remove(pos);
                let rtt_ms = (now - sent_at) * 1000.0;
                let x = Metric::Rtt.classify(rtt_ms, self.tau);
                let params = self.config.sgd;
                self.nodes[i].on_rtt_measurement(x, &u, &v, &params);
                self.stats.measurements_completed += 1;
            }
            Msg::AbwProbe { u } => {
                // Steps 2–4 at target j: measure, snapshot v_j, update.
                let j = to;
                let i = from;
                let Some(x) =
                    self.abw_prober
                        .probe_class(&self.dataset, i, j, self.tau, &mut self.rng)
                else {
                    return; // pair not in ground truth
                };
                let params = self.config.sgd;
                let v = self.nodes[j].on_abw_probe(x, &u, &params);
                self.net.send(j, i, Msg::AbwReply { x, v });
            }
            Msg::AbwReply { x, v } => {
                // Step 5 at node i.
                let params = self.config.sgd;
                self.nodes[to].on_abw_reply(x, &v, &params);
                self.stats.measurements_completed += 1;
            }
        }
    }

    /// Consumes the runner and returns the trained nodes. There is no
    /// [`DmfsgdSystem`] conversion: evaluation works on
    /// [`predicted_scores`](Self::predicted_scores) directly.
    pub fn into_nodes(self) -> Vec<DmfsgdNode> {
        self.nodes
    }
}

/// All pairwise scores `u_i · v_j` (diagonal zeroed) as one `U·Vᵀ`
/// product over coordinate rows packed contiguously.
pub(crate) fn batched_scores(nodes: &[DmfsgdNode]) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    batched_scores_into(nodes, &mut out);
    out
}

/// [`batched_scores`] into an existing matrix, reusing its allocation
/// (repeated evaluation never re-faults the n² buffer).
pub(crate) fn batched_scores_into(nodes: &[DmfsgdNode], out: &mut Matrix) {
    let n = nodes.len();
    if n == 0 {
        *out = Matrix::zeros(0, 0);
        return;
    }
    let r = nodes[0].coords.rank();
    // Single-write packing (no zero-fill-then-overwrite). The three
    // transient n×r scratch buffers (U, V, and matmul's rhsᵀ) are a
    // ~1% overhead next to streaming the n×n output, so the reuse
    // contract of the `_into` path targets the output matrix only.
    let mut ud = Vec::with_capacity(n * r);
    let mut vd = Vec::with_capacity(n * r);
    for node in nodes {
        ud.extend_from_slice(&node.coords.u);
        vd.extend_from_slice(&node.coords.v);
    }
    let u = Matrix::from_vec(n, r, ud);
    let v = Matrix::from_vec(n, r, vd);
    u.matmul_nt_into(&v, out);
    for i in 0..n {
        out[(i, i)] = 0.0;
    }
}

/// Convenience: checks that oracle-driven and simnet-driven training
/// agree in distribution (used by integration tests; exposed so the
/// harness can report it).
pub fn sign_agreement(system: &DmfsgdSystem, runner: &SimnetRunner) -> f64 {
    let n = system.len().min(runner.nodes().len());
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            total += 1;
            if (system.raw_score(i, j) >= 0.0) == (runner.raw_score(i, j) >= 0.0) {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::rtt::meridian_like;

    fn sign_accuracy(runner: &SimnetRunner, class: &dmf_datasets::ClassMatrix) -> f64 {
        let mut ok = 0usize;
        let mut total = 0usize;
        for (i, j) in class.mask.iter_known() {
            total += 1;
            let predicted = if runner.raw_score(i, j) >= 0.0 {
                1.0
            } else {
                -1.0
            };
            if Some(predicted) == class.label(i, j) {
                ok += 1;
            }
        }
        ok as f64 / total as f64
    }

    #[test]
    fn rtt_protocol_learns_over_messages() {
        let d = meridian_like(40, 1);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .with_probe_interval(0.5);
        runner.run_for(150.0);
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.7, "message-driven accuracy {acc}");
        assert!(runner.stats().measurements_completed > 1000);
    }

    #[test]
    fn per_message_fidelity_learns_like_fused() {
        // The event-collapsed default and the full three-event flow
        // must both converge, with comparable accuracy and matching
        // probe accounting.
        let run_with = |fidelity: ExchangeFidelity| {
            let d = meridian_like(40, 1);
            let tau = d.median();
            let cm = d.classify(tau);
            let mut runner =
                SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                    .with_probe_interval(0.5)
                    .with_exchange_fidelity(fidelity);
            runner.run_for(150.0);
            (sign_accuracy(&runner, &cm), runner.stats())
        };
        let (acc_fused, stats_fused) = run_with(ExchangeFidelity::Fused);
        let (acc_msg, stats_msg) = run_with(ExchangeFidelity::PerMessage);
        assert!(acc_msg > 0.7, "per-message accuracy {acc_msg}");
        assert!(acc_fused > 0.7, "fused accuracy {acc_fused}");
        assert!(
            (acc_fused - acc_msg).abs() < 0.1,
            "fidelity modes diverge: fused {acc_fused} vs per-message {acc_msg}"
        );
        // Same probe schedule in both modes, except that the fused
        // chain accounts each probe when it is scheduled (up to one
        // interval ahead per node) and jitter streams differ at the
        // run's tail — bounded by a couple of probes per node.
        let n = 40;
        assert!(
            stats_fused.probes_sent.abs_diff(stats_msg.probes_sent) <= 2 * n,
            "probe accounting diverged: fused {} vs per-message {}",
            stats_fused.probes_sent,
            stats_msg.probes_sent
        );
    }

    #[test]
    fn per_message_fidelity_survives_loss() {
        let d = meridian_like(30, 3);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner = SimnetRunner::new(
            d,
            tau,
            DmfsgdConfig::paper_defaults(),
            NetConfig {
                loss_probability: 0.3,
                ..NetConfig::default()
            },
        )
        .with_probe_interval(0.5)
        .with_exchange_fidelity(ExchangeFidelity::PerMessage);
        runner.run_for(200.0);
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.65, "per-message lossy accuracy {acc}");
    }

    #[test]
    fn abw_protocol_learns_over_messages() {
        let d = hps3_like(40, 2);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .with_probe_interval(0.5);
        runner.run_for(150.0);
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.65, "ABW message-driven accuracy {acc}");
    }

    #[test]
    fn survives_heavy_message_loss() {
        // Fault injection: 30% loss must slow, not break, convergence.
        let d = meridian_like(30, 3);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner = SimnetRunner::new(
            d,
            tau,
            DmfsgdConfig::paper_defaults(),
            NetConfig {
                loss_probability: 0.3,
                ..NetConfig::default()
            },
        )
        .with_probe_interval(0.5);
        runner.run_for(200.0);
        let stats = runner.stats();
        assert!(
            stats.measurements_completed < stats.probes_sent,
            "loss must cost some measurements"
        );
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.65, "lossy accuracy {acc}");
    }

    #[test]
    fn measured_rtt_comes_from_simulated_latency() {
        // With zero jitter, inferring RTT from message timing must
        // classify exactly like the ground truth.
        let d = meridian_like(25, 4);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner = SimnetRunner::new(
            d,
            tau,
            DmfsgdConfig::paper_defaults(),
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        )
        .with_probe_interval(0.3);
        runner.run_for(120.0);
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.75, "noise-free timing accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let d = meridian_like(20, 5);
            let tau = d.median();
            let mut r =
                SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default());
            r.run_for(30.0);
            r.predicted_scores()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn run_for_never_overshoots_deadline() {
        // Regression: the historical loop peeked the *last-delivered*
        // time, so one event past the deadline still got through and
        // the clock ended beyond `duration_s`.
        let d = meridian_like(25, 6);
        let tau = d.median();
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .with_probe_interval(0.37);
        let duration = 41.3;
        runner.run_for(duration);
        assert!(
            runner.now() <= duration,
            "simulated clock {} overshot the {duration}s deadline",
            runner.now()
        );
        // And the deadline region was actually reached, not stopped short.
        assert!(runner.now() > duration - 2.0 * 0.37, "stopped early");
    }

    #[test]
    fn run_for_resumes_where_it_stopped() {
        let d = meridian_like(20, 7);
        let tau = d.median();
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default());
        runner.run_for(20.0);
        let mid = runner.stats().measurements_completed;
        runner.run_for(40.0);
        assert!(runner.now() <= 40.0);
        let second_half = runner.stats().measurements_completed - mid;
        // Resuming must keep the configured probe rate, not stack a
        // second timer chain per node (which would double the rate).
        assert!(second_half > mid / 2, "resumed run stalled");
        assert!(
            second_half < mid * 2,
            "resumed run probes too fast: {mid} then {second_half} — timer chains stacked?"
        );
    }

    #[test]
    fn batched_scores_match_naive_per_pair() {
        let d = meridian_like(30, 8);
        let tau = d.median();
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default());
        runner.run_for(25.0);
        let batched = runner.predicted_scores();
        let naive = runner.predicted_scores_naive();
        assert_eq!(batched, naive, "batched U·Vᵀ must equal per-pair dots");
    }
}
